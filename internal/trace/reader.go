package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"repro/internal/mem"
	"repro/internal/vma"
	"repro/internal/workload"
)

// maxBodyBytes bounds how much uncompressed body Load will hold in memory, so
// a small compressed file cannot make it allocate without limit.
const maxBodyBytes = 1 << 30

// byteSource is what header decoding reads from; *bufio.Reader (streaming)
// and *bytes.Reader (Load) both satisfy it.
type byteSource interface {
	io.ByteReader
	io.Reader
}

func readUvarint(r byteSource) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err == io.EOF {
		// A value cut off mid-file is corruption, not a clean end.
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

func readFloat(r byteSource) (float64, error) {
	bits, err := readUvarint(r)
	return math.Float64frombits(bits), err
}

func readString(r byteSource, max int) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", fmt.Errorf("trace: string length %d exceeds cap %d", n, max)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", err)
	}
	return string(b), nil
}

func readInt(r byteSource) (int, error) {
	v, err := readUvarint(r)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("trace: integer field %d out of range", v)
	}
	return int(v), nil
}

// readHeader decodes the header in appendHeader's field order.
func readHeader(r byteSource) (Header, error) {
	var h Header
	var err error
	s := &h.Spec
	read := func(dst *float64) {
		if err == nil {
			*dst, err = readFloat(r)
		}
	}
	if s.Name, err = readString(r, maxStringLen); err != nil {
		return h, err
	}
	if s.Description, err = readString(r, maxStringLen); err != nil {
		return h, err
	}
	if s.DatasetBytes, err = readUvarint(r); err != nil {
		return h, err
	}
	read(&s.SpreadFactor)
	if err == nil {
		s.TotalVMAs, err = readInt(r)
	}
	if err == nil {
		s.BigVMAs, err = readInt(r)
	}
	if err == nil {
		var p int
		p, err = readInt(r)
		s.Pattern = workload.Pattern(p)
	}
	read(&s.ZipfTheta)
	read(&s.HotFraction)
	read(&s.HotProb)
	read(&s.SeqRatio)
	read(&s.BurstLen)
	read(&s.LinesPerVisit)
	read(&s.DataStallCycles)
	read(&s.Contig8)
	read(&s.MeanPTRun)
	if err == nil {
		s.DataPerPTNode, err = readInt(r)
	}
	read(&s.InstrPerRef)
	if err != nil {
		return h, err
	}
	if h.Seed, err = readUvarint(r); err != nil {
		return h, err
	}
	n, err := readUvarint(r)
	if err != nil {
		return h, err
	}
	if n > maxAreas {
		return h, fmt.Errorf("trace: %d areas exceed the format cap %d", n, maxAreas)
	}
	h.Areas = make([]workload.AreaSpec, 0, n)
	for i := uint64(0); i < n; i++ {
		var a workload.AreaSpec
		vpn, err := readUvarint(r)
		if err != nil {
			return h, err
		}
		if vpn >= uint64(1)<<52 {
			return h, fmt.Errorf("trace: area %d start VPN %#x out of range", i, vpn)
		}
		a.Start = mem.FromVPN(vpn)
		if a.Pages, err = readUvarint(r); err != nil {
			return h, err
		}
		if a.Resident, err = readUvarint(r); err != nil {
			return h, err
		}
		var kind [1]byte
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return h, fmt.Errorf("trace: truncated area kind: %w", err)
		}
		a.Big = kind[0]&0x80 != 0
		a.Kind = vma.Kind(kind[0] &^ 0x80)
		if a.Name, err = readString(r, maxStringLen); err != nil {
			return h, err
		}
		h.Areas = append(h.Areas, a)
	}
	return h, nil
}

// readPreamble consumes the magic/version/flags preamble and returns the
// body reader (decompressing when the gzip flag is set).
func readPreamble(r io.Reader) (byteSource, error) {
	pre := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, pre); err != nil {
		return nil, fmt.Errorf("trace: truncated preamble: %w", err)
	}
	if string(pre[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", pre[:len(magic)])
	}
	if pre[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", pre[len(magic)], version)
	}
	flags := pre[len(magic)+1]
	if flags&^flagGzip != 0 {
		return nil, fmt.Errorf("trace: unknown flags %#x", flags)
	}
	if flags&flagGzip != 0 {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("trace: bad gzip framing: %w", err)
		}
		return bufio.NewReader(gz), nil
	}
	return bufio.NewReader(r), nil
}

// Reader streams a trace from an io.Reader with O(1) memory.
type Reader struct {
	body   byteSource
	header Header
	prev   uint64
	count  uint64
}

// NewReader parses the preamble and header and returns a Reader positioned at
// the first reference.
func NewReader(r io.Reader) (*Reader, error) {
	body, err := readPreamble(r)
	if err != nil {
		return nil, err
	}
	h, err := readHeader(body)
	if err != nil {
		return nil, err
	}
	return &Reader{body: body, header: h}, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

// Next returns the next reference, or io.EOF at the clean end of the stream.
func (r *Reader) Next() (mem.VirtAddr, error) {
	u, err := binary.ReadUvarint(r.body)
	if err != nil {
		if err == io.EOF {
			// No bytes at all: the clean end of the stream. A varint cut off
			// mid-value surfaces as ErrUnexpectedEOF below.
			return 0, io.EOF
		}
		return 0, fmt.Errorf("trace: reference %d: %w", r.count, err)
	}
	r.prev += uint64(unzigzag(u))
	r.count++
	return mem.VirtAddr(r.prev), nil
}

// Count returns the number of references decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Trace is a fully loaded, validated trace: the header, the content digest,
// the reference count and the compact encoded stream, ready to be replayed
// any number of times (concurrently, if desired — replays share the immutable
// stream bytes).
type Trace struct {
	Header Header
	Digest string // FNV-64a over the uncompressed body, 16 hex digits
	Count  uint64
	stream []byte
}

// Load reads a whole trace, verifying the preamble, header and every stream
// record, and computes the content digest.
func Load(r io.Reader) (*Trace, error) {
	body, err := readPreamble(r)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(io.LimitReader(body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("trace: reading body: %w", err)
	}
	if len(raw) > maxBodyBytes {
		return nil, fmt.Errorf("trace: body exceeds %d bytes", maxBodyBytes)
	}
	br := bytes.NewReader(raw)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	stream := raw[len(raw)-br.Len():]
	t := &Trace{Header: h, stream: stream}
	// Validate the stream in one decode pass so Replay never has to fail.
	rep := t.Replay()
	for {
		if _, ok := rep.next(); !ok {
			break
		}
		t.Count++
	}
	if rep.pos != len(stream) {
		return nil, fmt.Errorf("trace: reference %d truncated or malformed", t.Count)
	}
	d := fnv.New64a()
	d.Write(raw)
	t.Digest = fmt.Sprintf("%016x", d.Sum64())
	return t, nil
}

// LoadFile loads the trace at path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Load(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Replay returns a fresh decoder over the trace's reference stream.
func (t *Trace) Replay() *Replayer {
	return &Replayer{b: t.stream}
}

// Replayer decodes a loaded trace's reference stream sequentially. Next
// satisfies the simulator's reference-source contract: ok reports whether a
// reference was produced, and turns false when the trace runs dry.
type Replayer struct {
	b    []byte
	pos  int
	prev uint64
}

// Next returns the next reference in the stream.
func (r *Replayer) Next() (mem.VirtAddr, bool) {
	return r.next()
}

func (r *Replayer) next() (mem.VirtAddr, bool) {
	if r.pos >= len(r.b) {
		return 0, false
	}
	u, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		// Load validated the stream, so this only happens on a hand-built
		// Replayer over corrupt bytes; treat it as end-of-stream.
		r.pos = len(r.b) + 1
		return 0, false
	}
	r.pos += n
	r.prev += uint64(unzigzag(u))
	return mem.VirtAddr(r.prev), true
}
