package trace

import "sort"

// Info summarizes a trace's page-level behaviour: footprint and the reuse-
// distance distribution that predicts how it will stress a TLB of a given
// reach.
type Info struct {
	Count       uint64 // references
	UniquePages uint64 // distinct 4K pages touched (footprint)
	// ReuseP50 and ReuseP90 are percentiles of the page reuse distance: for
	// each re-touch of a page, the number of distinct pages touched since its
	// previous touch (the classic LRU stack distance at page granularity). A
	// fully-associative TLB of R entries hits a re-touch iff its distance is
	// below R. ColdRefs counts first touches, which no TLB can hit.
	ReuseP50 uint64
	ReuseP90 uint64
	ColdRefs uint64
}

// fenwick is a binary indexed tree over stream positions, counting how many
// "last touch" marks lie in a prefix.
type fenwick struct {
	t []uint32
}

func newFenwick(n uint64) *fenwick { return &fenwick{t: make([]uint32, n+1)} }

func (f *fenwick) add(i uint64, d uint32) {
	for ; i < uint64(len(f.t)); i += i & (-i) {
		f.t[i] += d
	}
}

func (f *fenwick) prefix(i uint64) uint64 {
	var s uint64
	for ; i > 0; i -= i & (-i) {
		s += uint64(f.t[i])
	}
	return s
}

// Info scans the trace once and computes the summary. Memory is O(references)
// for the distance tree — fine for an analysis CLI, deliberately not part of
// the replay path, which stays O(1).
func (t *Trace) Info() Info {
	info := Info{Count: t.Count}
	if t.Count == 0 {
		return info
	}
	// Maintain a mark at each page's latest touch position; the reuse
	// distance of a re-touch at position i (of a page last touched at j) is
	// the number of marks strictly between j and i — exactly the distinct
	// pages touched since.
	last := make(map[uint64]uint64, 1024)
	bit := newFenwick(t.Count)
	distances := make([]uint64, 0, t.Count/2)
	rep := t.Replay()
	var pos uint64
	for {
		va, ok := rep.Next()
		if !ok {
			break
		}
		pos++
		page := va.VPN()
		if j, seen := last[page]; seen {
			distances = append(distances, bit.prefix(pos-1)-bit.prefix(j))
			bit.add(j, ^uint32(0)) // -1: the page's mark moves to pos
		} else {
			info.ColdRefs++
		}
		bit.add(pos, 1)
		last[page] = pos
	}
	info.UniquePages = uint64(len(last))
	if len(distances) > 0 {
		sort.Slice(distances, func(i, j int) bool { return distances[i] < distances[j] })
		info.ReuseP50 = distances[len(distances)/2]
		info.ReuseP90 = distances[len(distances)*9/10]
	}
	return info
}
