package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// FuzzTraceDecode feeds arbitrary bytes to the full decode surface: Load (and
// the layout reconstruction a replay would perform on the decoded header)
// must return clean errors on malformed input — never panic, and never
// allocate proportionally to a length field the input merely claims.
func FuzzTraceDecode(f *testing.F) {
	// Seed with a valid raw and gzip trace plus assorted corruptions.
	spec, _ := workload.ByName("mcf")
	layout, err := workload.BuildLayout(spec)
	if err != nil {
		f.Fatal(err)
	}
	h := Header{Spec: spec, Seed: 1, Areas: layout.Areas()}
	r := rand.New(rand.NewSource(1))
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, h, compress)
		if err != nil {
			f.Fatal(err)
		}
		for _, va := range randomStream(r, 64) {
			w.Add(va)
		}
		w.Close()
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte(magic))
	f.Add([]byte("ASAPTRC\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A trace that decodes must also replay and summarize cleanly, and
		// its header must either build a layout or reject it with an error.
		rep := tr.Replay()
		var n uint64
		for {
			if _, ok := rep.Next(); !ok {
				break
			}
			n++
		}
		if n != tr.Count {
			t.Fatalf("replay yielded %d refs, Load counted %d", n, tr.Count)
		}
		if tr.Count < 1<<16 {
			tr.Info()
		}
		_, _ = workload.LayoutFromAreas(tr.Header.Areas)
	})
}
