// Package trace implements the simulator's binary reference-trace format.
//
// The source paper drove its evaluation with memory traces and page-table
// dumps captured from real applications; this repository substitutes
// synthetic generators. A trace file closes that gap: it freezes one
// process's virtual-address reference stream together with everything needed
// to rebuild the process image it ran against — the workload spec (timing
// model and identity) and the explicit VMA layout — so any reference stream,
// recorded synthetic, hand-built, or converted from an external tool, becomes
// a runnable scenario.
//
// # Format
//
// A trace file is a fixed preamble followed by a body that is optionally
// gzip-framed:
//
//	magic    [7]byte  "ASAPTRC"
//	version  byte     1
//	flags    byte     bit 0: body is gzip-compressed
//	body     header, then the reference stream
//
// All body integers are unsigned varints (encoding/binary); floats are their
// IEEE-754 bit patterns as varints; strings are a varint length followed by
// raw bytes. The header is the workload spec field by field, the capture's
// generator seed, and the VMA area table (per area: start VPN, span pages,
// resident pages, a kind byte whose high bit marks dataset areas, name). The
// reference stream is one varint per reference: the zigzag-encoded signed
// delta from the previous virtual address (the first delta is from address
// zero). Delta-plus-varint keeps sequential and strided phases near one byte
// per reference; gzip framing compresses the rest.
//
// The content digest is FNV-64a over the uncompressed body, so a raw and a
// gzip framing of the same capture share a digest — the digest identifies the
// trace's content, which is what memoization and report records key on.
//
// Writer and Reader both stream with O(1) memory; Load keeps the compact
// encoded stream in memory so a simulation (or several, concurrently) can
// replay it without touching the file again.
package trace

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/mem"
	"repro/internal/workload"
)

// Format constants.
const (
	magic    = "ASAPTRC"
	version  = 1
	flagGzip = 1 << 0
)

// Decode limits: a well-formed header is tiny, so these caps only bound what
// a malformed or hostile file can make the decoder allocate.
const (
	maxStringLen = 4096
	maxAreas     = 1 << 16
)

// Header carries everything a replay needs to reconstruct the originating
// process: the workload spec (identity plus the timing model the simulator
// charges per reference), the generator seed the capture ran with, and the
// explicit VMA layout.
type Header struct {
	Spec  workload.Spec
	Seed  uint64
	Areas []workload.AreaSpec
}

// appendUvarint and friends build the body encoding.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendFloat(b []byte, f float64) []byte {
	return appendUvarint(b, math.Float64bits(f))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// zigzag maps signed deltas onto small varints regardless of direction.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendHeader encodes h. The field order here is the format; readHeader
// mirrors it exactly.
func appendHeader(b []byte, h Header) ([]byte, error) {
	if len(h.Spec.Name) > maxStringLen || len(h.Spec.Description) > maxStringLen {
		return nil, fmt.Errorf("trace: spec strings exceed %d bytes", maxStringLen)
	}
	if len(h.Areas) > maxAreas {
		return nil, fmt.Errorf("trace: %d areas exceed the format cap %d", len(h.Areas), maxAreas)
	}
	s := h.Spec
	b = appendString(b, s.Name)
	b = appendString(b, s.Description)
	b = appendUvarint(b, s.DatasetBytes)
	b = appendFloat(b, s.SpreadFactor)
	b = appendUvarint(b, uint64(s.TotalVMAs))
	b = appendUvarint(b, uint64(s.BigVMAs))
	b = appendUvarint(b, uint64(s.Pattern))
	b = appendFloat(b, s.ZipfTheta)
	b = appendFloat(b, s.HotFraction)
	b = appendFloat(b, s.HotProb)
	b = appendFloat(b, s.SeqRatio)
	b = appendFloat(b, s.BurstLen)
	b = appendFloat(b, s.LinesPerVisit)
	b = appendFloat(b, s.DataStallCycles)
	b = appendFloat(b, s.Contig8)
	b = appendFloat(b, s.MeanPTRun)
	b = appendUvarint(b, uint64(s.DataPerPTNode))
	b = appendFloat(b, s.InstrPerRef)
	b = appendUvarint(b, h.Seed)
	b = appendUvarint(b, uint64(len(h.Areas)))
	for _, a := range h.Areas {
		if a.Start.PageOffset() != 0 {
			return nil, fmt.Errorf("trace: area %q start %#x not page aligned", a.Name, uint64(a.Start))
		}
		if len(a.Name) > maxStringLen {
			return nil, fmt.Errorf("trace: area name exceeds %d bytes", maxStringLen)
		}
		b = appendUvarint(b, a.Start.VPN())
		b = appendUvarint(b, a.Pages)
		b = appendUvarint(b, a.Resident)
		kind := byte(a.Kind)
		if kind >= 0x80 {
			return nil, fmt.Errorf("trace: area kind %d not encodable", a.Kind)
		}
		if a.Big {
			kind |= 0x80
		}
		b = append(b, kind)
		b = appendString(b, a.Name)
	}
	return b, nil
}

// Writer streams one reference trace to an io.Writer with O(1) memory,
// hashing the uncompressed body as it goes.
type Writer struct {
	out    io.Writer // body sink: the gzip framer or the raw destination
	gz     *gzip.Writer
	digest hash.Hash64
	buf    []byte
	prev   uint64
	count  uint64
	err    error
}

// NewWriter writes the preamble and header for h to w and returns a Writer
// accepting the reference stream. With compress set the body is gzip-framed.
// Close flushes the framing but does not close w.
func NewWriter(w io.Writer, h Header, compress bool) (*Writer, error) {
	pre := make([]byte, 0, len(magic)+2)
	pre = append(pre, magic...)
	pre = append(pre, version)
	var flags byte
	if compress {
		flags |= flagGzip
	}
	pre = append(pre, flags)
	if _, err := w.Write(pre); err != nil {
		return nil, err
	}
	tw := &Writer{out: w, digest: fnv.New64a()}
	if compress {
		tw.gz = gzip.NewWriter(w)
		tw.out = tw.gz
	}
	hb, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	if err := tw.write(hb); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) write(b []byte) error {
	if w.err != nil {
		return w.err
	}
	w.digest.Write(b)
	if _, err := w.out.Write(b); err != nil {
		w.err = err
	}
	return w.err
}

// Add appends one reference to the stream.
func (w *Writer) Add(va mem.VirtAddr) error {
	w.buf = appendUvarint(w.buf[:0], zigzag(int64(uint64(va)-w.prev)))
	w.prev = uint64(va)
	if err := w.write(w.buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of references written so far.
func (w *Writer) Count() uint64 { return w.count }

// Digest returns the content digest of everything written so far; after
// Close it is the trace's digest (and matches what Load computes).
func (w *Writer) Digest() string { return fmt.Sprintf("%016x", w.digest.Sum64()) }

// Close flushes the gzip framing, leaving the underlying writer open.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.gz != nil {
		w.err = w.gz.Close()
	}
	return w.err
}
