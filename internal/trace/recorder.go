package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
	"repro/internal/workload"
)

// Recorder captures reference streams as trace files: it implements the
// simulator's reference tap (sim.RefTap) by opening one Writer per observed
// process, so a multi-process run produces one trace per process. The open
// callback maps a process index to its destination; Close flushes every
// writer and closes the destinations.
type Recorder struct {
	open     func(pid int) (io.WriteCloser, error)
	compress bool

	ws     map[int]*Writer
	sinks  map[int]io.WriteCloser
	headed map[int]Header
	err    error
}

// NewRecorder returns a Recorder writing each process's trace to the
// destination open returns for it, gzip-framed when compress is set.
func NewRecorder(open func(pid int) (io.WriteCloser, error), compress bool) *Recorder {
	return &Recorder{
		open:     open,
		compress: compress,
		ws:       map[int]*Writer{},
		sinks:    map[int]io.WriteCloser{},
		headed:   map[int]Header{},
	}
}

// BeginProcess opens the trace for process pid and writes its header. The
// simulator announces every process before its first reference.
func (r *Recorder) BeginProcess(pid int, spec workload.Spec, layout *workload.Layout, seed uint64) error {
	if _, ok := r.ws[pid]; ok {
		return fmt.Errorf("trace: process %d announced twice", pid)
	}
	sink, err := r.open(pid)
	if err != nil {
		r.err = err
		return err
	}
	h := Header{Spec: spec, Seed: seed, Areas: layout.Areas()}
	w, err := NewWriter(sink, h, r.compress)
	if err != nil {
		sink.Close()
		r.err = err
		return err
	}
	r.ws[pid] = w
	r.sinks[pid] = sink
	r.headed[pid] = h
	return nil
}

// Ref appends one reference to process pid's trace. Write errors are held
// until Close so the hot simulation loop stays error-free.
func (r *Recorder) Ref(pid int, va mem.VirtAddr) {
	if w, ok := r.ws[pid]; ok {
		if err := w.Add(va); err != nil && r.err == nil {
			r.err = err
		}
	} else if r.err == nil {
		r.err = fmt.Errorf("trace: reference for unannounced process %d", pid)
	}
}

// Capture describes one finished per-process trace.
type Capture struct {
	PID    int
	Spec   workload.Spec
	Count  uint64
	Digest string
}

// Close flushes and closes every per-process trace and returns the first
// error encountered anywhere in the capture.
func (r *Recorder) Close() error {
	for _, pid := range r.pids() {
		if err := r.ws[pid].Close(); err != nil && r.err == nil {
			r.err = err
		}
		if err := r.sinks[pid].Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Captures summarizes the recorded processes in pid order (valid after
// Close).
func (r *Recorder) Captures() []Capture {
	out := make([]Capture, 0, len(r.ws))
	for _, pid := range r.pids() {
		w := r.ws[pid]
		out = append(out, Capture{PID: pid, Spec: r.headed[pid].Spec, Count: w.Count(), Digest: w.Digest()})
	}
	return out
}

func (r *Recorder) pids() []int {
	pids := make([]int, 0, len(r.ws))
	for pid := range r.ws {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}
