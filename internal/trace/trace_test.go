package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

func testHeader(t *testing.T) Header {
	t.Helper()
	spec, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	layout, err := workload.BuildLayout(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Header{Spec: spec, Seed: 42, Areas: layout.Areas()}
}

// randomStream draws addresses the way a workload would: page-local lines,
// neighbouring pages, and far jumps, so deltas of every magnitude (and both
// signs) are exercised.
func randomStream(r *rand.Rand, n int) []mem.VirtAddr {
	out := make([]mem.VirtAddr, n)
	va := mem.VirtAddr(0x10000000000)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			va = mem.FromVPN(va.VPN()) + mem.VirtAddr(r.Intn(mem.PageSize/mem.LineBytes)*mem.LineBytes)
		case 1:
			va += mem.VirtAddr(mem.PageSize * (1 + r.Intn(4)))
		case 2:
			if va > mem.VirtAddr(64*mem.PageSize) {
				va -= mem.VirtAddr(mem.PageSize * (1 + r.Intn(32)))
			}
		default:
			va = mem.VirtAddr(uint64(r.Int63n(1 << 47)))
		}
		out[i] = va
	}
	return out
}

// TestRoundTripProperty is the encode→decode property test: over randomized
// streams and both framings, a written trace loads back with an identical
// header, count and reference sequence, and raw and gzip framings of the same
// stream share a content digest.
func TestRoundTripProperty(t *testing.T) {
	h := testHeader(t)
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		refs := randomStream(r, r.Intn(5000))
		var digests []string
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, h, compress)
			if err != nil {
				t.Fatal(err)
			}
			for _, va := range refs {
				if err := w.Add(va); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			tr, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("round %d compress=%v: %v", round, compress, err)
			}
			if tr.Count != uint64(len(refs)) {
				t.Fatalf("count %d, want %d", tr.Count, len(refs))
			}
			if !reflect.DeepEqual(tr.Header, h) {
				t.Fatalf("header drifted:\ngot  %+v\nwant %+v", tr.Header, h)
			}
			if tr.Digest != w.Digest() {
				t.Fatalf("digest mismatch: load %s, writer %s", tr.Digest, w.Digest())
			}
			rep := tr.Replay()
			for i, want := range refs {
				got, ok := rep.Next()
				if !ok || got != want {
					t.Fatalf("ref %d: got %#x ok=%v, want %#x", i, uint64(got), ok, uint64(want))
				}
			}
			if _, ok := rep.Next(); ok {
				t.Fatal("replayer did not end")
			}
			digests = append(digests, tr.Digest)
		}
		if digests[0] != digests[1] {
			t.Fatalf("raw %s and gzip %s digests differ for identical content", digests[0], digests[1])
		}
	}
}

// TestStreamingReaderMatchesLoad checks the O(1)-memory Reader against Load.
func TestStreamingReaderMatchesLoad(t *testing.T) {
	h := testHeader(t)
	refs := randomStream(rand.New(rand.NewSource(9)), 2000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range refs {
		w.Add(va)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Header(), h) {
		t.Fatal("streaming header drifted")
	}
	for i, want := range refs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("ref %d: got %#x, want %#x", i, uint64(got), uint64(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
	if r.Count() != uint64(len(refs)) {
		t.Fatalf("count %d", r.Count())
	}
}

// TestLayoutRoundTrip locks the layout reconstruction the replay path relies
// on: Areas() → LayoutFromAreas reproduces BuildLayout's result exactly.
func TestLayoutRoundTrip(t *testing.T) {
	for _, spec := range workload.Specs() {
		built, err := workload.BuildLayout(spec)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := workload.LayoutFromAreas(built.Areas())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(built, rebuilt) {
			t.Fatalf("%s layout did not round-trip", spec.Name)
		}
	}
}

// TestLayoutRejectsAbsurdAreas guards the untrusted-header path: spans that
// would wrap the address space or exceed the 48-bit cap must be rejected
// before replay assembly can iterate over them.
func TestLayoutRejectsAbsurdAreas(t *testing.T) {
	base := workload.AreaSpec{Start: mem.FromVPN(1 << 20), Kind: 0, Big: true, Name: "evil"}
	for _, tc := range []struct {
		name            string
		pages, resident uint64
	}{
		{"wrapping span", uint64(1)<<52 + 1, uint64(1) << 52},
		{"beyond cap", uint64(1) << 40, 1},
		{"resident beyond span", 8, 9},
		{"empty", 0, 0},
	} {
		a := base
		a.Pages, a.Resident = tc.pages, tc.resident
		if _, err := workload.LayoutFromAreas([]workload.AreaSpec{a}); err == nil {
			t.Fatalf("%s accepted (pages=%d resident=%d)", tc.name, tc.pages, tc.resident)
		}
	}
}

// TestTruncatedAndCorrupt locks clean failure on damaged files.
func TestTruncatedAndCorrupt(t *testing.T) {
	h := testHeader(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range randomStream(rand.New(rand.NewSource(3)), 100) {
		w.Add(va)
	}
	w.Close()
	full := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("NOTATRACE!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte{}, full...)
	bad[len(magic)] = 99 // future version
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	// A trace cut mid-header must error; one cut mid-stream may error on the
	// torn last varint but must never panic or succeed with a torn record.
	for cut := len(magic) + 2; cut < len(full); cut += 37 {
		tr, err := Load(bytes.NewReader(full[:cut]))
		if err == nil && tr.Count == 100 {
			t.Fatalf("cut at %d decoded the full stream", cut)
		}
	}
}

// TestInfoSummary checks footprint and reuse distances on a hand-built
// stream: pages A B A C B A → unique 3, colds 3, distances: A after B → 1,
// B after {A,C} → 2, A after {C,B} → 2.
func TestInfoSummary(t *testing.T) {
	h := testHeader(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, false)
	if err != nil {
		t.Fatal(err)
	}
	page := func(i uint64) mem.VirtAddr { return mem.FromVPN(0x1000 + i) }
	for _, p := range []uint64{0, 1, 0, 2, 1, 0} {
		w.Add(page(p))
	}
	w.Close()
	tr, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	info := tr.Info()
	if info.Count != 6 || info.UniquePages != 3 || info.ColdRefs != 3 {
		t.Fatalf("info: %+v", info)
	}
	// Distances sorted: [1 2 2] → p50 = 2 (index 1), p90 = 2 (index 2).
	if info.ReuseP50 != 2 || info.ReuseP90 != 2 {
		t.Fatalf("reuse distances: %+v", info)
	}
}
