package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestTLBBasic(t *testing.T) {
	u := New(64, 8)
	if u.Lookup(0, 5, Page4K) {
		t.Fatal("hit in empty TLB")
	}
	u.Insert(0, 5, Page4K, 99, nil)
	if !u.Lookup(0, 5, Page4K) {
		t.Fatal("miss after insert")
	}
	// Same page number, different class, is a different entry.
	if u.Lookup(0, 5, Page2M) {
		t.Fatal("4K entry matched a 2M lookup")
	}
	u.Flush()
	if u.Lookup(0, 5, Page4K) {
		t.Fatal("hit after flush")
	}
}

func TestTwoLevelRefill(t *testing.T) {
	tl := NewTwoLevel(false)
	tl.Insert(7, Page4K, 1, nil)
	if !tl.LookupVA(mem.FromVPN(7), 1, nil) {
		t.Fatal("miss after insert")
	}
	// Evict from L1 by filling 8 other entries in its set (64-entry 8-way =
	// 8 sets; same set means same low 3 bits of the key).
	for i := uint64(1); i <= 8; i++ {
		tl.Insert(7+i*8, Page4K, 1, nil)
	}
	if !tl.LookupVA(mem.FromVPN(7), 1, nil) {
		t.Fatal("entry lost from L2 as well")
	}
	if tl.L1Misses == 0 {
		t.Fatal("expected at least one L1 miss")
	}
	if tl.L2Misses != 0 {
		t.Fatalf("unexpected L2 misses: %d", tl.L2Misses)
	}
}

func TestTwoLevelMissCounting(t *testing.T) {
	tl := NewTwoLevel(false)
	for i := uint64(0); i < 100; i++ {
		tl.LookupVA(mem.FromVPN(i), 0, nil)
	}
	if tl.Accesses != 100 || tl.L2Misses != 100 {
		t.Fatalf("accesses=%d l2misses=%d", tl.Accesses, tl.L2Misses)
	}
	if tl.MissRatio() != 1.0 {
		t.Fatalf("MissRatio = %v", tl.MissRatio())
	}
	empty := NewTwoLevel(false)
	if empty.MissRatio() != 0 {
		t.Fatal("MissRatio of unused TLB not 0")
	}
}

func TestTwoLevelHugeRefill(t *testing.T) {
	// A 2 MB entry inserted after a walk must hit through LookupVA for any
	// address inside the large page.
	tl := NewTwoLevel(false)
	va := mem.VirtAddr(5 * mem.HugeSize)
	tl.InsertVA(va, true, 9, nil)
	if !tl.LookupVA(va+mem.VirtAddr(123*mem.PageSize), 9, nil) {
		t.Fatal("2M entry missed inside its page")
	}
	if tl.LookupVA(va+mem.VirtAddr(mem.HugeSize), 9, nil) {
		t.Fatal("2M entry hit outside its page")
	}
}

func TestPageNumber(t *testing.T) {
	va := mem.VirtAddr(3*mem.HugeSize + 5*mem.PageSize + 17)
	if PageNumber(va, Page4K) != uint64(va)>>mem.PageShift {
		t.Fatal("4K page number")
	}
	if PageNumber(va, Page2M) != 3 {
		t.Fatal("2M page number")
	}
}

func TestClusteredCoalescesContiguous(t *testing.T) {
	c := NewClustered(64, 4)
	// Perfectly clustered mapping: pfn = vpn (identity).
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	c.Insert(0, 8, Page4K, 8, identity)
	// All 8 pages of the cluster [8,16) must now hit.
	for vpn := uint64(8); vpn < 16; vpn++ {
		if !c.Lookup(0, vpn, Page4K) {
			t.Fatalf("clustered page %d missed", vpn)
		}
	}
	if c.Lookup(0, 16, Page4K) {
		t.Fatal("page outside the cluster hit")
	}
	if c.Coalesced() != 7 {
		t.Fatalf("Coalesced = %d, want 7", c.Coalesced())
	}
}

func TestClusteredScatteredDegenerates(t *testing.T) {
	c := NewClustered(64, 4)
	// Scattered mapping: each vpn maps to a far-apart frame.
	scattered := func(vpn uint64) (uint64, bool) { return vpn * 1000, true }
	c.Insert(0, 8, Page4K, 8000, scattered)
	if !c.Lookup(0, 8, Page4K) {
		t.Fatal("triggering page missed")
	}
	for vpn := uint64(9); vpn < 16; vpn++ {
		if c.Lookup(0, vpn, Page4K) {
			t.Fatalf("scattered neighbour %d wrongly coalesced", vpn)
		}
	}
	if c.Coalesced() != 0 {
		t.Fatalf("Coalesced = %d, want 0", c.Coalesced())
	}
}

func TestClusteredPartialCluster(t *testing.T) {
	c := NewClustered(64, 4)
	// Half the cluster is physically contiguous with the trigger, half not.
	mapping := func(vpn uint64) (uint64, bool) {
		if vpn < 12 {
			return vpn, true // frames 8..11: cluster 1
		}
		return vpn + 8000, true
	}
	c.Insert(0, 8, Page4K, 8, mapping)
	for vpn := uint64(8); vpn < 12; vpn++ {
		if !c.Lookup(0, vpn, Page4K) {
			t.Fatalf("contiguous page %d missed", vpn)
		}
	}
	for vpn := uint64(12); vpn < 16; vpn++ {
		if c.Lookup(0, vpn, Page4K) {
			t.Fatalf("non-contiguous page %d hit", vpn)
		}
	}
}

func TestClusteredUnmappedNeighbors(t *testing.T) {
	c := NewClustered(64, 4)
	mapping := func(vpn uint64) (uint64, bool) {
		if vpn == 9 {
			return 0, false // hole in the cluster
		}
		return vpn, true
	}
	c.Insert(0, 8, Page4K, 8, mapping)
	if c.Lookup(0, 9, Page4K) {
		t.Fatal("unmapped neighbour wrongly present")
	}
	if !c.Lookup(0, 10, Page4K) {
		t.Fatal("mapped neighbour missing")
	}
}

func TestClusteredNilNeighbors(t *testing.T) {
	c := NewClustered(64, 4)
	c.Insert(0, 20, Page4K, 77, nil)
	if !c.Lookup(0, 20, Page4K) {
		t.Fatal("triggering page missed with nil neighbour probe")
	}
	if c.Lookup(0, 21, Page4K) {
		t.Fatal("neighbour hit without probe")
	}
}

func TestClusteredIgnoresLargePages(t *testing.T) {
	c := NewClustered(64, 4)
	c.Insert(0, 5, Page2M, 5, nil)
	if c.Lookup(0, 5, Page2M) {
		t.Fatal("clustered TLB should not hold 2M entries")
	}
}

func TestClusteredEvictionLRU(t *testing.T) {
	c := NewClustered(4, 4) // one set
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	for i := uint64(0); i < 4; i++ {
		c.Insert(0, i*8, Page4K, i*8, identity)
	}
	c.Lookup(0, 0, Page4K) // cluster 0 becomes MRU
	c.Insert(0, 100*8, Page4K, 800, identity)
	if !c.Lookup(0, 0, Page4K) {
		t.Fatal("MRU cluster evicted")
	}
	if c.Lookup(0, 8, Page4K) {
		t.Fatal("LRU cluster survived")
	}
}

func TestClusteredSameVClusterNewPCluster(t *testing.T) {
	c := NewClustered(64, 4)
	c.Insert(0, 8, Page4K, 8, func(vpn uint64) (uint64, bool) { return vpn, true })
	// Remap: same virtual cluster now points somewhere else entirely.
	c.Insert(0, 9, Page4K, 9000, func(vpn uint64) (uint64, bool) {
		if vpn == 9 {
			return 9000, true
		}
		return vpn, true
	})
	if !c.Lookup(0, 9, Page4K) {
		t.Fatal("new mapping missing")
	}
	if c.Lookup(0, 8, Page4K) {
		t.Fatal("stale physical cluster contents survived remap")
	}
}

func TestClusteredReachExceedsConventional(t *testing.T) {
	// With perfectly contiguous mappings, a clustered TLB of equal entry
	// count must achieve a higher hit rate over a working set 4× its entry
	// count.
	conv := New(64, 4)
	clus := NewClustered(64, 4)
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	miss := func(u Unit) int {
		misses := 0
		for pass := 0; pass < 4; pass++ {
			for vpn := uint64(0); vpn < 256; vpn++ {
				if !u.Lookup(0, vpn, Page4K) {
					misses++
					u.Insert(0, vpn, Page4K, vpn, identity)
				}
			}
		}
		return misses
	}
	if cm, km := miss(conv), miss(clus); km >= cm {
		t.Fatalf("clustered misses %d not below conventional %d", km, cm)
	}
}

func TestClusteredPropertyLookupOnlyInsertedClusters(t *testing.T) {
	c := NewClustered(256, 4)
	inserted := map[uint64]bool{}
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	f := func(raw uint64) bool {
		vpn := raw % (1 << 16)
		c.Insert(0, vpn, Page4K, vpn, identity)
		inserted[vpn/ClusterSpan] = true
		// Any hit must belong to an inserted cluster.
		probe := raw % (1 << 17)
		if c.Lookup(0, probe, Page4K) && !inserted[probe/ClusterSpan] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
