package tlb

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
)

// This file checks the ASID tag packing differentially, in the style of
// internal/pt/differential_test.go: refTwoLevel is a faithful copy of the
// pre-ASID (seed) two-level TLB — untagged keys, same geometry, same LRU —
// and every test drives it in lockstep with the tagged implementation at
// ASID 0. Single-process runs only ever use ASID 0, so the tagged TLB must
// match the untagged one lookup-for-lookup and counter-for-counter; that is
// the micro-level half of the Processes=1 byte-identical guarantee (the
// macro half is the experiment goldens).

// refUnit mirrors the seed's set-associative TLB over untagged keys: an
// exact reimplementation of cache.SetAssoc true-LRU semantics specialised to
// the historical key encoding pageNum<<1|class.
type refUnit struct {
	sets    int
	ways    int
	setMask uint64
	tags    []uint64
	age     []uint64
	valid   []bool
	clock   uint64
}

func newRefUnit(entries, ways int) *refUnit {
	return &refUnit{
		sets:    entries / ways,
		ways:    ways,
		setMask: uint64(entries/ways - 1),
		tags:    make([]uint64, entries),
		age:     make([]uint64, entries),
		valid:   make([]bool, entries),
	}
}

func (u *refUnit) lookup(pageNum uint64, class PageClass) bool {
	k := pageNum<<1 | uint64(class)
	base := int(k&u.setMask) * u.ways
	for w := 0; w < u.ways; w++ {
		i := base + w
		if u.valid[i] && u.tags[i] == k {
			u.clock++
			u.age[i] = u.clock
			return true
		}
	}
	return false
}

func (u *refUnit) insert(pageNum uint64, class PageClass) {
	k := pageNum<<1 | uint64(class)
	base := int(k&u.setMask) * u.ways
	u.clock++
	victim := base
	for w := 0; w < u.ways; w++ {
		i := base + w
		if u.valid[i] && u.tags[i] == k {
			u.age[i] = u.clock
			return
		}
		if !u.valid[i] {
			victim = i
			break
		}
		if u.age[i] < u.age[victim] {
			victim = i
		}
	}
	u.tags[victim] = k
	u.age[victim] = u.clock
	u.valid[victim] = true
}

func (u *refUnit) flush() {
	for i := range u.valid {
		u.valid[i] = false
	}
}

// refTwoLevel replays the seed's TwoLevel.LookupVA/InsertVA logic over two
// refUnits.
type refTwoLevel struct {
	l1, l2                       *refUnit
	accesses, l1Misses, l2Misses uint64
}

func newRefTwoLevel() *refTwoLevel {
	return &refTwoLevel{l1: newRefUnit(64, 8), l2: newRefUnit(1536, 6)}
}

func (t *refTwoLevel) lookupVA(va mem.VirtAddr) bool {
	t.accesses++
	k4, k2 := PageNumber(va, Page4K), PageNumber(va, Page2M)
	if t.l1.lookup(k4, Page4K) || t.l1.lookup(k2, Page2M) {
		return true
	}
	t.l1Misses++
	if t.l2.lookup(k4, Page4K) {
		t.l1.insert(k4, Page4K)
		return true
	}
	if t.l2.lookup(k2, Page2M) {
		t.l1.insert(k2, Page2M)
		return true
	}
	t.l2Misses++
	return false
}

func (t *refTwoLevel) insertVA(va mem.VirtAddr, huge bool) {
	if huge {
		t.l1.insert(PageNumber(va, Page2M), Page2M)
		t.l2.insert(PageNumber(va, Page2M), Page2M)
		return
	}
	t.l1.insert(PageNumber(va, Page4K), Page4K)
	t.l2.insert(PageNumber(va, Page4K), Page4K)
}

func (t *refTwoLevel) flush() {
	t.l1.flush()
	t.l2.flush()
}

// TestDifferentialTaggedMatchesUntagged drives the tagged TwoLevel at ASID 0
// and the untagged reference through randomized op streams — miss-and-fill
// lookups over mixed 4K/2M pages, dense and sparse regions, occasional full
// flushes — asserting identical hit/miss outcomes on every single operation
// and identical counters at every checkpoint.
func TestDifferentialTaggedMatchesUntagged(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 0xdead} {
		tagged := NewTwoLevel(false)
		ref := newRefTwoLevel()
		s := rng.New(seed)
		for op := 0; op < 60_000; op++ {
			var va mem.VirtAddr
			switch s.Uint64n(4) {
			case 0: // dense region: heavy set conflicts
				va = mem.FromVPN(s.Uint64n(4096))
			case 1: // sparse 48-bit tails
				va = mem.VirtAddr(s.Uint64n(1 << 47))
			case 2: // hot cluster
				va = mem.FromVPN(1<<30 + s.Uint64n(64))
			default: // 2 MB-aligned area
				va = mem.VirtAddr(s.Uint64n(2048) * mem.HugeSize)
			}
			if s.Bool(0.002) {
				tagged.Flush()
				ref.flush()
				continue
			}
			gotHit := tagged.LookupVA(va, 0, nil)
			wantHit := ref.lookupVA(va)
			if gotHit != wantHit {
				t.Fatalf("seed %d op %d va %#x: tagged hit=%v untagged hit=%v", seed, op, va, gotHit, wantHit)
			}
			if !gotHit {
				huge := s.Bool(0.1)
				tagged.InsertVA(va, huge, 0, nil)
				ref.insertVA(va, huge)
			}
		}
		if tagged.Accesses != ref.accesses || tagged.L1Misses != ref.l1Misses || tagged.L2Misses != ref.l2Misses {
			t.Fatalf("seed %d: counters diverged: tagged %d/%d/%d untagged %d/%d/%d",
				seed, tagged.Accesses, tagged.L1Misses, tagged.L2Misses,
				ref.accesses, ref.l1Misses, ref.l2Misses)
		}
	}
}

// TestASIDIsolation checks the tagging semantics the differential test
// cannot see: entries are private per ASID, survive other processes'
// switches, and die to targeted shootdowns only.
func TestASIDIsolation(t *testing.T) {
	tl := NewTwoLevel(false)
	va := mem.FromVPN(77)
	tl.SetASID(1)
	tl.InsertVA(va, false, 9, nil)
	if !tl.LookupVA(va, 9, nil) {
		t.Fatal("ASID 1 lost its own entry")
	}
	tl.SetASID(2)
	if tl.LookupVA(va, 9, nil) {
		t.Fatal("ASID 2 hit ASID 1's entry")
	}
	tl.InsertVA(va, false, 10, nil)
	tl.SetASID(1)
	if !tl.LookupVA(va, 9, nil) {
		t.Fatal("ASID 1's entry did not survive ASID 2's fill of the same page")
	}
	if n := tl.FlushASID(2); n == 0 {
		t.Fatal("shootdown of ASID 2 invalidated nothing")
	}
	if !tl.LookupVA(va, 9, nil) {
		t.Fatal("shootdown of ASID 2 killed ASID 1's entry")
	}
	if n := tl.FlushASID(1); n == 0 {
		t.Fatal("shootdown of ASID 1 invalidated nothing")
	}
	if tl.LookupVA(va, 9, nil) {
		t.Fatal("entry survived its own ASID's shootdown")
	}
	if tl.Flushes != 2 || tl.ShotDown == 0 {
		t.Fatalf("flush accounting: Flushes=%d ShotDown=%d", tl.Flushes, tl.ShotDown)
	}
}

// TestFlushCounting checks the satellite contract: Flushes increments on
// both full flushes and shootdowns, so mid-window invalidations are
// observable next to the untouched access counters.
func TestFlushCounting(t *testing.T) {
	tl := NewTwoLevel(false)
	tl.InsertVA(mem.FromVPN(1), false, 0, nil)
	tl.LookupVA(mem.FromVPN(1), 0, nil)
	tl.Flush()
	tl.FlushASID(0)
	if tl.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", tl.Flushes)
	}
	if tl.Accesses != 1 {
		t.Fatalf("flush disturbed access counters: %d", tl.Accesses)
	}
}

// TestClusteredASID mirrors the isolation test for the coalescing TLB.
func TestClusteredASID(t *testing.T) {
	c := NewClustered(64, 4)
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	c.Insert(1, 8, Page4K, 8, identity)
	if !c.Lookup(1, 8, Page4K) || c.Lookup(2, 8, Page4K) {
		t.Fatal("clustered entries not ASID-private")
	}
	if n := c.FlushASID(1); n == 0 {
		t.Fatal("clustered shootdown invalidated nothing")
	}
	if c.Lookup(1, 8, Page4K) {
		t.Fatal("clustered entry survived its shootdown")
	}
}

// TestClusteredRemapAcrossShootdownHole reproduces the mid-set-hole hazard:
// after a shootdown frees an earlier way, a remap of a cluster resident
// beyond the hole must still take the adopt path — the stale physical view
// must not survive in a later way while the new one lands in the hole.
func TestClusteredRemapAcrossShootdownHole(t *testing.T) {
	c := NewClustered(4, 4) // one set
	identity := func(vpn uint64) (uint64, bool) { return vpn, true }
	c.Insert(1, 8, Page4K, 8, identity) // way 0: ASID 1
	c.Insert(2, 8, Page4K, 8, identity) // way 1: ASID 2, same cluster
	if n := c.FlushASID(1); n == 0 {
		t.Fatal("shootdown invalidated nothing")
	}
	// Remap ASID 2's cluster to a different physical cluster.
	c.Insert(2, 9, Page4K, 9000, func(vpn uint64) (uint64, bool) {
		if vpn == 9 {
			return 9000, true
		}
		return vpn, true
	})
	if !c.Lookup(2, 9, Page4K) {
		t.Fatal("new mapping missing after remap across the hole")
	}
	if c.Lookup(2, 8, Page4K) {
		t.Fatal("stale physical cluster view survived a remap across a shootdown hole")
	}
}
