// Package tlb models translation lookaside buffers: the two-level TLB of the
// paper's Table 5 (64-entry 8-way L1, 1536-entry 6-way L2) with 4 KB and 2 MB
// entries, and the Clustered TLB of §5.4.1 (Pham et al., HPCA'14) that
// coalesces up to 8 translations into one entry.
package tlb

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// PageClass distinguishes base-page from large-page TLB entries.
type PageClass int

// Supported page classes.
const (
	Page4K PageClass = iota
	Page2M
)

// ASIDShift is the tag bit where the address-space identifier starts. A
// 48-bit virtual address has at most a 36-bit 4 KB page number, so the packed
// page-number-and-class field below occupies under 38 bits and the ASID tag
// bits never collide with it. ASIDs must stay below 1<<23 so the packed tag
// cannot reach the all-ones invalid sentinel of the underlying arrays.
const ASIDShift = 40

// key encodes an address-space identifier, a page number and its class into a
// single tag. The class sits in the low bit so 4 KB and 2 MB entries of
// nearby addresses spread across sets; the ASID sits in the high bits so one
// structure can hold several address spaces' translations at once (tagged
// TLBs, as opposed to flush-on-switch). ASID 0 leaves the tag bit-identical
// to the historical untagged encoding.
func key(asid, pageNum uint64, class PageClass) uint64 {
	return asid<<ASIDShift | pageNum<<1 | uint64(class)
}

// NeighborFunc reports the physical frame mapping a virtual page, for the
// coalescing probe a Clustered TLB performs at fill time. ok is false for
// unmapped pages.
type NeighborFunc func(vpn uint64) (pfn uint64, ok bool)

// Unit is a single TLB structure. Entries are tagged by (asid, page, class);
// Insert receives the filled page's frame and a neighbour probe so coalescing
// TLBs can pack adjacent translations. FlushASID invalidates one address
// space's entries (a shootdown) and returns how many it dropped.
type Unit interface {
	Lookup(asid, pageNum uint64, class PageClass) bool
	Insert(asid, pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc)
	Flush()
	FlushASID(asid uint64) uint64
}

// TLB is a conventional set-associative TLB.
type TLB struct {
	arr *cache.SetAssoc
}

// New returns a TLB with the given entry count and associativity.
func New(entries, ways int) *TLB {
	return &TLB{arr: cache.NewSetAssoc(entries, ways)}
}

// Lookup implements Unit.
func (t *TLB) Lookup(asid, pageNum uint64, class PageClass) bool {
	return t.arr.Lookup(key(asid, pageNum, class))
}

// Insert implements Unit; a conventional TLB ignores the neighbour probe.
// The combined probe refreshes a resident entry or installs over the LRU way
// in a single set scan.
func (t *TLB) Insert(asid, pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc) {
	t.arr.LookupInsert(key(asid, pageNum, class))
}

// Flush implements Unit.
func (t *TLB) Flush() { t.arr.Flush() }

// asidMask selects the ASID bits of a packed tag.
const asidMask = ^uint64(1<<ASIDShift - 1)

// FlushASID implements Unit: it invalidates exactly the entries whose tag
// carries asid, leaving other address spaces' translations resident.
func (t *TLB) FlushASID(asid uint64) uint64 {
	return t.arr.FlushMask(asidMask, asid<<ASIDShift)
}

// TwoLevel is the L1 + L2 (STLB) arrangement of Table 5. An L2 hit refills
// the L1 entry. Entries are tagged with the current address-space identifier
// (SetASID), so several processes' translations can coexist; ASID 0 — the
// default, and the only value single-process runs ever use — produces tags
// identical to the untagged encoding.
type TwoLevel struct {
	L1 Unit
	L2 Unit

	Accesses uint64 // lookups performed
	L1Misses uint64
	L2Misses uint64 // misses in both levels (walk triggers)
	// Flushes counts invalidation events — full flushes and ASID shootdowns
	// alike — so callers can tell mid-window that entries (but not the access
	// counters) were cleared. ShotDown counts the entries FlushASID dropped.
	Flushes  uint64
	ShotDown uint64

	asid uint64 // tag of the currently running address space
}

// NewTwoLevel returns the paper's default TLB system: 64-entry 8-way L1 and
// a 1536-entry 6-way second level. If clusteredL2 is true the second level
// coalesces translations as in §5.4.1.
func NewTwoLevel(clusteredL2 bool) *TwoLevel {
	var l2 Unit
	if clusteredL2 {
		l2 = NewClustered(1536, 6)
	} else {
		l2 = New(1536, 6)
	}
	return &TwoLevel{L1: New(64, 8), L2: l2}
}

// SetASID switches the identifier tagging subsequent lookups and fills — the
// context-switch path of a tagged TLB, which retains the outgoing process's
// entries instead of flushing them. asid must stay below 1<<23 (see
// ASIDShift).
func (t *TwoLevel) SetASID(asid uint64) { t.asid = asid }

// ASID returns the identifier tagging subsequent lookups and fills.
func (t *TwoLevel) ASID() uint64 { return t.asid }

// Insert fills both levels after a successful walk.
func (t *TwoLevel) Insert(pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc) {
	t.L1.Insert(t.asid, pageNum, class, pfn, neighbors)
	t.L2.Insert(t.asid, pageNum, class, pfn, neighbors)
}

// LookupVA probes both page-size classes for va, counting a single TLB
// access and refilling L1 from L2 on an L2 hit. It returns false when both
// levels miss under both classes (a page walk is required). As in real
// hardware, the page size of a translation is unknown before the lookup, so
// every structure is checked (paper §2.5). This is the only lookup path:
// keeping a separate single-class probe alongside it would double-count
// accesses and misses if the two were ever mixed.
func (t *TwoLevel) LookupVA(va mem.VirtAddr, pfn uint64, neighbors NeighborFunc) bool {
	t.Accesses++
	k4, k2 := PageNumber(va, Page4K), PageNumber(va, Page2M)
	if t.L1.Lookup(t.asid, k4, Page4K) || t.L1.Lookup(t.asid, k2, Page2M) {
		return true
	}
	t.L1Misses++
	if t.L2.Lookup(t.asid, k4, Page4K) {
		t.L1.Insert(t.asid, k4, Page4K, pfn, neighbors)
		return true
	}
	if t.L2.Lookup(t.asid, k2, Page2M) {
		t.L1.Insert(t.asid, k2, Page2M, pfn, nil)
		return true
	}
	t.L2Misses++
	return false
}

// InsertVA fills both levels after a walk that resolved va, under the page
// size the walk discovered.
func (t *TwoLevel) InsertVA(va mem.VirtAddr, huge bool, pfn uint64, neighbors NeighborFunc) {
	if huge {
		t.Insert(PageNumber(va, Page2M), Page2M, pfn, nil)
		return
	}
	t.Insert(PageNumber(va, Page4K), Page4K, pfn, neighbors)
}

// Flush empties both levels — the context-switch path of an untagged TLB.
// The access counters are untouched; Flushes records that entries vanished
// mid-window so callers can account for the refill misses that follow.
func (t *TwoLevel) Flush() {
	t.L1.Flush()
	t.L2.Flush()
	t.Flushes++
}

// FlushASID drops one address space's entries from both levels (a TLB
// shootdown — process exit, ASID recycling) and returns how many entries it
// invalidated, which also accumulates in ShotDown.
func (t *TwoLevel) FlushASID(asid uint64) uint64 {
	n := t.L1.FlushASID(asid) + t.L2.FlushASID(asid)
	t.Flushes++
	t.ShotDown += n
	return n
}

// MissRatio returns the fraction of lookups that missed both levels.
func (t *TwoLevel) MissRatio() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.L2Misses) / float64(t.Accesses)
}

// PageNumber returns the page number of va under class.
func PageNumber(va mem.VirtAddr, class PageClass) uint64 {
	if class == Page2M {
		return uint64(va) >> mem.HugeShift
	}
	return va.VPN()
}
