// Package tlb models translation lookaside buffers: the two-level TLB of the
// paper's Table 5 (64-entry 8-way L1, 1536-entry 6-way L2) with 4 KB and 2 MB
// entries, and the Clustered TLB of §5.4.1 (Pham et al., HPCA'14) that
// coalesces up to 8 translations into one entry.
package tlb

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// PageClass distinguishes base-page from large-page TLB entries.
type PageClass int

// Supported page classes.
const (
	Page4K PageClass = iota
	Page2M
)

// key encodes a page number and its class into a single tag. The class sits
// in the low bit so 4 KB and 2 MB entries of nearby addresses spread across
// sets.
func key(pageNum uint64, class PageClass) uint64 {
	return pageNum<<1 | uint64(class)
}

// NeighborFunc reports the physical frame mapping a virtual page, for the
// coalescing probe a Clustered TLB performs at fill time. ok is false for
// unmapped pages.
type NeighborFunc func(vpn uint64) (pfn uint64, ok bool)

// Unit is a single TLB structure. Insert receives the filled page's frame and
// a neighbour probe so coalescing TLBs can pack adjacent translations.
type Unit interface {
	Lookup(pageNum uint64, class PageClass) bool
	Insert(pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc)
	Flush()
}

// TLB is a conventional set-associative TLB.
type TLB struct {
	arr *cache.SetAssoc
}

// New returns a TLB with the given entry count and associativity.
func New(entries, ways int) *TLB {
	return &TLB{arr: cache.NewSetAssoc(entries, ways)}
}

// Lookup implements Unit.
func (t *TLB) Lookup(pageNum uint64, class PageClass) bool {
	return t.arr.Lookup(key(pageNum, class))
}

// Insert implements Unit; a conventional TLB ignores the neighbour probe.
// The combined probe refreshes a resident entry or installs over the LRU way
// in a single set scan.
func (t *TLB) Insert(pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc) {
	t.arr.LookupInsert(key(pageNum, class))
}

// Flush implements Unit.
func (t *TLB) Flush() { t.arr.Flush() }

// TwoLevel is the L1 + L2 (STLB) arrangement of Table 5. An L2 hit refills
// the L1 entry.
type TwoLevel struct {
	L1 Unit
	L2 Unit

	Accesses uint64 // lookups performed
	L1Misses uint64
	L2Misses uint64 // misses in both levels (walk triggers)
}

// NewTwoLevel returns the paper's default TLB system: 64-entry 8-way L1 and
// a 1536-entry 6-way second level. If clusteredL2 is true the second level
// coalesces translations as in §5.4.1.
func NewTwoLevel(clusteredL2 bool) *TwoLevel {
	var l2 Unit
	if clusteredL2 {
		l2 = NewClustered(1536, 6)
	} else {
		l2 = New(1536, 6)
	}
	return &TwoLevel{L1: New(64, 8), L2: l2}
}

// Insert fills both levels after a successful walk.
func (t *TwoLevel) Insert(pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc) {
	t.L1.Insert(pageNum, class, pfn, neighbors)
	t.L2.Insert(pageNum, class, pfn, neighbors)
}

// LookupVA probes both page-size classes for va, counting a single TLB
// access and refilling L1 from L2 on an L2 hit. It returns false when both
// levels miss under both classes (a page walk is required). As in real
// hardware, the page size of a translation is unknown before the lookup, so
// every structure is checked (paper §2.5). This is the only lookup path:
// keeping a separate single-class probe alongside it would double-count
// accesses and misses if the two were ever mixed.
func (t *TwoLevel) LookupVA(va mem.VirtAddr, pfn uint64, neighbors NeighborFunc) bool {
	t.Accesses++
	k4, k2 := PageNumber(va, Page4K), PageNumber(va, Page2M)
	if t.L1.Lookup(k4, Page4K) || t.L1.Lookup(k2, Page2M) {
		return true
	}
	t.L1Misses++
	if t.L2.Lookup(k4, Page4K) {
		t.L1.Insert(k4, Page4K, pfn, neighbors)
		return true
	}
	if t.L2.Lookup(k2, Page2M) {
		t.L1.Insert(k2, Page2M, pfn, nil)
		return true
	}
	t.L2Misses++
	return false
}

// InsertVA fills both levels after a walk that resolved va, under the page
// size the walk discovered.
func (t *TwoLevel) InsertVA(va mem.VirtAddr, huge bool, pfn uint64, neighbors NeighborFunc) {
	if huge {
		t.Insert(PageNumber(va, Page2M), Page2M, pfn, nil)
		return
	}
	t.Insert(PageNumber(va, Page4K), Page4K, pfn, neighbors)
}

// Flush empties both levels (context switch).
func (t *TwoLevel) Flush() {
	t.L1.Flush()
	t.L2.Flush()
}

// MissRatio returns the fraction of lookups that missed both levels.
func (t *TwoLevel) MissRatio() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.L2Misses) / float64(t.Accesses)
}

// PageNumber returns the page number of va under class.
func PageNumber(va mem.VirtAddr, class PageClass) uint64 {
	if class == Page2M {
		return uint64(va) >> mem.HugeShift
	}
	return va.VPN()
}
