package tlb

// ClusterSpan is the coalescing factor of the Clustered TLB: one entry covers
// an aligned group of 8 virtual pages (paper §5.4.1: "coalesces up to 8 PTEs
// into 1 TLB entry").
const ClusterSpan = 8

// Clustered is a coalescing TLB after Pham et al. (HPCA'14). Each entry is
// tagged by an aligned 8-page virtual cluster and holds the translations of
// every page in the cluster whose frame falls in one aligned 8-frame physical
// cluster. Workloads whose data enjoys physical contiguity therefore see up
// to 8× the reach; scattered mappings degenerate to one page per entry.
type Clustered struct {
	sets    int
	ways    int
	setMask uint64
	tags    []uint64 // virtual cluster number
	pbase   []uint64 // physical cluster number the sub-entries share
	valid   []uint8  // per-sub-page validity bitmap; 0 = invalid entry
	age     []uint64
	clock   uint64

	coalesced uint64 // translations packed beyond the triggering one
}

// NewClustered returns a clustered TLB with the given entry count and
// associativity.
func NewClustered(entries, ways int) *Clustered {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: bad clustered geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("tlb: clustered set count not a power of two")
	}
	return &Clustered{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		pbase:   make([]uint64, entries),
		valid:   make([]uint8, entries),
		age:     make([]uint64, entries),
	}
}

// ctag packs the address-space identifier with the virtual cluster number.
// A 36-bit page number yields a 33-bit cluster, so the ASID bits (ASIDShift
// and up) never collide with it; ASID 0 reproduces the untagged encoding.
func ctag(asid, cluster uint64) uint64 {
	return asid<<ASIDShift | cluster
}

// Lookup implements Unit. Large pages are not clustered; they miss here so a
// conventional structure can back them (the simulator only uses clustered
// TLBs in 4 KB configurations, as the paper does).
func (c *Clustered) Lookup(asid, pageNum uint64, class PageClass) bool {
	if class != Page4K {
		return false
	}
	cluster := pageNum / ClusterSpan
	sub := uint(pageNum % ClusterSpan)
	tag := ctag(asid, cluster)
	base := int(cluster&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] != 0 && c.tags[i] == tag && c.valid[i]>>sub&1 == 1 {
			c.clock++
			c.age[i] = c.clock
			return true
		}
	}
	return false
}

// Insert implements Unit. It probes the 8 pages of the cluster through
// neighbors and packs every translation that lands in the same physical
// cluster as the triggering page.
func (c *Clustered) Insert(asid, pageNum uint64, class PageClass, pfn uint64, neighbors NeighborFunc) {
	if class != Page4K {
		return
	}
	cluster := pageNum / ClusterSpan
	pcluster := pfn / ClusterSpan
	var bits uint8
	if neighbors != nil {
		first := cluster * ClusterSpan
		for s := uint64(0); s < ClusterSpan; s++ {
			npfn, ok := neighbors(first + s)
			if ok && npfn/ClusterSpan == pcluster {
				bits |= 1 << s
			}
		}
	}
	bits |= 1 << (pageNum % ClusterSpan) // the triggering page always fits
	if n := popcount8(bits); n > 1 {
		c.coalesced += uint64(n - 1)
	}

	tag := ctag(asid, cluster)
	base := int(cluster&c.setMask) * c.ways
	c.clock++
	// Scan the whole set even past invalid ways: FlushASID can leave holes
	// mid-set, and a resident same-tag entry beyond a hole must take the
	// adopt-the-new-view path below, never be duplicated into the hole.
	// Without holes (invalid ways are a fill-order suffix), preferring the
	// first invalid way reproduces the historical break-at-first-invalid
	// victim exactly.
	victim := -1
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] != 0 && c.tags[i] == tag {
			// Same virtual cluster resident: adopt the new physical cluster
			// view (a different physical cluster replaces the old contents).
			if c.pbase[i] == pcluster {
				c.valid[i] |= bits
			} else {
				c.pbase[i] = pcluster
				c.valid[i] = bits
			}
			c.age[i] = c.clock
			return
		}
		if c.valid[i] == 0 {
			if victim < 0 || c.valid[victim] != 0 {
				victim = i
			}
			continue
		}
		if victim < 0 || (c.valid[victim] != 0 && c.age[i] < c.age[victim]) {
			victim = i
		}
	}
	c.tags[victim] = tag
	c.pbase[victim] = pcluster
	c.valid[victim] = bits
	c.age[victim] = c.clock
}

// Flush implements Unit.
func (c *Clustered) Flush() {
	for i := range c.valid {
		c.valid[i] = 0
	}
}

// FlushASID implements Unit: it invalidates the clusters tagged with asid and
// returns how many packed translations were dropped.
func (c *Clustered) FlushASID(asid uint64) uint64 {
	var n uint64
	for i := range c.valid {
		if c.valid[i] != 0 && c.tags[i]>>ASIDShift == asid {
			n += uint64(popcount8(c.valid[i]))
			c.valid[i] = 0
		}
	}
	return n
}

// Coalesced returns how many extra translations were packed alongside
// triggering fills — a direct measure of exploitable contiguity.
func (c *Clustered) Coalesced() uint64 { return c.coalesced }

func popcount8(b uint8) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
