// Package pwc models the split page-walk caches of the paper's Table 5: tiny
// dedicated structures caching page-table entries of the upper levels so the
// hardware walker can skip the top of the radix tree. Configuration follows
// Intel Core i7-style split PWCs: 2 fully associative entries caching PL4
// entries, 4 caching PL3 entries, and a 32-entry 4-way array caching PL2
// entries, with a 2-cycle access.
//
// Under virtualization the walker instantiates two PWCs: one keyed by guest
// virtual addresses for the guest page table and one keyed by guest-physical
// addresses for the host page table (Table 5: "one dedicated PWC for guest
// PT, one for host PT").
package pwc

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/pt"
)

// Config sizes the three structures.
type Config struct {
	PL4Entries int // fully associative
	PL3Entries int // fully associative
	PL2Entries int
	PL2Ways    int
	Latency    int // lookup latency in cycles
}

// DefaultConfig returns the paper's Table 5 configuration.
func DefaultConfig() Config {
	return Config{PL4Entries: 2, PL3Entries: 4, PL2Entries: 32, PL2Ways: 4, Latency: 2}
}

// Scale returns the configuration with every capacity multiplied by f — used
// by the PWC-sizing ablation of §5.1.1 ("doubling the capacity of each PWC
// ... provides a negligible page walk latency reduction").
func (c Config) Scale(f int) Config {
	c.PL4Entries *= f
	c.PL3Entries *= f
	c.PL2Entries *= f
	return c
}

// PWC is a split page-walk cache. An entry in the level-L structure caches
// the PL(L) page-table entry for a VA prefix, letting the walker resume at
// level L-1. Like the TLBs, entries are tagged with the current
// address-space identifier (SetASID): PWC entries are virtually indexed, so
// without a tag two processes mapping the same VA range would falsely share
// partial walks. ASID 0 — the only value single-process runs use — keeps tags
// identical to the untagged encoding.
type PWC struct {
	cfg     Config
	byLevel [3]*cache.SetAssoc // index 0 → caches PL2 entries, 1 → PL3, 2 → PL4
	hits    [6]uint64
	misses  uint64
	asid    uint64
}

// New returns a PWC with the given configuration.
func New(cfg Config) *PWC {
	p := &PWC{cfg: cfg}
	p.byLevel[0] = cache.NewSetAssoc(cfg.PL2Entries, cfg.PL2Ways)
	p.byLevel[1] = cache.NewSetAssoc(cfg.PL3Entries, cfg.PL3Entries) // fully assoc
	p.byLevel[2] = cache.NewSetAssoc(cfg.PL4Entries, cfg.PL4Entries) // fully assoc
	return p
}

// Latency returns the lookup cost in cycles.
func (p *PWC) Latency() int { return p.cfg.Latency }

// asidShift is the tag bit where the address-space identifier starts. The
// longest VA prefix cached is a PL2 tag (48-bit VA >> 21 → 27 bits), so ASID
// bits at 40 and up never collide with any prefix.
const asidShift = 40

// SetASID switches the identifier tagging subsequent lookups and fills (the
// context-switch path of a tagged PWC). asid must stay below 1<<23 so tags
// cannot reach the underlying arrays' invalid sentinel.
func (p *PWC) SetASID(asid uint64) { p.asid = asid }

// tag returns the key identifying the PL(level) entry on va's path: the VA
// bits above the span that the entry points to, tagged with the current
// address space.
func (p *PWC) tag(va mem.VirtAddr, level int) uint64 {
	return p.asid<<asidShift | uint64(va)>>pt.SpanShift(level-1)
}

// Lookup returns the level at which the walker must resume its memory
// accesses after consulting the PWC: a PL2-entry hit resumes at level 1, a
// PL3-entry hit at level 2, a PL4-entry hit at level 3, and a full miss at
// rootLevel (4 or 5; entries above PL4 are not cached, matching real
// hardware). Lookups favour the deepest (longest-prefix) hit.
func (p *PWC) Lookup(va mem.VirtAddr, rootLevel int) int {
	for i := 0; i < 3; i++ {
		level := 2 + i
		if p.byLevel[i].Lookup(p.tag(va, level)) {
			p.hits[level]++
			return level - 1
		}
	}
	p.misses++
	return rootLevel
}

// Insert caches the PL(level) entry on va's path; levels outside {2,3,4} are
// ignored. The walker calls this for every interior entry it reads; a
// combined probe refreshes an already-cached entry or installs it in one set
// scan.
func (p *PWC) Insert(va mem.VirtAddr, level int) {
	if level < 2 || level > 4 {
		return
	}
	p.byLevel[level-2].LookupInsert(p.tag(va, level))
}

// Flush invalidates all three structures.
func (p *PWC) Flush() {
	for _, c := range p.byLevel {
		c.Flush()
	}
}

// Hits returns the number of lookups resolved by the level-L structure.
func (p *PWC) Hits(level int) uint64 {
	if level < 2 || level > 4 {
		return 0
	}
	return p.hits[level]
}

// Misses returns the number of lookups that hit no structure.
func (p *PWC) Misses() uint64 { return p.misses }
