package pwc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/pt"
)

func TestLookupMissStartsAtRoot(t *testing.T) {
	p := New(DefaultConfig())
	if got := p.Lookup(0x1234000, 4); got != 4 {
		t.Fatalf("cold lookup = %d, want 4", got)
	}
	if got := p.Lookup(0x1234000, 5); got != 5 {
		t.Fatalf("cold 5-level lookup = %d, want 5", got)
	}
	if p.Misses() != 2 {
		t.Fatalf("Misses = %d", p.Misses())
	}
}

func TestLookupDeepestHitWins(t *testing.T) {
	p := New(DefaultConfig())
	va := mem.VirtAddr(uint64(3)<<pt.SpanShift(2) | uint64(5)<<pt.SpanShift(1))
	p.Insert(va, 4)
	p.Insert(va, 3)
	p.Insert(va, 2)
	if got := p.Lookup(va, 4); got != 1 {
		t.Fatalf("lookup with PL2 entry cached = %d, want resume at 1", got)
	}
	if p.Hits(2) != 1 {
		t.Fatalf("Hits(2) = %d", p.Hits(2))
	}
}

func TestLookupPartialHits(t *testing.T) {
	p := New(DefaultConfig())
	va := mem.VirtAddr(uint64(7) << pt.SpanShift(3))
	p.Insert(va, 4)
	if got := p.Lookup(va, 4); got != 3 {
		t.Fatalf("PL4-entry hit should resume at 3, got %d", got)
	}
	p.Insert(va, 3)
	if got := p.Lookup(va, 4); got != 2 {
		t.Fatalf("PL3-entry hit should resume at 2, got %d", got)
	}
}

func TestTagGranularity(t *testing.T) {
	p := New(DefaultConfig())
	va := mem.VirtAddr(0)
	p.Insert(va, 2) // caches the PL2 entry for the first 2 MB span
	// Another address in the same 2 MB span shares the PL2 entry.
	if got := p.Lookup(va+mem.VirtAddr(mem.HugeSize-1), 4); got != 1 {
		t.Fatalf("same-span lookup = %d, want 1", got)
	}
	// The next 2 MB span uses a different PL2 entry but the same PL3/PL4
	// entries; with only the PL2 entry cached it must miss entirely.
	if got := p.Lookup(va+mem.VirtAddr(mem.HugeSize), 4); got != 4 {
		t.Fatalf("next-span lookup = %d, want 4", got)
	}
}

func TestInsertIgnoresLeafAndOutOfRange(t *testing.T) {
	p := New(DefaultConfig())
	p.Insert(0, 1) // leaf entries are TLB territory, not PWC
	p.Insert(0, 5) // PL5 entries not cached
	if got := p.Lookup(0, 5); got != 5 {
		t.Fatalf("lookup after ignored inserts = %d, want 5", got)
	}
}

func TestCapacityEviction(t *testing.T) {
	p := New(DefaultConfig()) // PL4 structure: 2 entries fully associative
	for i := uint64(0); i < 3; i++ {
		p.Insert(mem.VirtAddr(i<<pt.SpanShift(3)), 4)
	}
	hits := 0
	for i := uint64(0); i < 3; i++ {
		if p.Lookup(mem.VirtAddr(i<<pt.SpanShift(3)), 4) == 3 {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("PL4 structure held %d of 3 entries, want 2", hits)
	}
}

func TestFlush(t *testing.T) {
	p := New(DefaultConfig())
	p.Insert(0, 2)
	p.Flush()
	if got := p.Lookup(0, 4); got != 4 {
		t.Fatalf("lookup after flush = %d", got)
	}
}

func TestScale(t *testing.T) {
	c := DefaultConfig().Scale(2)
	if c.PL4Entries != 4 || c.PL3Entries != 8 || c.PL2Entries != 64 || c.PL2Ways != 4 {
		t.Fatalf("scaled config = %+v", c)
	}
	p := New(c)
	// Now 4 PL4 entries fit.
	for i := uint64(0); i < 4; i++ {
		p.Insert(mem.VirtAddr(i<<pt.SpanShift(3)), 4)
	}
	for i := uint64(0); i < 4; i++ {
		if p.Lookup(mem.VirtAddr(i<<pt.SpanShift(3)), 4) != 3 {
			t.Fatalf("scaled PL4 structure lost entry %d", i)
		}
	}
}

func TestHitsAccessorBounds(t *testing.T) {
	p := New(DefaultConfig())
	if p.Hits(1) != 0 || p.Hits(5) != 0 {
		t.Fatal("out-of-range Hits not zero")
	}
	if p.Latency() != 2 {
		t.Fatalf("Latency = %d", p.Latency())
	}
}
