package pt

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newScatterTable(t *testing.T, cfg Config) *Table {
	t.Helper()
	tbl, err := New(cfg, NewScatterAlloc(0, 1<<24, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestWalkDepth(t *testing.T) {
	for _, levels := range []int{4, 5} {
		tbl := newScatterTable(t, Config{Levels: levels, LeafLevel: 1})
		va := mem.VirtAddr(123 * mem.PageSize)
		tbl.EnsurePage(va)
		r := tbl.Walk(va)
		if r.N != levels {
			t.Fatalf("levels=%d: walk performed %d accesses", levels, r.N)
		}
		if !r.Present {
			t.Fatalf("levels=%d: mapped page reported absent", levels)
		}
		if r.Entries[0].Level != levels || r.Entries[r.N-1].Level != 1 {
			t.Fatalf("levels=%d: walk order %v", levels, r.Entries[:r.N])
		}
		if r.TermLevel != 1 || r.Huge {
			t.Fatalf("levels=%d: TermLevel=%d Huge=%v", levels, r.TermLevel, r.Huge)
		}
	}
}

func TestWalkFaultDepth(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	// Nothing mapped: the walk reads the root entry, finds it absent.
	r := tbl.Walk(mem.VirtAddr(42 * mem.PageSize))
	if r.Present || r.N != 1 || r.TermLevel != 4 {
		t.Fatalf("fresh-table walk: %+v", r)
	}
	// Map a page; an unmapped sibling under the same PL1 node faults at PL1.
	tbl.EnsurePage(0)
	r = tbl.Walk(mem.VirtAddr(5 * mem.PageSize))
	if r.Present || r.N != 4 || r.TermLevel != 1 {
		t.Fatalf("sibling fault walk: %+v", r)
	}
	// An unmapped address under a different PL2 entry faults at PL2.
	r = tbl.Walk(mem.VirtAddr(uint64(1) << SpanShift(1)))
	if r.Present || r.TermLevel != 2 {
		t.Fatalf("pl2 fault walk: %+v", r)
	}
}

func TestEntryAddrsDistinctPerLevel(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	va := mem.VirtAddr(77 * mem.PageSize)
	tbl.EnsurePage(va)
	r := tbl.Walk(va)
	seen := map[mem.PhysAddr]bool{}
	for _, e := range r.Entries[:r.N] {
		if seen[e.EntryAddr] {
			t.Fatalf("duplicate entry address %#x", uint64(e.EntryAddr))
		}
		seen[e.EntryAddr] = true
	}
}

func TestEntryAddr(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	va := mem.VirtAddr(3 << SpanShift(1)) // start of the 4th PL1 node span
	tbl.EnsurePage(va)
	r := tbl.Walk(va)
	for _, e := range r.Entries[:r.N] {
		got, ok := tbl.EntryAddr(va, e.Level)
		if !ok || got != e.EntryAddr {
			t.Fatalf("EntryAddr(level %d) = %#x,%v; walk saw %#x", e.Level, uint64(got), ok, uint64(e.EntryAddr))
		}
	}
	if _, ok := tbl.EntryAddr(mem.VirtAddr(uint64(9)<<SpanShift(2)), 1); ok {
		t.Fatal("EntryAddr found a path that does not exist")
	}
}

func TestHugeMapping(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	va := mem.VirtAddr(uint64(5) << SpanShift(1)) // some 2 MB-aligned address
	tbl.EnsureHuge(va)
	r := tbl.Walk(va + 12345)
	if !r.Present || !r.Huge || r.TermLevel != 2 || r.N != 3 {
		t.Fatalf("huge walk: %+v", r)
	}
	// A neighbouring 2 MB region is not mapped.
	r = tbl.Walk(va + mem.VirtAddr(uint64(1)<<SpanShift(1)))
	if r.Present {
		t.Fatal("unmapped neighbour reported present")
	}
}

func TestHugeLeafTable(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 2})
	end := mem.VirtAddr(uint64(10) << SpanShift(1))
	tbl.PopulateRange(0, end)
	r := tbl.Walk(mem.VirtAddr(3 << SpanShift(1)))
	if !r.Present || !r.Huge || r.N != 3 || r.TermLevel != 2 {
		t.Fatalf("2MB-leaf walk: %+v", r)
	}
	if tbl.NodeCount(1) != 0 {
		t.Fatalf("2MB-leaf table created %d PL1 nodes", tbl.NodeCount(1))
	}
	assertPanics(t, "EnsureHuge on 2MB-leaf table", func() { tbl.EnsureHuge(0) })
}

func TestPopulateRangeDense(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	pages := uint64(3*mem.NodeSpan + 17) // 3 full leaf nodes + partial
	tbl.PopulateRange(0, mem.FromVPN(pages))
	if got := tbl.NodeCount(1); got != 4 {
		t.Fatalf("PL1 node count = %d, want 4", got)
	}
	for vpn := uint64(0); vpn < pages; vpn += 7 {
		if !tbl.Present(mem.FromVPN(vpn)) {
			t.Fatalf("page %d absent after dense populate", vpn)
		}
	}
	if tbl.Present(mem.FromVPN(pages)) {
		t.Fatal("page beyond range present")
	}
}

func TestPopulateRangeUnalignedStart(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	start := mem.FromVPN(100) // inside the first leaf node
	end := mem.FromVPN(600)   // inside the second
	tbl.PopulateRange(start, end)
	if tbl.Present(mem.FromVPN(99)) || !tbl.Present(mem.FromVPN(100)) ||
		!tbl.Present(mem.FromVPN(599)) || tbl.Present(mem.FromVPN(600)) {
		t.Fatal("unaligned populate range boundaries wrong")
	}
}

func TestPopulateSpread(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	const total, resident = 10000, 3000
	tbl.PopulateSpread(0, total, resident)
	// Every spread VPN must be present; counts must match exactly.
	count := 0
	for vpn := uint64(0); vpn < total; vpn++ {
		if tbl.Present(mem.FromVPN(vpn)) {
			count++
		}
	}
	if count != resident {
		t.Fatalf("present pages = %d, want %d", count, resident)
	}
	for i := uint64(0); i < resident; i += 13 {
		vpn := SpreadVPN(0, total, resident, i)
		if !tbl.Present(mem.FromVPN(vpn)) {
			t.Fatalf("spread page %d (vpn %d) absent", i, vpn)
		}
	}
}

func TestPopulateSpreadDenseFastPath(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	tbl.PopulateSpread(0, 1024, 1024)
	if got := tbl.NodeCount(1); got != 2 {
		t.Fatalf("dense spread created %d PL1 nodes, want 2", got)
	}
	if !tbl.Present(mem.FromVPN(1023)) {
		t.Fatal("dense spread missing last page")
	}
}

func TestSpreadVPNMonotoneInjective(t *testing.T) {
	f := func(rawT, rawR uint16) bool {
		total := uint64(rawT)%5000 + 10
		resident := uint64(rawR)%total + 1
		prev := uint64(0)
		for i := uint64(0); i < resident; i++ {
			v := SpreadVPN(7, total, resident, i)
			if v < 7 || v >= 7+total {
				return false
			}
			if i > 0 && v <= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCounts(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	// 1 GiB dense: 512 PL1 nodes, 1 PL2 node, 1 PL3, 1 PL4(root).
	tbl.PopulateRange(0, mem.VirtAddr(mem.GiB))
	if tbl.NodeCount(1) != 512 || tbl.NodeCount(2) != 1 || tbl.NodeCount(3) != 1 || tbl.NodeCount(4) != 1 {
		t.Fatalf("node counts: %d/%d/%d/%d", tbl.NodeCount(1), tbl.NodeCount(2), tbl.NodeCount(3), tbl.NodeCount(4))
	}
	if tbl.TotalNodes() != 515 {
		t.Fatalf("TotalNodes = %d, want 515", tbl.TotalNodes())
	}
	if got := len(tbl.AllFrames()); got != 515 {
		t.Fatalf("AllFrames = %d", got)
	}
	if got := len(tbl.FramesAt(1)); got != 512 {
		t.Fatalf("FramesAt(1) = %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{Levels: 3, LeafLevel: 1}, {Levels: 4, LeafLevel: 0}, {Levels: 6, LeafLevel: 1}, {Levels: 4, LeafLevel: 3}}
	for _, c := range bad {
		if _, err := New(c, NewScatterAlloc(0, 1<<20, 1), false); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
}

func TestPropertyWalkPresentMatchesEnsure(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	mapped := map[uint64]bool{}
	f := func(raw uint64, doMap bool) bool {
		vpn := raw % (1 << 22)
		if doMap {
			tbl.EnsurePage(mem.FromVPN(vpn))
			mapped[vpn] = true
		}
		return tbl.Present(mem.FromVPN(vpn)) == mapped[vpn]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEntryAddrWithinNodePage(t *testing.T) {
	tbl := newScatterTable(t, Config{Levels: 4, LeafLevel: 1})
	f := func(raw uint64) bool {
		vpn := raw % (1 << 24)
		va := mem.FromVPN(vpn)
		tbl.EnsurePage(va)
		r := tbl.Walk(va)
		for _, e := range r.Entries[:r.N] {
			off := uint64(e.EntryAddr) % mem.PageSize
			if off%mem.PTEBytes != 0 {
				return false
			}
		}
		return r.Present
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
