package pt

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// ScatterAlloc places page-table nodes at pseudo-randomly scattered frames —
// the paper's baseline model of a buddy-allocated page table ("randomly
// scattering the PT pages across the host physical memory", §4). It is the
// fast stand-in for BuddyAlloc when only cache behaviour matters.
type ScatterAlloc struct {
	s *mem.Scatter
}

// NewScatterAlloc returns a scatter placement over span frames at base.
func NewScatterAlloc(base mem.Frame, span, seed uint64) *ScatterAlloc {
	return &ScatterAlloc{s: mem.NewScatter(base, span, seed)}
}

// AllocPTFrame implements Allocator.
func (a *ScatterAlloc) AllocPTFrame(level int, firstVA mem.VirtAddr) mem.Frame {
	return a.s.Alloc()
}

// BuddyAlloc places page-table nodes with a real buddy allocator, modelling
// the lazy-touch allocation history of a running process: most node
// allocations extend a short contiguous run (page faults arriving in bursts
// reuse adjacent buddy blocks), and runs break when interleaved data-page
// allocations consume the neighbourhood. MeanRunLen controls the expected
// run length and therefore Table 2's "contiguous physical regions" count
// (regions ≈ nodes / MeanRunLen).
type BuddyAlloc struct {
	B           *mem.Buddy
	MeanRunLen  float64 // expected contiguous PT-page run length (≥ 1)
	DataPerNode int     // order-9 data blocks consumed at each run break
	rng         *rng.Stream
	prev        mem.Frame
	havePrev    bool
	pool        []mem.Frame // live order-9 data blocks available to churn
}

// NewBuddyAlloc returns a buddy placement drawing run-break decisions from
// seed.
func NewBuddyAlloc(b *mem.Buddy, meanRunLen float64, dataPerNode int, seed uint64) *BuddyAlloc {
	if meanRunLen < 1 {
		meanRunLen = 1
	}
	return &BuddyAlloc{B: b, MeanRunLen: meanRunLen, DataPerNode: dataPerNode, rng: rng.New(seed)}
}

// AllocPTFrame implements Allocator.
func (a *BuddyAlloc) AllocPTFrame(level int, firstVA mem.VirtAddr) mem.Frame {
	if a.havePrev && !a.rng.Bool(1/a.MeanRunLen) {
		// Continue the current run if the adjacent frame is free.
		next := a.prev + 1
		if err := a.B.AllocAt(next, 0); err == nil {
			a.prev = next
			return next
		}
	}
	// Run break. First consume the data-page allocations that arrived since
	// the last page-table page, then model ambient churn: a previously
	// allocated data block is freed elsewhere in memory, so the LIFO free
	// list hands the next page out at an unrelated address — this is exactly
	// the behaviour that scatters page-table pages on a live system.
	for i := 0; i < a.DataPerNode; i++ {
		f, err := a.B.Alloc(mem.NodeShift)
		if err != nil {
			break
		}
		a.pool = append(a.pool, f)
	}
	if len(a.pool) > 1 {
		k := a.rng.Intn(len(a.pool))
		freed := a.pool[k]
		a.B.Free(freed, mem.NodeShift)
		a.pool[k] = a.pool[len(a.pool)-1]
		a.pool = a.pool[:len(a.pool)-1]
		if err := a.B.AllocAt(freed, 0); err == nil {
			a.prev = freed
			a.havePrev = true
			return freed
		}
	}
	f, err := a.B.AllocPage()
	if err != nil {
		panic("pt: buddy allocator exhausted placing page-table node")
	}
	a.prev = f
	a.havePrev = true
	return f
}

// Region is a contiguous, virtually sorted physical region holding all the
// page-table nodes of one level for one VMA — the OS-side structure ASAP
// introduces (paper §3.3). Node k of the level (counting spans from VAStart's
// span) lives at frame Base+k.
type Region struct {
	Level   int
	VAStart mem.VirtAddr // start of the covered VA range (span-aligned down)
	VAEnd   mem.VirtAddr
	Base    mem.Frame
}

// NodesFor returns how many level-`level` nodes are needed to cover the VMA
// [start, end).
func NodesFor(level int, start, end mem.VirtAddr) uint64 {
	span := uint64(1) << SpanShift(level)
	first := uint64(start) &^ (span - 1)
	last := (uint64(end) - 1) &^ (span - 1)
	return (last-first)/span + 1
}

// FrameFor returns the region frame backing the node that covers va.
func (r *Region) FrameFor(va mem.VirtAddr) mem.Frame {
	span := uint64(1) << SpanShift(r.Level)
	first := uint64(r.VAStart) &^ (span - 1)
	return r.Base + mem.Frame((uint64(va)-first)/span)
}

// Contains reports whether va falls in a node span covered by the region.
// The first node's span is aligned down from VAStart, so addresses slightly
// below VAStart (within that first span) are still covered.
func (r *Region) Contains(va mem.VirtAddr) bool {
	span := uint64(1) << SpanShift(r.Level)
	first := mem.VirtAddr(uint64(r.VAStart) &^ (span - 1))
	return va >= first && va < r.VAEnd
}

// SortedAlloc implements ASAP's placement policy: nodes of registered
// (VMA, level) pairs go to their slot in the corresponding sorted region;
// everything else (and a configurable fraction of "holes", §3.7.2) falls back
// to a scattered allocation. Holes model pinned pages that prevented the OS
// from keeping the region contiguous; walks through them are correct but not
// accelerated.
type SortedAlloc struct {
	Regions  []*Region
	Fallback Allocator
	HoleProb float64
	rng      *rng.Stream
	holes    map[holeKey]bool
	holeN    uint64
}

type holeKey struct {
	level int
	va    mem.VirtAddr
}

// NewSortedAlloc returns an ASAP placement with the given per-node hole
// probability, falling back to fallback for unregistered nodes and holes.
func NewSortedAlloc(fallback Allocator, holeProb float64, seed uint64) *SortedAlloc {
	return &SortedAlloc{
		Fallback: fallback,
		HoleProb: holeProb,
		rng:      rng.New(seed),
		holes:    make(map[holeKey]bool),
	}
}

// AddRegion registers a sorted region.
func (a *SortedAlloc) AddRegion(r *Region) { a.Regions = append(a.Regions, r) }

// AllocPTFrame implements Allocator.
func (a *SortedAlloc) AllocPTFrame(level int, firstVA mem.VirtAddr) mem.Frame {
	for _, r := range a.Regions {
		if r.Level != level || !r.Contains(firstVA) {
			continue
		}
		if a.HoleProb > 0 && a.rng.Bool(a.HoleProb) {
			a.holes[holeKey{level, firstVA}] = true
			a.holeN++
			return a.Fallback.AllocPTFrame(level, firstVA)
		}
		return r.FrameFor(firstVA)
	}
	return a.Fallback.AllocPTFrame(level, firstVA)
}

// IsHole reports whether the node at level covering va was displaced from its
// region slot.
func (a *SortedAlloc) IsHole(level int, va mem.VirtAddr) bool {
	span := uint64(1) << SpanShift(level)
	return a.holes[holeKey{level, mem.VirtAddr(uint64(va) &^ (span - 1))}]
}

// Holes returns the number of displaced nodes.
func (a *SortedAlloc) Holes() uint64 { return a.holeN }
