// Package pt implements the x86-64 radix-tree page table that the paper's
// page walks traverse: 4-level (48-bit VA) and 5-level (57-bit VA) trees with
// 512-entry nodes, 8-byte PTEs, lazy and bulk population, 2 MB large pages,
// and pluggable placement of page-table node frames in physical memory.
//
// Placement is the heart of the reproduction: the baseline system scatters
// page-table pages across physical memory (as the Linux buddy allocator
// does), while ASAP's modified OS lays the PL1/PL2 node pages of each
// registered VMA out contiguously and sorted by virtual address, enabling
// base-plus-offset prefetch (paper §3.3). Both policies implement Allocator.
//
// The tree is stored arena-style: all nodes live in one []node slice and
// refer to each other through int32 indices into dense 512-slot child tables,
// so a walk step is two slice loads (child table, node) instead of a map
// probe and a pointer chase, and building a table allocates a handful of
// growing slices instead of one heap object per node.
package pt

import (
	"fmt"

	"repro/internal/mem"
)

// Config selects the tree geometry.
type Config struct {
	// Levels is the depth of the radix tree: 4 (today's x86-64) or 5 (the
	// 57-bit extension of paper §2.6/§3.5).
	Levels int
	// LeafLevel is the level whose entries map pages: 1 for 4 KB pages, 2
	// when the whole table uses 2 MB pages (e.g. a hypervisor EPT, Fig 12).
	LeafLevel int
}

// Validate reports whether the configuration is supported.
func (c Config) Validate() error {
	if c.Levels != 4 && c.Levels != 5 {
		return fmt.Errorf("pt: unsupported depth %d", c.Levels)
	}
	if c.LeafLevel != 1 && c.LeafLevel != 2 {
		return fmt.Errorf("pt: unsupported leaf level %d", c.LeafLevel)
	}
	return nil
}

// SpanShift returns log2 of the VA bytes covered by a single node at level.
// A PL1 node covers 2 MB (shift 21), a PL2 node 1 GB (shift 30), and so on.
func SpanShift(level int) uint {
	return uint(mem.PageShift + mem.NodeShift*level)
}

// indexAt returns the 9-bit radix index of va at the given level.
func indexAt(va mem.VirtAddr, level int) int {
	return int(uint64(va) >> (mem.PageShift + mem.NodeShift*uint(level-1)) & (mem.NodeSpan - 1))
}

// Allocator supplies physical frames for new page-table nodes. firstVA is the
// start of the VA span the node covers, which sorted-region allocators use to
// compute the node's slot.
type Allocator interface {
	AllocPTFrame(level int, firstVA mem.VirtAddr) mem.Frame
}

// node is one page of the radix tree, held in the table's node arena.
type node struct {
	level int8
	full  bool      // leaf node: all 512 entries present
	frame mem.Frame // physical page backing this node
	// kids is the start of this node's 512-slot child table in Table.kids
	// (interior nodes), or -1 for leaf nodes. A slot holds the arena index of
	// the child, with 0 meaning absent (the root is index 0 and is never a
	// child).
	kids int32
	// bits indexes Table.bitmaps, or -1 when unset. For a leaf node it is the
	// partial presence bitmap; for a level-2 interior node it marks entries
	// that map 2 MB pages directly. A node is never both, so one field
	// suffices.
	bits int32
}

func bitGet(b *[8]uint64, i int) bool { return b[i>>6]>>(uint(i)&63)&1 == 1 }
func bitSet(b *[8]uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// Table is a radix-tree page table.
type Table struct {
	cfg       Config
	alloc     Allocator
	nodes     []node      // arena; index 0 is the root
	kids      []int32     // dense child tables, mem.NodeSpan slots per interior node
	bitmaps   [][8]uint64 // presence / huge bitmaps
	nodeCount [6]uint64
	frames    [6][]mem.Frame
	keepStats bool
}

// New returns an empty table. If keepStats is true the table records the
// frame of every node per level for Table 2 statistics (costs memory
// proportional to the node count).
func New(cfg Config, alloc Allocator, keepStats bool) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg, alloc: alloc, keepStats: keepStats}
	t.newNode(cfg.Levels, 0)
	return t, nil
}

// Config returns the tree geometry.
func (t *Table) Config() Config { return t.cfg }

// emptyKids is the zeroed child table appended for each new interior node.
var emptyKids [mem.NodeSpan]int32

// newNode allocates a node page at level covering the span beginning at
// firstVA, returning its arena index.
func (t *Table) newNode(level int, firstVA mem.VirtAddr) int32 {
	n := node{level: int8(level), frame: t.alloc.AllocPTFrame(level, firstVA), kids: -1, bits: -1}
	if level > t.cfg.LeafLevel {
		n.kids = int32(len(t.kids))
		t.kids = append(t.kids, emptyKids[:]...)
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	t.nodeCount[level]++
	if t.keepStats {
		t.frames[level] = append(t.frames[level], n.frame)
	}
	return idx
}

// ensureBits returns the bitmap of the node at arena index ni, allocating it
// on first use. The pointer is only valid until the next bitmap allocation.
func (t *Table) ensureBits(ni int32) *[8]uint64 {
	if t.nodes[ni].bits < 0 {
		t.nodes[ni].bits = int32(len(t.bitmaps))
		t.bitmaps = append(t.bitmaps, [8]uint64{})
	}
	return &t.bitmaps[t.nodes[ni].bits]
}

// ensureNode returns the arena index of the node at the given level on va's
// path, creating missing interior nodes.
func (t *Table) ensureNode(va mem.VirtAddr, level int) int32 {
	ni := int32(0)
	for l := t.cfg.Levels; l > level; l-- {
		if t.nodes[ni].kids < 0 {
			// A leaf above the requested level: descending would index some
			// other node's child table. The pointer layout failed fast here
			// (nil-map write); keep that property.
			panic("pt: ensureNode descended into a leaf node")
		}
		slot := int(t.nodes[ni].kids) + indexAt(va, l)
		child := t.kids[slot]
		if child == 0 {
			span := mem.VirtAddr(uint64(va) &^ (uint64(1)<<SpanShift(l-1) - 1))
			child = t.newNode(l-1, span)
			t.kids[slot] = child
		}
		ni = child
	}
	return ni
}

// EnsurePage marks the page containing va present, creating the node path.
func (t *Table) EnsurePage(va mem.VirtAddr) {
	leaf := t.ensureNode(va, t.cfg.LeafLevel)
	if t.nodes[leaf].full {
		return
	}
	bitSet(t.ensureBits(leaf), indexAt(va, t.cfg.LeafLevel))
}

// EnsureHuge maps the 2 MB page containing va with a level-2 large-page
// entry. Valid only on 4 KB-leaf tables (mixing sizes as §3.5 describes).
func (t *Table) EnsureHuge(va mem.VirtAddr) {
	if t.cfg.LeafLevel != 1 {
		panic("pt: EnsureHuge on a table whose leaf level is already 2")
	}
	ni := t.ensureNode(va, 2)
	bitSet(t.ensureBits(ni), indexAt(va, 2))
}

// Present reports whether va is mapped (by a base page or a large page).
func (t *Table) Present(va mem.VirtAddr) bool {
	r := t.Walk(va)
	return r.Present
}

// EntryRef identifies one page-walk access: the PT level and the physical
// address of the 8-byte entry read at that level.
type EntryRef struct {
	Level     int
	EntryAddr mem.PhysAddr
}

// WalkResult describes the accesses a hardware walk of va performs, from the
// root level down to the terminal entry.
type WalkResult struct {
	Entries   [5]EntryRef // Entries[:N], root level first
	N         int
	Present   bool // terminal entry maps a page
	Huge      bool // terminal entry is a 2 MB large-page mapping
	TermLevel int  // level of the terminal entry
}

// Walk simulates the radix traversal for va. Every entry the hardware walker
// would read is reported, including the final not-present entry on a fault
// (paper §3.7.1: walks that fault still perform their accesses).
func (t *Table) Walk(va mem.VirtAddr) WalkResult {
	var r WalkResult
	nodes := t.nodes
	kids := t.kids
	n := &nodes[0]
	for l := t.cfg.Levels; ; l-- {
		idx := indexAt(va, l)
		r.Entries[r.N] = EntryRef{Level: l, EntryAddr: n.frame.Addr() + mem.PhysAddr(idx*mem.PTEBytes)}
		r.N++
		r.TermLevel = l
		if l == t.cfg.LeafLevel {
			r.Present = n.full || (n.bits >= 0 && bitGet(&t.bitmaps[n.bits], idx))
			r.Huge = t.cfg.LeafLevel == 2
			return r
		}
		if l == 2 && n.bits >= 0 && bitGet(&t.bitmaps[n.bits], idx) {
			r.Present = true
			r.Huge = true
			return r
		}
		child := kids[int(n.kids)+idx]
		if child == 0 {
			return r // fault: entry read, found not present
		}
		n = &nodes[child]
	}
}

// EntryAddr returns the physical address of the entry at the given level on
// va's existing path, or false if the path does not reach that level.
func (t *Table) EntryAddr(va mem.VirtAddr, level int) (mem.PhysAddr, bool) {
	n := &t.nodes[0]
	for l := t.cfg.Levels; l >= level; l-- {
		idx := indexAt(va, l)
		if l == level {
			return n.frame.Addr() + mem.PhysAddr(idx*mem.PTEBytes), true
		}
		if n.kids < 0 {
			return 0, false // leaf reached above the requested level
		}
		child := t.kids[int(n.kids)+idx]
		if child == 0 {
			return 0, false
		}
		n = &t.nodes[child]
	}
	return 0, false
}

// NodeCount returns the number of node pages at level.
func (t *Table) NodeCount(level int) uint64 { return t.nodeCount[level] }

// TotalNodes returns the total page count of the table — Table 2's "PT page
// count" statistic.
func (t *Table) TotalNodes() uint64 {
	var total uint64
	for _, c := range t.nodeCount {
		total += c
	}
	return total
}

// FramesAt returns the recorded node frames at level (empty unless the table
// was created with keepStats).
func (t *Table) FramesAt(level int) []mem.Frame { return t.frames[level] }

// AllFrames returns the recorded frames of every node in the table.
func (t *Table) AllFrames() []mem.Frame {
	var all []mem.Frame
	for _, fs := range t.frames {
		all = append(all, fs...)
	}
	return all
}
