package pt

import (
	"fmt"

	"repro/internal/mem"
)

// PopulateRange marks every page in [start, end) present, creating the node
// path. Fully covered leaf nodes are marked full without a bitmap, so dense
// population costs time and memory proportional to the node count, not the
// page count. start and end must be page aligned with start < end.
func (t *Table) PopulateRange(start, end mem.VirtAddr) {
	if start.PageOffset() != 0 || end.PageOffset() != 0 || start >= end {
		panic(fmt.Sprintf("pt: invalid populate range [%#x, %#x)", uint64(start), uint64(end)))
	}
	leafSpan := uint64(1) << SpanShift(t.cfg.LeafLevel)
	pageShift := SpanShift(t.cfg.LeafLevel - 1)
	for va := uint64(start); va < uint64(end); {
		nodeStart := va &^ (leafSpan - 1)
		nodeEnd := nodeStart + leafSpan
		leaf := t.ensureNode(mem.VirtAddr(va), t.cfg.LeafLevel)
		if va == nodeStart && nodeEnd <= uint64(end) {
			// full dominates in Walk/Present, so any earlier partial bitmap is
			// left in place — resetting bits would orphan its arena slot.
			t.nodes[leaf].full = true
			va = nodeEnd
			continue
		}
		stop := nodeEnd
		if uint64(end) < stop {
			stop = uint64(end)
		}
		if !t.nodes[leaf].full {
			bits := t.ensureBits(leaf)
			for p := va; p < stop; p += 1 << pageShift {
				bitSet(bits, indexAt(mem.VirtAddr(p), t.cfg.LeafLevel))
			}
		}
		va = stop
	}
}

// SpreadVPN returns the virtual page number of the i-th resident page when
// resident pages are spread evenly over total pages starting at startVPN.
// This Bresenham-style mapping is shared between population (here) and the
// workload generators, guaranteeing they agree on which pages exist.
func SpreadVPN(startVPN, total, resident, i uint64) uint64 {
	if i >= resident || resident > total {
		panic("pt: SpreadVPN index out of range")
	}
	return startVPN + i*total/resident
}

// SpreadIndex inverts SpreadVPN: given a page offset (in pages from the range
// start), it returns the resident index mapping there, or false if the spread
// leaves that page unmapped.
func SpreadIndex(total, resident, offset uint64) (uint64, bool) {
	if offset >= total || resident == 0 || resident > total {
		return 0, false
	}
	i := (offset*resident + total - 1) / total
	if i < resident && i*total/resident == offset {
		return i, true
	}
	return 0, false
}

// PopulateSpread marks resident pages present, spread evenly over the total
// pages beginning at start. It visits each leaf node once and sets presence
// bits in bulk, so the cost is O(resident + nodes).
func (t *Table) PopulateSpread(start mem.VirtAddr, total, resident uint64) {
	if resident == 0 || resident > total {
		panic(fmt.Sprintf("pt: invalid spread %d of %d", resident, total))
	}
	if t.cfg.LeafLevel != 1 {
		panic("pt: PopulateSpread requires 4 KB leaf level")
	}
	if resident == total {
		t.PopulateRange(start, start+mem.VirtAddr(total*mem.PageSize))
		return
	}
	startVPN := start.VPN()
	// Resident page i lives at VPN startVPN + i*total/resident. Iterate leaf
	// nodes; for each, find the i-range landing inside it.
	i := uint64(0)
	for i < resident {
		vpn := startVPN + i*total/resident
		nodeFirst := vpn &^ (mem.NodeSpan - 1)
		leaf := t.ensureNode(mem.FromVPN(vpn), 1)
		full := t.nodes[leaf].full
		var bits *[8]uint64
		if !full {
			// ensureBits may grow the bitmap arena, but nothing below
			// allocates until the next outer iteration, so the pointer stays
			// valid for this node's whole bit run.
			bits = t.ensureBits(leaf)
		}
		nodeLimit := nodeFirst + mem.NodeSpan
		for ; i < resident; i++ {
			v := startVPN + i*total/resident
			if v >= nodeLimit {
				break
			}
			if !full {
				bitSet(bits, int(v&(mem.NodeSpan-1)))
			}
		}
	}
}
