package pt

import (
	"fmt"

	"repro/internal/mem"
)

// PopulateRange marks every page in [start, end) present, creating the node
// path. Fully covered leaf nodes are marked full without a bitmap, so dense
// population costs time and memory proportional to the node count, not the
// page count. start and end must be page aligned with start < end.
func (t *Table) PopulateRange(start, end mem.VirtAddr) {
	if start.PageOffset() != 0 || end.PageOffset() != 0 || start >= end {
		panic(fmt.Sprintf("pt: invalid populate range [%#x, %#x)", uint64(start), uint64(end)))
	}
	leafSpan := uint64(1) << SpanShift(t.cfg.LeafLevel)
	pageShift := SpanShift(t.cfg.LeafLevel - 1)
	for va := uint64(start); va < uint64(end); {
		nodeStart := va &^ (leafSpan - 1)
		nodeEnd := nodeStart + leafSpan
		leaf := t.ensureNode(mem.VirtAddr(va), t.cfg.LeafLevel)
		if va == nodeStart && nodeEnd <= uint64(end) {
			leaf.full = true
			leaf.present = nil
			va = nodeEnd
			continue
		}
		if leaf.present == nil && !leaf.full {
			leaf.present = new([8]uint64)
		}
		stop := nodeEnd
		if uint64(end) < stop {
			stop = uint64(end)
		}
		if !leaf.full {
			for p := va; p < stop; p += 1 << pageShift {
				bitSet(leaf.present, indexAt(mem.VirtAddr(p), t.cfg.LeafLevel))
			}
		}
		va = stop
	}
}

// SpreadVPN returns the virtual page number of the i-th resident page when
// resident pages are spread evenly over total pages starting at startVPN.
// This Bresenham-style mapping is shared between population (here) and the
// workload generators, guaranteeing they agree on which pages exist.
func SpreadVPN(startVPN, total, resident, i uint64) uint64 {
	if i >= resident || resident > total {
		panic("pt: SpreadVPN index out of range")
	}
	return startVPN + i*total/resident
}

// SpreadIndex inverts SpreadVPN: given a page offset (in pages from the range
// start), it returns the resident index mapping there, or false if the spread
// leaves that page unmapped.
func SpreadIndex(total, resident, offset uint64) (uint64, bool) {
	if offset >= total || resident == 0 || resident > total {
		return 0, false
	}
	i := (offset*resident + total - 1) / total
	if i < resident && i*total/resident == offset {
		return i, true
	}
	return 0, false
}

// PopulateSpread marks resident pages present, spread evenly over the total
// pages beginning at start. It visits each leaf node once and sets presence
// bits in bulk, so the cost is O(resident + nodes).
func (t *Table) PopulateSpread(start mem.VirtAddr, total, resident uint64) {
	if resident == 0 || resident > total {
		panic(fmt.Sprintf("pt: invalid spread %d of %d", resident, total))
	}
	if t.cfg.LeafLevel != 1 {
		panic("pt: PopulateSpread requires 4 KB leaf level")
	}
	if resident == total {
		t.PopulateRange(start, start+mem.VirtAddr(total*mem.PageSize))
		return
	}
	startVPN := start.VPN()
	// Resident page i lives at VPN startVPN + i*total/resident. Iterate leaf
	// nodes; for each, find the i-range landing inside it.
	i := uint64(0)
	for i < resident {
		vpn := startVPN + i*total/resident
		nodeFirst := vpn &^ (mem.NodeSpan - 1)
		leaf := t.ensureNode(mem.FromVPN(vpn), 1)
		if leaf.present == nil && !leaf.full {
			leaf.present = new([8]uint64)
		}
		nodeLimit := nodeFirst + mem.NodeSpan
		for ; i < resident; i++ {
			v := startVPN + i*total/resident
			if v >= nodeLimit {
				break
			}
			if !leaf.full {
				bitSet(leaf.present, int(v&(mem.NodeSpan-1)))
			}
		}
	}
}
