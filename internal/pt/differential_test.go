package pt

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
)

// This file is the structural-equivalence safety net for the arena-backed
// Table layout: refTable below is a faithful copy of the original
// pointer-and-map implementation (per-node heap objects, map[uint16]*refNode
// children), kept as the executable specification. Every scenario builds both
// layouts through the same operation sequence and identical allocators, then
// asserts that node counts, per-level frame lists, full walk access traces,
// EntryAddr and Present agree everywhere. Any arena bug that changes what a
// simulated walker would observe fails here with the first diverging VA.

type refNode struct {
	level    int8
	full     bool
	frame    mem.Frame
	children map[uint16]*refNode
	present  *[8]uint64
	huge     *[8]uint64
}

type refTable struct {
	cfg       Config
	alloc     Allocator
	root      *refNode
	nodeCount [6]uint64
	frames    [6][]mem.Frame
}

func newRefTable(cfg Config, alloc Allocator) *refTable {
	t := &refTable{cfg: cfg, alloc: alloc}
	t.root = t.newNode(cfg.Levels, 0)
	return t
}

func (t *refTable) newNode(level int, firstVA mem.VirtAddr) *refNode {
	n := &refNode{level: int8(level), frame: t.alloc.AllocPTFrame(level, firstVA)}
	if level > t.cfg.LeafLevel {
		n.children = make(map[uint16]*refNode)
	}
	t.nodeCount[level]++
	t.frames[level] = append(t.frames[level], n.frame)
	return n
}

func (t *refTable) ensureNode(va mem.VirtAddr, level int) *refNode {
	n := t.root
	for l := t.cfg.Levels; l > level; l-- {
		idx := uint16(indexAt(va, l))
		child := n.children[idx]
		if child == nil {
			span := mem.VirtAddr(uint64(va) &^ (uint64(1)<<SpanShift(l-1) - 1))
			child = t.newNode(l-1, span)
			n.children[idx] = child
		}
		n = child
	}
	return n
}

func (t *refTable) EnsurePage(va mem.VirtAddr) {
	leaf := t.ensureNode(va, t.cfg.LeafLevel)
	if leaf.full {
		return
	}
	if leaf.present == nil {
		leaf.present = new([8]uint64)
	}
	bitSet(leaf.present, indexAt(va, t.cfg.LeafLevel))
}

func (t *refTable) EnsureHuge(va mem.VirtAddr) {
	n := t.ensureNode(va, 2)
	if n.huge == nil {
		n.huge = new([8]uint64)
	}
	bitSet(n.huge, indexAt(va, 2))
}

func (t *refTable) PopulateRange(start, end mem.VirtAddr) {
	leafSpan := uint64(1) << SpanShift(t.cfg.LeafLevel)
	pageShift := SpanShift(t.cfg.LeafLevel - 1)
	for va := uint64(start); va < uint64(end); {
		nodeStart := va &^ (leafSpan - 1)
		nodeEnd := nodeStart + leafSpan
		leaf := t.ensureNode(mem.VirtAddr(va), t.cfg.LeafLevel)
		if va == nodeStart && nodeEnd <= uint64(end) {
			leaf.full = true
			leaf.present = nil
			va = nodeEnd
			continue
		}
		if leaf.present == nil && !leaf.full {
			leaf.present = new([8]uint64)
		}
		stop := nodeEnd
		if uint64(end) < stop {
			stop = uint64(end)
		}
		if !leaf.full {
			for p := va; p < stop; p += 1 << pageShift {
				bitSet(leaf.present, indexAt(mem.VirtAddr(p), t.cfg.LeafLevel))
			}
		}
		va = stop
	}
}

func (t *refTable) PopulateSpread(start mem.VirtAddr, total, resident uint64) {
	if resident == total {
		t.PopulateRange(start, start+mem.VirtAddr(total*mem.PageSize))
		return
	}
	startVPN := start.VPN()
	i := uint64(0)
	for i < resident {
		vpn := startVPN + i*total/resident
		nodeFirst := vpn &^ (mem.NodeSpan - 1)
		leaf := t.ensureNode(mem.FromVPN(vpn), 1)
		if leaf.present == nil && !leaf.full {
			leaf.present = new([8]uint64)
		}
		nodeLimit := nodeFirst + mem.NodeSpan
		for ; i < resident; i++ {
			v := startVPN + i*total/resident
			if v >= nodeLimit {
				break
			}
			if !leaf.full {
				bitSet(leaf.present, int(v&(mem.NodeSpan-1)))
			}
		}
	}
}

func (t *refTable) Walk(va mem.VirtAddr) WalkResult {
	var r WalkResult
	n := t.root
	for l := t.cfg.Levels; ; l-- {
		idx := indexAt(va, l)
		r.Entries[r.N] = EntryRef{Level: l, EntryAddr: n.frame.Addr() + mem.PhysAddr(idx*mem.PTEBytes)}
		r.N++
		r.TermLevel = l
		if l == t.cfg.LeafLevel {
			r.Present = n.full || (n.present != nil && bitGet(n.present, idx))
			r.Huge = t.cfg.LeafLevel == 2
			return r
		}
		if l == 2 && n.huge != nil && bitGet(n.huge, idx) {
			r.Present = true
			r.Huge = true
			return r
		}
		child := n.children[uint16(idx)]
		if child == nil {
			return r
		}
		n = child
	}
}

func (t *refTable) EntryAddr(va mem.VirtAddr, level int) (mem.PhysAddr, bool) {
	n := t.root
	for l := t.cfg.Levels; l >= level; l-- {
		idx := indexAt(va, l)
		if l == level {
			return n.frame.Addr() + mem.PhysAddr(idx*mem.PTEBytes), true
		}
		child := n.children[uint16(idx)]
		if child == nil {
			return 0, false
		}
		n = child
	}
	return 0, false
}

// tableOps is the population surface shared by both layouts.
type tableOps interface {
	EnsurePage(mem.VirtAddr)
	EnsureHuge(mem.VirtAddr)
	PopulateRange(start, end mem.VirtAddr)
	PopulateSpread(start mem.VirtAddr, total, resident uint64)
}

// diffScenario populates one table layout and returns the VAs worth probing.
type diffScenario struct {
	name     string
	cfg      Config
	populate func(tableOps) []mem.VirtAddr
}

// probesAround widens a set of interesting VAs with their unmapped
// neighbourhood: adjacent pages, node-span siblings and far-away addresses,
// so fault paths at every level are compared too.
func probesAround(vas []mem.VirtAddr) []mem.VirtAddr {
	var out []mem.VirtAddr
	for _, va := range vas {
		out = append(out, va,
			va+mem.PageSize, va-mem.PageSize,
			va+mem.VirtAddr(uint64(1)<<SpanShift(1)),
			va+mem.VirtAddr(uint64(1)<<SpanShift(2)),
			va+mem.VirtAddr(uint64(1)<<SpanShift(3)),
		)
	}
	return out
}

func TestDifferentialArenaMatchesPointerLayout(t *testing.T) {
	const allocSpan = 1 << 24
	scenarios := []diffScenario{
		{
			name: "dense-range-4level",
			cfg:  Config{Levels: 4, LeafLevel: 1},
			populate: func(tb tableOps) []mem.VirtAddr {
				end := mem.FromVPN(3*mem.NodeSpan + 17)
				tb.PopulateRange(0, end)
				return []mem.VirtAddr{0, mem.FromVPN(mem.NodeSpan), mem.FromVPN(3 * mem.NodeSpan), end, end + mem.PageSize}
			},
		},
		{
			name: "unaligned-range-4level",
			cfg:  Config{Levels: 4, LeafLevel: 1},
			populate: func(tb tableOps) []mem.VirtAddr {
				tb.PopulateRange(mem.FromVPN(100), mem.FromVPN(600))
				return []mem.VirtAddr{mem.FromVPN(99), mem.FromVPN(100), mem.FromVPN(511), mem.FromVPN(512), mem.FromVPN(599), mem.FromVPN(600)}
			},
		},
		{
			name: "sparse-spread-5level",
			cfg:  Config{Levels: 5, LeafLevel: 1},
			populate: func(tb tableOps) []mem.VirtAddr {
				// Start above the 48-bit boundary so PL5 indexing is exercised.
				start := mem.VirtAddr(uint64(3) << SpanShift(4))
				const total, resident = 100_000, 7_777
				tb.PopulateSpread(start, total, resident)
				vas := []mem.VirtAddr{start, 0, mem.FromVPN(5)}
				for i := uint64(0); i < resident; i += 391 {
					vas = append(vas, mem.FromVPN(SpreadVPN(start.VPN(), total, resident, i)))
				}
				return vas
			},
		},
		{
			name: "mixed-huge-and-base-4level",
			cfg:  Config{Levels: 4, LeafLevel: 1},
			populate: func(tb tableOps) []mem.VirtAddr {
				var vas []mem.VirtAddr
				for i := uint64(0); i < 20; i++ {
					huge := mem.VirtAddr(i * 3 * mem.HugeSize)
					base := mem.VirtAddr(i*7*mem.HugeSize + mem.HugeSize/2)
					tb.EnsureHuge(huge)
					tb.EnsurePage(base)
					vas = append(vas, huge, huge+12345, base)
				}
				return vas
			},
		},
		{
			name: "huge-leaf-table",
			cfg:  Config{Levels: 4, LeafLevel: 2},
			populate: func(tb tableOps) []mem.VirtAddr {
				end := mem.VirtAddr(uint64(10) << SpanShift(1))
				tb.PopulateRange(0, end)
				tb.PopulateRange(mem.VirtAddr(uint64(600)<<SpanShift(1)), mem.VirtAddr(uint64(601)<<SpanShift(1)))
				return []mem.VirtAddr{0, mem.VirtAddr(uint64(3) << SpanShift(1)), end, mem.VirtAddr(uint64(600) << SpanShift(1))}
			},
		},
		{
			name: "random-ops-4level",
			cfg:  Config{Levels: 4, LeafLevel: 1},
			populate: func(tb tableOps) []mem.VirtAddr {
				// The op stream must be identical for both layouts, so each
				// call re-derives it from the same fixed seed.
				s := rng.New(0xd1ff)
				var vas []mem.VirtAddr
				for i := 0; i < 2_000; i++ {
					va := mem.FromVPN(s.Uint64n(1 << 22))
					if s.Bool(0.25) {
						tb.EnsureHuge(va)
					} else {
						tb.EnsurePage(va)
					}
					vas = append(vas, va)
				}
				return vas
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			arena, err := New(sc.cfg, NewScatterAlloc(0, allocSpan, 1), true)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefTable(sc.cfg, NewScatterAlloc(0, allocSpan, 1))

			vas := sc.populate(arena)
			refVAs := sc.populate(ref)
			if !reflect.DeepEqual(vas, refVAs) {
				t.Fatal("scenario produced different op streams for the two layouts")
			}

			for l := 0; l <= sc.cfg.Levels; l++ {
				if arena.NodeCount(l) != ref.nodeCount[l] {
					t.Errorf("NodeCount(%d): arena %d, ref %d", l, arena.NodeCount(l), ref.nodeCount[l])
				}
				if !reflect.DeepEqual(arena.FramesAt(l), ref.frames[l]) {
					t.Errorf("FramesAt(%d): arena and ref frame lists differ", l)
				}
			}

			for _, va := range probesAround(vas) {
				got, want := arena.Walk(va), ref.Walk(va)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Walk(%#x): arena %+v, ref %+v", uint64(va), got, want)
				}
				if got.Present != arena.Present(va) {
					t.Fatalf("Present(%#x) disagrees with Walk", uint64(va))
				}
				for l := 1; l <= sc.cfg.Levels; l++ {
					ga, gok := arena.EntryAddr(va, l)
					ra, rok := ref.EntryAddr(va, l)
					if ga != ra || gok != rok {
						t.Fatalf("EntryAddr(%#x, %d): arena %#x,%v ref %#x,%v", uint64(va), l, uint64(ga), gok, uint64(ra), rok)
					}
				}
			}
		})
	}
}
