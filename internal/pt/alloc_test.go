package pt

import (
	"testing"

	"repro/internal/mem"
)

func TestNodesFor(t *testing.T) {
	cases := []struct {
		level      int
		start, end uint64 // in pages
		want       uint64
	}{
		{1, 0, 512, 1},
		{1, 0, 513, 2},
		{1, 511, 513, 2}, // straddles a node boundary
		{1, 512, 1024, 1},
		{2, 0, 512 * 512, 1},
		{2, 0, 512*512 + 1, 2},
	}
	for _, c := range cases {
		got := NodesFor(c.level, mem.FromVPN(c.start), mem.FromVPN(c.end))
		if got != c.want {
			t.Errorf("NodesFor(%d, %d, %d pages) = %d, want %d", c.level, c.start, c.end, got, c.want)
		}
	}
}

func TestSortedAllocPlacesNodesSorted(t *testing.T) {
	// The defining ASAP property (paper footnote 1): if VPN X < VPN Y then
	// the PT node for X sits at a lower physical address than the node for Y.
	fallback := NewScatterAlloc(1<<30, 1<<20, 2)
	a := NewSortedAlloc(fallback, 0, 3)
	start, end := mem.FromVPN(0), mem.FromVPN(64*mem.NodeSpan)
	a.AddRegion(&Region{Level: 1, VAStart: start, VAEnd: end, Base: 1000})
	tbl, err := New(Config{Levels: 4, LeafLevel: 1}, a, true)
	if err != nil {
		t.Fatal(err)
	}
	tbl.PopulateRange(start, end)
	frames := tbl.FramesAt(1)
	if len(frames) != 64 {
		t.Fatalf("PL1 nodes = %d", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[i-1]+1 {
			t.Fatalf("PL1 frames not contiguous/sorted at %d: %v", i, frames[:i+1])
		}
	}
	if frames[0] != 1000 {
		t.Fatalf("first PL1 frame = %d, want region base 1000", frames[0])
	}
	if mem.ContiguousRuns(frames) != 1 {
		t.Fatal("sorted region not a single contiguous run")
	}
}

func TestSortedAllocRegionOffsets(t *testing.T) {
	// A region whose VMA does not start at a node boundary still maps
	// via span-aligned arithmetic.
	r := &Region{Level: 1, VAStart: mem.FromVPN(100), VAEnd: mem.FromVPN(100 + 2*mem.NodeSpan), Base: 500}
	if f := r.FrameFor(mem.FromVPN(100)); f != 500 {
		t.Fatalf("FrameFor(start) = %d", f)
	}
	// VPN 512 is in the second node span (first span is [0,512) aligned).
	if f := r.FrameFor(mem.FromVPN(512)); f != 501 {
		t.Fatalf("FrameFor(second span) = %d", f)
	}
}

func TestSortedAllocFallbackOutsideRegions(t *testing.T) {
	fallback := NewScatterAlloc(1<<30, 1<<20, 4)
	a := NewSortedAlloc(fallback, 0, 5)
	a.AddRegion(&Region{Level: 1, VAStart: 0, VAEnd: mem.FromVPN(mem.NodeSpan), Base: 77})
	// Wrong level: falls back.
	if f := a.AllocPTFrame(2, 0); f < 1<<30 {
		t.Fatalf("level-2 node landed in region: %d", f)
	}
	// Outside the VA range: falls back.
	if f := a.AllocPTFrame(1, mem.FromVPN(10*mem.NodeSpan)); f < 1<<30 {
		t.Fatalf("out-of-range node landed in region: %d", f)
	}
	// In range: placed at the region slot.
	if f := a.AllocPTFrame(1, 0); f != 77 {
		t.Fatalf("in-range node at %d, want 77", f)
	}
}

func TestSortedAllocHoles(t *testing.T) {
	fallback := NewScatterAlloc(1<<30, 1<<20, 6)
	a := NewSortedAlloc(fallback, 1.0, 7) // every node is a hole
	a.AddRegion(&Region{Level: 1, VAStart: 0, VAEnd: mem.FromVPN(8 * mem.NodeSpan), Base: 0})
	tbl, err := New(Config{Levels: 4, LeafLevel: 1}, a, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl.PopulateRange(0, mem.FromVPN(8*mem.NodeSpan))
	if a.Holes() != 8 {
		t.Fatalf("holes = %d, want 8", a.Holes())
	}
	for vpn := uint64(0); vpn < 8*mem.NodeSpan; vpn += mem.NodeSpan {
		if !a.IsHole(1, mem.FromVPN(vpn)) {
			t.Fatalf("node at vpn %d not marked as hole", vpn)
		}
		// Any address within the span reports the hole too.
		if !a.IsHole(1, mem.FromVPN(vpn+3)) {
			t.Fatalf("hole lookup not span-aligned for vpn %d", vpn+3)
		}
	}
}

func TestBuddyAllocRunsAndInterleave(t *testing.T) {
	b := mem.NewBuddy(1 << 20)
	a := NewBuddyAlloc(b, 8, 1, 11)
	tbl, err := New(Config{Levels: 4, LeafLevel: 1}, a, true)
	if err != nil {
		t.Fatal(err)
	}
	tbl.PopulateRange(0, mem.VirtAddr(mem.GiB)) // 512 PL1 nodes
	frames := tbl.FramesAt(1)
	runs := mem.ContiguousRuns(frames)
	// MeanRunLen 8 => roughly 512/8 = 64 runs; allow wide slack but require
	// "some contiguity, not fully contiguous, not fully scattered".
	if runs < 16 || runs > 256 {
		t.Fatalf("buddy placement produced %d runs of 512 nodes; expected run-structured placement", runs)
	}
	// Frames must be unique.
	seen := map[mem.Frame]bool{}
	for _, f := range tbl.AllFrames() {
		if seen[f] {
			t.Fatalf("frame %d used twice", f)
		}
		seen[f] = true
	}
}

func TestScatterAllocScatters(t *testing.T) {
	a := NewScatterAlloc(0, 1<<20, 12)
	tbl, err := New(Config{Levels: 4, LeafLevel: 1}, a, true)
	if err != nil {
		t.Fatal(err)
	}
	tbl.PopulateRange(0, mem.VirtAddr(256*mem.MiB)) // 128 PL1 nodes
	runs := mem.ContiguousRuns(tbl.FramesAt(1))
	if runs < 100 {
		t.Fatalf("scatter placement produced only %d runs of 128 nodes", runs)
	}
}
