package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/vma"
)

// bigVMABase is where dataset VMAs start in the 48-bit virtual space; each
// subsequent big VMA is placed above the previous with a gap, mimicking heap
// plus anonymous mmap regions.
const bigVMABase = mem.VirtAddr(0x10000000000) // 1 TiB

// smallVMABase is where library/stack areas live.
const smallVMABase = mem.VirtAddr(0x7f0000000000)

// Layout is a synthetic process image: its VMA set plus the residency
// geometry of each dataset area.
//
// Each dataset area has a dense resident prefix (the live dataset — real
// heaps keep their hot data virtually contiguous) followed by a sparse tail:
// address space the process touched lightly over its lifetime, with roughly
// one resident page per page-table leaf node. The tail reproduces the
// partially filled page tables behind Table 2's PT page counts without
// distorting the locality of the access stream, which targets the dense
// prefix.
type Layout struct {
	Space *vma.Space
	// Big holds the dataset areas; Resident[i] and Span[i] give the dense
	// resident and total page counts of Big[i].
	Big      []*vma.VMA
	Resident []uint64
	Span     []uint64
	// Small holds the remaining (library, stack, ...) areas; they are dense.
	Small []*vma.VMA

	cumResident   []uint64
	TotalResident uint64 // dense resident pages across big areas
	SmallPages    uint64
}

// BuildLayout realizes spec's address space.
func BuildLayout(spec Spec) (*Layout, error) {
	if spec.BigVMAs < 1 || spec.TotalVMAs < spec.BigVMAs {
		return nil, fmt.Errorf("workload %s: bad VMA counts %d/%d", spec.Name, spec.BigVMAs, spec.TotalVMAs)
	}
	if spec.SpreadFactor < 1 {
		return nil, fmt.Errorf("workload %s: spread factor %v < 1", spec.Name, spec.SpreadFactor)
	}
	l := &Layout{Space: vma.NewSpace()}

	// Split the dataset over the big areas with geometrically decaying
	// weights (one dominant heap plus smaller mapped regions), as the
	// footprints in Table 2 suggest.
	weights := make([]float64, spec.BigVMAs)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+2)
		sum += weights[i]
	}
	datasetPages := mem.PagesFor(spec.DatasetBytes)
	next := bigVMABase
	var assigned uint64
	for i := 0; i < spec.BigVMAs; i++ {
		resident := uint64(float64(datasetPages) * weights[i] / sum)
		if i == spec.BigVMAs-1 {
			resident = datasetPages - assigned
		}
		if resident == 0 {
			resident = 1
		}
		assigned += resident
		span := uint64(float64(resident) * spec.SpreadFactor)
		if span < resident {
			span = resident
		}
		// Round the span up to whole PL1 nodes so the area's page-table
		// geometry is clean.
		span = (span + mem.NodeSpan - 1) &^ uint64(mem.NodeSpan-1)
		area := &vma.VMA{
			Start: next,
			End:   next + mem.VirtAddr(span*mem.PageSize),
			Name:  fmt.Sprintf("%s-data%d", spec.Name, i),
			Kind:  vma.Heap,
		}
		if i > 0 {
			area.Kind = vma.MMap
		}
		if err := l.Space.Insert(area); err != nil {
			return nil, err
		}
		l.Big = append(l.Big, area)
		l.Resident = append(l.Resident, resident)
		l.Span = append(l.Span, span)
		l.TotalResident += resident
		l.cumResident = append(l.cumResident, l.TotalResident)
		// Separate areas by an unmapped guard gap of at least one PL2 span,
		// so their page-table regions never share nodes.
		next = area.End + mem.VirtAddr(uint64(1)<<pt.SpanShift(2))
	}

	// Small areas: stack plus shared libraries, a few dozen pages each.
	at := smallVMABase
	for i := 0; i < spec.TotalVMAs-spec.BigVMAs; i++ {
		pages := uint64(16 + 8*(i%5))
		kind, name := vma.Lib, fmt.Sprintf("%s-lib%d", spec.Name, i)
		if i == 0 {
			pages = 64
			kind, name = vma.Stack, spec.Name+"-stack"
		}
		area := &vma.VMA{Start: at, End: at + mem.VirtAddr(pages*mem.PageSize), Name: name, Kind: kind}
		if err := l.Space.Insert(area); err != nil {
			return nil, err
		}
		l.Small = append(l.Small, area)
		l.SmallPages += pages
		at = area.End + mem.VirtAddr(4*mem.PageSize)
	}
	return l, nil
}

// AreaSpec is the serializable description of one VMA of a Layout — the form
// a reference-trace header records so a replay can reconstruct the capture's
// address space exactly. Big areas keep their dense-resident-prefix plus
// sparse-tail geometry; small areas are dense (Resident == Pages).
type AreaSpec struct {
	Start    mem.VirtAddr
	Pages    uint64 // total span in pages
	Resident uint64 // dense resident prefix in pages
	Kind     vma.Kind
	Big      bool
	Name     string
}

// Areas exports the layout in trace-header form: big areas first, then small
// areas, each in layout order.
func (l *Layout) Areas() []AreaSpec {
	out := make([]AreaSpec, 0, len(l.Big)+len(l.Small))
	for i, a := range l.Big {
		out = append(out, AreaSpec{
			Start: a.Start, Pages: l.Span[i], Resident: l.Resident[i],
			Kind: a.Kind, Big: true, Name: a.Name,
		})
	}
	for _, a := range l.Small {
		out = append(out, AreaSpec{
			Start: a.Start, Pages: a.Pages(), Resident: a.Pages(),
			Kind: a.Kind, Name: a.Name,
		})
	}
	return out
}

// Caps on a reconstructed layout, sized an order of magnitude above the
// largest real workload (mc400 spans ~2^27 pages, ~2^26.6 of them resident).
// They bound the work replay assembly performs — Populate iterates resident
// pages and one sparse-tail node per 512 span pages; FrameMap sizes off
// TotalResident — so an untrusted trace header cannot make assembly iterate
// or allocate without bound, and they keep Pages*PageSize overflow-free.
const (
	maxLayoutSpanPages     = uint64(1) << 32 // 16 TiB of VA span, cumulative
	maxLayoutResidentPages = uint64(1) << 30 // 4 TiB resident, cumulative
)

// LayoutFromAreas reconstructs a Layout from its exported area list. The
// reconstruction is exact: BuildLayout(spec).Areas() round-trips to an
// equivalent Layout, which is what lets a replayed trace assemble the same
// page tables, VMA sets and prefetch-candidate sets as its capture. Malformed
// area lists (overlaps, empty or absurd spans, residency exceeding the span)
// return errors rather than panicking, so untrusted trace files fail cleanly.
func LayoutFromAreas(areas []AreaSpec) (*Layout, error) {
	l := &Layout{Space: vma.NewSpace()}
	var spanTotal, residentTotal uint64
	for i, a := range areas {
		if a.Pages == 0 {
			return nil, fmt.Errorf("workload: area %d (%s) has no pages", i, a.Name)
		}
		spanTotal += a.Pages
		residentTotal += a.Resident
		if a.Pages > maxLayoutSpanPages || spanTotal > maxLayoutSpanPages {
			return nil, fmt.Errorf("workload: layout spans more than the %d-page cap at area %d (%s)", maxLayoutSpanPages, i, a.Name)
		}
		if residentTotal > maxLayoutResidentPages {
			return nil, fmt.Errorf("workload: layout exceeds the %d-resident-page cap at area %d (%s)", maxLayoutResidentPages, i, a.Name)
		}
		if a.Resident > a.Pages {
			return nil, fmt.Errorf("workload: area %d (%s) resident %d exceeds span %d", i, a.Name, a.Resident, a.Pages)
		}
		end := a.Start + mem.VirtAddr(a.Pages*mem.PageSize)
		if end <= a.Start {
			return nil, fmt.Errorf("workload: area %d (%s) span overflows the address space", i, a.Name)
		}
		v := &vma.VMA{Start: a.Start, End: end, Name: a.Name, Kind: a.Kind}
		if err := l.Space.Insert(v); err != nil {
			return nil, err
		}
		if a.Big {
			if a.Resident == 0 {
				return nil, fmt.Errorf("workload: big area %d (%s) has no resident pages", i, a.Name)
			}
			l.Big = append(l.Big, v)
			l.Resident = append(l.Resident, a.Resident)
			l.Span = append(l.Span, a.Pages)
			l.TotalResident += a.Resident
			l.cumResident = append(l.cumResident, l.TotalResident)
		} else {
			if a.Resident != a.Pages {
				return nil, fmt.Errorf("workload: small area %d (%s) must be dense (%d/%d)", i, a.Name, a.Resident, a.Pages)
			}
			l.Small = append(l.Small, v)
			l.SmallPages += a.Pages
		}
	}
	if len(l.Big) == 0 {
		return nil, fmt.Errorf("workload: layout needs at least one big area")
	}
	return l, nil
}

// PageVA returns the virtual address (page-aligned) of the i-th dense
// resident dataset page, i in [0, TotalResident).
func (l *Layout) PageVA(i uint64) mem.VirtAddr {
	if i >= l.TotalResident {
		panic("workload: resident page index out of range")
	}
	for k := range l.Big {
		if i < l.cumResident[k] {
			local := i
			if k > 0 {
				local = i - l.cumResident[k-1]
			}
			return l.Big[k].Start + mem.VirtAddr(local*mem.PageSize)
		}
	}
	panic("workload: cumulative residency inconsistent")
}

// SmallPageVA returns the virtual address of the j-th small-area page,
// j in [0, SmallPages).
func (l *Layout) SmallPageVA(j uint64) mem.VirtAddr {
	if j >= l.SmallPages {
		panic("workload: small page index out of range")
	}
	for _, a := range l.Small {
		if j < a.Pages() {
			return a.Start + mem.VirtAddr(j*mem.PageSize)
		}
		j -= a.Pages()
	}
	panic("workload: small areas inconsistent")
}

// PresentVPN reports whether the page vpn is resident (mapped) in this
// process — the predicate behind page-fault-free steady-state simulation and
// the Clustered TLB's neighbour probes.
func (l *Layout) PresentVPN(vpn uint64) bool {
	area := l.Space.Find(mem.FromVPN(vpn))
	if area == nil {
		return false
	}
	for k, big := range l.Big {
		if big != area {
			continue
		}
		off := vpn - big.Start.VPN()
		if off < l.Resident[k] {
			return true // dense prefix
		}
		// Sparse tail: the first page of each leaf-node span is resident.
		return off%mem.NodeSpan == 0
	}
	return true // small areas are dense
}

// Populate maps the process's resident set into table: the dense prefix and
// the sparse tail of each dataset area, plus the dense small areas. This is
// the steady state the paper measures (long-running servers with fully
// faulted-in datasets).
func (l *Layout) Populate(table *pt.Table) {
	for k, big := range l.Big {
		dense := l.Resident[k]
		table.PopulateRange(big.Start, big.Start+mem.VirtAddr(dense*mem.PageSize))
		for off := (dense + mem.NodeSpan - 1) &^ uint64(mem.NodeSpan-1); off < l.Span[k]; off += mem.NodeSpan {
			table.EnsurePage(big.Start + mem.VirtAddr(off*mem.PageSize))
		}
	}
	for _, small := range l.Small {
		table.PopulateRange(small.Start, small.End)
	}
}
