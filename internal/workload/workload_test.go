package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pt"
)

func testSpec() Spec {
	return Spec{
		Name:         "test",
		DatasetBytes: 64 * mem.MiB,
		SpreadFactor: 2,
		TotalVMAs:    8,
		BigVMAs:      2,
		Pattern:      Uniform,
		HotFraction:  0.1,
		HotProb:      0.5,
		Contig8:      0.5,
		MeanPTRun:    4,
		InstrPerRef:  4,
	}
}

func mustLayout(t *testing.T, s Spec) *Layout {
	t.Helper()
	l, err := BuildLayout(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildLayoutShape(t *testing.T) {
	s := testSpec()
	l := mustLayout(t, s)
	if l.Space.Len() != s.TotalVMAs {
		t.Fatalf("VMAs = %d, want %d", l.Space.Len(), s.TotalVMAs)
	}
	if len(l.Big) != s.BigVMAs || len(l.Small) != s.TotalVMAs-s.BigVMAs {
		t.Fatalf("big/small = %d/%d", len(l.Big), len(l.Small))
	}
	if l.TotalResident != mem.PagesFor(s.DatasetBytes) {
		t.Fatalf("resident pages = %d, want %d", l.TotalResident, mem.PagesFor(s.DatasetBytes))
	}
	// Spread factor respected per area (span within rounding of factor).
	for k := range l.Big {
		ratio := float64(l.Span[k]) / float64(l.Resident[k])
		if ratio < s.SpreadFactor*0.9 || ratio > s.SpreadFactor*1.2 {
			t.Fatalf("area %d span/resident = %v, want ~%v", k, ratio, s.SpreadFactor)
		}
	}
	// Big areas dominate the footprint: 99% coverage takes ≤ BigVMAs areas.
	if got := l.Space.CoverageCount(0.99); got > s.BigVMAs {
		t.Fatalf("99%% coverage needs %d VMAs, want ≤ %d", got, s.BigVMAs)
	}
}

func TestBuildLayoutErrors(t *testing.T) {
	s := testSpec()
	s.BigVMAs = 0
	if _, err := BuildLayout(s); err == nil {
		t.Fatal("BigVMAs=0 accepted")
	}
	s = testSpec()
	s.SpreadFactor = 0.5
	if _, err := BuildLayout(s); err == nil {
		t.Fatal("SpreadFactor<1 accepted")
	}
	s = testSpec()
	s.TotalVMAs = 1
	if _, err := BuildLayout(s); err == nil {
		t.Fatal("TotalVMAs<BigVMAs accepted")
	}
}

func TestPageVAConsistentWithPresent(t *testing.T) {
	l := mustLayout(t, testSpec())
	f := func(raw uint64) bool {
		i := raw % l.TotalResident
		va := l.PageVA(i)
		return l.PresentVPN(va.VPN())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPresentVPNOutsideAreas(t *testing.T) {
	l := mustLayout(t, testSpec())
	if l.PresentVPN(0) {
		t.Fatal("page 0 resident")
	}
	// The guard gap between big areas is unmapped.
	gap := l.Big[0].End
	if l.PresentVPN(gap.VPN()) {
		t.Fatal("guard gap resident")
	}
	// Small areas are dense.
	if !l.PresentVPN(l.Small[0].Start.VPN()) {
		t.Fatal("small area page not resident")
	}
}

func TestPopulateMatchesPresent(t *testing.T) {
	l := mustLayout(t, testSpec())
	table, err := pt.New(pt.Config{Levels: 4, LeafLevel: 1}, pt.NewScatterAlloc(0, 1<<22, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	l.Populate(table)
	f := func(raw uint64) bool {
		// Probe random pages across the whole first big area span plus gaps.
		vpn := l.Big[0].Start.VPN() + raw%(l.Span[0]+1000)
		return table.Present(mem.FromVPN(vpn)) == l.PresentVPN(vpn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorStaysInResidentSet(t *testing.T) {
	for _, pat := range []Pattern{Chase, Uniform, Zipf, GraphScan} {
		s := testSpec()
		s.Pattern = pat
		s.ZipfTheta = 0.9
		s.SeqRatio = 0.3
		l := mustLayout(t, s)
		g := NewGenerator(s, l, 7)
		for i := 0; i < 5000; i++ {
			va := g.Next()
			if !l.PresentVPN(va.VPN()) {
				t.Fatalf("pattern %v produced non-resident address %#x", pat, uint64(va))
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s := testSpec()
	l := mustLayout(t, s)
	a, b := NewGenerator(s, l, 9), NewGenerator(s, l, 9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators with equal seeds diverged at %d", i)
		}
	}
}

func TestGeneratorLocalityKnobs(t *testing.T) {
	// Higher HotProb must concentrate accesses on fewer distinct pages.
	distinct := func(hotProb float64) int {
		s := testSpec()
		s.Pattern = Uniform
		s.HotProb = hotProb
		l := mustLayout(t, s)
		g := NewGenerator(s, l, 11)
		seen := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			seen[g.Next().VPN()] = true
		}
		return len(seen)
	}
	lo, hi := distinct(0.9), distinct(0.0)
	if lo >= hi {
		t.Fatalf("hot mix did not concentrate accesses: %d vs %d distinct pages", lo, hi)
	}
}

func TestFrameMapClusters(t *testing.T) {
	m := &FrameMap{Base: 1 << 20, Span: 1 << 20, Contig8: 1.0, Salt: 3}
	// Full contiguity: every aligned 8-group is one aligned physical cluster.
	for group := uint64(0); group < 100; group++ {
		base := m.Frame(group * 8)
		if uint64(base-m.Base)&7 != 0 {
			t.Fatalf("group %d cluster base %d not aligned", group, base)
		}
		for off := uint64(1); off < 8; off++ {
			if m.Frame(group*8+off) != base+mem.Frame(off) {
				t.Fatalf("group %d split at offset %d", group, off)
			}
		}
	}
}

func TestFrameMapScattersWithoutContiguity(t *testing.T) {
	m := &FrameMap{Base: 0, Span: 1 << 20, Contig8: 0, Salt: 4}
	adjacent := 0
	for vpn := uint64(0); vpn < 1000; vpn++ {
		if m.Frame(vpn+1) == m.Frame(vpn)+1 {
			adjacent++
		}
	}
	if adjacent > 10 {
		t.Fatalf("scatter map preserved %d adjacencies", adjacent)
	}
}

func TestFrameMapInSpan(t *testing.T) {
	m := &FrameMap{Base: 1 << 24, Span: 1 << 16, Contig8: 0.5, Salt: 5}
	f := func(vpn uint64) bool {
		fr := m.Frame(vpn)
		return fr >= m.Base && fr < m.Base+mem.Frame(m.Span)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameMapAddrPreservesOffset(t *testing.T) {
	m := &FrameMap{Base: 0, Span: 1 << 16, Contig8: 0, Salt: 6}
	va := mem.VirtAddr(123*mem.PageSize + 456)
	if m.Addr(va)%mem.PageSize != 456 {
		t.Fatal("page offset lost")
	}
}

func TestCoRunnerBounds(t *testing.T) {
	c := NewCoRunner(mem.PhysAddr(1<<30), 1<<24, 7)
	for i := 0; i < 10000; i++ {
		a := c.Next()
		if a < 1<<30 || a >= 1<<30+1<<24 {
			t.Fatalf("co-runner address %#x out of span", uint64(a))
		}
		if a%mem.LineBytes != 0 {
			t.Fatalf("co-runner address %#x not line aligned", uint64(a))
		}
	}
}

func TestSpecsTable3(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("Table 3 lists 7 workloads, got %d", len(specs))
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	if byName["mc400"].DatasetBytes != 400*mem.GiB {
		t.Fatal("mc400 dataset size wrong")
	}
	if byName["bfs"].DatasetBytes != 60*mem.GiB {
		t.Fatal("bfs dataset size wrong")
	}
	if _, ok := ByName("redis"); !ok {
		t.Fatal("redis missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown workload found")
	}
	if len(Names()) != 7 {
		t.Fatal("Names() wrong length")
	}
	// Every spec must build a valid layout.
	for _, s := range specs {
		if s.Name == "mc400" || s.Name == "mc80" || s.Name == "bfs" || s.Name == "pagerank" || s.Name == "redis" {
			continue // large layouts exercised in sim tests; skip for speed here
		}
		if _, err := BuildLayout(s); err != nil {
			t.Fatalf("layout for %s: %v", s.Name, err)
		}
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{Chase: "chase", Uniform: "uniform", Zipf: "zipf", GraphScan: "graph-scan"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestMixFor(t *testing.T) {
	mcf, _ := ByName("mcf")
	// Empty names replicate the primary.
	m, err := MixFor(mcf, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Names() != "mcf,mcf,mcf" {
		t.Fatalf("homogeneous mix = %q", m.Names())
	}
	// Named pools cycle, primary first.
	m, err = MixFor(mcf, "mcf,canneal", 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Names() != "mcf,canneal,mcf,canneal" {
		t.Fatalf("cycled mix = %q", m.Names())
	}
	if _, err := MixFor(mcf, "nosuch", 2); err == nil {
		t.Fatal("unknown mix workload accepted")
	} else if !strings.Contains(err.Error(), strings.Join(Names(), ", ")) {
		t.Fatalf("unknown-workload error does not list valid names: %v", err)
	}
	if _, err := MixFor(mcf, "", 0); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestSchedulerDeterministicRoundRobin(t *testing.T) {
	// Same seed → identical schedule; quanta jitter around the mean; order
	// is strict round-robin.
	a := NewScheduler(3, 100, 7)
	b := NewScheduler(3, 100, 7)
	counts := map[int]int{}
	last, switches := 0, 0
	for i := 0; i < 10_000; i++ {
		pa, sa := a.Tick()
		pb, sb := b.Tick()
		if pa != pb || sa != sb {
			t.Fatalf("tick %d: schedules diverged (%d,%v) vs (%d,%v)", i, pa, sa, pb, sb)
		}
		if sa {
			switches++
			if pa != (last+1)%3 {
				t.Fatalf("tick %d: switch to %d after %d is not round-robin", i, pa, last)
			}
		} else if pa != last && i > 0 {
			t.Fatalf("tick %d: pid changed without a switch", i)
		}
		last = pa
		counts[pa]++
	}
	if switches < 60 || switches > 140 {
		t.Fatalf("%d switches over 10k ticks with quantum 100", switches)
	}
	for pid, c := range counts {
		if c < 2500 || c > 4200 {
			t.Fatalf("process %d ran %d of 10k ticks; schedule unfair", pid, c)
		}
	}
}

func TestSchedulerSingleProcessNeverSwitches(t *testing.T) {
	s := NewScheduler(1, 10, 3)
	for i := 0; i < 1000; i++ {
		if pid, switched := s.Tick(); pid != 0 || switched {
			t.Fatalf("tick %d: pid=%d switched=%v", i, pid, switched)
		}
	}
}
