package workload

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// smallProb is the fraction of accesses landing in the small (library/stack)
// areas: frequent but with high temporal reuse, so they rarely miss the TLB
// (paper §3.2).
const smallProb = 0.05

// Generator produces the workload's virtual-address reference stream.
//
// All patterns operate on dense resident-page indices. Chase and Uniform mix
// in a hot set (temporal locality) and short sequential bursts (spatial
// locality: records span neighbouring pages, scans touch a few pages in a
// row). GraphScan interleaves a line-granular sequential sweep (the CSR
// arrays) with random neighbour lookups. Zipf models key-value stores with
// scrambled-zipfian popularity.
type Generator struct {
	spec   Spec
	layout *Layout
	s      *rng.Stream
	zipf   *rng.Zipfian
	perm   *rng.Perm
	cur    uint64 // chase cursor
	last   uint64 // previous index, for bursts
	lastVA mem.VirtAddr
	seqVA  mem.VirtAddr
	seqEnd mem.VirtAddr
	hot    uint64 // hot-set size in pages
}

// NewGenerator returns a deterministic generator for spec over layout.
func NewGenerator(spec Spec, layout *Layout, seed uint64) *Generator {
	g := &Generator{
		spec:   spec,
		layout: layout,
		s:      rng.New(seed),
		hot:    uint64(spec.HotFraction * float64(layout.TotalResident)),
	}
	if g.hot == 0 {
		g.hot = 1
	}
	switch spec.Pattern {
	case Zipf:
		g.zipf = rng.NewZipfian(layout.TotalResident, spec.ZipfTheta, rng.New(seed^0x21bf))
	case Chase:
		g.perm = rng.NewPerm(layout.TotalResident, seed^0xc4a5e)
	case GraphScan:
		g.seqVA = layout.Big[0].Start
		g.seqEnd = layout.Big[0].Start + mem.VirtAddr(layout.Resident[0]*mem.PageSize)
	}
	return g
}

// Next returns the next referenced virtual address.
func (g *Generator) Next() mem.VirtAddr {
	if g.spec.LinesPerVisit > 1 && g.lastVA != 0 && g.s.Bool(1-1/g.spec.LinesPerVisit) {
		// Keep working within the current page: another line of the record.
		va := mem.FromVPN(g.lastVA.VPN()) + g.lineOffset()
		g.lastVA = va
		return va
	}
	if g.layout.SmallPages > 0 && g.s.Bool(smallProb) {
		// Library/stack touch: tiny hot set.
		j := g.s.Uint64n(g.layout.SmallPages)
		return g.layout.SmallPageVA(j) + g.lineOffset()
	}
	if g.spec.Pattern == GraphScan && g.s.Bool(g.spec.SeqRatio) {
		// Sequential sweep advances one cache line per access, crossing into
		// a new page every PageSize/LineBytes accesses.
		va := g.seqVA
		g.seqVA += mem.LineBytes
		if g.seqVA >= g.seqEnd {
			g.seqVA = g.layout.Big[0].Start
		}
		return va
	}
	var i uint64
	if g.spec.BurstLen > 1 && g.s.Bool(1-1/g.spec.BurstLen) {
		// Continue a sequential burst from the previous index.
		i = g.last + 1
		if i >= g.layout.TotalResident {
			i = 0
		}
	} else {
		switch g.spec.Pattern {
		case Chase:
			if g.s.Bool(g.spec.HotProb) {
				i = g.s.Uint64n(g.hot)
			} else {
				g.cur = g.perm.Apply(g.cur)
				i = g.cur
			}
		case Uniform, GraphScan:
			if g.s.Bool(g.spec.HotProb) {
				i = g.s.Uint64n(g.hot)
			} else {
				i = g.s.Uint64n(g.layout.TotalResident)
			}
		case Zipf:
			// Key-value stores keep a dense working set (slab-allocated hot
			// items) in front of the zipfian tail over the whole keyspace.
			if g.s.Bool(g.spec.HotProb) {
				i = g.s.Uint64n(g.hot)
			} else {
				i = g.zipf.ScrambledNext()
			}
		}
	}
	g.last = i
	va := g.layout.PageVA(i) + g.lineOffset()
	g.lastVA = va
	return va
}

// lineOffset returns a random cache-line-aligned offset within a page.
func (g *Generator) lineOffset() mem.VirtAddr {
	return mem.VirtAddr(g.s.Uint64n(mem.PageSize/mem.LineBytes) * mem.LineBytes)
}

// FrameMap deterministically places the process's data pages in a machine
// memory area. With probability Contig8, an aligned group of 8 virtual pages
// occupies one aligned 8-frame physical cluster (the contiguity a Clustered
// TLB exploits); otherwise pages scatter individually — the behaviour of a
// churned buddy allocator.
type FrameMap struct {
	Base    mem.Frame
	Span    uint64 // frames; must be a multiple of 8
	Contig8 float64
	Salt    uint64
}

// Frame returns the machine frame backing vpn.
func (m *FrameMap) Frame(vpn uint64) mem.Frame {
	group := vpn >> 3
	r := rng.Mix64(group ^ m.Salt)
	if float64(r&0xffffff)/float64(1<<24) < m.Contig8 {
		cluster := rng.Mix64(group^m.Salt^0x5eed) % (m.Span >> 3)
		return m.Base + mem.Frame(cluster<<3|vpn&7)
	}
	return m.Base + mem.Frame(rng.Mix64(vpn^m.Salt^0xdada)%m.Span)
}

// Addr returns the machine address backing va.
func (m *FrameMap) Addr(va mem.VirtAddr) mem.PhysAddr {
	return m.Frame(va.VPN()).Addr() + mem.PhysAddr(va.PageOffset())
}

// CoRunner is the synthetic SMT co-runner of §4: it issues one request to a
// random address for each memory access of the application thread, pressuring
// the shared cache hierarchy (but, as in the paper, not the TLBs or PWCs).
type CoRunner struct {
	s    *rng.Stream
	base mem.PhysAddr
	span uint64 // bytes
}

// NewCoRunner returns a co-runner thrashing span bytes of machine memory at
// base.
func NewCoRunner(base mem.PhysAddr, span uint64, seed uint64) *CoRunner {
	if span == 0 {
		panic("workload: co-runner needs a non-empty span")
	}
	return &CoRunner{s: rng.New(seed), base: base, span: span}
}

// Next returns the co-runner's next (line-aligned) machine address.
func (c *CoRunner) Next() mem.PhysAddr {
	return c.base + mem.PhysAddr(c.s.Uint64n(c.span/mem.LineBytes)*mem.LineBytes)
}
