package workload

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// Mix is a set of co-scheduled workload specs time-sharing one simulated
// core — the multi-process deployment dimension. Unlike the SMT co-runner
// (which shares only the cache hierarchy, concurrently), mix processes share
// the core itself: one runs at a time, and every context switch exercises the
// OS policy under study (TLB flush vs. ASID-tagged retention, ASAP
// descriptor-file save/restore).
type Mix struct {
	Specs []Spec
}

// MixFor resolves the process set of an n-process scenario. The primary spec
// is process 0; the remaining n-1 slots are filled from the comma-separated
// workload names in names, cycled when the list is shorter. An empty names
// list replicates the primary — a homogeneous mix of identical server
// replicas. The expansion is purely positional, so a (primary, names, n)
// triple always yields the same mix: scenario identity stays a flat,
// comparable value.
func MixFor(primary Spec, names string, n int) (Mix, error) {
	if n < 1 {
		return Mix{}, fmt.Errorf("workload: mix needs at least one process, got %d", n)
	}
	pool := []Spec{primary}
	if trimmed := strings.TrimSpace(names); trimmed != "" {
		pool = pool[:0]
		for _, nm := range strings.Split(trimmed, ",") {
			s, ok := ByName(strings.TrimSpace(nm))
			if !ok {
				return Mix{}, fmt.Errorf("workload: unknown mix workload %q (have %s)",
					strings.TrimSpace(nm), strings.Join(Names(), ", "))
			}
			pool = append(pool, s)
		}
	}
	m := Mix{Specs: make([]Spec, 0, n)}
	m.Specs = append(m.Specs, primary)
	for i := 1; i < n; i++ {
		m.Specs = append(m.Specs, pool[i%len(pool)])
	}
	return m, nil
}

// Names renders the mix as its workload names, in schedule order.
func (m Mix) Names() string {
	names := make([]string, len(m.Specs))
	for i, s := range m.Specs {
		names[i] = s.Name
	}
	return strings.Join(names, ",")
}

// Scheduler deterministically time-slices n processes on one core:
// round-robin order with quantum lengths drawn from the seeded stream,
// uniform in [quantum/2, quantum/2 + quantum) references (mean ≈ quantum).
// The jitter keeps co-scheduled access phases from beating in lockstep with
// the quantum boundary while staying exactly reproducible per seed — the same
// determinism contract every other generator in this package honours.
type Scheduler struct {
	s       *rng.Stream
	n       int
	quantum int
	cur     int
	left    int
}

// NewScheduler returns a scheduler over n processes with mean quantum
// references per slice.
func NewScheduler(n, quantum int, seed uint64) *Scheduler {
	if n < 1 {
		panic("workload: scheduler needs at least one process")
	}
	if quantum < 1 {
		panic("workload: scheduler needs a positive quantum")
	}
	s := &Scheduler{s: rng.New(seed), n: n, quantum: quantum}
	s.left = s.nextQuantum()
	return s
}

func (s *Scheduler) nextQuantum() int {
	q := s.quantum/2 + int(s.s.Uint64n(uint64(s.quantum)))
	if q < 1 {
		q = 1
	}
	return q
}

// Tick accounts one reference of progress and returns the process that
// executes it, plus whether a context switch happened immediately before it.
// A single-process schedule never switches.
func (s *Scheduler) Tick() (pid int, switched bool) {
	if s.left <= 0 {
		s.cur = (s.cur + 1) % s.n
		s.left = s.nextQuantum()
		switched = s.n > 1
	}
	s.left--
	return s.cur, switched
}
