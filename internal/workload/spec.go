// Package workload synthesizes the paper's Table 3 benchmarks: per-workload
// virtual address space layouts (shaped after the VMA statistics of Table 2),
// memory-access pattern generators (pointer chase, uniform random, zipfian
// key-value lookups, graph scans), deterministic data-page physical placement
// with a per-workload contiguity model (for the Clustered TLB study), and the
// synthetic SMT co-runner of §4.
//
// The original evaluation drove the simulator with page-table dumps and
// memory traces captured from the real applications; those are substituted
// here by synthetic processes with the same dataset sizes, page-table
// footprints and locality classes (see DESIGN.md §2).
package workload

import (
	"fmt"

	"repro/internal/mem"
)

// Pattern classifies a workload's data access behaviour.
type Pattern int

// Access patterns.
const (
	// Chase follows a pseudo-random pointer chain over the resident pages
	// (SPEC mcf's dominant behaviour).
	Chase Pattern = iota
	// Uniform touches resident pages uniformly at random (canneal's random
	// element swaps).
	Uniform
	// Zipf performs scrambled-zipfian key lookups (memcached, redis).
	Zipf
	// GraphScan mixes a sequential CSR sweep with random neighbour accesses
	// (bfs, pagerank).
	GraphScan
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Chase:
		return "chase"
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case GraphScan:
		return "graph-scan"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Spec describes one synthetic workload.
type Spec struct {
	Name        string
	Description string

	// DatasetBytes is the resident dataset size (Table 3).
	DatasetBytes uint64
	// SpreadFactor is the ratio of VMA span to resident bytes: each dataset
	// area keeps a dense resident prefix plus a sparsely touched tail,
	// reproducing the page-table footprints behind Table 2's PT page counts.
	SpreadFactor float64
	// TotalVMAs and BigVMAs shape the address space after Table 2: BigVMAs
	// dataset areas cover ~99% of the footprint; the rest are small lib,
	// stack and mapping areas.
	TotalVMAs int
	BigVMAs   int

	Pattern   Pattern
	ZipfTheta float64 // skew for Zipf pattern
	// HotFraction/HotProb add temporal locality to Chase and Uniform: with
	// probability HotProb an access lands in the hottest HotFraction of
	// resident pages.
	HotFraction float64
	HotProb     float64
	// SeqRatio is the fraction of sequential accesses for GraphScan.
	SeqRatio float64
	// BurstLen is the mean length of sequential page bursts (spatial
	// locality); 1 disables bursts.
	BurstLen float64
	// LinesPerVisit is the mean number of consecutive accesses to a page
	// before the pattern moves on (records span multiple cache lines). It
	// controls how many TLB-hitting references separate walks, and therefore
	// how much co-runner traffic each walk must survive under colocation.
	LinesPerVisit float64
	// DataStallCycles models the average non-translation stall per memory
	// reference (cache misses on data, instruction supply), used by the
	// execution-time model of Fig 2/Table 6 in place of hardware counters.
	DataStallCycles float64

	// Contig8 is the probability that an aligned 8-page virtual group is
	// backed by one aligned 8-frame physical cluster — the contiguity the
	// Clustered TLB of §5.4.1 exploits. Small, lightly fragmented datasets
	// (mcf, canneal) enjoy high contiguity; huge long-lived heaps do not.
	Contig8 float64

	// MeanPTRun and DataPerPTNode drive the buddy placement model for
	// Table 2's "contiguous physical regions" statistic.
	MeanPTRun     float64
	DataPerPTNode int

	// InstrPerRef is the number of instructions retired per memory
	// reference, used for MPKI and the execution-time model.
	InstrPerRef float64
}

// Specs returns the seven workloads of Table 3.
func Specs() []Spec {
	return []Spec{
		{
			Name:            "mcf",
			Description:     "SPEC'06 benchmark (ref input)",
			DatasetBytes:    1700 * mem.MiB,
			SpreadFactor:    3.75,
			TotalVMAs:       16,
			BigVMAs:         1,
			Pattern:         Chase,
			HotFraction:     0.003,
			HotProb:         0.30,
			BurstLen:        6,
			LinesPerVisit:   3,
			DataStallCycles: 35,
			Contig8:         0.75,
			MeanPTRun:       5,
			DataPerPTNode:   1,
			InstrPerRef:     3.5,
		},
		{
			Name:            "canneal",
			Description:     "PARSEC 3.0 benchmark (native input set)",
			DatasetBytes:    1200 * mem.MiB,
			SpreadFactor:    4.7,
			TotalVMAs:       18,
			BigVMAs:         4,
			Pattern:         Uniform,
			HotFraction:     0.004,
			HotProb:         0.45,
			BurstLen:        3,
			LinesPerVisit:   2,
			DataStallCycles: 60,
			Contig8:         0.65,
			MeanPTRun:       5.8,
			DataPerPTNode:   1,
			InstrPerRef:     5,
		},
		{
			Name:            "bfs",
			Description:     "Breadth-first search, 60GB dataset (scaled from Twitter)",
			DatasetBytes:    60 * mem.GiB,
			SpreadFactor:    2.15,
			TotalVMAs:       14,
			BigVMAs:         1,
			Pattern:         GraphScan,
			SeqRatio:        0.55,
			HotFraction:     0.005,
			HotProb:         0.35,
			BurstLen:        2.5,
			LinesPerVisit:   4,
			DataStallCycles: 18,
			Contig8:         0.12,
			MeanPTRun:       15,
			DataPerPTNode:   2,
			InstrPerRef:     4,
		},
		{
			Name:            "pagerank",
			Description:     "PageRank, 60GB dataset (scaled from Twitter)",
			DatasetBytes:    60 * mem.GiB,
			SpreadFactor:    1.25,
			TotalVMAs:       18,
			BigVMAs:         1,
			Pattern:         GraphScan,
			SeqRatio:        0.62,
			HotFraction:     0.005,
			HotProb:         0.40,
			BurstLen:        3,
			LinesPerVisit:   4,
			DataStallCycles: 25,
			Contig8:         0.20,
			MeanPTRun:       18,
			DataPerPTNode:   2,
			InstrPerRef:     4,
		},
		{
			Name:            "mc80",
			Description:     "Memcached, in-memory key-value cache, 80GB dataset",
			DatasetBytes:    80 * mem.GiB,
			SpreadFactor:    1.12,
			TotalVMAs:       26,
			BigVMAs:         6,
			Pattern:         Zipf,
			ZipfTheta:       0.99,
			HotFraction:     0.008,
			HotProb:         0.78,
			BurstLen:        1,
			LinesPerVisit:   16,
			DataStallCycles: 45,
			Contig8:         0.05,
			MeanPTRun:       23,
			DataPerPTNode:   3,
			InstrPerRef:     8,
		},
		{
			Name:            "mc400",
			Description:     "Memcached, in-memory key-value cache, 400GB dataset",
			DatasetBytes:    400 * mem.GiB,
			SpreadFactor:    1.04,
			TotalVMAs:       33,
			BigVMAs:         13,
			Pattern:         Zipf,
			ZipfTheta:       0.99,
			HotFraction:     0.002,
			HotProb:         0.73,
			BurstLen:        1,
			LinesPerVisit:   16,
			DataStallCycles: 45,
			Contig8:         0.08,
			MeanPTRun:       40,
			DataPerPTNode:   3,
			InstrPerRef:     8,
		},
		{
			Name:            "redis",
			Description:     "In-memory key-value store (50GB YCSB dataset)",
			DatasetBytes:    50 * mem.GiB,
			SpreadFactor:    1.72,
			TotalVMAs:       7,
			BigVMAs:         1,
			Pattern:         Zipf,
			ZipfTheta:       0.86,
			HotFraction:     0.01,
			HotProb:         0.30,
			BurstLen:        1.3,
			LinesPerVisit:   12,
			DataStallCycles: 260,
			Contig8:         0.15,
			MeanPTRun:       12,
			DataPerPTNode:   2,
			InstrPerRef:     9,
		},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all workload names in Table 3 order.
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
