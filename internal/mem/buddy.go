package mem

import (
	"errors"
	"fmt"
	"sort"
)

// MaxOrder is the largest buddy block order (2^18 pages = 1 GiB), matching
// the spirit of the Linux buddy allocator's MAX_ORDER limit scaled to the
// large-memory machines the paper targets.
const MaxOrder = 18

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// ErrNotFree is returned by AllocAt when the requested block is not entirely
// free.
var ErrNotFree = errors.New("mem: requested block is not free")

// Buddy is a binary buddy allocator over a physical frame range [0, Frames).
// Free blocks are kept on per-order LIFO free lists (like Linux), so a
// long-running allocation/free history scatters subsequent allocations —
// exactly the behaviour that destroys page-table contiguity in the baseline
// system (paper §3.3).
type Buddy struct {
	frames uint64
	free   [MaxOrder + 1]map[Frame]struct{} // membership, for coalescing
	stack  [MaxOrder + 1][]Frame            // LIFO allocation order
	inUse  uint64
}

// NewBuddy returns an allocator over frames physical frames. frames is
// rounded down to a multiple of the smallest block covering it.
func NewBuddy(frames uint64) *Buddy {
	b := &Buddy{frames: frames}
	for o := range b.free {
		b.free[o] = make(map[Frame]struct{})
	}
	// Seed the free lists greedily from address 0 with the largest blocks
	// that fit.
	var at uint64
	for at < frames {
		o := MaxOrder
		for o > 0 && (at&(blockFrames(o)-1) != 0 || at+blockFrames(o) > frames) {
			o--
		}
		if at+blockFrames(o) > frames {
			break // trailing fragment smaller than one page block; ignore
		}
		b.pushFree(Frame(at), o)
		at += blockFrames(o)
	}
	return b
}

// blockFrames returns the number of frames in a block of the given order.
func blockFrames(order int) uint64 { return uint64(1) << order }

// Frames returns the total number of frames managed by the allocator.
func (b *Buddy) Frames() uint64 { return b.frames }

// InUse returns the number of frames currently allocated.
func (b *Buddy) InUse() uint64 { return b.inUse }

func (b *Buddy) pushFree(f Frame, order int) {
	b.free[order][f] = struct{}{}
	b.stack[order] = append(b.stack[order], f)
}

// popFree removes and returns the most recently freed block of the order, or
// false if none is free. Stale stack entries (blocks removed by coalescing or
// AllocAt) are skipped lazily.
func (b *Buddy) popFree(order int) (Frame, bool) {
	s := b.stack[order]
	for len(s) > 0 {
		f := s[len(s)-1]
		s = s[:len(s)-1]
		if _, ok := b.free[order][f]; ok {
			delete(b.free[order], f)
			b.stack[order] = s
			return f, true
		}
	}
	b.stack[order] = s
	return 0, false
}

// removeFree removes a specific free block; reports whether it was free.
func (b *Buddy) removeFree(f Frame, order int) bool {
	if _, ok := b.free[order][f]; !ok {
		return false
	}
	delete(b.free[order], f)
	return true
}

// Alloc allocates a block of 2^order frames and returns its first frame.
func (b *Buddy) Alloc(order int) (Frame, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("mem: invalid order %d", order)
	}
	o := order
	for o <= MaxOrder {
		if f, ok := b.popFree(o); ok {
			// Split down to the requested order, freeing the upper halves.
			for o > order {
				o--
				b.pushFree(f+Frame(blockFrames(o)), o)
			}
			b.inUse += blockFrames(order)
			return f, nil
		}
		o++
	}
	return 0, ErrOutOfMemory
}

// AllocPage allocates a single frame.
func (b *Buddy) AllocPage() (Frame, error) { return b.Alloc(0) }

// AllocAt carves out the specific block [f, f+2^order) if it is entirely
// free, splitting larger free blocks as needed. It is used to extend ASAP's
// reserved page-table regions at a fixed boundary (paper §3.7.2).
func (b *Buddy) AllocAt(f Frame, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("mem: invalid order %d", order)
	}
	if uint64(f)&(blockFrames(order)-1) != 0 {
		return fmt.Errorf("mem: AllocAt frame %d not aligned to order %d", f, order)
	}
	if uint64(f)+blockFrames(order) > b.frames {
		return ErrNotFree
	}
	// Find the free ancestor block containing f.
	for o := order; o <= MaxOrder; o++ {
		base := Frame(uint64(f) &^ (blockFrames(o) - 1))
		if !b.removeFree(base, o) {
			continue
		}
		// Split the ancestor down, keeping only the halves not containing f.
		for o > order {
			o--
			half := blockFrames(o)
			if uint64(f)&half != 0 {
				// f lives in the upper half: lower half stays free.
				b.pushFree(base, o)
				base += Frame(half)
			} else {
				b.pushFree(base+Frame(half), o)
			}
		}
		b.inUse += blockFrames(order)
		return nil
	}
	return ErrNotFree
}

// Free returns a block of 2^order frames starting at f to the allocator,
// coalescing with its buddy where possible.
func (b *Buddy) Free(f Frame, order int) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("mem: invalid order %d", order))
	}
	if uint64(f)&(blockFrames(order)-1) != 0 {
		panic(fmt.Sprintf("mem: Free frame %d not aligned to order %d", f, order))
	}
	b.inUse -= blockFrames(order)
	for order < MaxOrder {
		buddy := Frame(uint64(f) ^ blockFrames(order))
		if uint64(buddy)+blockFrames(order) > b.frames || !b.removeFree(buddy, order) {
			break
		}
		if buddy < f {
			f = buddy
		}
		order++
	}
	b.pushFree(f, order)
}

// Reserve allocates a contiguous run of frames (not necessarily a power of
// two) and returns its first frame. It first tries a single power-of-two
// block; if the run exceeds the largest block it stitches adjacent max-order
// blocks with AllocAt. This models the OS reserving an ASAP page-table region
// at VMA creation time (paper §3.3).
func (b *Buddy) Reserve(frames uint64) (Frame, error) {
	if frames == 0 {
		return 0, fmt.Errorf("mem: Reserve of zero frames")
	}
	order := 0
	for blockFrames(order) < frames && order < MaxOrder {
		order++
	}
	if blockFrames(order) >= frames {
		f, err := b.Alloc(order)
		if err != nil {
			return 0, err
		}
		// Return the unused tail so the reservation is exactly sized.
		b.freeTail(f, frames, order)
		return f, nil
	}
	// Stitch consecutive max-order blocks. Eager coalescing keeps any fully
	// free, max-order-aligned region represented as a single free block, so
	// scanning the max-order free set for a consecutive run is sufficient.
	need := (frames + blockFrames(MaxOrder) - 1) / blockFrames(MaxOrder)
	blocks := make([]Frame, 0, len(b.free[MaxOrder]))
	for f := range b.free[MaxOrder] {
		blocks = append(blocks, f)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	run := uint64(0)
	for i, f := range blocks {
		if i > 0 && f == blocks[i-1]+Frame(blockFrames(MaxOrder)) {
			run++
		} else {
			run = 1
		}
		if run < need {
			continue
		}
		anchor := f - Frame((need-1)*blockFrames(MaxOrder))
		for k := uint64(0); k < need; k++ {
			b.removeFree(anchor+Frame(k*blockFrames(MaxOrder)), MaxOrder)
		}
		b.inUse += need * blockFrames(MaxOrder)
		b.freeTail(anchor, frames, MaxOrder)
		return anchor, nil
	}
	// A production OS would migrate pages to create the run; the simulator
	// treats failure as a hole source instead (see pt.ASAPAllocator).
	return 0, ErrOutOfMemory
}

// freeTail returns the frames beyond want within the allocated block of the
// given order back to the free lists, keeping the reservation exactly want
// frames (when want spans multiple stitched blocks the caller passes the
// total and the tail lies in the final block).
func (b *Buddy) freeTail(base Frame, want uint64, order int) {
	total := blockFrames(order)
	if n := (want + total - 1) / total; n > 1 {
		total *= n
	}
	for at := want; at < total; {
		// Free the largest aligned block that fits in [at, total).
		o := 0
		for o < MaxOrder &&
			(uint64(base)+at)&(blockFrames(o+1)-1) == 0 &&
			at+blockFrames(o+1) <= total {
			o++
		}
		b.Free(base+Frame(at), o)
		at += blockFrames(o)
	}
}

// ContiguousRuns returns the number of maximal runs of consecutive frames in
// fs (Table 2's "contiguous physical regions" statistic). fs may be in any
// order and is not modified.
func ContiguousRuns(fs []Frame) int {
	if len(fs) == 0 {
		return 0
	}
	sorted := make([]Frame, len(fs))
	copy(sorted, fs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	runs := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			runs++
		}
	}
	return runs
}
