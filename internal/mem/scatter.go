package mem

import "repro/internal/rng"

// Scatter hands out unique pseudo-randomly scattered frames from a physical
// frame space. It models the paper's host baseline ("mimicking the Linux
// buddy allocator's behavior by randomly scattering the PT pages") without
// the cost of simulating every data-page allocation: successive Alloc calls
// return frames that are unique and uniformly spread over [base, base+span).
type Scatter struct {
	base Frame
	perm *rng.Perm
	next uint64
}

// NewScatter returns a scatter allocator over span frames starting at base,
// with allocation order determined by seed.
func NewScatter(base Frame, span uint64, seed uint64) *Scatter {
	return &Scatter{base: base, perm: rng.NewPerm(span, seed)}
}

// Alloc returns the next scattered frame. It panics if the space is
// exhausted, which indicates a mis-sized simulation rather than a runtime
// condition a caller could handle.
func (s *Scatter) Alloc() Frame {
	if s.next >= s.perm.N() {
		panic("mem: scatter allocator exhausted")
	}
	f := s.base + Frame(s.perm.Apply(s.next))
	s.next++
	return f
}

// Allocated returns how many frames have been handed out.
func (s *Scatter) Allocated() uint64 { return s.next }

// Bump hands out consecutive frames starting at base. It is the degenerate
// "perfectly contiguous" allocator used for ASAP's reserved page-table
// regions and for carving fixed areas of the machine address space.
type Bump struct {
	next Frame
	end  Frame
}

// NewBump returns a bump allocator over [base, base+span).
func NewBump(base Frame, span uint64) *Bump {
	return &Bump{next: base, end: base + Frame(span)}
}

// Alloc returns the next frame in the region.
func (b *Bump) Alloc() Frame {
	if b.next >= b.end {
		panic("mem: bump allocator exhausted")
	}
	f := b.next
	b.next++
	return f
}

// Remaining returns the number of frames left in the region.
func (b *Bump) Remaining() uint64 { return uint64(b.end - b.next) }

// Reserve carves a contiguous run of frames from the region, making Bump
// usable wherever a contiguous-region reserver (like Buddy.Reserve) is
// expected.
func (b *Bump) Reserve(frames uint64) (Frame, error) {
	if frames > b.Remaining() {
		return 0, ErrOutOfMemory
	}
	f := b.next
	b.next += Frame(frames)
	return f, nil
}
