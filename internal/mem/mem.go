// Package mem models physical memory for the address-translation simulator:
// address and frame types, page/cache-line geometry, a Linux-style buddy
// allocator (used to place page-table pages in the baseline system), a
// deterministic scatter allocator (the paper's "randomly scattered PT pages"
// host baseline), and contiguous region reservations (the OS-side support
// ASAP needs for sorted page-table levels).
package mem

// Fundamental geometry of the simulated machine. These mirror x86-64 with
// 4 KB base pages and 64-byte cache lines.
const (
	PageShift = 12                    // log2 of the base page size
	PageSize  = 1 << PageShift        // base page size in bytes
	LineShift = 6                     // log2 of the cache line size
	LineBytes = 1 << LineShift        // cache line size in bytes
	PTEBytes  = 8                     // size of a page-table entry
	NodeShift = 9                     // log2 of entries per page-table node
	NodeSpan  = 1 << NodeShift        // entries per page-table node (512)
	HugeShift = PageShift + NodeShift // log2 of a 2 MB large page
	HugeSize  = 1 << HugeShift        // 2 MB large page size
)

// PhysAddr is a byte address in physical (machine) memory.
type PhysAddr uint64

// Frame is a physical page frame number (PhysAddr >> PageShift).
type Frame uint64

// VirtAddr is a byte address in some virtual (or guest-physical) address
// space.
type VirtAddr uint64

// Addr returns the physical byte address of the start of the frame.
func (f Frame) Addr() PhysAddr { return PhysAddr(f) << PageShift }

// Frame returns the frame containing the physical address.
func (a PhysAddr) Frame() Frame { return Frame(a >> PageShift) }

// Line returns the cache-line index of the physical address.
func (a PhysAddr) Line() uint64 { return uint64(a) >> LineShift }

// VPN returns the virtual page number of the address.
func (v VirtAddr) VPN() uint64 { return uint64(v) >> PageShift }

// PageOffset returns the offset of the address within its page.
func (v VirtAddr) PageOffset() uint64 { return uint64(v) & (PageSize - 1) }

// FromVPN returns the virtual address of the start of the page vpn.
func FromVPN(vpn uint64) VirtAddr { return VirtAddr(vpn << PageShift) }

// PagesFor returns the number of base pages needed to hold bytes.
func PagesFor(bytes uint64) uint64 {
	return (bytes + PageSize - 1) / PageSize
}

// GiB, MiB and KiB are convenience sizes for workload and machine
// configuration.
const (
	KiB = uint64(1) << 10
	MiB = uint64(1) << 20
	GiB = uint64(1) << 30
)

// NextPow2 returns the smallest power of two ≥ n (and 1 for n == 0).
func NextPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}
