package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuddyAllocUnique(t *testing.T) {
	b := NewBuddy(1 << 12)
	seen := make(map[Frame]bool)
	for i := 0; i < 1<<12; i++ {
		f, err := b.AllocPage()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if _, err := b.AllocPage(); err != ErrOutOfMemory {
		t.Fatalf("expected out of memory, got %v", err)
	}
}

func TestBuddyFreeCoalesces(t *testing.T) {
	b := NewBuddy(1 << 10)
	var frames []Frame
	for i := 0; i < 1<<10; i++ {
		f, err := b.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		b.Free(f, 0)
	}
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d after freeing everything", b.InUse())
	}
	// After full coalescing a max-size block must be allocatable again.
	if _, err := b.Alloc(10); err != nil {
		t.Fatalf("cannot allocate order-10 block after coalescing: %v", err)
	}
}

func TestBuddyAllocOrderAlignment(t *testing.T) {
	b := NewBuddy(1 << 14)
	for order := 0; order <= 8; order++ {
		f, err := b.Alloc(order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if uint64(f)&(blockFrames(order)-1) != 0 {
			t.Fatalf("order-%d block at %d not aligned", order, f)
		}
	}
}

func TestBuddyAllocAt(t *testing.T) {
	b := NewBuddy(1 << 10)
	if err := b.AllocAt(Frame(256), 4); err != nil {
		t.Fatalf("AllocAt on fresh memory: %v", err)
	}
	if err := b.AllocAt(Frame(256), 4); err != ErrNotFree {
		t.Fatalf("double AllocAt: got %v, want ErrNotFree", err)
	}
	// Overlapping block must also be rejected.
	if err := b.AllocAt(Frame(256), 6); err != ErrNotFree {
		t.Fatalf("overlapping AllocAt: got %v, want ErrNotFree", err)
	}
	// Unaligned requests are invalid.
	if err := b.AllocAt(Frame(3), 2); err == nil {
		t.Fatal("unaligned AllocAt succeeded")
	}
	// Out of range.
	if err := b.AllocAt(Frame(1<<10), 0); err != ErrNotFree {
		t.Fatalf("out-of-range AllocAt: got %v, want ErrNotFree", err)
	}
}

func TestBuddyAllocAtThenAllocDisjoint(t *testing.T) {
	b := NewBuddy(1 << 8)
	if err := b.AllocAt(Frame(0), 7); err != nil { // lower half
		t.Fatal(err)
	}
	for i := 0; i < 1<<7; i++ {
		f, err := b.AllocPage()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if f < Frame(1<<7) {
			t.Fatalf("allocation %d returned frame %d inside reserved range", i, f)
		}
	}
}

func TestBuddyReserveExactRun(t *testing.T) {
	b := NewBuddy(1 << 12)
	base, err := b.Reserve(100) // not a power of two
	if err != nil {
		t.Fatal(err)
	}
	if b.InUse() != 100 {
		t.Fatalf("InUse = %d after Reserve(100)", b.InUse())
	}
	// The reserved run must not be handed out again.
	seen := make(map[Frame]bool)
	for {
		f, err := b.AllocPage()
		if err != nil {
			break
		}
		seen[f] = true
	}
	for i := uint64(0); i < 100; i++ {
		if seen[base+Frame(i)] {
			t.Fatalf("reserved frame %d re-allocated", base+Frame(i))
		}
	}
}

func TestBuddyReserveStitched(t *testing.T) {
	// A reservation larger than the max block must still be contiguous.
	frames := uint64(4) << MaxOrder
	b := NewBuddy(frames)
	want := (uint64(2) << MaxOrder) + 5
	base, err := b.Reserve(want)
	if err != nil {
		t.Fatal(err)
	}
	if b.InUse() != want {
		t.Fatalf("InUse = %d, want %d", b.InUse(), want)
	}
	_ = base
}

func TestBuddyReserveTooLarge(t *testing.T) {
	b := NewBuddy(1 << 8)
	if _, err := b.Reserve(1 << 9); err == nil {
		t.Fatal("oversized Reserve succeeded")
	}
	if b.InUse() != 0 {
		t.Fatalf("failed Reserve leaked %d frames", b.InUse())
	}
}

func TestBuddyScattersAfterChurn(t *testing.T) {
	// After a random allocation/free history, sequential allocations should
	// no longer be contiguous — this is the property that motivates ASAP's
	// reserved regions.
	b := NewBuddy(1 << 14)
	s := rng.New(42)
	var live []Frame
	for i := 0; i < 20000; i++ {
		if len(live) > 0 && s.Bool(0.5) {
			k := s.Intn(len(live))
			b.Free(live[k], 0)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			f, err := b.AllocPage()
			if err != nil {
				continue
			}
			live = append(live, f)
		}
	}
	var run []Frame
	for i := 0; i < 256; i++ {
		f, err := b.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		run = append(run, f)
	}
	if runs := ContiguousRuns(run); runs < 8 {
		t.Fatalf("post-churn allocations formed only %d runs; buddy model too contiguous", runs)
	}
}

func TestBuddyPropertyAllocFreeBalance(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		b := NewBuddy(1 << 10)
		s := rng.New(seed)
		type blk struct {
			f     Frame
			order int
		}
		var live []blk
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				order := int(op>>1) % 4
				fr, err := b.Alloc(order)
				if err != nil {
					continue
				}
				live = append(live, blk{fr, order})
			} else {
				k := s.Intn(len(live))
				b.Free(live[k].f, live[k].order)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		var inUse uint64
		for _, l := range live {
			inUse += blockFrames(l.order)
		}
		return b.InUse() == inUse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyPropertyNoOverlap(t *testing.T) {
	f := func(orders []byte) bool {
		b := NewBuddy(1 << 12)
		used := make(map[Frame]bool)
		for _, o := range orders {
			order := int(o) % 5
			fr, err := b.Alloc(order)
			if err != nil {
				continue
			}
			for i := uint64(0); i < blockFrames(order); i++ {
				if used[fr+Frame(i)] {
					return false
				}
				used[fr+Frame(i)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestContiguousRuns(t *testing.T) {
	cases := []struct {
		name string
		in   []Frame
		want int
	}{
		{"empty", nil, 0},
		{"single", []Frame{5}, 1},
		{"one run", []Frame{3, 4, 5, 6}, 1},
		{"unsorted one run", []Frame{6, 4, 3, 5}, 1},
		{"two runs", []Frame{1, 2, 10, 11}, 2},
		{"all scattered", []Frame{1, 3, 5, 7}, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ContiguousRuns(c.in); got != c.want {
				t.Fatalf("ContiguousRuns(%v) = %d, want %d", c.in, got, c.want)
			}
		})
	}
}

func TestScatterUniqueAndSpread(t *testing.T) {
	s := NewScatter(Frame(1000), 1<<16, 9)
	seen := make(map[Frame]bool)
	var fs []Frame
	for i := 0; i < 4096; i++ {
		f := s.Alloc()
		if f < 1000 || f >= Frame(1000+1<<16) {
			t.Fatalf("frame %d outside scatter span", f)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
		fs = append(fs, f)
	}
	if runs := ContiguousRuns(fs); runs < 2048 {
		t.Fatalf("scatter allocations formed only %d runs of 4096; not scattered", runs)
	}
}

func TestBumpSequential(t *testing.T) {
	b := NewBump(Frame(10), 3)
	for i := 0; i < 3; i++ {
		if f := b.Alloc(); f != Frame(10+i) {
			t.Fatalf("bump alloc %d = %d", i, f)
		}
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
	assertPanics(t, "bump exhausted", func() { b.Alloc() })
}

func TestGeometryHelpers(t *testing.T) {
	if Frame(2).Addr() != PhysAddr(2*PageSize) {
		t.Fatal("Frame.Addr")
	}
	if PhysAddr(PageSize+5).Frame() != 1 {
		t.Fatal("PhysAddr.Frame")
	}
	if VirtAddr(3*PageSize+7).VPN() != 3 {
		t.Fatal("VirtAddr.VPN")
	}
	if VirtAddr(3*PageSize+7).PageOffset() != 7 {
		t.Fatal("VirtAddr.PageOffset")
	}
	if FromVPN(9) != VirtAddr(9*PageSize) {
		t.Fatal("FromVPN")
	}
	if PagesFor(1) != 1 || PagesFor(PageSize) != 1 || PagesFor(PageSize+1) != 2 {
		t.Fatal("PagesFor")
	}
	if PhysAddr(128).Line() != 2 {
		t.Fatal("PhysAddr.Line")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
