package vma

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mk(start, end uint64, name string, k Kind) *VMA {
	return &VMA{Start: mem.VirtAddr(start), End: mem.VirtAddr(end), Name: name, Kind: k}
}

func TestInsertAndFind(t *testing.T) {
	s := NewSpace()
	heap := mk(mem.PageSize, 10*mem.PageSize, "heap", Heap)
	lib := mk(20*mem.PageSize, 22*mem.PageSize, "lib", Lib)
	if err := s.Insert(heap); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(lib); err != nil {
		t.Fatal(err)
	}
	if got := s.Find(mem.VirtAddr(5 * mem.PageSize)); got != heap {
		t.Fatalf("Find in heap = %v", got)
	}
	if got := s.Find(mem.VirtAddr(21 * mem.PageSize)); got != lib {
		t.Fatalf("Find in lib = %v", got)
	}
	if got := s.Find(mem.VirtAddr(15 * mem.PageSize)); got != nil {
		t.Fatalf("Find in gap = %v, want nil", got)
	}
	if got := s.Find(mem.VirtAddr(10 * mem.PageSize)); got != nil {
		t.Fatalf("Find at exclusive end = %v, want nil", got)
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	s := NewSpace()
	if err := s.Insert(mk(0, 10*mem.PageSize, "a", Heap)); err != nil {
		t.Fatal(err)
	}
	cases := []*VMA{
		mk(5*mem.PageSize, 15*mem.PageSize, "tail-overlap", Heap),
		mk(0, 10*mem.PageSize, "exact", Heap),
		mk(2*mem.PageSize, 3*mem.PageSize, "inside", Heap),
	}
	for _, c := range cases {
		if err := s.Insert(c); err == nil {
			t.Fatalf("Insert(%v) succeeded, want overlap error", c)
		}
	}
	// Adjacent is fine.
	if err := s.Insert(mk(10*mem.PageSize, 11*mem.PageSize, "adjacent", Lib)); err != nil {
		t.Fatalf("adjacent insert failed: %v", err)
	}
}

func TestInsertRejectsInvalid(t *testing.T) {
	s := NewSpace()
	if err := s.Insert(mk(mem.PageSize, mem.PageSize, "empty", Heap)); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := s.Insert(mk(100, mem.PageSize, "unaligned", Heap)); err == nil {
		t.Fatal("unaligned range accepted")
	}
}

func TestGrow(t *testing.T) {
	s := NewSpace()
	heap := mk(0, 4*mem.PageSize, "heap", Heap)
	next := mk(8*mem.PageSize, 9*mem.PageSize, "next", Lib)
	if err := s.Insert(heap); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(next); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(heap, 4*mem.PageSize); err != nil {
		t.Fatalf("grow into gap: %v", err)
	}
	if heap.End != mem.VirtAddr(8*mem.PageSize) {
		t.Fatalf("heap end = %#x", uint64(heap.End))
	}
	if err := s.Grow(heap, mem.PageSize); err == nil {
		t.Fatal("grow into neighbour succeeded")
	}
	if err := s.Grow(heap, 100); err == nil {
		t.Fatal("unaligned growth accepted")
	}
	foreign := mk(100*mem.PageSize, 101*mem.PageSize, "foreign", Heap)
	if err := s.Grow(foreign, mem.PageSize); err == nil {
		t.Fatal("growing a VMA not in the space succeeded")
	}
}

func TestCoverageCount(t *testing.T) {
	s := NewSpace()
	// One huge heap plus many tiny libraries: 1 VMA covers 99%.
	if err := s.Insert(mk(0, 1000*mem.PageSize, "heap", Heap)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		base := (2000 + 2*i) * mem.PageSize
		if err := s.Insert(mk(base, base+mem.PageSize, "lib", Lib)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CoverageCount(0.99); got != 1 {
		t.Fatalf("CoverageCount(0.99) = %d, want 1", got)
	}
	if got := s.CoverageCount(1.0); got != 6 {
		t.Fatalf("CoverageCount(1.0) = %d, want 6", got)
	}
	if got := NewSpace().CoverageCount(0.99); got != 0 {
		t.Fatalf("empty CoverageCount = %d", got)
	}
}

func TestLargest(t *testing.T) {
	s := NewSpace()
	small := mk(0, mem.PageSize, "small", Lib)
	big := mk(10*mem.PageSize, 110*mem.PageSize, "big", Heap)
	mid := mk(200*mem.PageSize, 210*mem.PageSize, "mid", MMap)
	for _, v := range []*VMA{small, big, mid} {
		if err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	top := s.Largest(2)
	if len(top) != 2 || top[0] != big || top[1] != mid {
		t.Fatalf("Largest(2) = %v", top)
	}
	if got := s.Largest(10); len(got) != 3 {
		t.Fatalf("Largest(10) returned %d", len(got))
	}
}

func TestTotalBytesAndLen(t *testing.T) {
	s := NewSpace()
	if err := s.Insert(mk(0, 3*mem.PageSize, "a", Heap)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(mk(10*mem.PageSize, 11*mem.PageSize, "b", Lib)); err != nil {
		t.Fatal(err)
	}
	if s.TotalBytes() != 4*mem.PageSize {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPropertyFindMatchesContains(t *testing.T) {
	s := NewSpace()
	for i := uint64(0); i < 32; i++ {
		base := i * 10 * mem.PageSize
		if err := s.Insert(mk(base, base+3*mem.PageSize, "v", Heap)); err != nil {
			t.Fatal(err)
		}
	}
	f := func(raw uint64) bool {
		va := mem.VirtAddr(raw % (320 * 10 * mem.PageSize))
		found := s.Find(va)
		for _, v := range s.VMAs() {
			if v.Contains(va) {
				return found == v
			}
		}
		return found == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Heap: "heap", Stack: "stack", Lib: "lib", MMap: "mmap", GuestRAM: "guest-ram",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
