// Package vma models per-process virtual memory areas: the non-overlapping
// virtual address ranges (heap, stack, mapped files, libraries) that an OS
// tracks in its VMA tree. ASAP's range registers describe exactly these
// ranges, and the paper's Table 2 statistics (VMA counts, footprint coverage)
// are computed over them.
package vma

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Kind classifies a VMA by its role in the process image.
type Kind int

// VMA kinds. Heap and MMap areas hold application datasets and are the
// prefetch targets; Lib and Stack areas are small and rarely miss the TLB
// (paper §3.2).
const (
	Heap Kind = iota
	Stack
	Lib
	MMap
	GuestRAM // the single host VMA backing an entire guest VM (paper §3.6)
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Heap:
		return "heap"
	case Stack:
		return "stack"
	case Lib:
		return "lib"
	case MMap:
		return "mmap"
	case GuestRAM:
		return "guest-ram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// VMA is a contiguous virtual address range [Start, End).
type VMA struct {
	Start mem.VirtAddr
	End   mem.VirtAddr
	Name  string
	Kind  Kind
}

// Bytes returns the size of the area in bytes.
func (v *VMA) Bytes() uint64 { return uint64(v.End - v.Start) }

// Pages returns the size of the area in base pages.
func (v *VMA) Pages() uint64 { return v.Bytes() >> mem.PageShift }

// Contains reports whether va falls inside the area.
func (v *VMA) Contains(va mem.VirtAddr) bool { return va >= v.Start && va < v.End }

// String formats the area for diagnostics.
func (v *VMA) String() string {
	return fmt.Sprintf("%s[%#x-%#x %s]", v.Name, uint64(v.Start), uint64(v.End), v.Kind)
}

// Space is an ordered, non-overlapping set of VMAs — the simulator's
// equivalent of the Linux VMA tree.
type Space struct {
	vmas []*VMA // sorted by Start
}

// NewSpace returns an empty address-space layout.
func NewSpace() *Space { return &Space{} }

// Insert adds the area, rejecting empty, misaligned or overlapping ranges.
func (s *Space) Insert(v *VMA) error {
	if v.End <= v.Start {
		return fmt.Errorf("vma: empty range %s", v)
	}
	if v.Start.PageOffset() != 0 || v.End.PageOffset() != 0 {
		return fmt.Errorf("vma: range %s not page aligned", v)
	}
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	if i > 0 && s.vmas[i-1].End > v.Start {
		return fmt.Errorf("vma: %s overlaps %s", v, s.vmas[i-1])
	}
	if i < len(s.vmas) && s.vmas[i].Start < v.End {
		return fmt.Errorf("vma: %s overlaps %s", v, s.vmas[i])
	}
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	return nil
}

// Find returns the area containing va, or nil.
func (s *Space) Find(va mem.VirtAddr) *VMA {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > va })
	if i < len(s.vmas) && s.vmas[i].Contains(va) {
		return s.vmas[i]
	}
	return nil
}

// Grow extends v upward by bytes (the brk/sbrk direction of paper §3.7.2),
// failing if the extension would collide with the next area.
func (s *Space) Grow(v *VMA, bytes uint64) error {
	if bytes%mem.PageSize != 0 {
		return fmt.Errorf("vma: growth of %d bytes not page aligned", bytes)
	}
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	if i >= len(s.vmas) || s.vmas[i] != v {
		return fmt.Errorf("vma: %s not in this space", v)
	}
	newEnd := v.End + mem.VirtAddr(bytes)
	if i+1 < len(s.vmas) && s.vmas[i+1].Start < newEnd {
		return fmt.Errorf("vma: growing %s collides with %s", v, s.vmas[i+1])
	}
	v.End = newEnd
	return nil
}

// VMAs returns the areas in address order. The returned slice must not be
// modified.
func (s *Space) VMAs() []*VMA { return s.vmas }

// Len returns the number of areas.
func (s *Space) Len() int { return len(s.vmas) }

// TotalBytes returns the summed size of all areas.
func (s *Space) TotalBytes() uint64 {
	var t uint64
	for _, v := range s.vmas {
		t += v.Bytes()
	}
	return t
}

// CoverageCount returns how many areas (largest first) are needed to cover at
// least frac of the total footprint — Table 2's "VMAs for 99% footprint
// coverage" statistic.
func (s *Space) CoverageCount(frac float64) int {
	if len(s.vmas) == 0 {
		return 0
	}
	sizes := make([]uint64, len(s.vmas))
	for i, v := range s.vmas {
		sizes[i] = v.Bytes()
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	target := frac * float64(s.TotalBytes())
	var sum float64
	for i, b := range sizes {
		sum += float64(b)
		if sum >= target {
			return i + 1
		}
	}
	return len(sizes)
}

// Largest returns the n largest areas, largest first. It is used to pick
// ASAP's prefetch-target VMAs when range registers are scarce (paper §3.4).
func (s *Space) Largest(n int) []*VMA {
	out := make([]*VMA, len(s.vmas))
	copy(out, s.vmas)
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes() > out[j].Bytes() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}
