package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pwc"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/walker"
	"repro/internal/workload"
)

// Result carries every metric the paper's tables and figures need.
type Result struct {
	Scenario Scenario

	// Translation metrics (measured window).
	Accesses     uint64
	Walks        uint64
	WalkCycles   uint64
	AvgWalkLat   float64 // Fig 3/8/10/12: average page walk latency
	TLBMissRatio float64
	MPKI         float64 // L2-TLB misses per kilo-instruction (Table 7)

	// Execution-time model (Fig 2, Table 6).
	TotalCycles  float64
	WalkFraction float64 // share of cycles spent in page walks

	// Fig 9: page-walk requests per PT level × serving hierarchy level
	// (native-dimension accesses only).
	Breakdown stats.Breakdown

	// ASAP internals. RangeHitRate covers the native engine (or the guest
	// engine under virtualization); HostRangeHitRate covers the host-dimension
	// engine, which a virtualized walk consults once per guest-walk step.
	// RangeOverflowed counts VMA descriptors dropped during the measured
	// window because every range register was occupied. Single-process runs
	// install all descriptors before warmup, so they report 0 here; under
	// multi-process scheduling every switch-in restores the incoming
	// process's descriptor file and the capacity-limited drops recur inside
	// the window.
	PrefetchIssued   uint64
	PrefetchCovered  uint64
	RangeHitRate     float64
	HostRangeHitRate float64
	MSHRDropped      uint64
	RangeOverflowed  uint64

	// Multi-process metrics (measured window). Switches counts context
	// switches taken; ShootdownFlushes counts TLB invalidation events — full
	// flushes under Params.FlushOnSwitch, ASID shootdowns otherwise (tagged
	// retention performs none during normal scheduling, so it reports 0).
	Switches         uint64
	ShootdownFlushes uint64
}

// refSource produces the reference stream that drives a run. ok reports
// whether a reference was produced: synthetic generators never end, but a
// replayed trace turns false when it runs dry, which ends the run.
type refSource interface {
	Next() (va mem.VirtAddr, ok bool)
}

// genSource adapts the endless synthetic generator to the source contract.
type genSource struct{ g *workload.Generator }

func (s genSource) Next() (mem.VirtAddr, bool) { return s.g.Next(), true }

// RefTap observes the reference stream of a run, process by process — the
// recorder hook behind trace capture. The simulator announces each process
// (its spec, realized layout and generator seed) before that process's first
// reference; every reference then flows through Ref in execution order.
// trace.Recorder implements this interface.
type RefTap interface {
	BeginProcess(pid int, spec workload.Spec, layout *workload.Layout, seed uint64) error
	Ref(pid int, va mem.VirtAddr)
}

// tapSource forwards a source's references to the tap as they are consumed.
type tapSource struct {
	src refSource
	tap RefTap
	pid int
}

func (t tapSource) Next() (mem.VirtAddr, bool) {
	va, ok := t.src.Next()
	if ok {
		t.tap.Ref(t.pid, va)
	}
	return va, ok
}

// tapped announces a process to the tap (when one is attached) and wraps its
// source so every consumed reference is observed.
func tapped(src refSource, tap RefTap, pid int, spec workload.Spec, layout *workload.Layout, seed uint64) (refSource, error) {
	if tap == nil {
		return src, nil
	}
	if err := tap.BeginProcess(pid, spec, layout, seed); err != nil {
		return nil, err
	}
	return tapSource{src: src, tap: tap, pid: pid}, nil
}

// Run simulates one scenario cell and returns its metrics.
func Run(sc Scenario, p Params) (*Result, error) {
	return RunTapped(sc, p, nil)
}

// RunTapped simulates one scenario cell with an optional reference tap
// observing the reference stream (nil behaves exactly like Run — the tap is
// pure observation and never perturbs the simulation).
func RunTapped(sc Scenario, p Params, tap RefTap) (*Result, error) {
	h := cache.NewHierarchy(p.Cache)
	tl := tlb.NewTwoLevel(sc.ClusteredTLB)
	mshr := cache.NewMSHRFile(p.MSHRs)
	res := &Result{Scenario: sc}

	var co *workload.CoRunner
	if sc.Colocated {
		co = workload.NewCoRunner(coRunnerBase.Addr(), coRunnerSpan*mem.PageSize, p.Seed^0xc0)
	}

	if sc.Trace != "" && (sc.Virtualized || p.Processes > 1) {
		return res, fmt.Errorf("sim: trace replay is native and single-process (scenario %s)", sc.Name())
	}
	if p.Processes > 1 {
		if sc.Virtualized {
			return res, fmt.Errorf("sim: multi-process scheduling is native-only (Processes=%d with Virtualized)", p.Processes)
		}
		return res, runMulti(sc, p, h, tl, mshr, co, res, tap)
	}
	if sc.Virtualized {
		return res, runVirt(sc, p, h, tl, mshr, co, res, tap)
	}
	return res, runNative(sc, p, h, tl, mshr, co, res, tap)
}

// engineFor loads descriptors into a fresh range-register file, or returns
// nil for a disabled configuration.
func engineFor(cfg core.Config, descs []*core.Descriptor, capacity int) *core.Engine {
	if !cfg.Enabled() {
		return nil
	}
	e := core.NewEngine(capacity, cfg)
	for _, d := range descs {
		e.Install(d)
	}
	return e
}

func runNative(sc Scenario, p Params, h *cache.Hierarchy, tl *tlb.TwoLevel,
	mshr *cache.MSHRFile, co *workload.CoRunner, res *Result, tap RefTap) error {
	var asm *nativeAssembly
	var src refSource
	if sc.Trace != "" {
		tr, err := traceByDigest(sc.Trace)
		if err != nil {
			return err
		}
		if asm, err = traceNativeFor(tr, sc.ASAP.Native.Enabled(), p); err != nil {
			return err
		}
		src = tr.Replay()
	} else {
		var err error
		if asm, err = nativeFor(sc.Workload, sc.ASAP.Native.Enabled(), p); err != nil {
			return err
		}
		src = genSource{workload.NewGenerator(sc.Workload, asm.layout, p.Seed)}
	}
	src, err := tapped(src, tap, 0, sc.Workload, asm.layout, p.Seed)
	if err != nil {
		return err
	}
	engine := engineFor(sc.ASAP.Native, asm.descs, p.RangeRegisters)
	w := &walker.Walker{H: h, PWC: pwc.New(p.PWC), ASAP: engine, MSHR: mshr}

	neighbors := func(vpn uint64) (uint64, bool) {
		if !asm.layout.PresentVPN(vpn) {
			return 0, false
		}
		return uint64(asm.frames.Frame(vpn)), true
	}

	var wr walker.Result
	var now int64
	measure := newMeter(sc.Workload, p)
	var walksTotal, refs int
	var coDebt float64
	measuring := false
	for refs = 0; refs < p.MaxRefs; refs++ {
		if !measuring && walksTotal >= p.WarmupWalks {
			measure.begin(tl, engine, nil, mshr)
			measuring = true
		}
		if measuring && int(measure.walks) >= p.MeasureWalks {
			break
		}
		va, ok := src.Next()
		if !ok {
			break // the replayed trace ran dry
		}
		pfn := uint64(asm.frames.Frame(va.VPN()))
		refCycles := sc.Workload.DataStallCycles + sc.Workload.InstrPerRef*p.CPIBase
		if !tl.LookupVA(va, pfn, neighbors) {
			w.Walk(now, asm.table, va, &wr)
			now += int64(wr.Cycles)
			refCycles += float64(wr.Cycles)
			tl.InsertVA(va, wr.Huge, pfn, neighbors)
			walksTotal++
			if measuring {
				measure.walk(&wr, res)
			}
		}
		// Following the paper's methodology, the application's own data
		// accesses do not flow through the simulated hierarchy; page-walk
		// traffic and the SMT co-runner's stream do (§4). The co-runner
		// issues one random request per CoAccessCycles of app progress.
		if co != nil {
			for coDebt += refCycles / p.CoAccessCycles; coDebt >= 1; coDebt-- {
				h.Access(co.Next())
			}
		}
		now += int64(sc.Workload.DataStallCycles)
		if measuring {
			measure.access()
		}
	}
	if !measuring {
		// The stream ended (a short trace, or MaxRefs) before warmup
		// completed: report a clean empty window rather than folding warmup
		// into the measurements.
		measure.begin(tl, engine, nil, mshr)
	}
	measure.finish(res, tl, engine, nil, mshr)
	return nil
}

func runVirt(sc Scenario, p Params, h *cache.Hierarchy, tl *tlb.TwoLevel,
	mshr *cache.MSHRFile, co *workload.CoRunner, res *Result, tap RefTap) error {
	asm, err := virtFor(sc.Workload, sc.ASAP.Guest.Enabled(), sc.ASAP.Host.Enabled(), sc.HostHugePages, p)
	if err != nil {
		return err
	}
	w := &walker.Nested{
		H:         h,
		GuestPWC:  pwc.New(p.PWC),
		HostPWC:   pwc.New(p.PWC),
		GuestASAP: engineFor(sc.ASAP.Guest, asm.guestDescs, p.RangeRegisters),
		HostASAP:  engineFor(sc.ASAP.Host, asm.hostDescs, p.RangeRegisters),
		MSHR:      mshr,
		GuestPT:   asm.guestPT,
		HostPT:    asm.ept,
		Translate: asm.gmap.Translate,
	}
	src, err := tapped(genSource{workload.NewGenerator(sc.Workload, asm.layout, p.Seed)},
		tap, 0, sc.Workload, asm.layout, p.Seed)
	if err != nil {
		return err
	}

	var wr walker.Result
	var now int64
	measure := newMeter(sc.Workload, p)
	var walksTotal, refs int
	var coDebt float64
	measuring := false
	for refs = 0; refs < p.MaxRefs; refs++ {
		if !measuring && walksTotal >= p.WarmupWalks {
			measure.begin(tl, w.GuestASAP, w.HostASAP, mshr)
			measuring = true
		}
		if measuring && int(measure.walks) >= p.MeasureWalks {
			break
		}
		va, ok := src.Next()
		if !ok {
			break
		}
		gpa := asm.dataGPA(va)
		maddr := asm.gmap.Translate(gpa)
		refCycles := sc.Workload.DataStallCycles + sc.Workload.InstrPerRef*p.CPIBase
		if !tl.LookupVA(va, uint64(maddr.Frame()), nil) {
			w.Walk(now, va, gpa, &wr)
			now += int64(wr.Cycles)
			refCycles += float64(wr.Cycles)
			tl.InsertVA(va, wr.Huge, uint64(maddr.Frame()), nil)
			walksTotal++
			if measuring {
				measure.walk(&wr, res)
			}
		}
		if co != nil {
			for coDebt += refCycles / p.CoAccessCycles; coDebt >= 1; coDebt-- {
				h.Access(co.Next())
			}
		}
		now += int64(sc.Workload.DataStallCycles)
		if measuring {
			measure.access()
		}
	}
	if !measuring {
		measure.begin(tl, w.GuestASAP, w.HostASAP, mshr)
	}
	measure.finish(res, tl, w.GuestASAP, w.HostASAP, mshr)
	return nil
}

// meter accumulates measured-window statistics and the execution-time model.
type meter struct {
	p               Params
	spec            workload.Spec
	accesses        uint64
	walks           uint64
	walkCycles      uint64
	dataCycles      float64
	switchCycles    float64
	switches        uint64
	instr           float64 // per-access instruction sum (multi-process only)
	multi           bool    // accesses span processes with differing specs
	tlbAccesses0    uint64
	tlbMisses0      uint64
	flushes0        uint64
	lookups0        uint64
	rangeHits0      uint64
	overflowed0     uint64
	hostLookups0    uint64
	hostHits0       uint64
	hostOverflowed0 uint64
	dropped0        uint64
}

func newMeter(spec workload.Spec, p Params) *meter {
	return &meter{p: p, spec: spec}
}

// begin snapshots cumulative TLB, range-register and MSHR counters at the
// warmup/measure boundary so finish can report measured-window deltas. Both
// translation dimensions are snapshotted: engine is the native (or guest)
// ASAP engine, host the host-dimension engine of a nested walk (nil outside
// virtualization).
func (m *meter) begin(tl *tlb.TwoLevel, engine, host *core.Engine, mshr *cache.MSHRFile) {
	m.tlbAccesses0 = tl.Accesses
	m.tlbMisses0 = tl.L2Misses
	m.flushes0 = tl.Flushes
	if engine != nil {
		m.lookups0 = engine.Lookups()
		m.rangeHits0 = engine.RangeHits()
		m.overflowed0 = engine.Overflowed()
	}
	if host != nil {
		m.hostLookups0 = host.Lookups()
		m.hostHits0 = host.RangeHits()
		m.hostOverflowed0 = host.Overflowed()
	}
	m.dropped0 = mshr.Dropped()
}

func (m *meter) access() {
	m.accesses++
	m.dataCycles += m.spec.DataStallCycles
}

// accessOf accounts one reference of the currently scheduled process. Unlike
// access, it accumulates instructions per reference, because a mix's
// processes retire different instruction counts per access; finish then uses
// the accumulated sum instead of accesses × the primary spec's rate.
func (m *meter) accessOf(spec workload.Spec) {
	m.accesses++
	m.dataCycles += spec.DataStallCycles
	m.instr += spec.InstrPerRef
	m.multi = true
}

// contextSwitch accounts one measured-window switch and its modeled cost.
func (m *meter) contextSwitch(cycles float64) {
	m.switches++
	m.switchCycles += cycles
}

func (m *meter) walk(wr *walker.Result, res *Result) {
	m.walks++
	m.walkCycles += uint64(wr.Cycles)
	res.PrefetchIssued += uint64(wr.PrefetchIssued)
	res.PrefetchCovered += uint64(wr.PrefetchCovered)
	for _, a := range wr.Accesses[:wr.N] {
		if a.Dim == walker.DimNative {
			res.Breakdown.Add(int(a.Level), a.Served)
		}
	}
}

func (m *meter) finish(res *Result, tl *tlb.TwoLevel, engine, host *core.Engine, mshr *cache.MSHRFile) {
	res.Accesses = m.accesses
	res.Walks = m.walks
	res.WalkCycles = m.walkCycles
	if m.walks > 0 {
		res.AvgWalkLat = float64(m.walkCycles) / float64(m.walks)
	}
	if n := tl.Accesses - m.tlbAccesses0; n > 0 {
		res.TLBMissRatio = float64(tl.L2Misses-m.tlbMisses0) / float64(n)
	}
	instructions := float64(m.accesses) * m.spec.InstrPerRef
	if m.multi {
		instructions = m.instr
	}
	if instructions > 0 {
		res.MPKI = float64(tl.L2Misses-m.tlbMisses0) / (instructions / 1000)
	}
	coreCycles := instructions * m.p.CPIBase
	res.TotalCycles = coreCycles + m.dataCycles + float64(m.walkCycles) + m.switchCycles
	if res.TotalCycles > 0 {
		res.WalkFraction = float64(m.walkCycles) / res.TotalCycles
	}
	if engine != nil {
		if lookups := engine.Lookups() - m.lookups0; lookups > 0 {
			res.RangeHitRate = float64(engine.RangeHits()-m.rangeHits0) / float64(lookups)
		}
		res.RangeOverflowed += engine.Overflowed() - m.overflowed0
	}
	if host != nil {
		if lookups := host.Lookups() - m.hostLookups0; lookups > 0 {
			res.HostRangeHitRate = float64(host.RangeHits()-m.hostHits0) / float64(lookups)
		}
		res.RangeOverflowed += host.Overflowed() - m.hostOverflowed0
	}
	res.MSHRDropped = mshr.Dropped() - m.dropped0
	res.Switches = m.switches
	res.ShootdownFlushes = tl.Flushes - m.flushes0
}
