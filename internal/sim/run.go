package sim

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/walker"
	"repro/internal/workload"
)

// ctxCheckMask paces cancellation checks in the reference loops: the context
// is polled every ctxCheckMask+1 references. 4096 keeps the poll far off the
// hot path (one interface call per ~4k translate steps, ≤1% on the walk
// micros per the bench guard) while still bounding how long a cancelled run
// keeps simulating to a few microseconds.
const ctxCheckMask = 4096 - 1

// Result carries every metric the paper's tables and figures need.
type Result struct {
	Scenario Scenario

	// Translation metrics (measured window).
	Accesses     uint64
	Walks        uint64
	WalkCycles   uint64
	AvgWalkLat   float64 // Fig 3/8/10/12: average page walk latency
	TLBMissRatio float64
	MPKI         float64 // L2-TLB misses per kilo-instruction (Table 7)

	// Execution-time model (Fig 2, Table 6).
	TotalCycles  float64
	WalkFraction float64 // share of cycles spent in page walks

	// Fig 9: page-walk requests per PT level × serving hierarchy level
	// (native-dimension accesses only).
	Breakdown stats.Breakdown

	// Acceleration-path internals. RangeHitRate covers the scheme's primary
	// mechanism — ASAP range-register lookups (or the guest engine under
	// virtualization), Victima's L2 residency probes, Revelator's hash-table
	// probes; HostRangeHitRate covers the host-dimension engine, which a
	// virtualized walk consults once per guest-walk step. RangeOverflowed
	// counts VMA descriptors dropped during the measured window because
	// every range register was occupied. Single-process runs install all
	// descriptors before warmup, so they report 0 here; under multi-process
	// scheduling every switch-in restores the incoming process's descriptor
	// file and the capacity-limited drops recur inside the window.
	PrefetchIssued   uint64
	PrefetchCovered  uint64
	RangeHitRate     float64
	HostRangeHitRate float64
	MSHRDropped      uint64
	RangeOverflowed  uint64

	// Multi-process metrics (measured window). Switches counts context
	// switches taken; ShootdownFlushes counts TLB invalidation events — full
	// flushes under Params.FlushOnSwitch, ASID shootdowns otherwise (tagged
	// retention performs none during normal scheduling, so it reports 0).
	Switches         uint64
	ShootdownFlushes uint64
}

// refSource produces the reference stream that drives a run. ok reports
// whether a reference was produced: synthetic generators never end, but a
// replayed trace turns false when it runs dry, which ends the run.
type refSource interface {
	Next() (va mem.VirtAddr, ok bool)
}

// genSource adapts the endless synthetic generator to the source contract.
type genSource struct{ g *workload.Generator }

func (s genSource) Next() (mem.VirtAddr, bool) { return s.g.Next(), true }

// RefTap observes the reference stream of a run, process by process — the
// recorder hook behind trace capture. The simulator announces each process
// (its spec, realized layout and generator seed) before that process's first
// reference; every reference then flows through Ref in execution order.
// trace.Recorder implements this interface.
type RefTap interface {
	BeginProcess(pid int, spec workload.Spec, layout *workload.Layout, seed uint64) error
	Ref(pid int, va mem.VirtAddr)
}

// tapSource forwards a source's references to the tap as they are consumed.
type tapSource struct {
	src refSource
	tap RefTap
	pid int
}

func (t tapSource) Next() (mem.VirtAddr, bool) {
	va, ok := t.src.Next()
	if ok {
		t.tap.Ref(t.pid, va)
	}
	return va, ok
}

// tapped announces a process to the tap (when one is attached) and wraps its
// source so every consumed reference is observed.
func tapped(src refSource, tap RefTap, pid int, spec workload.Spec, layout *workload.Layout, seed uint64) (refSource, error) {
	if tap == nil {
		return src, nil
	}
	if err := tap.BeginProcess(pid, spec, layout, seed); err != nil {
		return nil, err
	}
	return tapSource{src: src, tap: tap, pid: pid}, nil
}

// Run simulates one scenario cell and returns its metrics.
func Run(sc Scenario, p Params) (*Result, error) {
	return RunTappedCtx(context.Background(), sc, p, nil)
}

// RunCtx is Run under a context: the reference loops poll ctx every few
// thousand references (see ctxCheckMask) and abort with ctx.Err() when it is
// cancelled or its deadline passes, so a stuck or oversized cell cannot hold
// a worker hostage. A cancelled run returns no partial metrics — callers that
// want partial grids handle cancellation per cell (see internal/asapd).
func RunCtx(ctx context.Context, sc Scenario, p Params) (*Result, error) {
	return RunTappedCtx(ctx, sc, p, nil)
}

// RunTapped simulates one scenario cell with an optional reference tap
// observing the reference stream (nil behaves exactly like Run — the tap is
// pure observation and never perturbs the simulation).
func RunTapped(sc Scenario, p Params, tap RefTap) (*Result, error) {
	return RunTappedCtx(context.Background(), sc, p, tap)
}

// RunTappedCtx is RunTapped under a context (see RunCtx for the cancellation
// contract).
func RunTappedCtx(ctx context.Context, sc Scenario, p Params, tap RefTap) (*Result, error) {
	return RunObserved(ctx, sc, p, tap, nil)
}

// RunObserved is the fully instrumented entry point: RunTappedCtx plus an
// optional cycle-domain event tracer observing the translation machinery
// (nil behaves exactly like RunTappedCtx — observation never perturbs the
// simulation, so metrics are identical with and without a tracer).
func RunObserved(ctx context.Context, sc Scenario, p Params, tap RefTap, tr *obs.Tracer) (*Result, error) {
	h := cache.NewHierarchy(p.Cache)
	mshr := cache.NewMSHRFile(p.MSHRs)
	res := &Result{Scenario: sc}

	if err := mmu.Validate(sc.Scheme); err != nil {
		return res, err
	}
	if sc.SchemeName() != "asap" {
		// Rival schemes replace the whole miss-handling path; combinations
		// that would silently drop a requested dimension are rejected.
		if sc.Virtualized {
			return res, fmt.Errorf("sim: scheme %s is native-only (scenario %s)", sc.SchemeName(), sc.Name())
		}
		if sc.ASAP.Enabled() {
			return res, fmt.Errorf("sim: scheme %s does not combine with ASAP prefetching (scenario %s)", sc.SchemeName(), sc.Name())
		}
	}

	var co *workload.CoRunner
	if sc.Colocated {
		co = workload.NewCoRunner(coRunnerBase.Addr(), coRunnerSpan*mem.PageSize, p.Seed^0xc0)
	}

	if sc.Trace != "" && (sc.Virtualized || p.Processes > 1) {
		return res, fmt.Errorf("sim: trace replay is native and single-process (scenario %s)", sc.Name())
	}
	if p.Processes > 1 {
		if sc.Virtualized {
			return res, fmt.Errorf("sim: multi-process scheduling is native-only (Processes=%d with Virtualized)", p.Processes)
		}
		return res, runMulti(ctx, sc, p, h, mshr, co, res, tap, tr)
	}
	if sc.Virtualized {
		return res, runVirt(ctx, sc, p, h, mshr, co, res, tap, tr)
	}
	return res, runNative(ctx, sc, p, h, mshr, co, res, tap, tr)
}

// schemeFor constructs the scenario's native translation scheme over the
// run's shared hierarchy and MSHR file.
func schemeFor(sc Scenario, p Params, h *cache.Hierarchy, mshr *cache.MSHRFile, tr *obs.Tracer) (mmu.Scheme, error) {
	return mmu.New(sc.SchemeName(), mmu.Config{
		Hier:           h,
		MSHR:           mshr,
		PWC:            p.PWC,
		ClusteredTLB:   sc.ClusteredTLB,
		ASAP:           sc.ASAP.Native,
		RangeRegisters: p.RangeRegisters,
		FlushOnSwitch:  p.FlushOnSwitch,
		Trace:          tr,
	})
}

// process exposes a native assembly as the per-address-space state a
// translation scheme consumes.
func (a *nativeAssembly) process() *mmu.Process {
	layout, frames := a.layout, a.frames
	return &mmu.Process{
		Table: a.table,
		Frame: func(vpn uint64) uint64 { return uint64(frames.Frame(vpn)) },
		Neighbors: func(vpn uint64) (uint64, bool) {
			if !layout.PresentVPN(vpn) {
				return 0, false
			}
			return uint64(frames.Frame(vpn)), true
		},
		Descs: a.descs,
	}
}

// drive replays a single-process reference stream through the scheme: the
// shared measurement loop of the native, virtualized and trace-driven runs.
func drive(ctx context.Context, sc Scenario, p Params, s mmu.Scheme, src refSource,
	h *cache.Hierarchy, co *workload.CoRunner, res *Result, tr *obs.Tracer) error {
	var wr walker.Result
	var now int64
	measure := newMeter(sc.Workload, p)
	var walksTotal, refs int
	var coDebt float64
	measuring := false
	scheme := sc.SchemeName()
	for refs = 0; refs < p.MaxRefs; refs++ {
		if refs&ctxCheckMask == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if !measuring && walksTotal >= p.WarmupWalks {
			measure.begin(s.Counters())
			measuring = true
			if tr != nil {
				tr.MeasureBegin(now)
			}
		}
		if measuring && int(measure.walks) >= p.MeasureWalks {
			break
		}
		va, ok := src.Next()
		if !ok {
			break // the replayed trace ran dry
		}
		refCycles := sc.Workload.DataStallCycles + sc.Workload.InstrPerRef*p.CPIBase
		if s.Translate(now, va, &wr) {
			if tr != nil {
				tr.WalkEnd(now, wr.Cycles, scheme, measuring)
			}
			now += int64(wr.Cycles)
			refCycles += float64(wr.Cycles)
			walksTotal++
			if measuring {
				measure.walk(&wr, res)
			}
		}
		// Following the paper's methodology, the application's own data
		// accesses do not flow through the simulated hierarchy; page-walk
		// traffic and the SMT co-runner's stream do (§4). The co-runner
		// issues one random request per CoAccessCycles of app progress.
		if co != nil {
			for coDebt += refCycles / p.CoAccessCycles; coDebt >= 1; coDebt-- {
				h.Access(co.Next())
			}
		}
		now += int64(sc.Workload.DataStallCycles)
		if measuring {
			measure.access()
		}
	}
	if !measuring {
		// The stream ended (a short trace, or MaxRefs) before warmup
		// completed: report a clean empty window rather than folding warmup
		// into the measurements.
		measure.begin(s.Counters())
		if tr != nil {
			tr.MeasureBegin(now)
		}
	}
	if tr != nil {
		tr.MeasureEnd(now)
	}
	measure.finish(res, s.Counters())
	return nil
}

func runNative(ctx context.Context, sc Scenario, p Params, h *cache.Hierarchy,
	mshr *cache.MSHRFile, co *workload.CoRunner, res *Result, tap RefTap, tr *obs.Tracer) error {
	var asm *nativeAssembly
	var src refSource
	if sc.Trace != "" {
		tr, err := traceByDigest(sc.Trace)
		if err != nil {
			return err
		}
		if asm, err = traceNativeFor(tr, sc.ASAP.Native.Enabled(), p); err != nil {
			return err
		}
		src = tr.Replay()
	} else {
		var err error
		if asm, err = nativeFor(sc.Workload, sc.ASAP.Native.Enabled(), p); err != nil {
			return err
		}
		src = genSource{workload.NewGenerator(sc.Workload, asm.layout, p.Seed)}
	}
	src, err := tapped(src, tap, 0, sc.Workload, asm.layout, p.Seed)
	if err != nil {
		return err
	}
	s, err := schemeFor(sc, p, h, mshr, tr)
	if err != nil {
		return err
	}
	s.Attach(0, asm.process())
	s.Boot(0)
	tr.DefineProcess(0, sc.Workload.Name)
	return drive(ctx, sc, p, s, src, h, co, res, tr)
}

func runVirt(ctx context.Context, sc Scenario, p Params, h *cache.Hierarchy,
	mshr *cache.MSHRFile, co *workload.CoRunner, res *Result, tap RefTap, tr *obs.Tracer) error {
	asm, err := virtFor(sc.Workload, sc.ASAP.Guest.Enabled(), sc.ASAP.Host.Enabled(), sc.HostHugePages, p)
	if err != nil {
		return err
	}
	s := mmu.NewNested(mmu.NestedConfig{
		Hier:           h,
		MSHR:           mshr,
		PWC:            p.PWC,
		ClusteredTLB:   sc.ClusteredTLB,
		Guest:          sc.ASAP.Guest,
		Host:           sc.ASAP.Host,
		GuestDescs:     asm.guestDescs,
		HostDescs:      asm.hostDescs,
		RangeRegisters: p.RangeRegisters,
		GuestPT:        asm.guestPT,
		HostPT:         asm.ept,
		Translate:      asm.gmap.Translate,
		DataGPA:        asm.dataGPA,
		Trace:          tr,
	})
	src, err := tapped(genSource{workload.NewGenerator(sc.Workload, asm.layout, p.Seed)},
		tap, 0, sc.Workload, asm.layout, p.Seed)
	if err != nil {
		return err
	}
	tr.DefineProcess(0, sc.Workload.Name)
	return drive(ctx, sc, p, s, src, h, co, res, tr)
}

// meter accumulates measured-window statistics and the execution-time model.
type meter struct {
	p               Params
	spec            workload.Spec
	accesses        uint64
	walks           uint64
	walkCycles      uint64
	dataCycles      float64
	switchCycles    float64
	switches        uint64
	instr           float64 // per-access instruction sum (multi-process only)
	multi           bool    // accesses span processes with differing specs
	tlbAccesses0    uint64
	tlbMisses0      uint64
	flushes0        uint64
	lookups0        uint64
	rangeHits0      uint64
	overflowed0     uint64
	hostLookups0    uint64
	hostHits0       uint64
	hostOverflowed0 uint64
	dropped0        uint64
}

func newMeter(spec workload.Spec, p Params) *meter {
	return &meter{p: p, spec: spec}
}

// begin snapshots the scheme's cumulative counters at the warmup/measure
// boundary so finish can report measured-window deltas. Counters the running
// scheme has no counterpart for are zero in every snapshot, so their deltas
// vanish — the meter needs no knowledge of which scheme ran.
func (m *meter) begin(c mmu.Counters) {
	m.tlbAccesses0 = c.TLBAccesses
	m.tlbMisses0 = c.TLBL2Misses
	m.flushes0 = c.TLBFlushes
	m.lookups0 = c.Lookups
	m.rangeHits0 = c.Hits
	m.overflowed0 = c.Overflowed
	m.hostLookups0 = c.HostLookups
	m.hostHits0 = c.HostHits
	m.hostOverflowed0 = c.HostOverflowed
	m.dropped0 = c.MSHRDropped
}

func (m *meter) access() {
	m.accesses++
	m.dataCycles += m.spec.DataStallCycles
}

// accessOf accounts one reference of the currently scheduled process. Unlike
// access, it accumulates instructions per reference, because a mix's
// processes retire different instruction counts per access; finish then uses
// the accumulated sum instead of accesses × the primary spec's rate.
func (m *meter) accessOf(spec workload.Spec) {
	m.accesses++
	m.dataCycles += spec.DataStallCycles
	m.instr += spec.InstrPerRef
	m.multi = true
}

// contextSwitch accounts one measured-window switch and its modeled cost.
func (m *meter) contextSwitch(cycles float64) {
	m.switches++
	m.switchCycles += cycles
}

func (m *meter) walk(wr *walker.Result, res *Result) {
	m.walks++
	m.walkCycles += uint64(wr.Cycles)
	res.PrefetchIssued += uint64(wr.PrefetchIssued)
	res.PrefetchCovered += uint64(wr.PrefetchCovered)
	for _, a := range wr.Accesses[:wr.N] {
		if a.Dim == walker.DimNative {
			res.Breakdown.Add(int(a.Level), a.Served)
		}
	}
}

func (m *meter) finish(res *Result, c mmu.Counters) {
	res.Accesses = m.accesses
	res.Walks = m.walks
	res.WalkCycles = m.walkCycles
	if m.walks > 0 {
		res.AvgWalkLat = float64(m.walkCycles) / float64(m.walks)
	}
	if n := c.TLBAccesses - m.tlbAccesses0; n > 0 {
		res.TLBMissRatio = float64(c.TLBL2Misses-m.tlbMisses0) / float64(n)
	}
	instructions := float64(m.accesses) * m.spec.InstrPerRef
	if m.multi {
		instructions = m.instr
	}
	if instructions > 0 {
		res.MPKI = float64(c.TLBL2Misses-m.tlbMisses0) / (instructions / 1000)
	}
	coreCycles := instructions * m.p.CPIBase
	res.TotalCycles = coreCycles + m.dataCycles + float64(m.walkCycles) + m.switchCycles
	if res.TotalCycles > 0 {
		res.WalkFraction = float64(m.walkCycles) / res.TotalCycles
	}
	if lookups := c.Lookups - m.lookups0; lookups > 0 {
		res.RangeHitRate = float64(c.Hits-m.rangeHits0) / float64(lookups)
	}
	res.RangeOverflowed += c.Overflowed - m.overflowed0
	if lookups := c.HostLookups - m.hostLookups0; lookups > 0 {
		res.HostRangeHitRate = float64(c.HostHits-m.hostHits0) / float64(lookups)
	}
	res.RangeOverflowed += c.HostOverflowed - m.hostOverflowed0
	res.MSHRDropped = c.MSHRDropped - m.dropped0
	res.Switches = m.switches
	res.ShootdownFlushes = c.TLBFlushes - m.flushes0
}
