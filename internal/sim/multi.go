package sim

import (
	"context"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/walker"
	"repro/internal/workload"
)

// mproc is one co-scheduled process: its spec, the per-process reference
// generator that gives each process its own phase, and the data-traffic
// stream that models its cache footprint (see runMulti). Its address-space
// state (page table, frame map, descriptor file) is attached to the
// translation scheme under the process's pid.
type mproc struct {
	spec workload.Spec
	src  refSource
	data *workload.CoRunner
}

// runMulti time-shares Params.Processes native processes on the simulated
// core (paper §3.3's context-switch regime, which the single-address-space
// harness never exercised). Per switch, the incoming process pays the OS
// cost, plus — with ASAP enabled — the descriptor-file save/restore the
// paper argues is ordinary register state; translation state follows the
// configured policy: FlushOnSwitch drops the TLBs and PWCs (untagged
// hardware), otherwise entries are retained under per-process ASID tags.
// Both actions live in Scheme.Switch, which reports the descriptor volume
// moved so the modeled cost scales with it. The reference stream interleaves
// quantum slices driven by the deterministic seeded scheduler, so walks,
// switches and flush refills land identically for any worker count.
//
// Cache pressure follows the paper's co-runner methodology (§4) applied to
// time-sharing: a process's own data accesses never flow through the
// hierarchy while it runs (their cost is folded into DataStallCycles), but
// they do evict lines the other processes cached. At every switch the
// outgoing process's quantum-worth of data traffic is replayed into the
// hierarchy — paced like the SMT co-runner, drawn from the process's data
// frame area, and derived only from switch positions and per-process
// streams, so the pollution is identical under either switch policy. It
// costs no simulated time (it happened concurrently with the quantum);
// what it changes is where the incoming process's walks are served.
func runMulti(ctx context.Context, sc Scenario, p Params, h *cache.Hierarchy,
	mshr *cache.MSHRFile, co *workload.CoRunner, res *Result, tap RefTap, tr *obs.Tracer) error {
	mix, err := workload.MixFor(sc.Workload, sc.Mix, p.Processes)
	if err != nil {
		return err
	}
	s, err := schemeFor(sc, p, h, mshr, tr)
	if err != nil {
		return err
	}
	procs := make([]*mproc, len(mix.Specs))
	for i, spec := range mix.Specs {
		asm, err := nativeFor(spec, sc.ASAP.Native.Enabled(), p)
		if err != nil {
			return err
		}
		seed := p.Seed
		if i > 0 {
			// Same-workload processes share an assembly but never a phase.
			seed = rng.Mix64(p.Seed + uint64(i)<<13)
		}
		src, err := tapped(genSource{workload.NewGenerator(spec, asm.layout, seed)}, tap, i, spec, asm.layout, seed)
		if err != nil {
			return err
		}
		s.Attach(i, asm.process())
		tr.DefineProcess(i, spec.Name)
		procs[i] = &mproc{
			spec: spec,
			src:  src,
			data: workload.NewCoRunner(asm.frames.Base.Addr(), asm.frames.Span*mem.PageSize,
				rng.Mix64(seed^0xda7a)),
		}
	}

	// Boot-time install of process 0's state; later switch-ins restore it
	// again like any other process's.
	s.Boot(0)
	sched := workload.NewScheduler(len(procs), p.QuantumRefs, rng.Mix64(p.Seed^0x5c4ed))

	var wr walker.Result
	var now int64
	measure := newMeter(sc.Workload, p)
	var walksTotal, refs, sliceRefs int
	var coDebt float64
	measuring := false
	scheme := sc.SchemeName()
	cur := procs[0]
	for refs = 0; refs < p.MaxRefs; refs++ {
		if refs&ctxCheckMask == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if !measuring && walksTotal >= p.WarmupWalks {
			measure.begin(s.Counters())
			measuring = true
			if tr != nil {
				tr.MeasureBegin(now)
			}
		}
		if measuring && int(measure.walks) >= p.MeasureWalks {
			break
		}
		pid, switched := sched.Tick()
		if switched {
			// Replay the outgoing quantum's data-side cache footprint: one
			// request per CoAccessCycles of the quantum's nominal progress
			// (stall + retire time per reference; walk time is excluded so
			// the replay is policy-independent).
			nominal := cur.spec.DataStallCycles + cur.spec.InstrPerRef*p.CPIBase
			for n := int(float64(sliceRefs) * nominal / p.CoAccessCycles); n > 0; n-- {
				h.Access(cur.data.Next())
			}
			sliceRefs = 0
			cur = procs[pid]
			moved := s.Switch(pid)
			cost := p.SwitchCycles + p.DescSwapCycles*float64(moved)
			if tr != nil {
				tr.ProcessSwitch(now, pid, moved, int64(cost))
			}
			now += int64(cost)
			if measuring {
				measure.contextSwitch(cost)
			}
		}
		sliceRefs++
		va, ok := cur.src.Next()
		if !ok {
			break
		}
		refCycles := cur.spec.DataStallCycles + cur.spec.InstrPerRef*p.CPIBase
		if s.Translate(now, va, &wr) {
			if tr != nil {
				tr.WalkEnd(now, wr.Cycles, scheme, measuring)
			}
			now += int64(wr.Cycles)
			refCycles += float64(wr.Cycles)
			walksTotal++
			if measuring {
				measure.walk(&wr, res)
			}
		}
		if co != nil {
			for coDebt += refCycles / p.CoAccessCycles; coDebt >= 1; coDebt-- {
				h.Access(co.Next())
			}
		}
		now += int64(cur.spec.DataStallCycles)
		if measuring {
			measure.accessOf(cur.spec)
		}
	}
	if !measuring {
		// MaxRefs (or a replayed stream) ran out before warmup completed:
		// report an empty window, not warmup-contaminated cumulative counters.
		measure.begin(s.Counters())
		if tr != nil {
			tr.MeasureBegin(now)
		}
	}
	if tr != nil {
		tr.MeasureEnd(now)
	}
	measure.finish(res, s.Counters())
	return nil
}
