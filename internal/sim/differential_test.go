package sim

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pwc"
	"repro/internal/tlb"
	"repro/internal/walker"
	"repro/internal/workload"
)

// inlinedCounters reads the translation counters straight off the hardware
// models, independently of mmu — the pre-refactor meter arguments.
func inlinedCounters(tl *tlb.TwoLevel, engine *core.Engine, mshr *cache.MSHRFile) mmu.Counters {
	c := mmu.Counters{
		TLBAccesses: tl.Accesses,
		TLBL2Misses: tl.L2Misses,
		TLBFlushes:  tl.Flushes,
		MSHRDropped: mshr.Dropped(),
	}
	if engine != nil {
		c.Lookups = engine.Lookups()
		c.Hits = engine.RangeHits()
		c.Overflowed = engine.Overflowed()
	}
	return c
}

// inlinedRunNative is a faithful copy of the native run loop as it existed
// before the translation path moved behind mmu.Scheme: TLB, PWC, walker and
// engine wired inline, the engine loaded descriptor by descriptor, counters
// read directly. It is the refactor's reference implementation.
func inlinedRunNative(sc Scenario, p Params) (*Result, error) {
	h := cache.NewHierarchy(p.Cache)
	tl := tlb.NewTwoLevel(sc.ClusteredTLB)
	mshr := cache.NewMSHRFile(p.MSHRs)
	res := &Result{Scenario: sc}
	var co *workload.CoRunner
	if sc.Colocated {
		co = workload.NewCoRunner(coRunnerBase.Addr(), coRunnerSpan*mem.PageSize, p.Seed^0xc0)
	}
	asm, err := nativeFor(sc.Workload, sc.ASAP.Native.Enabled(), p)
	if err != nil {
		return nil, err
	}
	var engine *core.Engine
	if sc.ASAP.Native.Enabled() {
		engine = core.NewEngine(p.RangeRegisters, sc.ASAP.Native)
		for _, d := range asm.descs {
			engine.Install(d)
		}
	}
	pw := pwc.New(p.PWC)
	w := &walker.Walker{H: h, PWC: pw, ASAP: engine, MSHR: mshr}
	layout, frames := asm.layout, asm.frames
	neighbors := func(vpn uint64) (uint64, bool) {
		if !layout.PresentVPN(vpn) {
			return 0, false
		}
		return uint64(frames.Frame(vpn)), true
	}
	gen := workload.NewGenerator(sc.Workload, layout, p.Seed)

	var wr walker.Result
	var now int64
	measure := newMeter(sc.Workload, p)
	var walksTotal, refs int
	var coDebt float64
	measuring := false
	for refs = 0; refs < p.MaxRefs; refs++ {
		if !measuring && walksTotal >= p.WarmupWalks {
			measure.begin(inlinedCounters(tl, engine, mshr))
			measuring = true
		}
		if measuring && int(measure.walks) >= p.MeasureWalks {
			break
		}
		va := gen.Next()
		pfn := uint64(frames.Frame(va.VPN()))
		refCycles := sc.Workload.DataStallCycles + sc.Workload.InstrPerRef*p.CPIBase
		if !tl.LookupVA(va, pfn, neighbors) {
			w.Walk(now, asm.table, va, &wr)
			now += int64(wr.Cycles)
			refCycles += float64(wr.Cycles)
			tl.InsertVA(va, wr.Huge, pfn, neighbors)
			walksTotal++
			if measuring {
				measure.walk(&wr, res)
			}
		}
		if co != nil {
			for coDebt += refCycles / p.CoAccessCycles; coDebt >= 1; coDebt-- {
				h.Access(co.Next())
			}
		}
		now += int64(sc.Workload.DataStallCycles)
		if measuring {
			measure.access()
		}
	}
	if !measuring {
		measure.begin(inlinedCounters(tl, engine, mshr))
	}
	measure.finish(res, inlinedCounters(tl, engine, mshr))
	return res, nil
}

// TestSchemeMatchesInlinedNativeLoop is the refactor's differential guard:
// sim.Run (translation behind mmu.Scheme) must reproduce the pre-refactor
// inlined pipeline result for result — every metric, every counter — across
// scenario variants and seeds.
func TestSchemeMatchesInlinedNativeLoop(t *testing.T) {
	ResetBuildCache()
	mcf, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	p1p2 := cfgTestP1P2()
	variants := []struct {
		name string
		sc   Scenario
		mut  func(*Params)
	}{
		{"baseline", Scenario{Workload: mcf}, nil},
		{"p1p2", Scenario{Workload: mcf, ASAP: p1p2}, nil},
		{"colocated", Scenario{Workload: mcf, Colocated: true, ASAP: p1p2}, nil},
		{"clustered", Scenario{Workload: mcf, ClusteredTLB: true}, nil},
		{"holes", Scenario{Workload: mcf, ASAP: p1p2}, func(p *Params) { p.HoleProb = 0.2 }},
		{"fivelevel", Scenario{Workload: mcf, ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true, P3: true}}},
			func(p *Params) { p.FiveLevel = true }},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{42, 7, 91} {
				p := DefaultParams()
				p.WarmupWalks = 400
				p.MeasureWalks = 400
				p.Seed = seed
				if tc.mut != nil {
					tc.mut(&p)
				}
				want, err := inlinedRunNative(tc.sc, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(tc.sc, p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d: scheme path diverged from inlined pipeline:\ninlined: %+v\nscheme:  %+v",
						seed, want, got)
				}
			}
		})
	}
}

// TestTranslateLockstep drives the asap scheme and a hand-inlined pipeline
// reference by reference over one randomized stream, comparing the walk
// decision and the full walker result at every step — a finer-grained check
// than the end-of-run metrics above.
func TestTranslateLockstep(t *testing.T) {
	ResetBuildCache()
	mcf, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	p := DefaultParams()
	sc := Scenario{Workload: mcf, ASAP: cfgTestP1P2()}
	asm, err := nativeFor(sc.Workload, true, p)
	if err != nil {
		t.Fatal(err)
	}

	s, err := mmu.New("asap", mmu.Config{
		Hier: cache.NewHierarchy(p.Cache), MSHR: cache.NewMSHRFile(p.MSHRs),
		PWC: p.PWC, ASAP: sc.ASAP.Native, RangeRegisters: p.RangeRegisters,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Attach(0, asm.process())
	s.Boot(0)

	h := cache.NewHierarchy(p.Cache)
	tl := tlb.NewTwoLevel(false)
	mshr := cache.NewMSHRFile(p.MSHRs)
	engine := core.NewEngine(p.RangeRegisters, sc.ASAP.Native)
	engine.Swap(asm.descs) // Boot's empty-file swap, mirrored
	w := &walker.Walker{H: h, PWC: pwc.New(p.PWC), ASAP: engine, MSHR: mshr}
	layout, frames := asm.layout, asm.frames
	neighbors := func(vpn uint64) (uint64, bool) {
		if !layout.PresentVPN(vpn) {
			return 0, false
		}
		return uint64(frames.Frame(vpn)), true
	}

	genA := workload.NewGenerator(sc.Workload, layout, p.Seed)
	genB := workload.NewGenerator(sc.Workload, layout, p.Seed)
	var now int64
	var wrA, wrB walker.Result
	for i := 0; i < 20_000; i++ {
		va := genA.Next()
		if vb := genB.Next(); vb != va {
			t.Fatalf("ref %d: generator streams diverged", i)
		}
		walkedA := s.Translate(now, va, &wrA)
		pfn := uint64(frames.Frame(va.VPN()))
		walkedB := !tl.LookupVA(va, pfn, neighbors)
		if walkedB {
			w.Walk(now, asm.table, va, &wrB)
			tl.InsertVA(va, wrB.Huge, pfn, neighbors)
		}
		if walkedA != walkedB {
			t.Fatalf("ref %d (va %#x): scheme walked=%v, inlined walked=%v", i, uint64(va), walkedA, walkedB)
		}
		if walkedA {
			if !reflect.DeepEqual(wrA, wrB) {
				t.Fatalf("ref %d (va %#x): walk results diverged:\nscheme:  %+v\ninlined: %+v", i, uint64(va), wrA, wrB)
			}
			now += int64(wrA.Cycles)
		}
		now += int64(sc.Workload.DataStallCycles)
	}
}
