// Package sim orchestrates whole experiments: it assembles a synthetic
// process (or virtual machine) for a workload, wires up the simulated
// hardware (TLBs, page-walk caches, cache hierarchy, page walker, ASAP
// engine), replays the workload's reference stream, and reports the paper's
// metrics — average page-walk latency above all (§4: "As a primary evaluation
// metric for ASAP, we use page walk latency").
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/pwc"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Params holds the simulated platform parameters (the paper's Table 5) and
// the measurement protocol.
//
// Every field is part of a cell's identity: asaplint's keycomplete analyzer
// enforces that the report params digest covers each one, so adding a field
// here without rendering it there fails CI. Seed is allowlisted because the
// digest deliberately zeroes it (repeats share a digest).
//
//lint:key ref=Digest allow=Seed
type Params struct {
	Cache cache.Config
	PWC   pwc.Config
	// MSHRs bounds concurrently outstanding ASAP prefetches (best-effort
	// issue, §3.4).
	MSHRs int
	// RangeRegisters is the per-thread VMA descriptor capacity (§3.4: 8–16
	// registers cover 99% of the studied footprints).
	RangeRegisters int
	// HoleProb displaces each ASAP-region page-table node with this
	// probability, modelling pinned pages the OS could not clear (§3.7.2).
	HoleProb float64
	// FiveLevel builds 5-level page tables (§2.6/§3.5); the ASAP config may
	// then include P3.
	FiveLevel bool

	// WarmupWalks and MeasureWalks are the pre-measurement and measured
	// page-walk counts per run; phases are walk-based so that workloads with
	// very different TLB miss rates are measured with equal statistical
	// weight and warm caches. MaxRefs bounds a run defensively.
	WarmupWalks  int
	MeasureWalks int
	MaxRefs      int
	Seed         uint64

	// CoAccessCycles paces the SMT co-runner: it issues one random request
	// per this many cycles of application progress, so pressure rises when
	// the application stalls on long (e.g. nested) walks — the dynamics
	// behind Table 1's escalation from 2.7× (SMT) to 12× (virt + SMT).
	CoAccessCycles float64

	// CPIBase feeds the execution-time model (Fig 2 / Table 6 substitute for
	// hardware counters): each reference retires InstrPerRef instructions at
	// CPIBase cycles each, pays the workload's DataStallCycles, and pays its
	// full (serial) page-walk latency. Following the paper's methodology,
	// only page-walk traffic — plus the co-runner under colocation — flows
	// through the simulated cache hierarchy (§4).
	CPIBase float64

	// Processes co-schedules this many synthetic processes on the simulated
	// core, time-sliced by a deterministic quantum scheduler. 0 and 1 both
	// select the classic single-process run, which bypasses the scheduler
	// entirely (and stays byte-identical to the pre-multi-process simulator).
	// Process 0 runs Scenario.Workload; the rest come from Scenario.Mix.
	Processes int
	// QuantumRefs is the mean scheduler quantum in references; each slice's
	// actual length is drawn deterministically from the run's seed (see
	// workload.Scheduler). The default is small because the measurement
	// windows are: a run measures 10³–10⁵ references where real hardware
	// executes billions, so the quantum compresses proportionally to land
	// several switches inside every window — the regime of a heavily
	// oversubscribed core, time-sliced at microsecond scale.
	QuantumRefs int
	// FlushOnSwitch selects the untagged-TLB OS policy: flush the TLBs and
	// PWCs on every context switch. When false, translation state is retained
	// under per-process ASID tags and survives switches.
	FlushOnSwitch bool
	// SwitchCycles is the fixed OS cost of one context switch (trap, state
	// save/restore, scheduler work), paid by the incoming process.
	SwitchCycles float64
	// DescSwapCycles is the per-register cost of saving/restoring ASAP VMA
	// descriptors on a switch — the paper's §3.3 argument that descriptors
	// are ordinary per-thread architectural state the OS swaps. It is charged
	// per register moved (outgoing saved + incoming restored) and only when
	// ASAP is enabled, so the switch experiments expose ASAP's added
	// context-switch cost.
	DescSwapCycles float64
}

// DefaultParams mirrors Table 5 and the harness defaults.
func DefaultParams() Params {
	return Params{
		Cache:          cache.DefaultConfig(),
		PWC:            pwc.DefaultConfig(),
		MSHRs:          10,
		RangeRegisters: 16,
		WarmupWalks:    60_000,
		MeasureWalks:   50_000,
		MaxRefs:        50_000_000,
		Seed:           42,
		CoAccessCycles: 18,
		CPIBase:        0.6,
		Processes:      1,
		QuantumRefs:    300,
		SwitchCycles:   3_000,
		DescSwapCycles: 6,
	}
}

// ForRepeat returns the parameter set for the repeat-th independent repeat of
// a cell: repeat 0 is p itself (so single-repeat runs reproduce historical
// output exactly), and each further repeat derives a fresh seed by mixing the
// base seed with the repeat index. Because Params.Seed is part of the
// runner's memo key, distinct repeats are distinct cells while every consumer
// of the same (cell, repeat) pair still shares one simulation.
func (p Params) ForRepeat(repeat int) Params {
	if repeat > 0 {
		p.Seed = rng.Mix64(p.Seed ^ uint64(repeat)<<17)
	}
	return p
}

// ASAPConfig selects prefetch levels per translation dimension. Native runs
// use Native; virtualized runs use Guest and Host (paper §3.6/Fig 10's
// P1g/P2g/P1h/P2h configurations).
type ASAPConfig struct {
	Native core.Config
	Guest  core.Config
	Host   core.Config
}

// Enabled reports whether any dimension prefetches.
func (a ASAPConfig) Enabled() bool {
	return a.Native.Enabled() || a.Guest.Enabled() || a.Host.Enabled()
}

// String names the configuration in the paper's figure style.
func (a ASAPConfig) String() string {
	if !a.Enabled() {
		return "baseline"
	}
	if a.Native.Enabled() {
		return a.Native.String()
	}
	s := ""
	for _, l := range a.Guest.Levels() {
		if s != "" {
			s += "+"
		}
		s += fmt.Sprintf("P%dg", l)
	}
	for _, l := range a.Host.Levels() {
		if s != "" {
			s += "+"
		}
		s += fmt.Sprintf("P%dh", l)
	}
	return s
}

// Scenario is one experiment cell. Every field is part of the cell's rendered
// identity: asaplint's keycomplete analyzer enforces that Name() references
// each one, so a new axis added here without extending Name() fails CI.
//
//lint:key ref=Name
type Scenario struct {
	Workload      workload.Spec
	Virtualized   bool
	Colocated     bool
	ASAP          ASAPConfig
	HostHugePages bool // hypervisor backs the guest with 2 MB pages (Fig 12)
	ClusteredTLB  bool // replace the STLB with the Clustered TLB (§5.4.1)
	// Mix names the co-scheduled workloads of a multi-process run
	// (Params.Processes > 1) as a comma-separated list, cycled to fill the
	// process count; empty replicates Workload (see workload.MixFor). A
	// string keeps Scenario flat and comparable, so mix cells memoize like
	// any other.
	Mix string
	// Trace, when non-empty, is the content digest of a registered reference
	// trace (see UseTrace) that drives the run in place of the synthetic
	// generator: the page tables, VMA sets and ASAP candidate sets are
	// rebuilt from the trace header's recorded layout, and the reference
	// stream is replayed verbatim. The digest identifies the trace's content,
	// so trace cells memoize and report like any other. Trace-driven runs are
	// native and single-process; Workload must be the trace header's spec
	// (UseTrace returns a correctly formed Scenario).
	Trace string
	// Scheme selects the translation backend (see internal/mmu): "asap" (the
	// paper's pipeline), "victima" or "revelator". Empty selects asap — the
	// zero value every pre-scheme cell carries, so historical names, digests
	// and memo keys are unchanged. Rival schemes are native-only and exclude
	// ASAP prefetch configurations (Run validates both).
	Scheme string
}

// SchemeName returns the scenario's translation scheme, resolving the empty
// zero value to "asap".
func (s Scenario) SchemeName() string { return mmu.Canonical(s.Scheme) }

// CellKey is the stable, comparable identity of one simulation cell. Unlike
// Scenario.Name it covers every field — the full workload spec and parameter
// set — so two cells share a CellKey iff a simulation of one is a valid
// result for the other. Scenario and Params are flat comparable structs
// (scalars and strings only), so the pair is used directly as a map key; a
// rendered form (e.g. %+v) would be lossy here because fmt invokes
// ASAPConfig.String, which collapses distinct Guest/Host configurations.
type CellKey struct {
	Scenario Scenario
	Params   Params
}

// Key returns the canonical cell identity for simulating s under p.
func Key(s Scenario, p Params) CellKey {
	return CellKey{Scenario: s, Params: p}
}

// Name renders a compact scenario label for logs and tables.
func (s Scenario) Name() string {
	n := s.Workload.Name
	if s.Virtualized {
		n += "/virt"
	} else {
		n += "/native"
	}
	if s.Colocated {
		n += "+colo"
	}
	if s.HostHugePages {
		n += "+2MB"
	}
	if s.ClusteredTLB {
		n += "+ctlb"
	}
	if s.Mix != "" {
		n += "+mix[" + s.Mix + "]"
	}
	if s.Trace != "" {
		n += "+trace[" + s.Trace + "]"
	}
	if s.Scheme != "" {
		n += "+mmu[" + s.Scheme + "]"
	}
	return n + "/" + s.ASAP.String()
}
