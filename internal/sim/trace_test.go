package sim

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// bufCloser adapts a bytes.Buffer to the recorder's WriteCloser contract.
type bufCloser struct{ *bytes.Buffer }

func (bufCloser) Close() error { return nil }

func traceTestParams() Params {
	p := DefaultParams()
	p.WarmupWalks = 800
	p.MeasureWalks = 800
	return p
}

// recordScenario runs sc under a recorder and returns the live result plus
// the per-process trace bytes.
func recordScenario(t *testing.T, sc Scenario, p Params, compress bool) (*Result, map[int]*bytes.Buffer) {
	t.Helper()
	bufs := map[int]*bytes.Buffer{}
	rec := trace.NewRecorder(func(pid int) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		bufs[pid] = b
		return bufCloser{b}, nil
	}, compress)
	res, err := RunTapped(sc, p, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return res, bufs
}

// TestRecordReplayFidelity is the subsystem's headline invariant: replaying a
// recorded synthetic run — page tables, VMA sets and ASAP candidate sets
// rebuilt from the trace header, references replayed verbatim — reproduces
// the originating run's translation metrics exactly, across baseline, ASAP
// and colocated scenario variants.
func TestRecordReplayFidelity(t *testing.T) {
	ResetBuildCache()
	mcf, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	p := traceTestParams()
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"baseline", Scenario{Workload: mcf}},
		{"asap-p1p2", Scenario{Workload: mcf, ASAP: cfgTestP1P2()}},
		{"colocated", Scenario{Workload: mcf, Colocated: true}},
		{"victima", Scenario{Workload: mcf, Scheme: "victima"}},
		{"revelator", Scenario{Workload: mcf, Scheme: "revelator"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live, bufs := recordScenario(t, tc.sc, p, false)
			if len(bufs) != 1 {
				t.Fatalf("recorded %d processes, want 1", len(bufs))
			}
			tr, err := trace.Load(bytes.NewReader(bufs[0].Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Count == 0 {
				t.Fatal("empty trace")
			}
			// The capture spans warmup plus the measured window, so it is
			// strictly longer than the measured access count.
			if tr.Count <= live.Accesses {
				t.Fatalf("trace %d refs does not cover warmup + %d measured", tr.Count, live.Accesses)
			}
			tsc := UseTrace(tr)
			tsc.ASAP = tc.sc.ASAP
			tsc.Colocated = tc.sc.Colocated
			tsc.Scheme = tc.sc.Scheme
			replayed, err := Run(tsc, p)
			if err != nil {
				t.Fatal(err)
			}
			// Every metric must match; only the scenario identity differs.
			replayed.Scenario = live.Scenario
			if !reflect.DeepEqual(live, replayed) {
				t.Fatalf("replay diverged from capture:\nlive:     %+v\nreplayed: %+v", live, replayed)
			}
		})
	}
}

// cfgTestP1P2 builds the P1+P2 native config without exporting exp's copy.
func cfgTestP1P2() ASAPConfig {
	var c ASAPConfig
	c.Native.P1, c.Native.P2 = true, true
	return c
}

// TestRecordMultiprocPerProcessTraces checks the multi-process capture shape:
// one trace per process, each carrying its own spec and layout, jointly
// covering every reference the scheduler issued.
func TestRecordMultiprocPerProcessTraces(t *testing.T) {
	ResetBuildCache()
	mcf, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	p := traceTestParams()
	p.Processes = 3
	sc := Scenario{Workload: mcf, Mix: "mcf,canneal"}
	_, bufs := recordScenario(t, sc, p, true)
	if len(bufs) != 3 {
		t.Fatalf("recorded %d processes, want 3", len(bufs))
	}
	wantSpecs := []string{"mcf", "canneal", "mcf"} // MixFor cycles pool[i%len]
	for pid := 0; pid < 3; pid++ {
		tr, err := trace.Load(bytes.NewReader(bufs[pid].Bytes()))
		if err != nil {
			t.Fatalf("process %d: %v", pid, err)
		}
		if tr.Header.Spec.Name != wantSpecs[pid] {
			t.Fatalf("process %d spec %q, want %q", pid, tr.Header.Spec.Name, wantSpecs[pid])
		}
		if tr.Count == 0 {
			t.Fatalf("process %d trace empty", pid)
		}
		if _, err := workload.LayoutFromAreas(tr.Header.Areas); err != nil {
			t.Fatalf("process %d layout: %v", pid, err)
		}
	}
}

// TestTraceScenarioRejectsBadDimensions locks the validation: trace replay is
// native and single-process.
func TestTraceScenarioRejectsBadDimensions(t *testing.T) {
	ResetBuildCache()
	mcf, _ := workload.ByName("mcf")
	p := traceTestParams()
	p.WarmupWalks, p.MeasureWalks = 100, 100
	_, bufs := recordScenario(t, Scenario{Workload: mcf}, p, false)
	tr, err := trace.Load(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc := UseTrace(tr)
	sc.Virtualized = true
	if _, err := Run(sc, p); err == nil {
		t.Fatal("virtualized trace replay accepted")
	}
	sc = UseTrace(tr)
	pp := p
	pp.Processes = 2
	if _, err := Run(sc, pp); err == nil {
		t.Fatal("multi-process trace replay accepted")
	}
	// An unregistered digest errors cleanly.
	if _, err := Run(Scenario{Workload: mcf, Trace: "deadbeefdeadbeef"}, p); err == nil {
		t.Fatal("unregistered trace digest accepted")
	}
}

// TestTinyHandBuiltTraceReplaysCleanly guards the untrusted-input contract on
// the assembly path the decoder cannot validate: a format-valid trace with a
// minuscule layout (2 resident pages) and a contiguity-seeking spec must
// replay without panicking (FrameMap's span floor), ending dry or measuring
// whatever it contains.
func TestTinyHandBuiltTraceReplaysCleanly(t *testing.T) {
	ResetBuildCache()
	spec := workload.Spec{
		Name: "tiny", DatasetBytes: 2 * 4096, SpreadFactor: 1,
		TotalVMAs: 1, BigVMAs: 1, Contig8: 0.9, LinesPerVisit: 1,
		DataStallCycles: 10, InstrPerRef: 1,
	}
	start := mem.FromVPN(1 << 20)
	h := trace.Header{
		Spec: spec,
		Seed: 1,
		Areas: []workload.AreaSpec{
			{Start: start, Pages: 2, Resident: 2, Big: true, Name: "tiny-data"},
		},
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, h, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		w.Add(start + mem.VirtAddr(uint64(i%2)*mem.PageSize))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc := UseTrace(tr)
	sc.ASAP = cfgTestP1P2()
	p := traceTestParams()
	if _, err := Run(sc, p); err != nil {
		t.Fatal(err)
	}
}

// TestTraceRunsDryBeforeWarmup locks the short-trace semantics: a replay
// whose stream ends before warmup completes reports an empty measured window
// rather than folding warmup into the metrics.
func TestTraceRunsDryBeforeWarmup(t *testing.T) {
	ResetBuildCache()
	mcf, _ := workload.ByName("mcf")
	p := traceTestParams()
	p.WarmupWalks, p.MeasureWalks = 60, 60
	_, bufs := recordScenario(t, Scenario{Workload: mcf}, p, false)
	tr, err := trace.Load(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc := UseTrace(tr)
	big := p
	big.WarmupWalks = 1 << 30 // warmup can never complete on this trace
	res, err := Run(sc, big)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 || res.Walks != 0 || res.AvgWalkLat != 0 {
		t.Fatalf("dry-before-warmup run reported a window: %+v", res)
	}
}
