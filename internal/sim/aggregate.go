package sim

import "repro/internal/stats"

// Aggregate folds the results of independent repeats of one scenario cell
// into an element-wise sample mean and sample standard deviation. Count
// metrics are rounded to the nearest integer in the mean; the Fig 9 breakdown
// is pooled (counts summed) so its fractions remain exact over all repeats.
// The mean carries the scenario of the first result. Aggregate panics on an
// empty slice; with a single result the mean is a copy and every std metric
// is zero.
func Aggregate(rs []*Result) (mean, std *Result) {
	if len(rs) == 0 {
		panic("sim: Aggregate of no results")
	}
	mean = &Result{Scenario: rs[0].Scenario}
	std = &Result{Scenario: rs[0].Scenario}
	fold := func(get func(*Result) float64, set func(*Result, float64)) {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = get(r)
		}
		s := stats.Summarize(xs)
		set(mean, s.Mean)
		set(std, s.Std)
	}
	u := func(get func(*Result) uint64, set func(*Result, uint64)) {
		fold(func(r *Result) float64 { return float64(get(r)) },
			func(r *Result, v float64) { set(r, uint64(v+0.5)) })
	}
	u(func(r *Result) uint64 { return r.Accesses }, func(r *Result, v uint64) { r.Accesses = v })
	u(func(r *Result) uint64 { return r.Walks }, func(r *Result, v uint64) { r.Walks = v })
	u(func(r *Result) uint64 { return r.WalkCycles }, func(r *Result, v uint64) { r.WalkCycles = v })
	u(func(r *Result) uint64 { return r.PrefetchIssued }, func(r *Result, v uint64) { r.PrefetchIssued = v })
	u(func(r *Result) uint64 { return r.PrefetchCovered }, func(r *Result, v uint64) { r.PrefetchCovered = v })
	u(func(r *Result) uint64 { return r.MSHRDropped }, func(r *Result, v uint64) { r.MSHRDropped = v })
	u(func(r *Result) uint64 { return r.RangeOverflowed }, func(r *Result, v uint64) { r.RangeOverflowed = v })
	u(func(r *Result) uint64 { return r.Switches }, func(r *Result, v uint64) { r.Switches = v })
	u(func(r *Result) uint64 { return r.ShootdownFlushes }, func(r *Result, v uint64) { r.ShootdownFlushes = v })
	fold(func(r *Result) float64 { return r.AvgWalkLat }, func(r *Result, v float64) { r.AvgWalkLat = v })
	fold(func(r *Result) float64 { return r.TLBMissRatio }, func(r *Result, v float64) { r.TLBMissRatio = v })
	fold(func(r *Result) float64 { return r.MPKI }, func(r *Result, v float64) { r.MPKI = v })
	fold(func(r *Result) float64 { return r.TotalCycles }, func(r *Result, v float64) { r.TotalCycles = v })
	fold(func(r *Result) float64 { return r.WalkFraction }, func(r *Result, v float64) { r.WalkFraction = v })
	fold(func(r *Result) float64 { return r.RangeHitRate }, func(r *Result, v float64) { r.RangeHitRate = v })
	fold(func(r *Result) float64 { return r.HostRangeHitRate }, func(r *Result, v float64) { r.HostRangeHitRate = v })
	for _, r := range rs {
		mean.Breakdown.Merge(&r.Breakdown)
	}
	return mean, std
}
