package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

// tinySpec is a fast-to-build workload for unit tests: 96 MiB dataset,
// uniform access with some locality.
func tinySpec() workload.Spec {
	return workload.Spec{
		Name:            "tiny",
		DatasetBytes:    96 * mem.MiB,
		SpreadFactor:    1.5,
		TotalVMAs:       6,
		BigVMAs:         2,
		Pattern:         workload.Uniform,
		HotFraction:     0.02,
		HotProb:         0.4,
		BurstLen:        2,
		LinesPerVisit:   2,
		DataStallCycles: 30,
		Contig8:         0.5,
		MeanPTRun:       4,
		DataPerPTNode:   1,
		InstrPerRef:     4,
	}
}

// fastParams shrinks the measurement protocol so tests stay quick.
func fastParams() Params {
	p := DefaultParams()
	p.WarmupWalks = 4000
	p.MeasureWalks = 4000
	return p
}

func run(t *testing.T, sc Scenario, p Params) *Result {
	t.Helper()
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks == 0 || res.AvgWalkLat <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	return res
}

func TestNativeBaselinePlausible(t *testing.T) {
	res := run(t, Scenario{Workload: tinySpec()}, fastParams())
	// A 4-level walk with a 2-cycle PWC lies between 6 (full PWC + L1 hit)
	// and 766 (all memory) cycles.
	if res.AvgWalkLat < 6 || res.AvgWalkLat > 766 {
		t.Fatalf("baseline walk latency %v implausible", res.AvgWalkLat)
	}
	if res.TLBMissRatio <= 0 || res.TLBMissRatio > 1 {
		t.Fatalf("miss ratio %v", res.TLBMissRatio)
	}
	if res.WalkFraction <= 0 || res.WalkFraction >= 1 {
		t.Fatalf("walk fraction %v", res.WalkFraction)
	}
	// Fig 9 sanity: PL4 requests recorded, and every level's fractions sum
	// to ~1 implicitly via Total.
	if res.Breakdown.Total(4) == 0 || res.Breakdown.Total(1) == 0 {
		t.Fatal("breakdown not recorded")
	}
}

func TestASAPReducesNativeLatency(t *testing.T) {
	p := fastParams()
	base := run(t, Scenario{Workload: tinySpec()}, p)
	p1 := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}, p)
	p12 := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	if p1.AvgWalkLat >= base.AvgWalkLat {
		t.Fatalf("P1 (%v) not below baseline (%v)", p1.AvgWalkLat, base.AvgWalkLat)
	}
	if p12.AvgWalkLat > p1.AvgWalkLat*1.02 {
		t.Fatalf("P1+P2 (%v) worse than P1 (%v)", p12.AvgWalkLat, p1.AvgWalkLat)
	}
	if p12.PrefetchIssued == 0 || p12.PrefetchCovered == 0 {
		t.Fatal("no prefetch activity recorded")
	}
	if p12.RangeHitRate <= 0.5 {
		t.Fatalf("range-register hit rate %v too low", p12.RangeHitRate)
	}
}

func TestColocationIncreasesLatency(t *testing.T) {
	p := fastParams()
	iso := run(t, Scenario{Workload: tinySpec()}, p)
	colo := run(t, Scenario{Workload: tinySpec(), Colocated: true}, p)
	if colo.AvgWalkLat <= iso.AvgWalkLat*1.05 {
		t.Fatalf("colocation did not pressure walks: %v vs %v", colo.AvgWalkLat, iso.AvgWalkLat)
	}
	// ASAP's opportunity grows under colocation (paper §5.1.2).
	asapIso := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	asapColo := run(t, Scenario{Workload: tinySpec(), Colocated: true, ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	redIso := 1 - asapIso.AvgWalkLat/iso.AvgWalkLat
	redColo := 1 - asapColo.AvgWalkLat/colo.AvgWalkLat
	if redColo <= redIso {
		t.Fatalf("ASAP reduction under colocation (%v) not above isolation (%v)", redColo, redIso)
	}
}

func TestVirtualizationCostlier(t *testing.T) {
	p := fastParams()
	native := run(t, Scenario{Workload: tinySpec()}, p)
	virt := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	if virt.AvgWalkLat < native.AvgWalkLat*1.5 {
		t.Fatalf("2D walks (%v) not clearly above native (%v)", virt.AvgWalkLat, native.AvgWalkLat)
	}
}

func TestVirtASAPOrdering(t *testing.T) {
	p := fastParams()
	base := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	g := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}}}, p)
	gh := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}}, p)
	if !(gh.AvgWalkLat < g.AvgWalkLat && g.AvgWalkLat < base.AvgWalkLat) {
		t.Fatalf("virt ASAP ordering violated: base=%v guest=%v guest+host=%v",
			base.AvgWalkLat, g.AvgWalkLat, gh.AvgWalkLat)
	}
}

func TestHostHugePagesShortenBaseline(t *testing.T) {
	p := fastParams()
	small := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	huge := run(t, Scenario{Workload: tinySpec(), Virtualized: true, HostHugePages: true}, p)
	if huge.AvgWalkLat >= small.AvgWalkLat {
		t.Fatalf("2MB host pages (%v) not below 4KB host pages (%v)", huge.AvgWalkLat, small.AvgWalkLat)
	}
	// ASAP still helps on top of host large pages (Fig 12).
	asap := run(t, Scenario{Workload: tinySpec(), Virtualized: true, HostHugePages: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P2: true}}}, p)
	if asap.AvgWalkLat >= huge.AvgWalkLat {
		t.Fatalf("ASAP over 2MB host pages (%v) not below its baseline (%v)", asap.AvgWalkLat, huge.AvgWalkLat)
	}
}

func TestClusteredTLBReducesMPKIWithContiguity(t *testing.T) {
	p := fastParams()
	spec := tinySpec()
	spec.Contig8 = 0.9
	spec.BurstLen = 4 // spatial locality for the coalesced entries to pay off
	conv := run(t, Scenario{Workload: spec}, p)
	clus := run(t, Scenario{Workload: spec, ClusteredTLB: true}, p)
	if clus.MPKI >= conv.MPKI {
		t.Fatalf("clustered TLB MPKI %v not below conventional %v", clus.MPKI, conv.MPKI)
	}
}

func TestClusteredTLBNeedsContiguity(t *testing.T) {
	p := fastParams()
	spec := tinySpec()
	spec.Name = "tiny-nocontig"
	spec.Contig8 = 0
	spec.BurstLen = 4
	conv := run(t, Scenario{Workload: spec}, p)
	clus := run(t, Scenario{Workload: spec, ClusteredTLB: true}, p)
	// Without physical contiguity the clustered TLB coalesces nothing; MPKI
	// reduction must be marginal (paper §2.5's criticism of coalescing).
	if conv.MPKI == 0 {
		t.Fatal("degenerate MPKI")
	}
	if red := 1 - clus.MPKI/conv.MPKI; red > 0.10 {
		t.Fatalf("clustered TLB reduced MPKI by %v without contiguity", red)
	}
}

func TestFiveLevelWalksCostMore(t *testing.T) {
	// A small dataset is fully covered by the PL4 page-walk cache, which
	// hides the extra root level; shrink the PWC so walks actually start at
	// the root (the big-memory regime that motivates §2.6).
	p := fastParams()
	p.PWC.PL4Entries = 1
	p.PWC.PL3Entries = 1
	p.PWC.PL2Entries = 4
	four := run(t, Scenario{Workload: tinySpec()}, p)
	p5 := p
	p5.FiveLevel = true
	five := run(t, Scenario{Workload: tinySpec()}, p5)
	if five.AvgWalkLat <= four.AvgWalkLat {
		t.Fatalf("5-level walk (%v) not above 4-level (%v)", five.AvgWalkLat, four.AvgWalkLat)
	}
	// The 5-level extension of §3.5: P1+P2+P3 prefetching recovers the added
	// level's cost.
	asap5 := run(t, Scenario{Workload: tinySpec(),
		ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true, P3: true}}}, p5)
	if asap5.AvgWalkLat >= five.AvgWalkLat {
		t.Fatalf("5-level ASAP (%v) not below its baseline (%v)", asap5.AvgWalkLat, five.AvgWalkLat)
	}
}

func TestHolesReduceCoverage(t *testing.T) {
	clean := fastParams()
	holey := fastParams()
	holey.HoleProb = 0.5
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}
	a := run(t, sc, clean)
	b := run(t, sc, holey)
	ca := float64(a.PrefetchCovered) / float64(a.PrefetchIssued)
	cb := float64(b.PrefetchCovered) / float64(b.PrefetchIssued)
	if cb >= ca {
		t.Fatalf("holes did not reduce prefetch coverage: %v vs %v", cb, ca)
	}
	if b.AvgWalkLat < a.AvgWalkLat {
		t.Fatalf("holey ASAP (%v) beat clean ASAP (%v)", b.AvgWalkLat, a.AvgWalkLat)
	}
}

func TestRangeRegisterCapacity(t *testing.T) {
	// With a single register, only the largest VMA accelerates; the range
	// hit rate must drop against ample registers.
	ample := fastParams()
	scarce := fastParams()
	scarce.RangeRegisters = 1
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}
	a := run(t, sc, ample)
	b := run(t, sc, scarce)
	if b.RangeHitRate >= a.RangeHitRate {
		t.Fatalf("1 register hit rate %v not below 16-register %v", b.RangeHitRate, a.RangeHitRate)
	}
}

func TestDeterminism(t *testing.T) {
	p := fastParams()
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}
	a := run(t, sc, p)
	b := run(t, sc, p)
	if a.AvgWalkLat != b.AvgWalkLat || a.Walks != b.Walks || a.MPKI != b.MPKI {
		t.Fatalf("runs with identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestScenarioNames(t *testing.T) {
	sc := Scenario{Workload: tinySpec(), Virtualized: true, Colocated: true, HostHugePages: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true}, Host: core.Config{P2: true}}}
	want := "tiny/virt+colo+2MB/P1g+P2h"
	if got := sc.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if (ASAPConfig{}).String() != "baseline" {
		t.Fatal("empty ASAPConfig name")
	}
	if (ASAPConfig{Native: core.Config{P1: true}}).String() != "P1" {
		t.Fatal("native ASAPConfig name")
	}
}

func TestBuildCacheReuse(t *testing.T) {
	ResetBuildCache()
	p := fastParams()
	a1, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("assembly not memoized")
	}
	ResetBuildCache()
	a3, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a3 {
		t.Fatal("ResetBuildCache did not drop entries")
	}
}

func TestForRepeat(t *testing.T) {
	p := fastParams()
	if p.ForRepeat(0) != p {
		t.Fatal("repeat 0 must be the base parameter set")
	}
	seen := map[uint64]bool{p.Seed: true}
	for i := 1; i < 8; i++ {
		d := p.ForRepeat(i)
		base := p
		base.Seed = d.Seed
		if d != base {
			t.Fatalf("repeat %d changed more than the seed", i)
		}
		if seen[d.Seed] {
			t.Fatalf("repeat %d reused a seed", i)
		}
		seen[d.Seed] = true
	}
}

func TestRepeatsVary(t *testing.T) {
	// Distinct repeat seeds must actually perturb the measurement — that is
	// the whole point of multi-repeat statistics.
	p := fastParams()
	sc := Scenario{Workload: tinySpec()}
	a := run(t, sc, p.ForRepeat(0))
	b := run(t, sc, p.ForRepeat(1))
	if a.AvgWalkLat == b.AvgWalkLat && a.Walks == b.Walks && a.TLBMissRatio == b.TLBMissRatio {
		t.Fatal("repeats with derived seeds produced identical metrics")
	}
}

func TestAggregate(t *testing.T) {
	a := &Result{Walks: 100, AvgWalkLat: 10, WalkFraction: 0.2, RangeOverflowed: 2, Switches: 10, ShootdownFlushes: 10}
	a.Breakdown.Add(1, 0)
	b := &Result{Walks: 200, AvgWalkLat: 14, WalkFraction: 0.4, RangeOverflowed: 2, Switches: 14, ShootdownFlushes: 14}
	b.Breakdown.Add(1, 0)
	mean, std := Aggregate([]*Result{a, b})
	if mean.Walks != 150 || mean.AvgWalkLat != 12 || mean.RangeOverflowed != 2 {
		t.Fatalf("mean: %+v", mean)
	}
	if mean.Switches != 12 || mean.ShootdownFlushes != 12 {
		t.Fatalf("multi-process counters not aggregated: %+v", mean)
	}
	if d := mean.WalkFraction - 0.3; d > 1e-12 || d < -1e-12 {
		t.Fatalf("mean walk fraction %v", mean.WalkFraction)
	}
	if mean.Breakdown.Total(1) != 2 {
		t.Fatalf("breakdown not pooled: %d", mean.Breakdown.Total(1))
	}
	// Sample std of {10,14} is sqrt(8) ≈ 2.828; of equal values, 0.
	if std.AvgWalkLat < 2.82 || std.AvgWalkLat > 2.84 || std.RangeOverflowed != 0 {
		t.Fatalf("std: %+v", std)
	}
	m1, s1 := Aggregate([]*Result{a})
	if m1.AvgWalkLat != 10 || s1.AvgWalkLat != 0 {
		t.Fatalf("single-result aggregate: %+v / %+v", m1, s1)
	}
}

func TestHostRangeHitRateReported(t *testing.T) {
	// The host-dimension engine's lookups must surface separately: with host
	// ASAP enabled a virtualized run consults it throughout the nested walk.
	p := fastParams()
	r := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}}, p)
	if r.HostRangeHitRate <= 0 || r.HostRangeHitRate > 1 {
		t.Fatalf("host range hit rate %v not measured", r.HostRangeHitRate)
	}
	if r.RangeHitRate <= 0 {
		t.Fatalf("guest range hit rate %v not measured", r.RangeHitRate)
	}
	guestOnly := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}}}, p)
	if guestOnly.HostRangeHitRate != 0 {
		t.Fatalf("host hit rate %v without a host engine", guestOnly.HostRangeHitRate)
	}
}

func TestRangeOverflowWindowed(t *testing.T) {
	// RangeOverflowed is a measured-window delta like every other counter.
	// A single-process run installs its whole descriptor file before warmup,
	// so even a starved one-register file must report 0: the old accounting
	// (finish adding cumulative engine.Overflowed()) reported the setup-time
	// drops here and fails this test. Under multi-process scheduling every
	// switch-in restores the incoming descriptor file, so capacity drops
	// recur inside the window and must surface.
	scarce := fastParams()
	scarce.RangeRegisters = 1
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}
	b := run(t, sc, scarce)
	if b.RangeOverflowed != 0 {
		t.Fatalf("single-process run reported %d pre-window descriptor drops", b.RangeOverflowed)
	}
	multi := scarce
	multi.Processes = 2
	multi.QuantumRefs = 2_000
	r := run(t, sc, multi)
	if r.Switches == 0 {
		t.Fatal("no context switches in the measured window")
	}
	if r.RangeOverflowed == 0 {
		t.Fatal("switch-in descriptor drops not reported")
	}
	ample := run(t, sc, fastParams())
	if ample.RangeOverflowed != 0 {
		t.Fatalf("%d descriptors dropped with ample registers", ample.RangeOverflowed)
	}
}

func TestTable1Shape(t *testing.T) {
	// The headline motivation (Table 1): colocation, virtualization, and
	// both together escalate walk latency monotonically.
	p := fastParams()
	iso := run(t, Scenario{Workload: tinySpec()}, p)
	colo := run(t, Scenario{Workload: tinySpec(), Colocated: true}, p)
	virt := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	both := run(t, Scenario{Workload: tinySpec(), Virtualized: true, Colocated: true}, p)
	if !(iso.AvgWalkLat < colo.AvgWalkLat && colo.AvgWalkLat < virt.AvgWalkLat && virt.AvgWalkLat < both.AvgWalkLat) {
		t.Fatalf("Table 1 escalation violated: %v / %v / %v / %v",
			iso.AvgWalkLat, colo.AvgWalkLat, virt.AvgWalkLat, both.AvgWalkLat)
	}
}

func TestMultiprocPolicies(t *testing.T) {
	p := fastParams()
	p.WarmupWalks = 2000
	p.MeasureWalks = 2000
	p.Processes = 4
	p.QuantumRefs = 300
	sc := Scenario{Workload: tinySpec()}

	p.FlushOnSwitch = true
	flush := run(t, sc, p)
	p.FlushOnSwitch = false
	asid := run(t, sc, p)

	if flush.Switches == 0 || asid.Switches == 0 {
		t.Fatalf("no switches measured: flush=%d asid=%d", flush.Switches, asid.Switches)
	}
	// Every switch flushes under the untagged policy; tagged retention never
	// invalidates during normal scheduling.
	if flush.ShootdownFlushes != flush.Switches {
		t.Fatalf("flush policy: %d flushes over %d switches", flush.ShootdownFlushes, flush.Switches)
	}
	if asid.ShootdownFlushes != 0 {
		t.Fatalf("ASID policy flushed %d times", asid.ShootdownFlushes)
	}
	// Forced refills make the untagged policy walk more per unit of work.
	if flush.MPKI <= asid.MPKI {
		t.Fatalf("flush MPKI %v not above ASID MPKI %v", flush.MPKI, asid.MPKI)
	}
}

func TestMultiprocDeterministic(t *testing.T) {
	p := fastParams()
	p.WarmupWalks = 1500
	p.MeasureWalks = 1500
	p.Processes = 2
	p.QuantumRefs = 300
	sc := Scenario{Workload: tinySpec()}
	a := run(t, sc, p)
	b := run(t, sc, p)
	if *a != *b {
		t.Fatalf("same cell, different results:\n%+v\n%+v", a, b)
	}
}

func TestMultiprocSingleProcessBypass(t *testing.T) {
	// Processes=1 must take the classic path: identical to Processes=0 in
	// every metric, scheduler and switch machinery untouched.
	sc := Scenario{Workload: tinySpec()}
	p0 := fastParams()
	p0.Processes = 0
	p1 := fastParams()
	p1.Processes = 1
	a := run(t, sc, p0)
	b := run(t, sc, p1)
	a.Scenario, b.Scenario = Scenario{}, Scenario{}
	if *a != *b {
		t.Fatalf("Processes=1 diverged from the single-process path:\n%+v\n%+v", a, b)
	}
	if b.Switches != 0 || b.ShootdownFlushes != 0 {
		t.Fatalf("single-process run reported switch activity: %+v", b)
	}
}

func TestMultiprocVirtualizedRejected(t *testing.T) {
	p := fastParams()
	p.Processes = 2
	if _, err := Run(Scenario{Workload: tinySpec(), Virtualized: true}, p); err == nil {
		t.Fatal("virtualized multi-process run accepted")
	}
}

func TestMultiprocUnknownMixRejected(t *testing.T) {
	p := fastParams()
	p.Processes = 2
	if _, err := Run(Scenario{Workload: tinySpec(), Mix: "nosuch"}, p); err == nil {
		t.Fatal("unknown mix workload accepted")
	}
}
