package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

// tinySpec is a fast-to-build workload for unit tests: 96 MiB dataset,
// uniform access with some locality.
func tinySpec() workload.Spec {
	return workload.Spec{
		Name:            "tiny",
		DatasetBytes:    96 * mem.MiB,
		SpreadFactor:    1.5,
		TotalVMAs:       6,
		BigVMAs:         2,
		Pattern:         workload.Uniform,
		HotFraction:     0.02,
		HotProb:         0.4,
		BurstLen:        2,
		LinesPerVisit:   2,
		DataStallCycles: 30,
		Contig8:         0.5,
		MeanPTRun:       4,
		DataPerPTNode:   1,
		InstrPerRef:     4,
	}
}

// fastParams shrinks the measurement protocol so tests stay quick.
func fastParams() Params {
	p := DefaultParams()
	p.WarmupWalks = 4000
	p.MeasureWalks = 4000
	return p
}

func run(t *testing.T, sc Scenario, p Params) *Result {
	t.Helper()
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks == 0 || res.AvgWalkLat <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	return res
}

func TestNativeBaselinePlausible(t *testing.T) {
	res := run(t, Scenario{Workload: tinySpec()}, fastParams())
	// A 4-level walk with a 2-cycle PWC lies between 6 (full PWC + L1 hit)
	// and 766 (all memory) cycles.
	if res.AvgWalkLat < 6 || res.AvgWalkLat > 766 {
		t.Fatalf("baseline walk latency %v implausible", res.AvgWalkLat)
	}
	if res.TLBMissRatio <= 0 || res.TLBMissRatio > 1 {
		t.Fatalf("miss ratio %v", res.TLBMissRatio)
	}
	if res.WalkFraction <= 0 || res.WalkFraction >= 1 {
		t.Fatalf("walk fraction %v", res.WalkFraction)
	}
	// Fig 9 sanity: PL4 requests recorded, and every level's fractions sum
	// to ~1 implicitly via Total.
	if res.Breakdown.Total(4) == 0 || res.Breakdown.Total(1) == 0 {
		t.Fatal("breakdown not recorded")
	}
}

func TestASAPReducesNativeLatency(t *testing.T) {
	p := fastParams()
	base := run(t, Scenario{Workload: tinySpec()}, p)
	p1 := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}, p)
	p12 := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	if p1.AvgWalkLat >= base.AvgWalkLat {
		t.Fatalf("P1 (%v) not below baseline (%v)", p1.AvgWalkLat, base.AvgWalkLat)
	}
	if p12.AvgWalkLat > p1.AvgWalkLat*1.02 {
		t.Fatalf("P1+P2 (%v) worse than P1 (%v)", p12.AvgWalkLat, p1.AvgWalkLat)
	}
	if p12.PrefetchIssued == 0 || p12.PrefetchCovered == 0 {
		t.Fatal("no prefetch activity recorded")
	}
	if p12.RangeHitRate <= 0.5 {
		t.Fatalf("range-register hit rate %v too low", p12.RangeHitRate)
	}
}

func TestColocationIncreasesLatency(t *testing.T) {
	p := fastParams()
	iso := run(t, Scenario{Workload: tinySpec()}, p)
	colo := run(t, Scenario{Workload: tinySpec(), Colocated: true}, p)
	if colo.AvgWalkLat <= iso.AvgWalkLat*1.05 {
		t.Fatalf("colocation did not pressure walks: %v vs %v", colo.AvgWalkLat, iso.AvgWalkLat)
	}
	// ASAP's opportunity grows under colocation (paper §5.1.2).
	asapIso := run(t, Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	asapColo := run(t, Scenario{Workload: tinySpec(), Colocated: true, ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}, p)
	redIso := 1 - asapIso.AvgWalkLat/iso.AvgWalkLat
	redColo := 1 - asapColo.AvgWalkLat/colo.AvgWalkLat
	if redColo <= redIso {
		t.Fatalf("ASAP reduction under colocation (%v) not above isolation (%v)", redColo, redIso)
	}
}

func TestVirtualizationCostlier(t *testing.T) {
	p := fastParams()
	native := run(t, Scenario{Workload: tinySpec()}, p)
	virt := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	if virt.AvgWalkLat < native.AvgWalkLat*1.5 {
		t.Fatalf("2D walks (%v) not clearly above native (%v)", virt.AvgWalkLat, native.AvgWalkLat)
	}
}

func TestVirtASAPOrdering(t *testing.T) {
	p := fastParams()
	base := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	g := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}}}, p)
	gh := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}}, p)
	if !(gh.AvgWalkLat < g.AvgWalkLat && g.AvgWalkLat < base.AvgWalkLat) {
		t.Fatalf("virt ASAP ordering violated: base=%v guest=%v guest+host=%v",
			base.AvgWalkLat, g.AvgWalkLat, gh.AvgWalkLat)
	}
}

func TestHostHugePagesShortenBaseline(t *testing.T) {
	p := fastParams()
	small := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	huge := run(t, Scenario{Workload: tinySpec(), Virtualized: true, HostHugePages: true}, p)
	if huge.AvgWalkLat >= small.AvgWalkLat {
		t.Fatalf("2MB host pages (%v) not below 4KB host pages (%v)", huge.AvgWalkLat, small.AvgWalkLat)
	}
	// ASAP still helps on top of host large pages (Fig 12).
	asap := run(t, Scenario{Workload: tinySpec(), Virtualized: true, HostHugePages: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P2: true}}}, p)
	if asap.AvgWalkLat >= huge.AvgWalkLat {
		t.Fatalf("ASAP over 2MB host pages (%v) not below its baseline (%v)", asap.AvgWalkLat, huge.AvgWalkLat)
	}
}

func TestClusteredTLBReducesMPKIWithContiguity(t *testing.T) {
	p := fastParams()
	spec := tinySpec()
	spec.Contig8 = 0.9
	spec.BurstLen = 4 // spatial locality for the coalesced entries to pay off
	conv := run(t, Scenario{Workload: spec}, p)
	clus := run(t, Scenario{Workload: spec, ClusteredTLB: true}, p)
	if clus.MPKI >= conv.MPKI {
		t.Fatalf("clustered TLB MPKI %v not below conventional %v", clus.MPKI, conv.MPKI)
	}
}

func TestClusteredTLBNeedsContiguity(t *testing.T) {
	p := fastParams()
	spec := tinySpec()
	spec.Name = "tiny-nocontig"
	spec.Contig8 = 0
	spec.BurstLen = 4
	conv := run(t, Scenario{Workload: spec}, p)
	clus := run(t, Scenario{Workload: spec, ClusteredTLB: true}, p)
	// Without physical contiguity the clustered TLB coalesces nothing; MPKI
	// reduction must be marginal (paper §2.5's criticism of coalescing).
	if conv.MPKI == 0 {
		t.Fatal("degenerate MPKI")
	}
	if red := 1 - clus.MPKI/conv.MPKI; red > 0.10 {
		t.Fatalf("clustered TLB reduced MPKI by %v without contiguity", red)
	}
}

func TestFiveLevelWalksCostMore(t *testing.T) {
	// A small dataset is fully covered by the PL4 page-walk cache, which
	// hides the extra root level; shrink the PWC so walks actually start at
	// the root (the big-memory regime that motivates §2.6).
	p := fastParams()
	p.PWC.PL4Entries = 1
	p.PWC.PL3Entries = 1
	p.PWC.PL2Entries = 4
	four := run(t, Scenario{Workload: tinySpec()}, p)
	p5 := p
	p5.FiveLevel = true
	five := run(t, Scenario{Workload: tinySpec()}, p5)
	if five.AvgWalkLat <= four.AvgWalkLat {
		t.Fatalf("5-level walk (%v) not above 4-level (%v)", five.AvgWalkLat, four.AvgWalkLat)
	}
	// The 5-level extension of §3.5: P1+P2+P3 prefetching recovers the added
	// level's cost.
	asap5 := run(t, Scenario{Workload: tinySpec(),
		ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true, P3: true}}}, p5)
	if asap5.AvgWalkLat >= five.AvgWalkLat {
		t.Fatalf("5-level ASAP (%v) not below its baseline (%v)", asap5.AvgWalkLat, five.AvgWalkLat)
	}
}

func TestHolesReduceCoverage(t *testing.T) {
	clean := fastParams()
	holey := fastParams()
	holey.HoleProb = 0.5
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}
	a := run(t, sc, clean)
	b := run(t, sc, holey)
	ca := float64(a.PrefetchCovered) / float64(a.PrefetchIssued)
	cb := float64(b.PrefetchCovered) / float64(b.PrefetchIssued)
	if cb >= ca {
		t.Fatalf("holes did not reduce prefetch coverage: %v vs %v", cb, ca)
	}
	if b.AvgWalkLat < a.AvgWalkLat {
		t.Fatalf("holey ASAP (%v) beat clean ASAP (%v)", b.AvgWalkLat, a.AvgWalkLat)
	}
}

func TestRangeRegisterCapacity(t *testing.T) {
	// With a single register, only the largest VMA accelerates; the range
	// hit rate must drop against ample registers.
	ample := fastParams()
	scarce := fastParams()
	scarce.RangeRegisters = 1
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}
	a := run(t, sc, ample)
	b := run(t, sc, scarce)
	if b.RangeHitRate >= a.RangeHitRate {
		t.Fatalf("1 register hit rate %v not below 16-register %v", b.RangeHitRate, a.RangeHitRate)
	}
}

func TestDeterminism(t *testing.T) {
	p := fastParams()
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true, P2: true}}}
	a := run(t, sc, p)
	b := run(t, sc, p)
	if a.AvgWalkLat != b.AvgWalkLat || a.Walks != b.Walks || a.MPKI != b.MPKI {
		t.Fatalf("runs with identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestScenarioNames(t *testing.T) {
	sc := Scenario{Workload: tinySpec(), Virtualized: true, Colocated: true, HostHugePages: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true}, Host: core.Config{P2: true}}}
	want := "tiny/virt+colo+2MB/P1g+P2h"
	if got := sc.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if (ASAPConfig{}).String() != "baseline" {
		t.Fatal("empty ASAPConfig name")
	}
	if (ASAPConfig{Native: core.Config{P1: true}}).String() != "P1" {
		t.Fatal("native ASAPConfig name")
	}
}

func TestBuildCacheReuse(t *testing.T) {
	ResetBuildCache()
	p := fastParams()
	a1, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("assembly not memoized")
	}
	ResetBuildCache()
	a3, err := nativeFor(tinySpec(), false, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a3 {
		t.Fatal("ResetBuildCache did not drop entries")
	}
}

func TestForRepeat(t *testing.T) {
	p := fastParams()
	if p.ForRepeat(0) != p {
		t.Fatal("repeat 0 must be the base parameter set")
	}
	seen := map[uint64]bool{p.Seed: true}
	for i := 1; i < 8; i++ {
		d := p.ForRepeat(i)
		base := p
		base.Seed = d.Seed
		if d != base {
			t.Fatalf("repeat %d changed more than the seed", i)
		}
		if seen[d.Seed] {
			t.Fatalf("repeat %d reused a seed", i)
		}
		seen[d.Seed] = true
	}
}

func TestRepeatsVary(t *testing.T) {
	// Distinct repeat seeds must actually perturb the measurement — that is
	// the whole point of multi-repeat statistics.
	p := fastParams()
	sc := Scenario{Workload: tinySpec()}
	a := run(t, sc, p.ForRepeat(0))
	b := run(t, sc, p.ForRepeat(1))
	if a.AvgWalkLat == b.AvgWalkLat && a.Walks == b.Walks && a.TLBMissRatio == b.TLBMissRatio {
		t.Fatal("repeats with derived seeds produced identical metrics")
	}
}

func TestAggregate(t *testing.T) {
	a := &Result{Walks: 100, AvgWalkLat: 10, WalkFraction: 0.2, RangeOverflowed: 2}
	a.Breakdown.Add(1, 0)
	b := &Result{Walks: 200, AvgWalkLat: 14, WalkFraction: 0.4, RangeOverflowed: 2}
	b.Breakdown.Add(1, 0)
	mean, std := Aggregate([]*Result{a, b})
	if mean.Walks != 150 || mean.AvgWalkLat != 12 || mean.RangeOverflowed != 2 {
		t.Fatalf("mean: %+v", mean)
	}
	if d := mean.WalkFraction - 0.3; d > 1e-12 || d < -1e-12 {
		t.Fatalf("mean walk fraction %v", mean.WalkFraction)
	}
	if mean.Breakdown.Total(1) != 2 {
		t.Fatalf("breakdown not pooled: %d", mean.Breakdown.Total(1))
	}
	// Sample std of {10,14} is sqrt(8) ≈ 2.828; of equal values, 0.
	if std.AvgWalkLat < 2.82 || std.AvgWalkLat > 2.84 || std.RangeOverflowed != 0 {
		t.Fatalf("std: %+v", std)
	}
	m1, s1 := Aggregate([]*Result{a})
	if m1.AvgWalkLat != 10 || s1.AvgWalkLat != 0 {
		t.Fatalf("single-result aggregate: %+v / %+v", m1, s1)
	}
}

func TestHostRangeHitRateReported(t *testing.T) {
	// The host-dimension engine's lookups must surface separately: with host
	// ASAP enabled a virtualized run consults it throughout the nested walk.
	p := fastParams()
	r := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}}, p)
	if r.HostRangeHitRate <= 0 || r.HostRangeHitRate > 1 {
		t.Fatalf("host range hit rate %v not measured", r.HostRangeHitRate)
	}
	if r.RangeHitRate <= 0 {
		t.Fatalf("guest range hit rate %v not measured", r.RangeHitRate)
	}
	guestOnly := run(t, Scenario{Workload: tinySpec(), Virtualized: true,
		ASAP: ASAPConfig{Guest: core.Config{P1: true, P2: true}}}, p)
	if guestOnly.HostRangeHitRate != 0 {
		t.Fatalf("host hit rate %v without a host engine", guestOnly.HostRangeHitRate)
	}
}

func TestRangeOverflowReported(t *testing.T) {
	// With one register, every descriptor beyond the first is dropped at
	// install time; the count must reach the result.
	scarce := fastParams()
	scarce.RangeRegisters = 1
	sc := Scenario{Workload: tinySpec(), ASAP: ASAPConfig{Native: core.Config{P1: true}}}
	b := run(t, sc, scarce)
	if b.RangeOverflowed == 0 {
		t.Fatal("dropped descriptors not reported")
	}
	ample := run(t, sc, fastParams())
	if ample.RangeOverflowed != 0 {
		t.Fatalf("%d descriptors dropped with ample registers", ample.RangeOverflowed)
	}
}

func TestTable1Shape(t *testing.T) {
	// The headline motivation (Table 1): colocation, virtualization, and
	// both together escalate walk latency monotonically.
	p := fastParams()
	iso := run(t, Scenario{Workload: tinySpec()}, p)
	colo := run(t, Scenario{Workload: tinySpec(), Colocated: true}, p)
	virt := run(t, Scenario{Workload: tinySpec(), Virtualized: true}, p)
	both := run(t, Scenario{Workload: tinySpec(), Virtualized: true, Colocated: true}, p)
	if !(iso.AvgWalkLat < colo.AvgWalkLat && colo.AvgWalkLat < virt.AvgWalkLat && virt.AvgWalkLat < both.AvgWalkLat) {
		t.Fatalf("Table 1 escalation violated: %v / %v / %v / %v",
			iso.AvgWalkLat, colo.AvgWalkLat, virt.AvgWalkLat, both.AvgWalkLat)
	}
}
