package sim

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func schemeTestParams() Params {
	p := DefaultParams()
	p.WarmupWalks = 800
	p.MeasureWalks = 800
	return p
}

// TestRunValidatesScheme locks the scheme-axis validation: unknown names and
// contradictory dimension combinations fail loudly instead of silently
// running something else.
func TestRunValidatesScheme(t *testing.T) {
	ResetBuildCache()
	mcf, _ := workload.ByName("mcf")
	p := schemeTestParams()
	if _, err := Run(Scenario{Workload: mcf, Scheme: "bogus"}, p); err == nil {
		t.Fatal("unknown scheme accepted")
	} else if !strings.Contains(err.Error(), "victima") {
		t.Fatalf("unknown-scheme error does not list valid names: %v", err)
	}
	for _, scheme := range []string{"victima", "revelator"} {
		if _, err := Run(Scenario{Workload: mcf, Scheme: scheme, Virtualized: true}, p); err == nil {
			t.Fatalf("%s + virtualized accepted", scheme)
		}
		if _, err := Run(Scenario{Workload: mcf, Scheme: scheme, ASAP: cfgTestP1P2()}, p); err == nil {
			t.Fatalf("%s + ASAP prefetch accepted", scheme)
		}
	}
	// The explicit asap selection is valid and carries the axis through the
	// scenario name.
	res, err := Run(Scenario{Workload: mcf, Scheme: "asap"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Scenario.Name(), "+mmu[asap]") {
		t.Fatalf("scenario name %q lacks the scheme marker", res.Scenario.Name())
	}
}

// TestRivalSchemesRun exercises both rival backends end to end: runs succeed,
// walks happen, and each scheme's acceleration mechanism reports probes (and
// some hits) through the shared counters.
func TestRivalSchemesRun(t *testing.T) {
	ResetBuildCache()
	mcf, _ := workload.ByName("mcf")
	p := schemeTestParams()
	base, err := Run(Scenario{Workload: mcf}, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"victima", "revelator"} {
		t.Run(scheme, func(t *testing.T) {
			res, err := Run(Scenario{Workload: mcf, Scheme: scheme}, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Walks == 0 || res.AvgWalkLat <= 0 {
				t.Fatalf("no measured walks: %+v", res)
			}
			if res.RangeHitRate <= 0 {
				t.Fatalf("%s mechanism never hit (rate %v)", scheme, res.RangeHitRate)
			}
			if res.RangeHitRate >= 1 {
				t.Fatalf("%s mechanism hit rate %v not a miss/hit mix", scheme, res.RangeHitRate)
			}
			// Same TLB geometry, same reference stream: the TLB-level metrics
			// must match the baseline exactly; only the miss path differs.
			if res.TLBMissRatio != base.TLBMissRatio || res.MPKI != base.MPKI {
				t.Fatalf("%s perturbed the TLB level: %v/%v vs baseline %v/%v",
					scheme, res.TLBMissRatio, res.MPKI, base.TLBMissRatio, base.MPKI)
			}
		})
	}
}

// TestRivalSchemesMultiprocessPolicies runs the rival schemes under the
// quantum scheduler with both context-switch policies: the flush policy
// reports shootdown flushes in the measured window, ASID-tagged retention
// reports none, and switches never cost descriptor-swap volume (the rivals
// have no register file to save).
func TestRivalSchemesMultiprocessPolicies(t *testing.T) {
	ResetBuildCache()
	mcf, _ := workload.ByName("mcf")
	for _, scheme := range []string{"victima", "revelator"} {
		for _, flush := range []bool{true, false} {
			p := schemeTestParams()
			p.Processes = 2
			p.FlushOnSwitch = flush
			res, err := Run(Scenario{Workload: mcf, Scheme: scheme, Mix: "mcf,canneal"}, p)
			if err != nil {
				t.Fatalf("%s flush=%v: %v", scheme, flush, err)
			}
			if res.Switches == 0 {
				t.Fatalf("%s flush=%v: no switches in the measured window", scheme, flush)
			}
			if flush && res.ShootdownFlushes == 0 {
				t.Fatalf("%s: flush policy reported no TLB flushes", scheme)
			}
			if !flush && res.ShootdownFlushes != 0 {
				t.Fatalf("%s: ASID policy reported %d flushes", scheme, res.ShootdownFlushes)
			}
		}
	}
}
