package sim

import (
	"fmt"
	"sync"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Loaded traces are registered by content digest so that Scenario — a flat,
// comparable value the runner memoizes on — can reference a trace without
// holding it. Registration is idempotent: equal digests mean equal content.
var (
	traceMu  sync.Mutex
	traceReg = map[string]*trace.Trace{}
)

// UseTrace registers tr for replay and returns the scenario that drives it:
// the trace header's spec as the workload (the meter charges its timing
// model) and the content digest as the trace source. Callers layer further
// scenario dimensions (ASAP configs, colocation, a clustered TLB) on the
// returned value; virtualization and multi-process scheduling are rejected at
// run time.
func UseTrace(tr *trace.Trace) Scenario {
	traceMu.Lock()
	traceReg[tr.Digest] = tr
	traceMu.Unlock()
	return Scenario{Workload: tr.Header.Spec, Trace: tr.Digest}
}

func traceByDigest(digest string) (*trace.Trace, error) {
	traceMu.Lock()
	tr, ok := traceReg[digest]
	traceMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sim: trace %s not registered (call UseTrace first)", digest)
	}
	return tr, nil
}

// traceNativeFor assembles the native process image of a trace capture: the
// layout comes verbatim from the trace header (not BuildLayout), so page
// tables, data placement and ASAP candidate sets match the capture exactly —
// the invariant behind record/replay fidelity. Assemblies memoize alongside
// the synthetic ones, keyed by trace digest.
func traceNativeFor(tr *trace.Trace, sorted bool, p Params) (*nativeAssembly, error) {
	key := fmt.Sprintf("trace|%s|%v|%v|%v|%d", tr.Digest, sorted, p.FiveLevel, p.HoleProb, p.RangeRegisters)
	v, err := memoize(key, func() (any, error) {
		layout, err := workload.LayoutFromAreas(tr.Header.Areas)
		if err != nil {
			return nil, fmt.Errorf("sim: trace %s layout: %w", tr.Digest, err)
		}
		return assembleNative(tr.Header.Spec, layout, sorted, p.FiveLevel, p.HoleProb, p.RangeRegisters)
	})
	if err != nil {
		return nil, err
	}
	return v.(*nativeAssembly), nil
}
