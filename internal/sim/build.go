package sim

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/rng"
	"repro/internal/virt"
	"repro/internal/vma"
	"repro/internal/workload"
)

// Machine address-space plan (frame numbers). The simulator only tracks tags,
// so these areas just need to be disjoint; they mirror a large machine.
const (
	asapRegionBase = mem.Frame(1) << 24 // sorted PT regions (native)
	ptScatterBase  = mem.Frame(1) << 26 // scattered PT nodes (native + EPT)
	ptScatterSpan  = uint64(1) << 22
	dataBase       = mem.Frame(1) << 28 // application data pages (native)
	coRunnerBase   = mem.Frame(1) << 30 // co-runner's working set
	coRunnerSpan   = uint64(1) << 22    // 16 GiB
	guestRAMBase   = mem.Frame(1) << 32 // scattered backing of guest RAM
	guestPinBase   = mem.Frame(1) << 34 // pinned guest PT regions
	hostRegionBase = mem.Frame(1) << 35 // sorted EPT regions
)

// guestPTScatterSpan is the guest-physical area reserved for scattered guest
// page-table nodes.
const guestPTScatterSpan = uint64(1) << 22

// nativeAssembly is a ready-to-run native process: layout, populated page
// table, data placement and (optionally) ASAP descriptors whose regions the
// page table honours.
type nativeAssembly struct {
	layout *workload.Layout
	table  *pt.Table
	frames *workload.FrameMap
	descs  []*core.Descriptor
}

// virtAssembly is a ready-to-run virtual machine: guest page table over
// guest-physical space, EPT over machine space, the GPA map binding them, and
// per-dimension ASAP descriptors.
type virtAssembly struct {
	layout     *workload.Layout
	guestPT    *pt.Table
	ept        *pt.Table
	gmap       *virt.GPAMap
	guestDescs []*core.Descriptor
	hostDescs  []*core.Descriptor
	gDataSpan  uint64 // guest-physical frames backing data pages
	gpaSalt    uint64
}

// dataGPA returns the guest-physical address backing va: guest data pages
// scatter over the guest's RAM as a long-running guest's would.
func (v *virtAssembly) dataGPA(va mem.VirtAddr) mem.PhysAddr {
	gframe := rng.Mix64(va.VPN()^v.gpaSalt) % v.gDataSpan
	return mem.Frame(gframe).Addr() + mem.PhysAddr(va.PageOffset())
}

// asapLevels returns the page-table levels worth reserving regions for: the
// deep levels the paper prefetches, bounded by the table's leaf level.
func asapLevels(fiveLevel, hugeLeaf bool) []int {
	if hugeLeaf {
		return []int{2}
	}
	if fiveLevel {
		return []int{1, 2, 3}
	}
	return []int{1, 2}
}

// setupSorted reserves sorted regions for the top areas of the layout and
// returns the resulting allocator and descriptors.
func setupSorted(areas []*vma.VMA, levels []int, fallback pt.Allocator,
	reserve core.Reserver, holeProb float64, seed uint64) (*pt.SortedAlloc, []*core.Descriptor, error) {
	sorted := pt.NewSortedAlloc(fallback, holeProb, seed)
	var descs []*core.Descriptor
	for _, area := range areas {
		setup, err := core.SetupVMA(area, levels, reserve)
		if err != nil {
			return nil, nil, err
		}
		for _, reg := range setup.Regions {
			sorted.AddRegion(reg)
		}
		descs = append(descs, setup.Descriptor)
	}
	return sorted, descs, nil
}

// overflowDescs returns bare descriptors for the VMAs the OS would register
// beyond the range-register capacity: its candidate set is every big VMA
// needed to cover 99% of the footprint (§3.2), installed in size order, so
// once the register file is full the remainder is dropped — and counted — by
// core.Engine.Install. The extras carry no prefetch bases and reserve no
// sorted regions, so page-table placement and acceleration are unchanged;
// only the drop count becomes observable. installed is the number of
// descriptors already holding registers; extras are only meaningful when the
// file is full (otherwise they would occupy free registers the current
// policy leaves empty).
func overflowDescs(layout *workload.Layout, installed, regCap int) []*core.Descriptor {
	want := layout.Space.CoverageCount(0.99)
	if installed < regCap || want <= regCap {
		return nil
	}
	all := keepBig(layout.Space.Largest(want), layout)
	var out []*core.Descriptor
	for _, a := range all[min(installed, len(all)):] {
		out = append(out, &core.Descriptor{Start: a.Start, End: a.End})
	}
	return out
}

// buildNative assembles a native process for spec.
func buildNative(spec workload.Spec, sorted, fiveLevel bool, holeProb float64, regCap int) (*nativeAssembly, error) {
	layout, err := workload.BuildLayout(spec)
	if err != nil {
		return nil, err
	}
	return assembleNative(spec, layout, sorted, fiveLevel, holeProb, regCap)
}

// assembleNative realizes a native process over an already-built layout: page
// tables, data placement and ASAP descriptors all derive deterministically
// from (spec identity, layout), which is what lets a trace replay — whose
// layout comes from the trace header rather than BuildLayout — assemble the
// exact process image of its capture.
func assembleNative(spec workload.Spec, layout *workload.Layout, sorted, fiveLevel bool, holeProb float64, regCap int) (*nativeAssembly, error) {
	salt := rng.Mix64(hashName(spec.Name))
	var alloc pt.Allocator = pt.NewScatterAlloc(ptScatterBase, ptScatterSpan, salt)
	var descs []*core.Descriptor
	if sorted {
		targets := layout.Space.Largest(regCap)
		targets = keepBig(targets, layout)
		s, d, err := setupSorted(targets, asapLevels(fiveLevel, false), alloc,
			mem.NewBump(asapRegionBase, uint64(1)<<24), holeProb, salt^1)
		if err != nil {
			return nil, err
		}
		alloc, descs = s, d
		descs = append(descs, overflowDescs(layout, len(descs), regCap)...)
	}
	cfg := pt.Config{Levels: 4, LeafLevel: 1}
	if fiveLevel {
		cfg.Levels = 5
	}
	table, err := pt.New(cfg, alloc, false)
	if err != nil {
		return nil, err
	}
	layout.Populate(table)
	// FrameMap.Span must be a positive multiple of 8 (the clustered path
	// groups frames 8 at a time). Real workloads sit far above the floor; it
	// only matters for tiny hand-built trace layouts.
	span := mem.NextPow2(layout.TotalResident * 5 / 4)
	if span < 8 {
		span = 8
	}
	return &nativeAssembly{
		layout: layout,
		table:  table,
		frames: &workload.FrameMap{
			Base:    dataBase,
			Span:    span,
			Contig8: spec.Contig8,
			Salt:    salt ^ 2,
		},
		descs: descs,
	}, nil
}

// keepBig filters candidate prefetch VMAs down to dataset areas: registering
// tiny library areas would waste range registers (the OS targets the heap and
// large mappings, §3.2).
func keepBig(areas []*vma.VMA, layout *workload.Layout) []*vma.VMA {
	var out []*vma.VMA
	for _, a := range areas {
		for _, big := range layout.Big {
			if a == big {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// buildVirt assembles a virtualized deployment for spec.
func buildVirt(spec workload.Spec, guestSorted, hostSorted, hostHuge bool, holeProb float64, regCap int) (*virtAssembly, error) {
	layout, err := workload.BuildLayout(spec)
	if err != nil {
		return nil, err
	}
	salt := rng.Mix64(hashName(spec.Name)) ^ 0xbeef

	// Guest-physical plan: data pages scatter over the low gPA range, guest
	// PT nodes over the next, and pinned sorted regions at the top.
	gDataSpan := mem.NextPow2(layout.TotalResident * 5 / 4)
	gptBase := mem.Frame(gDataSpan)
	gASAPBase := gptBase + mem.Frame(guestPTScatterSpan)

	var guestAlloc pt.Allocator = pt.NewScatterAlloc(gptBase, guestPTScatterSpan, salt)
	guestReserver := mem.NewBump(gASAPBase, uint64(1)<<24)
	var guestDescs []*core.Descriptor
	var guestRegions []*pt.Region
	if guestSorted {
		targets := keepBig(layout.Space.Largest(regCap), layout)
		s, d, err := setupSorted(targets, asapLevels(false, false), guestAlloc, guestReserver, holeProb, salt^1)
		if err != nil {
			return nil, err
		}
		guestAlloc, guestDescs = s, d
		guestRegions = s.Regions
		guestDescs = append(guestDescs, overflowDescs(layout, len(guestDescs), regCap)...)
	}
	guestFrames := uint64(gASAPBase) + (uint64(1)<<24 - guestReserver.Remaining())

	// Machine backing of guest RAM, with the guest PT regions pinned
	// machine-contiguously (the vmcall protocol of §3.6) so the guest
	// descriptors can expose machine base addresses.
	gmap := virt.NewGPAMap(guestRAMBase, mem.NextPow2(guestFrames*2), hostHuge, salt^3)
	pinAt := guestPinBase
	for i, reg := range guestRegions {
		n := pt.NodesFor(reg.Level, reg.VAStart, reg.VAEnd)
		if err := gmap.Pin(uint64(reg.Base), n, pinAt); err != nil {
			return nil, err
		}
		// Point the descriptor at the machine base of the pinned range.
		for _, d := range guestDescs {
			if d.Start == reg.VAStart && d.Has[reg.Level] && d.Base[reg.Level] == reg.Base.Addr() {
				d.Base[reg.Level] = pinAt.Addr()
			}
		}
		pinAt += mem.Frame(n)
		_ = i
	}

	guestPT, err := pt.New(pt.Config{Levels: 4, LeafLevel: 1}, guestAlloc, false)
	if err != nil {
		return nil, err
	}
	layout.Populate(guestPT)

	// The EPT covers all of guest RAM; its nodes live in machine frames.
	var hostAlloc pt.Allocator = pt.NewScatterAlloc(ptScatterBase, ptScatterSpan, salt^4)
	var hostDescs []*core.Descriptor
	guestRAM := &vma.VMA{Start: 0, End: mem.VirtAddr(guestFrames * mem.PageSize), Kind: vma.GuestRAM, Name: spec.Name + "-vm"}
	if hostSorted {
		s, d, err := setupSorted([]*vma.VMA{guestRAM}, asapLevels(false, hostHuge), hostAlloc,
			mem.NewBump(hostRegionBase, uint64(1)<<24), holeProb, salt^5)
		if err != nil {
			return nil, err
		}
		hostAlloc, hostDescs = s, d
	}
	ept, err := pt.New(virt.EPTConfig(hostHuge), hostAlloc, false)
	if err != nil {
		return nil, err
	}
	ept.PopulateRange(0, guestRAM.End)

	return &virtAssembly{
		layout:     layout,
		guestPT:    guestPT,
		ept:        ept,
		gmap:       gmap,
		guestDescs: guestDescs,
		hostDescs:  hostDescs,
		gDataSpan:  gDataSpan,
		gpaSalt:    salt ^ 6,
	}, nil
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// Assemblies are expensive to build (populating a 400 GB page table touches
// hundreds of thousands of nodes), immutable once built, and shared across
// many scenario cells, so they are memoized in a small LRU cache. Entries are
// singleflight: the first requester builds outside the global lock (distinct
// assemblies build concurrently under a parallel runner) while concurrent
// requesters of the same key wait for that one build.
type buildEntry struct {
	done chan struct{}
	v    any
	err  error
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*buildEntry{}
	buildOrder []string
)

const buildCacheCap = 12

func memoize(key string, build func() (any, error)) (any, error) {
	buildMu.Lock()
	if e, ok := buildCache[key]; ok {
		buildMu.Unlock()
		<-e.done
		return e.v, e.err
	}
	e := &buildEntry{done: make(chan struct{})}
	for len(buildOrder) >= buildCacheCap && evictOldestCompleted() {
	}
	buildCache[key] = e
	buildOrder = append(buildOrder, key)
	buildMu.Unlock()

	e.v, e.err = build()
	close(e.done)
	if e.err != nil {
		// Drop failed builds so a later request retries instead of caching
		// the error.
		buildMu.Lock()
		if buildCache[key] == e {
			delete(buildCache, key)
			for i, k := range buildOrder {
				if k == key {
					buildOrder = append(buildOrder[:i], buildOrder[i+1:]...)
					break
				}
			}
		}
		buildMu.Unlock()
	}
	return e.v, e.err
}

// evictOldestCompleted drops the oldest finished entry, reporting whether one
// was found. In-flight builds are never evicted: doing so would re-admit a
// concurrent duplicate build of the same assembly, exactly what singleflight
// exists to prevent. If every entry is in flight the cache temporarily
// exceeds its cap; the caller's eviction loop shrinks it back under the cap
// on later inserts. Callers hold buildMu.
func evictOldestCompleted() bool {
	for i, k := range buildOrder {
		e := buildCache[k]
		select {
		case <-e.done:
			buildOrder = append(buildOrder[:i], buildOrder[i+1:]...)
			delete(buildCache, k)
			return true
		default:
		}
	}
	return false
}

func nativeFor(spec workload.Spec, sorted bool, p Params) (*nativeAssembly, error) {
	key := fmt.Sprintf("native|%s|%v|%v|%v|%d", spec.Name, sorted, p.FiveLevel, p.HoleProb, p.RangeRegisters)
	v, err := memoize(key, func() (any, error) {
		return buildNative(spec, sorted, p.FiveLevel, p.HoleProb, p.RangeRegisters)
	})
	if err != nil {
		return nil, err
	}
	return v.(*nativeAssembly), nil
}

func virtFor(spec workload.Spec, guestSorted, hostSorted, hostHuge bool, p Params) (*virtAssembly, error) {
	key := fmt.Sprintf("virt|%s|%v|%v|%v|%v|%d", spec.Name, guestSorted, hostSorted, hostHuge, p.HoleProb, p.RangeRegisters)
	v, err := memoize(key, func() (any, error) {
		return buildVirt(spec, guestSorted, hostSorted, hostHuge, p.HoleProb, p.RangeRegisters)
	})
	if err != nil {
		return nil, err
	}
	return v.(*virtAssembly), nil
}

// ResetBuildCache drops all memoized assemblies (tests use it to bound
// memory).
func ResetBuildCache() {
	buildMu.Lock()
	defer buildMu.Unlock()
	buildCache = map[string]*buildEntry{}
	buildOrder = nil
}
