// Package virt assembles the nested-translation substrate for virtualized
// runs: the guest-physical → machine mapping (with hypervisor pinning for
// ASAP's guest page-table regions), the host (EPT) page table over
// guest-physical space, and the guest page table whose nodes live in
// guest-physical frames.
//
// The key piece of paper §3.6 modelled here is double contiguity: for guest
// ASAP to compute machine addresses with base-plus-offset arithmetic, the
// guest's sorted page-table regions must be contiguous in guest-physical
// space *and* pinned contiguously in machine memory (the guest requests this
// from the hypervisor with vmcall). GPAMap.Pin provides exactly that.
package virt

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/rng"
)

// GPAMap maps guest-physical frames to machine frames. Unpinned guest memory
// is scattered pseudo-randomly over a machine region, at 4 KB granularity
// normally or 2 MB granularity when the hypervisor backs the guest with
// large pages (Fig 12). Pinned ranges translate linearly.
type GPAMap struct {
	base mem.Frame
	span uint64 // machine frames available for scattered backing
	huge bool
	salt uint64
	pins []pin
}

type pin struct {
	gStart, gEnd uint64 // guest frame range [gStart, gEnd)
	mBase        mem.Frame
}

// NewGPAMap returns a mapping backed by span machine frames at base. When
// huge is true, scattering happens at 2 MB granularity (512-frame chunks stay
// together), modelling a hypervisor that allocates guest RAM in large pages.
func NewGPAMap(base mem.Frame, span uint64, huge bool, seed uint64) *GPAMap {
	if span == 0 {
		panic("virt: empty GPA map span")
	}
	if huge && span < mem.NodeSpan {
		panic("virt: huge GPA map needs at least one 2 MB chunk")
	}
	return &GPAMap{base: base, span: span, huge: huge, salt: seed}
}

// Pin maps the guest frame range [gFrame, gFrame+count) linearly onto machine
// frames starting at mBase — the hypervisor-side guarantee behind guest ASAP.
// Pinned ranges must not overlap.
func (m *GPAMap) Pin(gFrame, count uint64, mBase mem.Frame) error {
	if count == 0 {
		return fmt.Errorf("virt: empty pin")
	}
	for _, p := range m.pins {
		if gFrame < p.gEnd && p.gStart < gFrame+count {
			return fmt.Errorf("virt: pin [%d,%d) overlaps [%d,%d)", gFrame, gFrame+count, p.gStart, p.gEnd)
		}
	}
	m.pins = append(m.pins, pin{gStart: gFrame, gEnd: gFrame + count, mBase: mBase})
	return nil
}

// TranslateFrame maps a guest frame number to its machine frame.
func (m *GPAMap) TranslateFrame(gframe uint64) mem.Frame {
	for _, p := range m.pins {
		if gframe >= p.gStart && gframe < p.gEnd {
			return p.mBase + mem.Frame(gframe-p.gStart)
		}
	}
	if m.huge {
		chunks := m.span >> mem.NodeShift
		chunk := rng.Mix64(gframe>>mem.NodeShift^m.salt) % chunks
		return m.base + mem.Frame(chunk<<mem.NodeShift|gframe&(mem.NodeSpan-1))
	}
	return m.base + mem.Frame(rng.Mix64(gframe^m.salt)%m.span)
}

// Translate maps a guest-physical byte address to its machine address.
func (m *GPAMap) Translate(gpa mem.PhysAddr) mem.PhysAddr {
	return m.TranslateFrame(uint64(gpa)>>mem.PageShift).Addr() + mem.PhysAddr(uint64(gpa)&(mem.PageSize-1))
}

// Machine bundles the pieces of one virtualized deployment that the nested
// walker needs.
type Machine struct {
	GuestPT *pt.Table // guest virtual → guest physical (presence)
	HostPT  *pt.Table // guest physical → machine (the EPT)
	Map     *GPAMap
}

// EPTConfig returns the host page-table geometry: 4 levels, with 2 MB leaves
// when the hypervisor uses large pages.
func EPTConfig(hugePages bool) pt.Config {
	leaf := 1
	if hugePages {
		leaf = 2
	}
	return pt.Config{Levels: 4, LeafLevel: leaf}
}
