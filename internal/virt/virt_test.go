package virt

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestPinTranslatesLinearly(t *testing.T) {
	m := NewGPAMap(1<<20, 1<<18, false, 1)
	if err := m.Pin(100, 50, mem.Frame(777)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if got := m.TranslateFrame(100 + i); got != mem.Frame(777+i) {
			t.Fatalf("pinned frame %d → %d, want %d", 100+i, got, 777+i)
		}
	}
	// Byte offsets survive translation.
	gpa := mem.PhysAddr(100*mem.PageSize + 123)
	if got := m.Translate(gpa); got != mem.Frame(777).Addr()+123 {
		t.Fatalf("Translate(%#x) = %#x", uint64(gpa), uint64(got))
	}
}

func TestPinRejectsOverlap(t *testing.T) {
	m := NewGPAMap(1<<20, 1<<18, false, 1)
	if err := m.Pin(100, 50, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(149, 10, 1000); err == nil {
		t.Fatal("overlapping pin accepted")
	}
	if err := m.Pin(0, 0, 0); err == nil {
		t.Fatal("empty pin accepted")
	}
	if err := m.Pin(150, 10, 1000); err != nil {
		t.Fatalf("adjacent pin rejected: %v", err)
	}
}

func TestScatterStaysInSpan(t *testing.T) {
	base, span := mem.Frame(1<<20), uint64(1<<16)
	m := NewGPAMap(base, span, false, 3)
	f := func(gframe uint64) bool {
		got := m.TranslateFrame(gframe % (1 << 30))
		return got >= base && got < base+mem.Frame(span)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScatterDeterministic(t *testing.T) {
	a := NewGPAMap(0, 1<<16, false, 5)
	b := NewGPAMap(0, 1<<16, false, 5)
	c := NewGPAMap(0, 1<<16, false, 6)
	same, diff := true, false
	for g := uint64(0); g < 1000; g++ {
		if a.TranslateFrame(g) != b.TranslateFrame(g) {
			same = false
		}
		if a.TranslateFrame(g) != c.TranslateFrame(g) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different mappings")
	}
	if !diff {
		t.Fatal("different seeds produced identical mappings")
	}
}

func TestHugeGranuleKeepsChunksTogether(t *testing.T) {
	m := NewGPAMap(0, 1<<18, true, 7)
	// All 512 frames of a guest 2 MB chunk must be machine-contiguous and
	// 2 MB-aligned as a group.
	base := m.TranslateFrame(512 * 3)
	if uint64(base)&(mem.NodeSpan-1) != 0 {
		t.Fatalf("chunk base %d not 2MB aligned", base)
	}
	for i := uint64(0); i < 512; i++ {
		if got := m.TranslateFrame(512*3 + i); got != base+mem.Frame(i) {
			t.Fatalf("huge chunk split at %d: %d vs %d", i, got, base+mem.Frame(i))
		}
	}
	// Different chunks scatter.
	if m.TranslateFrame(0) == base {
		t.Fatal("distinct chunks collided trivially")
	}
}

func TestSmallGranuleScatters(t *testing.T) {
	m := NewGPAMap(0, 1<<18, false, 9)
	adjacent := 0
	for g := uint64(0); g < 1000; g++ {
		if m.TranslateFrame(g+1) == m.TranslateFrame(g)+1 {
			adjacent++
		}
	}
	if adjacent > 10 {
		t.Fatalf("4K granule preserved %d adjacencies of 1000", adjacent)
	}
}

func TestEPTConfig(t *testing.T) {
	small := EPTConfig(false)
	if small.Levels != 4 || small.LeafLevel != 1 {
		t.Fatalf("small EPT config: %+v", small)
	}
	huge := EPTConfig(true)
	if huge.Levels != 4 || huge.LeafLevel != 2 {
		t.Fatalf("huge EPT config: %+v", huge)
	}
}

func TestNewGPAMapPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero span": func() { NewGPAMap(0, 0, false, 1) },
		"tiny huge": func() { NewGPAMap(0, 8, true, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
