// Package stats provides the counters and table rendering used by the
// experiment harness: per-(PT level × hierarchy level) walk-request
// breakdowns (Fig 9), running means, and plain-text table output shaped like
// the paper's tables and figure data.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/cache"
)

// Breakdown counts page-walk requests by PT level and serving hierarchy
// level — the data behind Fig 9.
type Breakdown struct {
	counts [6][cache.NumServedBy]uint64
}

// MarshalJSON serializes the count matrix, so results embedding a Breakdown
// (sim.Result in the asapd result store) round-trip losslessly even though
// the counts are unexported.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.counts)
}

// UnmarshalJSON restores a matrix written by MarshalJSON.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, &b.counts)
}

// Add records one request to PT level `level` served at `served`.
func (b *Breakdown) Add(level int, served cache.ServedBy) {
	if level >= 1 && level <= 5 {
		b.counts[level][served]++
	}
}

// Merge pools another breakdown's counts into b (used when aggregating
// independent repeats: pooled counts keep the per-level fractions exact).
func (b *Breakdown) Merge(o *Breakdown) {
	for l := range b.counts {
		for s := range b.counts[l] {
			b.counts[l][s] += o.counts[l][s]
		}
	}
}

// Count returns the recorded requests for (level, served).
func (b *Breakdown) Count(level int, served cache.ServedBy) uint64 {
	if level < 1 || level > 5 {
		return 0
	}
	return b.counts[level][served]
}

// Total returns all requests recorded for a PT level.
func (b *Breakdown) Total(level int) uint64 {
	var t uint64
	if level < 1 || level > 5 {
		return 0
	}
	for _, c := range b.counts[level] {
		t += c
	}
	return t
}

// Fraction returns the share of level's requests served at `served`, or 0 if
// the level saw no requests.
func (b *Breakdown) Fraction(level int, served cache.ServedBy) float64 {
	t := b.Total(level)
	if t == 0 {
		return 0
	}
	return float64(b.Count(level, served)) / float64(t)
}

// Mean is a running average.
type Mean struct {
	sum float64
	n   uint64
}

// Add folds a sample in.
func (m *Mean) Add(x float64) {
	m.sum += x
	m.n++
}

// Value returns the mean (0 for no samples).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the sample count.
func (m *Mean) N() uint64 { return m.n }

// Sum returns the sample total.
func (m *Mean) Sum() float64 { return m.sum }

// Summary aggregates independent repeats of one measurement: sample mean,
// sample standard deviation (n-1 denominator) and the half-width of the 95%
// confidence interval on the mean, t·σ/√n with Student's t critical value for
// the sample count — at the typical 2–5 repeats the normal 1.96 understates
// the interval severely (n=2 needs 12.7). From n ≥ 30 the normal
// approximation takes over. Std and CI95 are 0 for fewer than two samples.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
}

// tCrit95 holds the two-sided 95% Student-t critical values for n = 2..29
// samples (df = n-1 = 1..28).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
}

// CritT95 returns the two-sided 95% critical value for the mean of n samples:
// Student's t below 30 samples, the normal 1.96 from there.
func CritT95(n int) float64 {
	if n >= 2 && n < 30 {
		return tCrit95[n-2]
	}
	return 1.96
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = CritT95(s.N) * s.Std / math.Sqrt(float64(s.N))
	return s
}

// Table accumulates rows of strings and renders them with aligned columns,
// which is how cmd/paperrepro prints the paper's tables and figure series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// F1 formats a float with one decimal.
func F1(x float64) string { return fmt.Sprintf("%.1f", x) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a fraction as a percentage with no decimals.
func Pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

// Ratio formats a multiplicative factor like the paper's "2.7×".
func Ratio(x float64) string { return fmt.Sprintf("%.1f×", x) }
