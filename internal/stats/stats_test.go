package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cache"
)

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(1, cache.ServedMem)
	b.Add(1, cache.ServedMem)
	b.Add(1, cache.ServedL1)
	b.Add(4, cache.ServedPWC)
	if b.Total(1) != 3 || b.Total(4) != 1 || b.Total(2) != 0 {
		t.Fatalf("totals: %d/%d/%d", b.Total(1), b.Total(4), b.Total(2))
	}
	if got := b.Fraction(1, cache.ServedMem); got != 2.0/3 {
		t.Fatalf("Fraction = %v", got)
	}
	if b.Fraction(2, cache.ServedL1) != 0 {
		t.Fatal("empty level fraction not 0")
	}
	if b.Count(1, cache.ServedL1) != 1 {
		t.Fatal("Count wrong")
	}
	// Out-of-range levels are ignored, not panics.
	b.Add(0, cache.ServedL1)
	b.Add(6, cache.ServedL1)
	if b.Total(0) != 0 || b.Count(6, cache.ServedL1) != 0 {
		t.Fatal("out-of-range levels recorded")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary: %+v", s)
	}
	if s := Summarize([]float64{7}); s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("single-sample summary: %+v", s)
	}
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 {
		t.Fatalf("mean: %+v", s)
	}
	// Sample variance of {2,4,6,8} is (9+1+1+9)/3 = 20/3.
	want := 2.581988897471611 // sqrt(20/3)
	if diff := s.Std - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	// Four samples → 3 degrees of freedom → t = 3.182, not the normal 1.96.
	wantCI := 3.182 * want / 2
	if diff := s.CI95 - wantCI; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestCritT95(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{2, 12.706}, // the normal value would understate this 6.5×
		{3, 4.303},
		{5, 2.776},
		{29, 2.048},
		{30, 1.96},
		{1000, 1.96},
		{1, 1.96}, // degenerate: CI95 is 0 anyway below two samples
	}
	for _, c := range cases {
		if got := CritT95(c.n); got != c.want {
			t.Fatalf("CritT95(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// The table must be monotonically decreasing toward the normal value.
	for n := 3; n < 30; n++ {
		if CritT95(n) >= CritT95(n-1) {
			t.Fatalf("CritT95 not decreasing at n=%d", n)
		}
	}
	if CritT95(29) <= 1.96 {
		t.Fatal("t value fell below the normal limit")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(1, cache.ServedMem)
	b.Add(1, cache.ServedMem)
	b.Add(2, cache.ServedL1)
	a.Merge(&b)
	if a.Count(1, cache.ServedMem) != 2 || a.Count(2, cache.ServedL1) != 1 {
		t.Fatalf("merged counts: %d/%d", a.Count(1, cache.ServedMem), a.Count(2, cache.ServedL1))
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 || m.Sum() != 6 {
		t.Fatalf("mean=%v n=%d sum=%v", m.Value(), m.N(), m.Sum())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("workload", "latency")
	tb.AddRow("mcf", "34.0")
	tb.AddRow("memcached-400", "101.5")
	tb.AddRow("short") // padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "workload") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator: %q", lines[1])
	}
	// Columns align: "latency" column starts at the same offset everywhere.
	col := strings.Index(lines[0], "latency")
	if got := strings.Index(lines[3], "101.5"); got != col {
		t.Fatalf("column misaligned: %d vs %d\n%s", got, col, out)
	}
}

func TestFormatters(t *testing.T) {
	if F1(3.14159) != "3.1" || F2(3.14159) != "3.14" {
		t.Fatal("float formatters")
	}
	if Pct(0.256) != "26%" {
		t.Fatalf("Pct = %q", Pct(0.256))
	}
	if Ratio(2.66) != "2.7×" {
		t.Fatalf("Ratio = %q", Ratio(2.66))
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	b.Add(1, cache.ServedMem)
	b.Add(4, cache.ServedPWC)
	b.Add(4, cache.ServedPWC)
	b.Add(3, cache.ServedL2)
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var got Breakdown
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip changed the breakdown: %v -> %v", b, got)
	}
}
