package exp

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// schemeEntry is one column of the scheme-comparison grid: a translation
// backend (internal/mmu) plus the ASAP configuration it runs under (enabled
// levels are the asap scheme's mechanism; rivals run with prefetch off).
// Every cell pins its Scheme explicitly — including the asap rows — so the
// rendered labels and emitted records carry the axis uniformly.
type schemeEntry struct {
	label  string
	scheme string
	cfg    sim.ASAPConfig
}

func schemeEntries() []schemeEntry {
	return []schemeEntry{
		{"4K walk", "asap", sim.ASAPConfig{}},
		{"ASAP P1+P2", "asap", cfgP1P2},
		{"Victima", "victima", sim.ASAPConfig{}},
		{"Revelator", "revelator", sim.ASAPConfig{}},
	}
}

// CompareSchemes races the registered translation schemes — the paper's ASAP
// pipeline against Victima-style cache-resident TLB transplants and
// Revelator-style hash-based speculative translation (PAPERS.md) — over the
// same native, multi-process and trace-replay scenario grids, so the rival
// mechanisms are compared on identical reference streams, cache hierarchies
// and measurement windows. The accel-hit column is each scheme's own
// mechanism: ASAP range-register matches, Victima L2-residency probes that
// resolved from the cache, Revelator hash probes that yielded a speculative
// translation.
func CompareSchemes(o Options) error {
	entries := schemeEntries()

	// Native grid: every workload under every scheme.
	for _, w := range o.Workloads {
		for _, e := range entries {
			o.prefetch(sim.Scenario{Workload: w, Scheme: e.scheme, ASAP: e.cfg})
		}
	}
	header := []string{"workload"}
	for _, e := range entries {
		header = append(header, e.label)
	}
	for _, e := range entries[1:] {
		header = append(header, e.label+" red.")
	}
	tb := stats.NewTable(header...)
	hits := stats.NewTable("workload", entries[1].label, entries[2].label, entries[3].label)
	sums := make([]stats.Mean, len(entries))
	for _, w := range o.Workloads {
		res := make([]*cellResult, len(entries))
		row := []string{w.Name}
		hitRow := []string{w.Name}
		for i, e := range entries {
			r, err := o.run(sim.Scenario{Workload: w, Scheme: e.scheme, ASAP: e.cfg})
			if err != nil {
				return err
			}
			res[i] = r
			sums[i].Add(r.AvgWalkLat)
			row = append(row, r.lat())
			if i > 0 {
				hitRow = append(hitRow, stats.Pct(r.RangeHitRate))
			}
		}
		for _, r := range res[1:] {
			row = append(row, stats.Pct(1-r.AvgWalkLat/res[0].AvgWalkLat))
		}
		tb.AddRow(row...)
		hits.AddRow(hitRow...)
	}
	avg := []string{"Average"}
	for i := range entries {
		avg = append(avg, stats.F1(sums[i].Value()))
	}
	for _, s := range sums[1:] {
		avg = append(avg, stats.Pct(1-s.Value()/sums[0].Value()))
	}
	tb.AddRow(avg...)
	o.printf("Scheme comparison: native (avg walk latency, cycles; lower is better)\n\n%s\n", tb)
	o.printf("Scheme comparison: acceleration-mechanism hit rate\n\n%s\n", hits)

	if err := compareSchemesMulti(o, entries); err != nil {
		return err
	}
	return compareSchemesTrace(o, entries)
}

// compareSchemesMulti races the schemes under §3.3-style time-sharing: four
// processes mixed over the experiment's roster, under both context-switch
// policies. The walk-stall rate (MPKI × avg walk latency) is the comparison
// metric, for the reasons AblationMultiproc documents.
func compareSchemesMulti(o Options, entries []schemeEntry) error {
	if len(o.Workloads) == 0 {
		return fmt.Errorf("exp: compare-schemes needs at least one workload")
	}
	primary := o.Workloads[0]
	names := make([]string, len(o.Workloads))
	for i, w := range o.Workloads {
		names[i] = w.Name
	}
	mix := strings.Join(names, ",")
	cell := func(e schemeEntry, flush bool) (sim.Scenario, Options) {
		p := o
		p.Params.Processes = 4
		p.Params.FlushOnSwitch = flush
		return sim.Scenario{Workload: primary, Scheme: e.scheme, ASAP: e.cfg, Mix: mix}, p
	}
	for _, flush := range []bool{true, false} {
		for _, e := range entries {
			sc, p := cell(e, flush)
			p.prefetch(sc)
		}
	}
	stall := func(r *cellResult) float64 { return r.MPKI * r.AvgWalkLat }
	tb := stats.NewTable("scheme", "switch policy", "walk stall (cyc/kI)",
		"avg walk lat", "MPKI", "accel hits", "TLB flushes")
	for _, flush := range []bool{true, false} {
		policy := "ASID"
		if flush {
			policy = "flush"
		}
		for _, e := range entries {
			sc, p := cell(e, flush)
			r, err := p.run(sc)
			if err != nil {
				return err
			}
			tb.AddRow(e.label, policy, stats.F1(stall(r)), r.lat(),
				stats.F1(r.MPKI), stats.Pct(r.RangeHitRate),
				fmt.Sprintf("%d", r.ShootdownFlushes))
		}
	}
	o.printf("Scheme comparison: 4 processes, %s-led mix, flush vs ASID-tagged TLBs\n\n%s\n", primary.Name, tb)
	return nil
}

// compareSchemesTrace replays the configured reference trace under every
// scheme. Like TraceReplay, a missing trace skips with a note and replays run
// once regardless of -repeats (the stream is verbatim, so repeats would be
// identical).
func compareSchemesTrace(o Options, entries []schemeEntry) error {
	if o.Trace == "" {
		o.printf("Scheme comparison: no trace file configured (-trace FILE; capture one with `asaptrace record`)\n\n")
		return nil
	}
	tr, err := trace.LoadFile(o.Trace)
	if err != nil {
		return err
	}
	base := sim.UseTrace(tr)
	cell := func(e schemeEntry) (sim.Scenario, Options) {
		sc := base
		sc.Scheme = e.scheme
		sc.ASAP = e.cfg
		p := o
		p.Repeats = 1
		return sc, p
	}
	for _, e := range entries {
		sc, p := cell(e)
		p.prefetch(sc)
	}
	o.printf("Scheme comparison: trace %s — %d refs, digest %s, workload %s\n\n",
		o.Trace, tr.Count, tr.Digest, tr.Header.Spec.Name)
	tb := stats.NewTable("scheme", "avg walk latency", "reduction", "TLB MPKI", "accel hits")
	var baseline *cellResult
	for _, e := range entries {
		sc, p := cell(e)
		r, err := p.run(sc)
		if err != nil {
			return err
		}
		if baseline == nil {
			baseline = r
			if r.Walks == 0 {
				o.printf("trace too short for the measurement protocol (%d refs, %d warmup walks requested); reduce -warmup/-measure or pass -fast\n\n",
					tr.Count, p.Params.WarmupWalks)
				return nil
			}
		}
		tb.AddRow(e.label, r.lat(), stats.Pct(1-r.AvgWalkLat/baseline.AvgWalkLat),
			stats.F2(r.MPKI), stats.Pct(r.RangeHitRate))
	}
	o.printf("%s\n", tb)
	return nil
}
