package exp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TraceReplay is the trace-driven experiment: it loads a captured reference
// trace (Options.Trace) and runs it across the native ASAP ablation grid —
// prefetch configurations × sorted-region hole probabilities — the way the
// paper's evaluation swept its application traces. With no trace configured
// it explains how to get one and succeeds, so `paperrepro -exp all` works
// out of the box.
func TraceReplay(o Options) error {
	if o.Trace == "" {
		o.printf("Trace replay: no trace file configured (-trace FILE; capture one with `asaptrace record`)\n\n")
		return nil
	}
	tr, err := trace.LoadFile(o.Trace)
	if err != nil {
		return err
	}
	base := sim.UseTrace(tr)

	configs := []sim.ASAPConfig{{}, cfgP1, cfgP1P2}
	// Holes only matter once sorted regions exist, so the baseline runs the
	// grid's single hole-free cell.
	holesFor := func(cfg sim.ASAPConfig) []float64 {
		if !cfg.Enabled() {
			return []float64{0}
		}
		return []float64{0, 0.2}
	}
	cell := func(cfg sim.ASAPConfig, holes float64) (sim.Scenario, Options) {
		sc := base
		sc.ASAP = cfg
		p := o
		p.Params.HoleProb = holes
		// A non-colocated trace replay is seed-independent — the stream is
		// replayed verbatim and the assembly salts derive from the spec — so
		// extra repeats would be N identical simulations dressed up as
		// run-to-run samples. Run each cell once regardless of -repeats.
		p.Repeats = 1
		return sc, p
	}
	for _, cfg := range configs {
		for _, holes := range holesFor(cfg) {
			sc, p := cell(cfg, holes)
			p.prefetch(sc)
		}
	}

	o.printf("Trace replay: %s — %d refs, digest %s, workload %s\n\n",
		o.Trace, tr.Count, tr.Digest, tr.Header.Spec.Name)
	tb := stats.NewTable("ASAP config", "holes", "avg walk latency", "reduction", "TLB MPKI", "range hits", "coverage")
	var baseline *cellResult
	short := false
	for _, cfg := range configs {
		for _, holes := range holesFor(cfg) {
			sc, p := cell(cfg, holes)
			r, err := p.run(sc)
			if err != nil {
				return err
			}
			if baseline == nil {
				baseline = r
				if r.Walks == 0 {
					// The trace ran dry before warmup completed: there is no
					// measured window to tabulate.
					o.printf("trace too short for the measurement protocol (%d refs, %d warmup walks requested); reduce -warmup/-measure or pass -fast\n\n",
						tr.Count, p.Params.WarmupWalks)
					return nil
				}
			}
			if r.Walks < uint64(p.Params.MeasureWalks) {
				short = true
			}
			coverage := 0.0
			if r.PrefetchIssued > 0 {
				coverage = float64(r.PrefetchCovered) / float64(r.PrefetchIssued)
			}
			tb.AddRow(cfg.String(), fmt.Sprintf("%.0f%%", 100*holes), r.lat(),
				stats.Pct(1-r.AvgWalkLat/baseline.AvgWalkLat),
				stats.F2(r.MPKI), stats.Pct(r.RangeHitRate), stats.Pct(coverage))
		}
	}
	o.printf("%s", tb)
	if short {
		o.printf("\n(trace ran dry inside the measurement window; metrics cover the walks it contained)\n")
	}
	o.printf("\n")
	return nil
}
