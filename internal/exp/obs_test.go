package exp

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tracedCannealRun replays the checked-in canneal capture with the full ASAP
// configuration under an event tracer, using the same reduced protocol as the
// golden tests.
func tracedCannealRun(t *testing.T, tr *obs.Tracer) *sim.Result {
	t.Helper()
	ref, err := trace.LoadFile(filepath.Join("testdata", "canneal.trc.gz"))
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.UseTrace(ref)
	sc.ASAP = cfgP1P2 // prefetching on, so prefetch/MSHR events appear too
	p := sim.DefaultParams()
	p.WarmupWalks = 1500
	p.MeasureWalks = 1500
	res, err := sim.RunObserved(context.Background(), sc, p, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracedWalkSpansSumToWalkCycles is the tracer's accounting acceptance
// check: with sampling off, the walk spans flagged measured must reproduce the
// simulator's own aggregates exactly — same walk count, same total cycles.
// Any drift means the tracer and the measurement window disagree about what a
// walk is, which would make traces lie about the numbers the tables report.
func TestTracedWalkSpansSumToWalkCycles(t *testing.T) {
	sim.ResetBuildCache()
	tr := obs.NewTracer(obs.TraceConfig{Sample: 1})
	res := tracedCannealRun(t, tr)
	if res.Walks == 0 {
		t.Fatal("replay produced no measured walks")
	}

	var walks, cycles uint64
	for _, e := range tr.Events() {
		if e.Name != "walk" {
			continue
		}
		measured := false
		for _, a := range e.Args {
			if a.Key == "measured" {
				measured = a.Bool
			}
		}
		if !measured {
			continue
		}
		walks++
		cycles += uint64(e.Dur)
	}
	if walks != res.Walks {
		t.Fatalf("measured walk spans = %d, Result.Walks = %d", walks, res.Walks)
	}
	if cycles != res.WalkCycles {
		t.Fatalf("measured walk span cycles = %d, Result.WalkCycles = %d", cycles, res.WalkCycles)
	}

	// The serialized trace must satisfy the same validation CI applies: real
	// trace_event JSON with strictly nested spans per track.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("trace JSON validated zero events")
	}
}

// TestTracedRunsAreByteIdentical pins trace determinism end to end: two
// identical fast replays serialize byte-for-byte the same trace, so recorded
// traces are diffable artifacts rather than run-scoped curiosities.
func TestTracedRunsAreByteIdentical(t *testing.T) {
	sim.ResetBuildCache()
	run := func() []byte {
		tr := obs.NewTracer(obs.TraceConfig{Sample: 4})
		tracedCannealRun(t, tr)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical traced runs serialized differently")
	}
}
