// Package exp regenerates every table and figure of the paper's evaluation.
// Each experiment runs the relevant scenario grid through internal/sim and
// renders the same rows/series the paper reports; cmd/paperrepro is the CLI
// front end and the repository's benchmarks reuse the same entry points.
package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	Params    sim.Params
	Workloads []workload.Spec
	Out       io.Writer
	// Runner, when non-nil, executes scenario cells on a shared memoizing
	// worker pool: each experiment submits its full grid up front so
	// independent cells simulate concurrently (and cells shared between
	// experiments simulate only once), while results are collected in
	// submission order so rendered output matches a sequential run byte for
	// byte. When nil, cells run sequentially in place.
	Runner *runner.Runner
	// Repeats is the number of independent repeats per scenario cell; 0 and 1
	// both run each cell exactly once with Params.Seed, keeping rendered
	// output byte-identical to the single-run harness. With N > 1 every cell
	// simulates N times under per-repeat derived seeds
	// (sim.Params.ForRepeat), tables render the mean with a "± σ" run-to-run
	// deviation on walk-latency cells, and each repeat emits its own record.
	Repeats int
	// Sink, when non-nil, receives one machine-readable report.Record per
	// (cell, repeat) alongside the rendered text table.
	Sink report.Sink
	// Exp names the experiment currently attributing records; Run sets it
	// from the experiment registry before dispatching.
	Exp string
	// Trace is the reference-trace file driving the trace-replay experiment
	// (empty skips it with a note).
	Trace string
	// Scheme, when non-empty, selects the translation backend (internal/mmu)
	// for every cell that does not pin one itself. Rival schemes are
	// native-only, so experiments with virtualized cells fail loudly under
	// them rather than silently dropping the selection.
	Scheme string
	// Ctx, when non-nil, bounds every simulation of the run: on expiry or
	// cancellation in-flight cells abort at the simulator's next context
	// check and the experiment returns the context's error. Completed cells
	// remain memoized in Runner (Runner.Completed lists them).
	Ctx context.Context
}

// ctx returns the run's context (Background when none was set).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Default returns full-fidelity options writing to out.
func Default(out io.Writer) Options {
	return Options{Params: sim.DefaultParams(), Workloads: workload.Specs(), Out: out}
}

// Fast returns reduced-protocol options for smoke runs and benchmarks.
func Fast(out io.Writer) Options {
	o := Default(out)
	o.Params.WarmupWalks = 10_000
	o.Params.MeasureWalks = 8_000
	return o
}

// repeats returns the effective repeat count (at least 1).
func (o Options) repeats() int {
	if o.Repeats > 1 {
		return o.Repeats
	}
	return 1
}

// cellResult is what experiments consume per scenario cell: the mean result
// over the cell's repeats (the lone result for a single repeat — sim.Result's
// fields are promoted, so table code reads metrics exactly as before) plus
// the per-metric sample standard deviation when more than one repeat ran.
type cellResult struct {
	*sim.Result
	sigma *sim.Result // nil for a single repeat
}

// withScheme applies the run-wide scheme selection to a cell that does not
// pin its own.
func (o Options) withScheme(sc sim.Scenario) sim.Scenario {
	if o.Scheme != "" && sc.Scheme == "" {
		sc.Scheme = o.Scheme
	}
	return sc
}

// run simulates every repeat of one cell, emits a record per repeat to the
// sink (when configured), and returns the aggregated cell result.
func (o Options) run(sc sim.Scenario) (*cellResult, error) {
	sc = o.withScheme(sc)
	n := o.repeats()
	rs := make([]*sim.Result, n)
	for i := 0; i < n; i++ {
		var r *sim.Result
		var err error
		if o.Runner != nil {
			r, err = o.Runner.RunRepeatCtx(o.ctx(), sc, o.Params, i)
		} else {
			r, err = sim.RunCtx(o.ctx(), sc, o.Params.ForRepeat(i))
		}
		if err != nil {
			return nil, err
		}
		if o.Sink != nil {
			o.Sink.Add(report.FromResult(o.Exp, sc, o.Params, i, r))
		}
		rs[i] = r
	}
	if n == 1 {
		return &cellResult{Result: rs[0]}, nil
	}
	mean, std := sim.Aggregate(rs)
	return &cellResult{Result: mean, sigma: std}, nil
}

// lat renders the cell's mean walk latency, with the run-to-run σ appended
// when multiple repeats were simulated.
func (c *cellResult) lat() string {
	if c.sigma == nil {
		return stats.F1(c.AvgWalkLat)
	}
	return stats.F1(c.AvgWalkLat) + " ± " + stats.F1(c.sigma.AvgWalkLat)
}

// prefetch queues every repeat of the given cells for concurrent execution
// ahead of the in-order collection pass. It is a no-op without a runner.
func (o Options) prefetch(scs ...sim.Scenario) {
	if o.Runner == nil {
		return
	}
	for _, sc := range scs {
		sc = o.withScheme(sc)
		for i := 0; i < o.repeats(); i++ {
			o.Runner.SubmitRepeatCtx(o.ctx(), sc, o.Params, i)
		}
	}
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// asap builds the scenario ASAP configurations used across experiments.
var (
	cfgP1    = sim.ASAPConfig{Native: core.Config{P1: true}}
	cfgP1P2  = sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}
	cfgG1    = sim.ASAPConfig{Guest: core.Config{P1: true}}
	cfgG12   = sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}}
	cfgG1H1  = sim.ASAPConfig{Guest: core.Config{P1: true}, Host: core.Config{P1: true}}
	cfgAll4  = sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}
	cfgFig12 = sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P2: true}}
)

// Table1 reproduces the motivation table: memcached walk-latency growth under
// a 5× dataset, SMT colocation, virtualization, and both (paper: 1.2×, 2.7×,
// 5.3×, 12×; normalized to native isolated mc80).
func Table1(o Options) error {
	mc80, ok := workload.ByName("mc80")
	if !ok {
		return fmt.Errorf("exp: mc80 not defined")
	}
	mc400, ok := workload.ByName("mc400")
	if !ok {
		return fmt.Errorf("exp: mc400 not defined")
	}
	cells := []struct {
		name string
		sc   sim.Scenario
	}{
		{"5× larger dataset", sim.Scenario{Workload: mc400}},
		{"SMT colocation", sim.Scenario{Workload: mc80, Colocated: true}},
		{"Virtualization", sim.Scenario{Workload: mc80, Virtualized: true}},
		{"Virtualization + SMT colocation", sim.Scenario{Workload: mc80, Virtualized: true, Colocated: true}},
	}
	o.prefetch(sim.Scenario{Workload: mc80})
	for _, c := range cells {
		o.prefetch(c.sc)
	}
	base, err := o.run(sim.Scenario{Workload: mc80})
	if err != nil {
		return err
	}
	tb := stats.NewTable("scenario", "avg walk latency", "vs native isolated", "paper")
	tb.AddRow("native isolated (80GB)", base.lat(), "1.0×", "1.0×")
	paper := []string{"1.2×", "2.7×", "5.3×", "12.0×"}
	for i, c := range cells {
		r, err := o.run(c.sc)
		if err != nil {
			return err
		}
		tb.AddRow(c.name, r.lat(), stats.Ratio(r.AvgWalkLat/base.AvgWalkLat), paper[i])
	}
	o.printf("Table 1: memcached page-walk latency under pressure (normalized)\n\n%s\n", tb)
	return nil
}

// Table3 prints the workload roster (paper Table 3).
func Table3(o Options) error {
	tb := stats.NewTable("name", "dataset", "pattern", "description")
	for _, s := range o.Workloads {
		tb.AddRow(s.Name, fmt.Sprintf("%dGB", s.DatasetBytes>>30), s.Pattern.String(), s.Description)
	}
	o.printf("Table 3: workloads\n\n%s\n", tb)
	return nil
}

// Table5 prints the simulated platform parameters (paper Table 5).
func Table5(o Options) error {
	p := o.Params
	tb := stats.NewTable("parameter", "value")
	tb.AddRow("L1 I/D-TLB", "64 entries, 8-way")
	tb.AddRow("L2 S-TLB", "1536 entries, 6-way")
	tb.AddRow("PWC", fmt.Sprintf("split: PL4 %de FA, PL3 %de FA, PL2 %de %d-way, %d cycles",
		p.PWC.PL4Entries, p.PWC.PL3Entries, p.PWC.PL2Entries, p.PWC.PL2Ways, p.PWC.Latency))
	tb.AddRow("L1-D", fmt.Sprintf("%dKB, %d-way, %d cycles", p.Cache.L1.SizeBytes>>10, p.Cache.L1.Ways, p.Cache.L1.Latency))
	tb.AddRow("L2", fmt.Sprintf("%dKB, %d-way, %d cycles", p.Cache.L2.SizeBytes>>10, p.Cache.L2.Ways, p.Cache.L2.Latency))
	tb.AddRow("L3", fmt.Sprintf("%dMB, %d-way, %d cycles", p.Cache.L3.SizeBytes>>20, p.Cache.L3.Ways, p.Cache.L3.Latency))
	tb.AddRow("Main memory", fmt.Sprintf("%d cycles", p.Cache.MemLatency))
	tb.AddRow("MSHRs", fmt.Sprintf("%d", p.MSHRs))
	tb.AddRow("Range registers", fmt.Sprintf("%d", p.RangeRegisters))
	o.printf("Table 5: simulation parameters\n\n%s\n", tb)
	return nil
}

// Fig2 reproduces the fraction of execution time spent in page walks across
// the four deployment scenarios (execution-time model; see DESIGN.md).
func Fig2(o Options) error {
	tb := stats.NewTable("workload", "native", "native+colo", "virt", "virt+colo")
	var sums [4]stats.Mean
	for _, w := range o.Workloads {
		s := fourScenarios(w)
		o.prefetch(s[:]...)
	}
	for _, w := range o.Workloads {
		row := []string{w.Name}
		for i, sc := range fourScenarios(w) {
			r, err := o.run(sc)
			if err != nil {
				return err
			}
			sums[i].Add(r.WalkFraction)
			row = append(row, stats.Pct(r.WalkFraction))
		}
		tb.AddRow(row...)
	}
	tb.AddRow("Average", stats.Pct(sums[0].Value()), stats.Pct(sums[1].Value()), stats.Pct(sums[2].Value()), stats.Pct(sums[3].Value()))
	o.printf("Figure 2: fraction of execution time spent in page walks\n\n%s\n", tb)
	return nil
}

// Fig3 reproduces average page-walk latency across the four deployment
// scenarios.
func Fig3(o Options) error {
	tb := stats.NewTable("workload", "native", "native+colo", "virt", "virt+colo")
	var sums [4]stats.Mean
	for _, w := range o.Workloads {
		s := fourScenarios(w)
		o.prefetch(s[:]...)
	}
	for _, w := range o.Workloads {
		row := []string{w.Name}
		for i, sc := range fourScenarios(w) {
			r, err := o.run(sc)
			if err != nil {
				return err
			}
			sums[i].Add(r.AvgWalkLat)
			row = append(row, r.lat())
		}
		tb.AddRow(row...)
	}
	tb.AddRow("Average", stats.F1(sums[0].Value()), stats.F1(sums[1].Value()), stats.F1(sums[2].Value()), stats.F1(sums[3].Value()))
	o.printf("Figure 3: average page walk latency (cycles)\n\n%s\n", tb)
	return nil
}

func fourScenarios(w workload.Spec) [4]sim.Scenario {
	return [4]sim.Scenario{
		{Workload: w},
		{Workload: w, Colocated: true},
		{Workload: w, Virtualized: true},
		{Workload: w, Virtualized: true, Colocated: true},
	}
}

// Fig8 reproduces native walk latency for Baseline/P1/P1+P2, in isolation (a)
// and under SMT colocation (b).
func Fig8(o Options) error {
	cells := func(w workload.Spec, colo bool) [3]sim.Scenario {
		return [3]sim.Scenario{
			{Workload: w, Colocated: colo},
			{Workload: w, Colocated: colo, ASAP: cfgP1},
			{Workload: w, Colocated: colo, ASAP: cfgP1P2},
		}
	}
	for _, colo := range []bool{false, true} {
		for _, w := range o.Workloads {
			c := cells(w, colo)
			o.prefetch(c[:]...)
		}
	}
	for _, colo := range []bool{false, true} {
		label := "Figure 8a: native, isolation"
		if colo {
			label = "Figure 8b: native, SMT colocation"
		}
		tb := stats.NewTable("workload", "Baseline", "P1", "P1+P2", "P1 red.", "P1+P2 red.")
		var sums [3]stats.Mean
		for _, w := range o.Workloads {
			var res [3]*cellResult
			for i, sc := range cells(w, colo) {
				r, err := o.run(sc)
				if err != nil {
					return err
				}
				res[i] = r
				sums[i].Add(r.AvgWalkLat)
			}
			tb.AddRow(w.Name, res[0].lat(), res[1].lat(), res[2].lat(),
				stats.Pct(1-res[1].AvgWalkLat/res[0].AvgWalkLat),
				stats.Pct(1-res[2].AvgWalkLat/res[0].AvgWalkLat))
		}
		tb.AddRow("Average", stats.F1(sums[0].Value()), stats.F1(sums[1].Value()), stats.F1(sums[2].Value()),
			stats.Pct(1-sums[1].Value()/sums[0].Value()), stats.Pct(1-sums[2].Value()/sums[0].Value()))
		o.printf("%s (avg walk latency, cycles; lower is better)\n\n%s\n", label, tb)
	}
	return nil
}

// Fig9 reproduces the per-PT-level serving breakdown for mcf and redis, in
// isolation and under colocation.
func Fig9(o Options) error {
	names := []string{"mcf", "redis"}
	for _, name := range names {
		if w, ok := workload.ByName(name); ok {
			o.prefetch(sim.Scenario{Workload: w}, sim.Scenario{Workload: w, Colocated: true})
		}
	}
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("exp: %s not defined", name)
		}
		for _, colo := range []bool{false, true} {
			r, err := o.run(sim.Scenario{Workload: w, Colocated: colo})
			if err != nil {
				return err
			}
			mode := "isolation"
			if colo {
				mode = "SMT colocation"
			}
			tb := stats.NewTable("PT level", "PWC", "L1", "L2", "LLC", "Mem")
			for level := 4; level >= 1; level-- {
				tb.AddRow(fmt.Sprintf("PL%d", level),
					stats.Pct(r.Breakdown.Fraction(level, 0)),
					stats.Pct(r.Breakdown.Fraction(level, 1)),
					stats.Pct(r.Breakdown.Fraction(level, 2)),
					stats.Pct(r.Breakdown.Fraction(level, 3)),
					stats.Pct(r.Breakdown.Fraction(level, 4)))
			}
			o.printf("Figure 9: %s under %s — walk requests served by level\n\n%s\n", name, mode, tb)
		}
	}
	return nil
}

// Fig10 reproduces virtualized walk latency for the guest/host ASAP
// configurations, in isolation (a) and under colocation (b).
func Fig10(o Options) error {
	configs := []sim.ASAPConfig{{}, cfgG1, cfgG12, cfgG1H1, cfgAll4}
	names := []string{"Baseline", "P1g", "P1g+P2g", "P1g+P1h", "P1g+P1h+P2g+P2h"}
	cells := func(w workload.Spec, colo bool) []sim.Scenario {
		out := make([]sim.Scenario, len(configs))
		for i, cfg := range configs {
			out[i] = sim.Scenario{Workload: w, Virtualized: true, Colocated: colo, ASAP: cfg}
		}
		return out
	}
	for _, colo := range []bool{false, true} {
		for _, w := range o.Workloads {
			o.prefetch(cells(w, colo)...)
		}
	}
	for _, colo := range []bool{false, true} {
		label := "Figure 10a: virtualized, isolation"
		if colo {
			label = "Figure 10b: virtualized, SMT colocation"
		}
		header := append([]string{"workload"}, names...)
		header = append(header, "best red.")
		tb := stats.NewTable(header...)
		sums := make([]stats.Mean, len(configs))
		for _, w := range o.Workloads {
			lat := make([]float64, len(configs))
			row := []string{w.Name}
			for i, sc := range cells(w, colo) {
				r, err := o.run(sc)
				if err != nil {
					return err
				}
				lat[i] = r.AvgWalkLat
				sums[i].Add(r.AvgWalkLat)
				row = append(row, r.lat())
			}
			tb.AddRow(append(row, stats.Pct(1-lat[len(lat)-1]/lat[0]))...)
		}
		avg := []string{"Average"}
		for i := range configs {
			avg = append(avg, stats.F1(sums[i].Value()))
		}
		avg = append(avg, stats.Pct(1-sums[len(configs)-1].Value()/sums[0].Value()))
		tb.AddRow(avg...)
		o.printf("%s (avg walk latency, cycles; lower is better)\n\n%s\n", label, tb)
	}
	return nil
}

// Fig12 reproduces virtualized latency with 2 MB host pages: baseline vs ASAP
// (P1g+P2g in the guest, P2h in the host), in isolation and under colocation.
func Fig12(o Options) error {
	tb := stats.NewTable("workload", "Baseline", "ASAP", "red.", "Baseline+colo", "ASAP+colo", "colo red.")
	var sums [4]stats.Mean
	fig12Cells := []struct {
		colo bool
		cfg  sim.ASAPConfig
	}{
		{false, sim.ASAPConfig{}},
		{false, cfgFig12},
		{true, sim.ASAPConfig{}},
		{true, cfgFig12},
	}
	for _, w := range o.Workloads {
		for _, cell := range fig12Cells {
			o.prefetch(sim.Scenario{Workload: w, Virtualized: true, HostHugePages: true, Colocated: cell.colo, ASAP: cell.cfg})
		}
	}
	for _, w := range o.Workloads {
		var res [4]*cellResult
		for i, cell := range fig12Cells {
			r, err := o.run(sim.Scenario{Workload: w, Virtualized: true, HostHugePages: true, Colocated: cell.colo, ASAP: cell.cfg})
			if err != nil {
				return err
			}
			res[i] = r
			sums[i].Add(r.AvgWalkLat)
		}
		tb.AddRow(w.Name, res[0].lat(), res[1].lat(),
			stats.Pct(1-res[1].AvgWalkLat/res[0].AvgWalkLat),
			res[2].lat(), res[3].lat(),
			stats.Pct(1-res[3].AvgWalkLat/res[2].AvgWalkLat))
	}
	tb.AddRow("Average", stats.F1(sums[0].Value()), stats.F1(sums[1].Value()),
		stats.Pct(1-sums[1].Value()/sums[0].Value()),
		stats.F1(sums[2].Value()), stats.F1(sums[3].Value()),
		stats.Pct(1-sums[3].Value()/sums[2].Value()))
	o.printf("Figure 12: virtualized with 2MB host pages (avg walk latency, cycles)\n\n%s\n", tb)
	return nil
}
