package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/exp -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenFig3 locks one experiment end to end: the rendered table text and
// the emitted CSV records, catching any accidental change to either the text
// path or the artifact schema.
func TestGoldenFig3(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	col := report.NewCollector()
	o.Sink = col
	if err := Run("fig3", o); err != nil {
		t.Fatal(err)
	}
	golden(t, "fig3.golden", buf.Bytes())

	dir := t.TempDir()
	if err := report.WriteArtifacts(dir, "csv", col.Records()); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "csv", "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig3_csv.golden", csv)
}

// TestGoldenMultiproc locks the multi-process ablation end to end and
// enforces the headline result: at every process count ≥ 2, ASID-tagged TLBs
// beat flush-on-switch on the walk-stall metric (walk cycles per
// kilo-instruction — walks per kI × average walk latency).
func TestGoldenMultiproc(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	col := report.NewCollector()
	o.Sink = col
	if err := Run("ablation-multiproc", o); err != nil {
		t.Fatal(err)
	}
	golden(t, "multiproc.golden", buf.Bytes())

	// Verify the flush-vs-ASID ordering from the emitted records rather than
	// the rendered text: group baseline (non-ASAP) cells by process count.
	stallIdx := func(name string) int {
		for i, m := range report.MetricCols {
			if m == name {
				return i
			}
		}
		t.Fatalf("metric %q missing", name)
		return -1
	}
	mpki, lat := stallIdx("mpki"), stallIdx("avg_walk_lat")
	stall := map[int]map[bool]float64{} // processes → flushOnSwitch → cyc/kI
	for _, r := range col.Records() {
		if r.ASAP != "baseline" || r.Processes < 2 {
			continue
		}
		if stall[r.Processes] == nil {
			stall[r.Processes] = map[bool]float64{}
		}
		stall[r.Processes][r.FlushOnSwitch] = r.Metrics[mpki] * r.Metrics[lat]
	}
	if len(stall) < 3 {
		t.Fatalf("expected ≥3 multi-process counts, got %v", stall)
	}
	for n, byPolicy := range stall {
		if byPolicy[false] >= byPolicy[true] {
			t.Fatalf("%d processes: ASID walk stall %.1f not below flush %.1f",
				n, byPolicy[false], byPolicy[true])
		}
	}
}

// TestGoldenTraceReplay locks the trace-driven experiment end to end against
// the checked-in capture: a canneal reference trace replayed across the ASAP
// ablation grid, rendered text locked by golden. It also pins the emitted
// records: every cell carries the trace digest in its identity and the
// workload recorded in the trace header.
func TestGoldenTraceReplay(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Trace = filepath.Join("testdata", "canneal.trc.gz")
	col := report.NewCollector()
	o.Sink = col
	if err := Run("trace-asap", o); err != nil {
		t.Fatal(err)
	}
	golden(t, "trace.golden", buf.Bytes())

	records := col.Records()
	if len(records) != 5 { // baseline + {P1, P1+P2} × {0%, 20%} holes
		t.Fatalf("%d records", len(records))
	}
	for _, r := range records {
		if !strings.Contains(r.Cell, "+trace[") {
			t.Fatalf("record cell %q lacks the trace marker", r.Cell)
		}
		if r.Workload != "canneal" {
			t.Fatalf("record workload %q", r.Workload)
		}
	}
}

// TestGoldenCompareSchemes locks the scheme-comparison experiment end to end
// — native grid, multi-process grid, and the trace section replaying the
// checked-in canneal capture — and pins the emitted records: every cell
// carries an explicit scheme in its identity, covering all three registered
// backends.
func TestGoldenCompareSchemes(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Trace = filepath.Join("testdata", "canneal.trc.gz")
	col := report.NewCollector()
	o.Sink = col
	if err := Run("compare-schemes", o); err != nil {
		t.Fatal(err)
	}
	golden(t, "schemes.golden", buf.Bytes())

	seen := map[string]bool{}
	for _, r := range col.Records() {
		if !strings.Contains(r.Cell, "+mmu[") {
			t.Fatalf("record cell %q lacks the scheme marker", r.Cell)
		}
		seen[r.Scheme] = true
	}
	for _, name := range []string{"asap", "victima", "revelator"} {
		if !seen[name] {
			t.Fatalf("no record for scheme %q (got %v)", name, seen)
		}
	}
}

// TestCompareSchemesSkipsTraceWithoutFile keeps `paperrepro -exp all` working
// with no trace configured: the trace section notes the skip and the native
// and multi-process sections still run.
func TestCompareSchemesSkipsTraceWithoutFile(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Workloads = o.Workloads[:1]
	if err := Run("compare-schemes", o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no trace file configured") {
		t.Fatalf("skip note missing:\n%s", buf.String())
	}
}

// TestTraceReplaySkipsWithoutTrace keeps `paperrepro -exp all` working with
// no trace configured: the experiment notes the skip and succeeds.
func TestTraceReplaySkipsWithoutTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("trace-asap", testOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no trace file configured") {
		t.Fatalf("skip note missing:\n%s", buf.String())
	}
}

// TestGoldenJSONSchema locks the JSON record schema: every key column and
// every metric column present, nothing unexpected.
func TestGoldenJSONSchema(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Workloads = o.Workloads[:1]
	col := report.NewCollector()
	o.Sink = col
	if err := Run("fig3", o); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := report.WriteArtifacts(dir, "json", col.Records()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "json", "fig3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var objs []map[string]any
	if err := json.Unmarshal(b, &objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 { // one workload × four deployment scenarios
		t.Fatalf("%d records", len(objs))
	}
	want := map[string]bool{}
	for _, k := range append(append([]string{}, report.KeyCols...), report.MetricCols...) {
		want[k] = true
	}
	for k := range objs[0] {
		if !want[k] {
			t.Fatalf("unexpected json key %q", k)
		}
		delete(want, k)
	}
	for k := range want {
		t.Fatalf("json record missing key %q", k)
	}
}

// TestRepeatsOneMatchesDefault enforces the tentpole's compatibility
// contract: enabling the artifact pipeline with a single repeat leaves the
// rendered text byte-identical to a plain run.
func TestRepeatsOneMatchesDefault(t *testing.T) {
	sim.ResetBuildCache()
	for _, name := range []string{"fig3", "fig8", "ablation-regs"} {
		var plain bytes.Buffer
		if err := Run(name, testOptions(&plain)); err != nil {
			t.Fatal(err)
		}
		var instrumented bytes.Buffer
		o := testOptions(&instrumented)
		o.Repeats = 1
		o.Sink = report.NewCollector()
		if err := Run(name, o); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.Bytes(), instrumented.Bytes()) {
			t.Fatalf("%s: -repeats 1 output drifted:\n--- plain ---\n%s\n--- instrumented ---\n%s",
				name, plain.Bytes(), instrumented.Bytes())
		}
	}
}

// TestRepeatsAggregate checks the multi-repeat path end to end: one record
// per (cell, repeat), grouped summaries with the right repeat count, and the
// "± σ" rendering on latency cells.
func TestRepeatsAggregate(t *testing.T) {
	sim.ResetBuildCache()
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Workloads = o.Workloads[:1]
	o.Repeats = 2
	col := report.NewCollector()
	o.Sink = col
	if err := Run("fig3", o); err != nil {
		t.Fatal(err)
	}
	records := col.Records()
	if len(records) != 8 { // 1 workload × 4 scenarios × 2 repeats
		t.Fatalf("%d records", len(records))
	}
	repeats := map[string]map[int]bool{}
	for _, r := range records {
		if r.Experiment != "fig3" {
			t.Fatalf("record attributed to %q", r.Experiment)
		}
		if repeats[r.GroupKey()] == nil {
			repeats[r.GroupKey()] = map[int]bool{}
		}
		repeats[r.GroupKey()][r.Repeat] = true
	}
	for k, reps := range repeats {
		if !reps[0] || !reps[1] {
			t.Fatalf("group %q missing a repeat: %v", k, reps)
		}
	}
	if !strings.Contains(buf.String(), " ± ") {
		t.Fatalf("multi-repeat table lacks ± σ cells:\n%s", buf.String())
	}
	for _, row := range report.Summarize(records) {
		if row.Stat.N != 2 {
			t.Fatalf("summary group has %d repeats", row.Stat.N)
		}
	}
}
