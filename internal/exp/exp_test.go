package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// testOptions restricts experiments to the two fastest-building workloads and
// a tiny measurement protocol so the whole experiment surface is exercised in
// unit-test time.
func testOptions(buf *bytes.Buffer) Options {
	o := Fast(buf)
	o.Params.WarmupWalks = 1500
	o.Params.MeasureWalks = 1500
	var ws []workload.Spec
	for _, n := range []string{"mcf", "canneal"} {
		s, ok := workload.ByName(n)
		if !ok {
			panic("missing " + n)
		}
		ws = append(ws, s)
	}
	o.Workloads = ws
	return o
}

func TestExperimentsRenderTables(t *testing.T) {
	sim.ResetBuildCache()
	cases := []struct {
		name     string
		contains []string
	}{
		{"table2", []string{"Table 2", "contig. phys. regions", "mcf"}},
		{"table3", []string{"Table 3", "mcf", "canneal"}},
		{"table5", []string{"Table 5", "L2 S-TLB", "191 cycles"}},
		{"fig2", []string{"Figure 2", "virt+colo", "Average"}},
		{"fig3", []string{"Figure 3", "Average"}},
		{"fig8", []string{"Figure 8a", "Figure 8b", "P1+P2"}},
		{"fig11", []string{"Figure 11", "Clustered TLB + ASAP"}},
		{"table7", []string{"Table 7", "reduction"}},
		{"ablation-pwc", []string{"doubling page-walk cache"}},
		{"ablation-5level", []string{"five-level", "5-level ASAP"}},
		{"ablation-multiproc", []string{"multi-process scheduling", "flush", "ASID", "walk stall"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			o := testOptions(&buf)
			if err := Run(c.name, o); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range c.contains {
				if !strings.Contains(out, want) {
					t.Fatalf("%s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}

func TestExperimentVirtualizedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("virtualized grid is slow in -short mode")
	}
	var buf bytes.Buffer
	o := testOptions(&buf)
	o.Workloads = o.Workloads[:1] // mcf only
	for _, name := range []string{"fig10", "fig12", "table6"} {
		buf.Reset()
		if err := Run(name, o); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "mcf") {
			t.Fatalf("%s output missing workload row:\n%s", name, buf.String())
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", testOptions(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsListedUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %s", e.Name)
		}
		seen[e.Name] = true
	}
	for _, required := range []string{"table1", "table2", "table6", "table7",
		"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if !seen[required] {
			t.Fatalf("experiment %s missing — every paper table/figure needs a regeneration target", required)
		}
	}
}
