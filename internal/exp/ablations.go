package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationPWC reproduces the §5.1.1 observation that doubling every PWC
// capacity barely moves walk latency (paper: ~2% native, ~3% virtualized).
func AblationPWC(o Options) error {
	tb := stats.NewTable("workload", "default PWC", "2× PWC", "reduction")
	var red stats.Mean
	big := o
	big.Params.PWC = o.Params.PWC.Scale(2)
	for _, w := range o.Workloads {
		o.prefetch(sim.Scenario{Workload: w})
		big.prefetch(sim.Scenario{Workload: w})
	}
	for _, w := range o.Workloads {
		base, err := o.run(sim.Scenario{Workload: w})
		if err != nil {
			return err
		}
		r, err := big.run(sim.Scenario{Workload: w})
		if err != nil {
			return err
		}
		d := 1 - r.AvgWalkLat/base.AvgWalkLat
		red.Add(d)
		tb.AddRow(w.Name, base.lat(), r.lat(), stats.Pct(d))
	}
	tb.AddRow("Average", "", "", stats.Pct(red.Value()))
	o.printf("Ablation (§5.1.1): doubling page-walk cache capacity\n\n%s\n", tb)
	return nil
}

// AblationHoles sweeps the probability that a page-table node is displaced
// from its sorted region (§3.7.2): walks through holes are correct but not
// accelerated, so coverage and speedup degrade gracefully.
func AblationHoles(o Options, name string) error {
	w, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("exp: workload %s not defined", name)
	}
	holeProbs := []float64{0, 0.05, 0.2, 0.5}
	o.prefetch(sim.Scenario{Workload: w})
	for _, h := range holeProbs {
		p := o
		p.Params.HoleProb = h
		p.prefetch(sim.Scenario{Workload: w, ASAP: cfgP1P2})
	}
	base, err := o.run(sim.Scenario{Workload: w})
	if err != nil {
		return err
	}
	tb := stats.NewTable("hole probability", "avg walk latency", "reduction vs baseline", "prefetch coverage")
	for _, h := range holeProbs {
		p := o
		p.Params.HoleProb = h
		r, err := p.run(sim.Scenario{Workload: w, ASAP: cfgP1P2})
		if err != nil {
			return err
		}
		coverage := 0.0
		if r.PrefetchIssued > 0 {
			coverage = float64(r.PrefetchCovered) / float64(r.PrefetchIssued)
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", 100*h), r.lat(),
			stats.Pct(1-r.AvgWalkLat/base.AvgWalkLat), stats.Pct(coverage))
	}
	o.printf("Ablation (§3.7.2): page-table region holes, %s native P1+P2\n\n%s\n", name, tb)
	return nil
}

// AblationRangeRegisters sweeps the VMA descriptor capacity (§3.4: 8–16
// registers cover 99% of the studied footprints).
func AblationRangeRegisters(o Options, name string) error {
	w, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("exp: workload %s not defined", name)
	}
	regCounts := []int{1, 2, 4, 8, 16}
	for _, n := range regCounts {
		p := o
		p.Params.RangeRegisters = n
		p.prefetch(sim.Scenario{Workload: w, ASAP: cfgP1P2})
	}
	tb := stats.NewTable("range registers", "range hit rate", "dropped descs", "avg walk latency")
	for _, n := range regCounts {
		p := o
		p.Params.RangeRegisters = n
		r, err := p.run(sim.Scenario{Workload: w, ASAP: cfgP1P2})
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%d", n), stats.Pct(r.RangeHitRate),
			fmt.Sprintf("%d", r.RangeOverflowed), r.lat())
	}
	o.printf("Ablation (§3.4): range-register capacity, %s native P1+P2\n\n%s\n", name, tb)
	return nil
}

// AblationFiveLevel evaluates the §3.5/§2.6 extension: 5-level page tables
// deepen every walk; ASAP with an added P3 prefetch recovers the loss.
func AblationFiveLevel(o Options) error {
	tb := stats.NewTable("workload", "4-level base", "5-level base", "5-level ASAP P1+P2+P3", "ASAP red.")
	asapP123 := sim.ASAPConfig{Native: core.Config{P1: true, P2: true, P3: true}}
	p5pre := o
	p5pre.Params.FiveLevel = true
	for _, w := range o.Workloads {
		o.prefetch(sim.Scenario{Workload: w})
		p5pre.prefetch(sim.Scenario{Workload: w}, sim.Scenario{Workload: w, ASAP: asapP123})
	}
	for _, w := range o.Workloads {
		four, err := o.run(sim.Scenario{Workload: w})
		if err != nil {
			return err
		}
		p5 := o
		p5.Params.FiveLevel = true
		base5, err := p5.run(sim.Scenario{Workload: w})
		if err != nil {
			return err
		}
		asap5, err := p5.run(sim.Scenario{Workload: w, ASAP: asapP123})
		if err != nil {
			return err
		}
		tb.AddRow(w.Name, four.lat(), base5.lat(),
			asap5.lat(), stats.Pct(1-asap5.AvgWalkLat/base5.AvgWalkLat))
	}
	o.printf("Ablation (§3.5): five-level page tables\n\n%s\n", tb)
	return nil
}

// AblationMultiproc explores the multi-process scheduling dimension the paper
// argues about in §3.3 but never simulates: 1/2/4/8 processes time-sharing
// the core, under the untagged flush-on-switch OS policy vs. ASID-tagged
// retention, with and without ASAP (whose per-process descriptor files add
// save/restore cost to every switch and whose capacity drops recur per
// switch-in). The mix cycles over the experiment's workload roster, primary
// first, so the cells scale with -workload restrictions and test harnesses.
func AblationMultiproc(o Options) error {
	if len(o.Workloads) == 0 {
		return fmt.Errorf("exp: ablation-multiproc needs at least one workload")
	}
	primary := o.Workloads[0]
	names := make([]string, len(o.Workloads))
	for i, w := range o.Workloads {
		names[i] = w.Name
	}
	mix := strings.Join(names, ",")
	procCounts := []int{1, 2, 4, 8}

	// cell normalizes single-process rows: with no scheduler there is no
	// policy and no mix, so every n=1 configuration shares the plain
	// single-process cell (and its memoized simulation).
	cell := func(n int, flush bool, cfg sim.ASAPConfig) (sim.Scenario, Options) {
		p := o
		p.Params.Processes = n
		p.Params.FlushOnSwitch = flush
		sc := sim.Scenario{Workload: primary, ASAP: cfg, Mix: mix}
		if n == 1 {
			p.Params.FlushOnSwitch = false
			sc.Mix = ""
		}
		return sc, p
	}
	policies := func(n int) []bool {
		if n == 1 {
			return []bool{false}
		}
		return []bool{true, false}
	}
	for _, n := range procCounts {
		for _, flush := range policies(n) {
			for _, cfg := range []sim.ASAPConfig{{}, cfgP1P2} {
				sc, p := cell(n, flush, cfg)
				p.prefetch(sc)
			}
		}
	}
	// The policy comparison metric is the walk-stall rate: page-walk cycles
	// suffered per kilo-instruction (MPKI × average walk latency). Per-walk
	// averages hide the flush policy's damage — the refill walks it adds are
	// recently-walked pages whose PT lines are still cached, so they are
	// cheaper than the average walk and *lower* it while the program stalls
	// longer overall. The stall rate charges every added walk to the policy
	// that caused it.
	stall := func(r *cellResult) float64 { return r.MPKI * r.AvgWalkLat }
	tb := stats.NewTable("processes", "switch policy", "walk stall (cyc/kI)", "with ASAP P1+P2",
		"ASAP red.", "avg walk lat", "MPKI", "switches", "TLB flushes", "dropped descs")
	for _, n := range procCounts {
		for _, flush := range policies(n) {
			scBase, pBase := cell(n, flush, sim.ASAPConfig{})
			base, err := pBase.run(scBase)
			if err != nil {
				return err
			}
			scASAP, pASAP := cell(n, flush, cfgP1P2)
			asap, err := pASAP.run(scASAP)
			if err != nil {
				return err
			}
			policy := "—"
			if n > 1 {
				if flush {
					policy = "flush"
				} else {
					policy = "ASID"
				}
			}
			tb.AddRow(fmt.Sprintf("%d", n), policy,
				stats.F1(stall(base)), stats.F1(stall(asap)),
				stats.Pct(1-stall(asap)/stall(base)),
				base.lat(), stats.F1(base.MPKI),
				fmt.Sprintf("%d", base.Switches),
				fmt.Sprintf("%d", base.ShootdownFlushes),
				fmt.Sprintf("%d", asap.RangeOverflowed))
		}
	}
	o.printf("Ablation (§3.3): multi-process scheduling, %s-led mix, flush vs ASID-tagged TLBs\n\n%s\n", primary.Name, tb)
	return nil
}

// Experiments maps experiment names to their implementations; "all" runs the
// full paper reproduction in order.
func Experiments() []struct {
	Name string
	Run  func(Options) error
} {
	return []struct {
		Name string
		Run  func(Options) error
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table5", Table5},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"table6", Table6},
		{"table7", Table7},
		{"fig12", Fig12},
		{"ablation-pwc", AblationPWC},
		{"ablation-holes", func(o Options) error { return AblationHoles(o, "mc80") }},
		{"ablation-regs", func(o Options) error { return AblationRangeRegisters(o, "mc80") }},
		{"ablation-5level", AblationFiveLevel},
		{"ablation-multiproc", AblationMultiproc},
		{"trace-asap", TraceReplay},
		{"compare-schemes", CompareSchemes},
	}
}

// Run executes the named experiment ("all" runs everything), attributing
// emitted records to the experiment's registry name.
func Run(name string, o Options) error {
	if name == "all" {
		for _, e := range Experiments() {
			o.Exp = e.Name
			if err := e.Run(o); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.Name == name {
			o.Exp = e.Name
			return e.Run(o)
		}
	}
	return fmt.Errorf("exp: unknown experiment %q", name)
}
