package exp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table2 reproduces the VMA and page-table statistics: total VMAs, VMAs
// covering 99% of the footprint, contiguous physical regions holding PT
// pages under a realistic buddy allocation history, and the PT page count.
func Table2(o Options) error {
	tb := stats.NewTable("application", "total VMAs", "VMAs for 99%", "contig. phys. regions", "PT page count")
	for _, w := range o.Workloads {
		layout, err := workload.BuildLayout(w)
		if err != nil {
			return err
		}
		// Place the page table with the buddy model (Table 2 is the one
		// experiment where physical placement history matters).
		buddy := mem.NewBuddy(1 << 24)
		alloc := pt.NewBuddyAlloc(buddy, w.MeanPTRun, w.DataPerPTNode, o.Params.Seed)
		table, err := pt.New(pt.Config{Levels: 4, LeafLevel: 1}, alloc, true)
		if err != nil {
			return err
		}
		layout.Populate(table)
		tb.AddRow(w.Name,
			fmt.Sprintf("%d", layout.Space.Len()),
			fmt.Sprintf("%d", layout.Space.CoverageCount(0.99)),
			fmt.Sprintf("%d", mem.ContiguousRuns(table.AllFrames())),
			fmt.Sprintf("%d", table.TotalNodes()))
	}
	o.printf("Table 2: VMA and page-table statistics\n\n%s\n", tb)
	return nil
}

// Table6 reproduces the conservative performance projection: the fraction of
// cycles spent in page walks on the critical path (from the execution-time
// model, native isolation) multiplied by ASAP's walk-latency reduction under
// virtualization in isolation (paper §5.3; memcached excluded as in the
// paper).
func Table6(o Options) error {
	tb := stats.NewTable("application", "walk cycles on critical path", "ASAP walk reduction", "min. improvement")
	var imp stats.Mean
	cells := func(w workload.Spec) [3]sim.Scenario {
		return [3]sim.Scenario{
			{Workload: w},
			{Workload: w, Virtualized: true},
			{Workload: w, Virtualized: true, ASAP: cfgAll4},
		}
	}
	for _, w := range o.Workloads {
		if w.Name == "mc80" || w.Name == "mc400" {
			continue
		}
		c := cells(w)
		o.prefetch(c[:]...)
	}
	for _, w := range o.Workloads {
		if w.Name == "mc80" || w.Name == "mc400" {
			continue // the paper's libhugetlbfs methodology excluded memcached
		}
		c := cells(w)
		nat, err := o.run(c[0])
		if err != nil {
			return err
		}
		base, err := o.run(c[1])
		if err != nil {
			return err
		}
		asap, err := o.run(c[2])
		if err != nil {
			return err
		}
		reduction := 1 - asap.AvgWalkLat/base.AvgWalkLat
		improvement := nat.WalkFraction * reduction
		imp.Add(improvement)
		tb.AddRow(w.Name, stats.Pct(nat.WalkFraction), stats.Pct(reduction), stats.Pct(improvement))
	}
	tb.AddRow("Average", "", "", stats.Pct(imp.Value()))
	o.printf("Table 6: conservative projection of ASAP's performance improvement\n\n%s\n", tb)
	return nil
}

// Table7 reproduces the TLB MPKI reduction from the Clustered TLB (native
// isolation).
func Table7(o Options) error {
	tb := stats.NewTable("application", "baseline MPKI", "clustered MPKI", "reduction")
	var red stats.Mean
	cells := func(w workload.Spec) [2]sim.Scenario {
		return [2]sim.Scenario{{Workload: w}, {Workload: w, ClusteredTLB: true}}
	}
	for _, w := range o.Workloads {
		c := cells(w)
		o.prefetch(c[:]...)
	}
	for _, w := range o.Workloads {
		c := cells(w)
		base, err := o.run(c[0])
		if err != nil {
			return err
		}
		clus, err := o.run(c[1])
		if err != nil {
			return err
		}
		r := 1 - clus.MPKI/base.MPKI
		red.Add(r)
		tb.AddRow(w.Name, stats.F2(base.MPKI), stats.F2(clus.MPKI), stats.Pct(r))
	}
	tb.AddRow("Average", "", "", stats.Pct(red.Value()))
	o.printf("Table 7: TLB MPKI reduction with Clustered TLB\n\n%s\n", tb)
	return nil
}

// Fig11 reproduces the reduction in cycles spent in page walks for the
// Clustered TLB, ASAP (P1+P2), and the two combined (native, isolation;
// normalized per memory reference so fewer-but-longer walks compare fairly).
func Fig11(o Options) error {
	tb := stats.NewTable("workload", "Clustered TLB", "ASAP", "Clustered TLB + ASAP")
	var sums [3]stats.Mean
	fig11Cells := func(w workload.Spec) []sim.Scenario {
		return []sim.Scenario{
			{Workload: w},
			{Workload: w, ClusteredTLB: true},
			{Workload: w, ASAP: cfgP1P2},
			{Workload: w, ClusteredTLB: true, ASAP: cfgP1P2},
		}
	}
	for _, w := range o.Workloads {
		o.prefetch(fig11Cells(w)...)
	}
	for _, w := range o.Workloads {
		cells := fig11Cells(w)
		base, err := o.run(cells[0])
		if err != nil {
			return err
		}
		perRef := func(r *cellResult) float64 { return float64(r.WalkCycles) / float64(r.Accesses) }
		row := []string{w.Name}
		for i, sc := range cells[1:] {
			r, err := o.run(sc)
			if err != nil {
				return err
			}
			red := 1 - perRef(r)/perRef(base)
			sums[i].Add(red)
			row = append(row, stats.Pct(red))
		}
		tb.AddRow(row...)
	}
	tb.AddRow("Average", stats.Pct(sums[0].Value()), stats.Pct(sums[1].Value()), stats.Pct(sums[2].Value()))
	o.printf("Figure 11: reduction in page-walk cycles (native, isolation; higher is better)\n\n%s\n", tb)
	return nil
}
