// Package rng provides deterministic pseudo-random primitives used across the
// simulator: a splitmix64 stream, stateless 64-bit mixing, bijective Feistel
// permutations (for scattering frames without collisions), and a
// scrambled-zipfian item generator for key-value workloads.
//
// Everything in this package is deterministic given its seed, which keeps
// every experiment in the repository exactly reproducible.
package rng

import (
	"math"
	"sync"
)

// Mix64 applies the splitmix64 finalizer to x. It is a fast, high-quality
// stateless 64-bit mixing function, used wherever a deterministic
// pseudo-random value must be derived from an identifier (e.g. mapping a
// virtual page number to a scattered physical frame).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream is a splitmix64 pseudo-random stream. The zero value is a valid
// stream seeded with 0; use New to seed explicitly.
type Stream struct {
	state uint64
}

// New returns a Stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the next 64-bit value in the stream.
func (s *Stream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection-free reduction is fine here: the tiny
	// modulo bias for astronomically large n is irrelevant to a simulator.
	hi, _ := mul64(s.Next(), n)
	return hi
}

// Intn returns a uniform int in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Perm is a bijective permutation of [0, n) built from a 4-round Feistel
// network over the smallest even-width bit domain covering n, with
// cycle-walking to stay inside [0, n). It lets the simulator assign unique
// pseudo-random values (frames, chain successors) without storing a table.
type Perm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// NewPerm returns a permutation of [0, n) derived from seed. n must be
// positive.
func NewPerm(n uint64, seed uint64) *Perm {
	if n == 0 {
		panic("rng: NewPerm with n == 0")
	}
	bits := uint(1)
	for uint64(1)<<bits < n {
		bits++
	}
	if bits%2 != 0 {
		bits++
	}
	p := &Perm{n: n, halfBits: bits / 2, halfMask: uint64(1)<<(bits/2) - 1}
	s := New(seed)
	for i := range p.keys {
		p.keys[i] = s.Next()
	}
	return p
}

// N returns the size of the permuted domain.
func (p *Perm) N() uint64 { return p.n }

// Apply returns the image of x under the permutation. x must be in [0, n).
func (p *Perm) Apply(x uint64) uint64 {
	if x >= p.n {
		panic("rng: Perm.Apply out of range")
	}
	for {
		x = p.encrypt(x)
		if x < p.n {
			return x
		}
	}
}

// encrypt runs the raw Feistel rounds over the full power-of-two domain.
func (p *Perm) encrypt(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for _, k := range p.keys {
		l, r = r, l^(Mix64(r^k)&p.halfMask)
	}
	return l<<p.halfBits | r
}

// Zipfian generates item ranks in [0, n) following a zipfian distribution
// with parameter theta in (0, 1), using the standard Gray et al. algorithm
// (as popularized by YCSB). For very large n the zeta constant is
// approximated with an integral tail, which is accurate to well under 1% for
// the n used in this repository (millions to hundreds of millions of pages).
type Zipfian struct {
	n      uint64
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	half   float64 // 1 + 0.5^theta, the rank-1 threshold, hoisted out of Next
	stream *Stream
}

// zetaExactLimit is the largest n for which zeta is summed exactly.
const zetaExactLimit = 1 << 20

// zeta sums are pure in (n, theta) but cost up to 2^20 math.Pow calls, and
// every zipfian scenario cell constructs a fresh generator, so the results
// are memoized process-wide. The cache stays tiny: experiments use a handful
// of (page count, theta) pairs.
var (
	zetaMu    sync.Mutex
	zetaCache = map[zetaKey]float64{}
)

type zetaKey struct {
	n     uint64
	theta float64
}

// zeta returns an (approximate for large n) value of the generalized harmonic
// number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	zetaMu.Lock()
	v, ok := zetaCache[zetaKey{n, theta}]
	zetaMu.Unlock()
	if ok {
		return v
	}
	limit := n
	if limit > zetaExactLimit {
		limit = zetaExactLimit
	}
	sum := 0.0
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > limit {
		// Integral tail: ∫ limit..n x^-theta dx.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(limit), 1-theta)) / (1 - theta)
	}
	zetaMu.Lock()
	zetaCache[zetaKey{n, theta}] = sum
	zetaMu.Unlock()
	return sum
}

// NewZipfian returns a zipfian generator over [0, n) with parameter theta,
// drawing randomness from stream. Requires n > 0 and 0 < theta < 1.
func NewZipfian(n uint64, theta float64, stream *Stream) *Zipfian {
	if n == 0 {
		panic("rng: NewZipfian with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: NewZipfian theta must be in (0, 1)")
	}
	zetan := zeta(n, theta)
	z := &Zipfian{
		n:      n,
		theta:  theta,
		alpha:  1 / (1 - theta),
		zetan:  zetan,
		eta:    (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		half:   1 + math.Pow(0.5, theta),
		stream: stream,
	}
	return z
}

// Next returns the next zipfian-distributed rank in [0, n); rank 0 is the
// hottest item.
func (z *Zipfian) Next() uint64 {
	u := z.stream.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ScrambledNext returns the next zipfian rank scrambled across [0, n) with a
// stateless hash, so that hot items are spread uniformly over the domain (as
// hot keys are spread across a real key-value store's heap).
func (z *Zipfian) ScrambledNext() uint64 {
	return Mix64(z.Next()) % z.n
}
