package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collides trivially on 1 and 2")
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical values", same)
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1000, 4097} {
		p := NewPerm(n, 99)
		seen := make(map[uint64]bool, n)
		for x := uint64(0); x < n; x++ {
			y := p.Apply(x)
			if y >= n {
				t.Fatalf("n=%d: Apply(%d)=%d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: Apply(%d)=%d collides", n, x, y)
			}
			seen[y] = true
		}
	}
}

func TestPermPropertyInRange(t *testing.T) {
	p := NewPerm(1<<20, 5)
	f := func(x uint64) bool {
		x %= 1 << 20
		return p.Apply(x) < 1<<20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermPropertyInjective(t *testing.T) {
	p := NewPerm(1<<16, 77)
	f := func(a, b uint64) bool {
		a %= 1 << 16
		b %= 1 << 16
		if a == b {
			return true
		}
		return p.Apply(a) != p.Apply(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermScatters(t *testing.T) {
	// Consecutive inputs should not map to consecutive outputs in bulk.
	p := NewPerm(1<<20, 13)
	adjacent := 0
	prev := p.Apply(0)
	for x := uint64(1); x < 1000; x++ {
		cur := p.Apply(x)
		if cur == prev+1 {
			adjacent++
		}
		prev = cur
	}
	if adjacent > 10 {
		t.Fatalf("permutation preserved %d adjacencies out of 1000; not scattering", adjacent)
	}
}

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, 0.99, New(1))
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("zipfian rank %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// Rank 0 must be the most frequent and the head must dominate the tail.
	z := NewZipfian(100000, 0.99, New(2))
	counts := make(map[uint64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[50000] {
		t.Fatal("rank 0 not hotter than rank 50000")
	}
	head := 0
	for r := uint64(0); r < 100; r++ {
		head += counts[r]
	}
	if float64(head)/n < 0.2 {
		t.Fatalf("head 100 ranks carry only %.2f%% of accesses; zipfian skew too weak",
			100*float64(head)/n)
	}
}

func TestZipfianThetaControlsSkew(t *testing.T) {
	headShare := func(theta float64) float64 {
		z := NewZipfian(1<<20, theta, New(3))
		head := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if z.Next() < 1024 {
				head++
			}
		}
		return float64(head) / n
	}
	low, high := headShare(0.5), headShare(0.99)
	if high <= low {
		t.Fatalf("theta=0.99 head share (%v) not above theta=0.5 (%v)", high, low)
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	z := NewZipfian(1<<30, 0.99, New(4))
	// Scrambled hot items should land all over the domain, not at the start.
	inFirstQuarter := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if z.ScrambledNext() < 1<<28 {
			inFirstQuarter++
		}
	}
	share := float64(inFirstQuarter) / n
	if share < 0.15 || share > 0.35 {
		t.Fatalf("scrambled first-quarter share = %v, want ~0.25", share)
	}
}

func TestZetaApproximation(t *testing.T) {
	// The integral-tail approximation must be close to the exact sum for an
	// n just above the exact limit.
	n := uint64(zetaExactLimit * 4)
	exact := 0.0
	for i := uint64(1); i <= n; i++ {
		exact += 1 / math.Pow(float64(i), 0.99)
	}
	approx := zeta(n, 0.99)
	if rel := math.Abs(approx-exact) / exact; rel > 0.01 {
		t.Fatalf("zeta approximation relative error %v > 1%%", rel)
	}
}

func TestPanics(t *testing.T) {
	assertPanics(t, "Uint64n(0)", func() { New(1).Uint64n(0) })
	assertPanics(t, "Intn(0)", func() { New(1).Intn(0) })
	assertPanics(t, "NewPerm(0)", func() { NewPerm(0, 1) })
	assertPanics(t, "Perm out of range", func() { NewPerm(8, 1).Apply(8) })
	assertPanics(t, "NewZipfian(0)", func() { NewZipfian(0, 0.9, New(1)) })
	assertPanics(t, "NewZipfian theta=1", func() { NewZipfian(10, 1, New(1)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
