package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestNilTracerIsInert proves the zero-cost-when-disabled contract at the API
// level: every method tolerates a nil receiver, so a missed nil check in an
// emitting site degrades to a no-op instead of a crash.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.DefineProcess(0, "x")
	tr.SetPID(1)
	tr.TLBHit(1)
	tr.WalkStart(2)
	tr.Step("native", 4, "L1", 2, 3, false)
	tr.PWCLookup(2, 2, 4)
	tr.AccelProbe("range", true)
	tr.Prefetch(1, 5, 100)
	tr.MSHRDrop(2, 6)
	tr.WalkEnd(2, 10, "asap", true)
	tr.ProcessSwitch(7, 1, 3, 50)
	tr.MeasureBegin(0)
	tr.MeasureEnd(9)
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if _, err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("nil tracer's JSON invalid: %v", err)
	}
}

// traceOneWalk drives a representative walk through the tracer: PWC probe,
// two steps, an accel probe, one prefetch, then the closing span.
func traceOneWalk(tr *Tracer, now int64, measured bool) {
	tr.WalkStart(now)
	tr.PWCLookup(now, 2, 3)
	tr.AccelProbe("range", true)
	tr.Step("native", 3, "L1", now+2, 4, false)
	tr.Prefetch(1, now+6, 191)
	tr.Step("native", 2, "Mem", now+6, 190, true)
	tr.WalkEnd(now, 196, "asap", measured)
}

func TestWalkContextGatesChildEvents(t *testing.T) {
	tr := NewTracer(TraceConfig{})

	// Events outside any walk context are dropped: steps, probes and
	// prefetches only make sense inside the walk that issued them.
	tr.Step("native", 4, "L1", 0, 4, false)
	tr.AccelProbe("range", false)
	tr.Prefetch(1, 0, 100)
	tr.MSHRDrop(2, 0)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("%d events recorded outside a walk context", n)
	}

	traceOneWalk(tr, 100, true)
	names := make([]string, 0, len(tr.Events()))
	for _, e := range tr.Events() {
		names = append(names, e.Name)
	}
	want := "pwc.lookup accel.probe pt.step asap.prefetch pt.step walk"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("event order\n got %s\nwant %s", got, want)
	}

	// The closing span carries the walk's full extent and the measured flag.
	walk := tr.Events()[len(tr.Events())-1]
	if walk.Ph != 'X' || walk.TS != 100 || walk.Dur != 196 {
		t.Fatalf("walk span = %+v", walk)
	}
	var scheme, measured bool
	for _, a := range walk.Args {
		switch a.Key {
		case "scheme":
			scheme = a.Str == "asap"
		case "measured":
			measured = a.Bool
		}
	}
	if !scheme || !measured {
		t.Fatalf("walk args = %+v", walk.Args)
	}
}

func TestSamplingIsCounterBased(t *testing.T) {
	tr := NewTracer(TraceConfig{Sample: 3})
	for i := 0; i < 9; i++ {
		tr.TLBHit(int64(i))
		traceOneWalk(tr, int64(1000+i*500), false)
	}
	var walks, hits, steps int
	for _, e := range tr.Events() {
		switch e.Name {
		case "walk":
			walks++
		case "tlb.hit":
			hits++
		case "pt.step":
			steps++
		}
	}
	// Walks 0, 3, 6 and TLB hits 0, 3, 6 are sampled; every child event of an
	// unsampled walk is suppressed with it.
	if walks != 3 || hits != 3 || steps != 6 {
		t.Fatalf("sampled walks=%d hits=%d steps=%d, want 3, 3, 6", walks, hits, steps)
	}
}

// TestMetricsObserveEveryWalk proves sampling gates events only: the
// histograms see all walks and steps even when the event stream keeps 1/N.
func TestMetricsObserveEveryWalk(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TraceConfig{Sample: 1000, Metrics: reg})
	for i := 0; i < 10; i++ {
		traceOneWalk(tr, int64(i*500), true)
	}
	var walks int
	for _, e := range tr.Events() {
		if e.Name == "walk" {
			walks++
		}
	}
	if walks != 1 {
		t.Fatalf("sampled walk spans = %d, want 1", walks)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"sim_walk_latency_cycles_count 10",
		`sim_walk_step_cycles_count{served="L1"} 10`,
		`sim_walk_step_cycles_count{served="Mem"} 10`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestProcessSwitchReattributes(t *testing.T) {
	tr := NewTracer(TraceConfig{})
	tr.DefineProcess(0, "mcf")
	tr.DefineProcess(1, "canneal")
	tr.TLBHit(5)
	tr.ProcessSwitch(10, 1, 4, 400)
	tr.TLBHit(500)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d, want 3", len(ev))
	}
	if ev[0].PID != 0 {
		t.Fatalf("pre-switch event pid = %d", ev[0].PID)
	}
	// The switch instant belongs to the outgoing process (it pays the cost);
	// everything after attributes to the incoming one.
	if ev[1].Name != "sched.switch" || ev[1].PID != 0 || ev[1].TID != TrackSched {
		t.Fatalf("switch event = %+v", ev[1])
	}
	if ev[2].PID != 1 {
		t.Fatalf("post-switch event pid = %d", ev[2].PID)
	}
}

func TestWriteJSONIsValidAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(TraceConfig{})
		tr.DefineProcess(0, "mcf")
		tr.MeasureBegin(0)
		tr.TLBHit(1)
		traceOneWalk(tr, 100, true)
		tr.ProcessSwitch(400, 1, 2, 300)
		traceOneWalk(tr, 800, true)
		tr.MeasureEnd(1100)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traces serialized differently")
	}
	n, err := ValidateTraceJSON(a.Bytes())
	if err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, a.String())
	}
	// 12 simulation events plus process_name metadata for pid 0 (explicit)
	// and pid 1 (synthesized) and thread_name per (pid, tid) pair seen.
	if n < 12 {
		t.Fatalf("validated %d events, want >= 12", n)
	}
}

func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":          `{"traceEvents":[`,
		"no traceEvents":    `{"foo":1}`,
		"unknown phase":     `{"traceEvents":[{"name":"e","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"scopeless instant": `{"traceEvents":[{"name":"e","ph":"i","ts":0,"pid":0,"tid":0}]}`,
		"negative duration": `{"traceEvents":[{"name":"e","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`,
		"partial overlap": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateTraceJSON([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same overlap on different tracks is fine — nesting is per (pid,tid).
	ok := `{"traceEvents":[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},
		{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":2}]}`
	if _, err := ValidateTraceJSON([]byte(ok)); err != nil {
		t.Errorf("cross-track overlap rejected: %v", err)
	}
}
