package obs

// The event tracer. Simulation code holds a *Tracer that is usually nil;
// every emitting site is behind an `if tr != nil` check (and the methods
// tolerate a nil receiver anyway, so a missed check degrades to a no-op, not
// a crash). Timestamps are simulated cycles — the tracer never touches the
// wall clock — and events append to an in-memory buffer that WriteJSON
// serializes as Chrome trace_event JSON.

// Track identifiers (Chrome "tid"). One simulated process is one Chrome
// "pid"; within it, translation activity, prefetch traffic and scheduling
// live on separate tracks so overlapping spans never fight over one lane.
const (
	TrackSched     = 0 // context switches, measure-window markers
	TrackTranslate = 1 // TLB probes, walks and their per-level steps
	TrackPrefetch  = 2 // ASAP prefetch spans and MSHR drops
)

// Arg is one key/value annotation on an event. Args are an ordered slice,
// not a map, so serialization order is deterministic by construction.
type Arg struct {
	Key string
	// Exactly one of the typed values is live, selected by Kind.
	Kind ArgKind
	Str  string
	Int  int64
	Bool bool
}

// ArgKind discriminates Arg's payload.
type ArgKind uint8

// Arg payload kinds.
const (
	ArgStr ArgKind = iota
	ArgInt
	ArgBool
)

// Event is one trace event in Chrome trace_event vocabulary: Ph 'X' is a
// complete span (TS..TS+Dur), 'i' an instant. TS and Dur are simulated
// cycles (rendered as microseconds by Perfetto, which only affects the
// displayed unit, not the shape of the timeline).
type Event struct {
	Name string
	Ph   byte
	TS   int64
	Dur  int64
	PID  int32
	TID  int32
	Args []Arg
}

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// Sample records every Nth walk (with all its nested steps, probes and
	// prefetches) and every Nth TLB-hit instant; <= 1 records everything.
	// Sampling is counter-based, so it is deterministic and replay-stable.
	Sample int
	// Metrics, when non-nil, receives cycle-domain aggregates (walk-latency
	// histograms overall and per serving level) for every walk — sampling
	// gates events only, never the aggregates.
	Metrics *Registry
}

// Tracer collects structured simulation events. It is single-run,
// single-goroutine state, exactly like the simulation loop that feeds it;
// create one per traced run.
type Tracer struct {
	sample int
	events []Event

	pid     int32
	walkSeq uint64
	tlbSeq  uint64
	inWalk  bool
	sampled bool // current walk is recorded
	walkTS  int64

	procs []procName // Chrome process_name metadata, emitted by WriteJSON

	hWalk *Histogram
	hStep map[string]*Histogram // keyed by serving-level name; fixed key set
}

type procName struct {
	pid  int32
	name string
}

// walkLatBuckets spans one L1 hit to several DRAM round trips.
var walkLatBuckets = []float64{10, 20, 40, 80, 160, 320, 640, 1280}

// stepServed is the fixed set of serving-level names the per-step histograms
// are registered under (cache.ServedBy.String() values; a slice, not a map,
// so registration order is deterministic).
var stepServed = []string{"PWC", "L1", "L2", "LLC", "Mem"}

// NewTracer returns a tracer recording under cfg.
func NewTracer(cfg TraceConfig) *Tracer {
	t := &Tracer{sample: cfg.Sample}
	if t.sample < 1 {
		t.sample = 1
	}
	if cfg.Metrics != nil {
		t.hWalk = cfg.Metrics.Histogram("sim_walk_latency_cycles",
			"End-to-end page-walk latency in simulated cycles.", walkLatBuckets)
		t.hStep = make(map[string]*Histogram, len(stepServed))
		for _, s := range stepServed {
			t.hStep[s] = cfg.Metrics.Histogram("sim_walk_step_cycles",
				"Per-step page-walk latency in simulated cycles, by serving hierarchy level.",
				walkLatBuckets, Label{"served", s})
		}
	}
	return t
}

// Events returns the recorded events (shared backing array; read-only).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// DefineProcess names a simulated process for the trace viewer's sidebar.
func (t *Tracer) DefineProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.procs = append(t.procs, procName{pid: int32(pid), name: name})
}

// SetPID attributes subsequent events to the given simulated process.
func (t *Tracer) SetPID(pid int) {
	if t == nil {
		return
	}
	t.pid = int32(pid)
}

// TLBHit records a sampled instant for a reference resolved by the TLB.
func (t *Tracer) TLBHit(now int64) {
	if t == nil {
		return
	}
	t.tlbSeq++
	if (t.tlbSeq-1)%uint64(t.sample) != 0 {
		return
	}
	t.events = append(t.events, Event{
		Name: "tlb.hit", Ph: 'i', TS: now, PID: t.pid, TID: TrackTranslate,
	})
}

// WalkStart opens a walk context at cycle now: the sampling decision for
// this walk is made here, and every event until WalkEnd (steps, accel
// probes, prefetches, MSHR drops) belongs to the walk.
func (t *Tracer) WalkStart(now int64) {
	if t == nil {
		return
	}
	t.walkSeq++
	t.inWalk = true
	t.sampled = (t.walkSeq-1)%uint64(t.sample) == 0
	t.walkTS = now
}

// WalkEnd closes the walk context, emitting the top-level walk span
// (TS..TS+cycles on the translate track) when the walk is sampled, and
// feeding the walk-latency histogram regardless of sampling. measured
// reports whether the walk landed inside the run's measurement window —
// summing the durations of measured walk spans reproduces the run's
// reported walk cycles exactly.
func (t *Tracer) WalkEnd(start int64, cycles int, scheme string, measured bool) {
	if t == nil {
		return
	}
	t.inWalk = false
	if t.hWalk != nil {
		t.hWalk.Observe(float64(cycles))
	}
	if !t.sampled {
		return
	}
	t.events = append(t.events, Event{
		Name: "walk", Ph: 'X', TS: start, Dur: int64(cycles),
		PID: t.pid, TID: TrackTranslate,
		Args: []Arg{
			{Key: "scheme", Kind: ArgStr, Str: scheme},
			{Key: "measured", Kind: ArgBool, Bool: measured},
		},
	})
}

// walkOpen reports whether the current walk's events should be recorded.
func (t *Tracer) walkOpen() bool { return t != nil && t.inWalk && t.sampled }

// Step records one per-level step of the current walk: the page-table level
// read, the hierarchy level that served it (PWC for levels skipped via a
// page-walk-cache hit, recorded as zero-duration markers), its start cycle
// and cost, and whether an ASAP prefetch covered it. dim distinguishes the
// translation dimension under virtualization (native/guest/host).
func (t *Tracer) Step(dim string, level int, served string, start, dur int64, prefetched bool) {
	if t == nil {
		return
	}
	if h := t.hStep[served]; h != nil {
		h.Observe(float64(dur))
	}
	if !t.walkOpen() {
		return
	}
	args := []Arg{
		{Key: "dim", Kind: ArgStr, Str: dim},
		{Key: "level", Kind: ArgInt, Int: int64(level)},
		{Key: "served", Kind: ArgStr, Str: served},
	}
	if prefetched {
		args = append(args, Arg{Key: "prefetched", Kind: ArgBool, Bool: true})
	}
	t.events = append(t.events, Event{
		Name: "pt.step", Ph: 'X', TS: start, Dur: dur,
		PID: t.pid, TID: TrackTranslate, Args: args,
	})
}

// PWCLookup records the page-walk-cache probe that opens every walk.
func (t *Tracer) PWCLookup(start, dur int64, skippedTo int) {
	if !t.walkOpen() {
		return
	}
	t.events = append(t.events, Event{
		Name: "pwc.lookup", Ph: 'X', TS: start, Dur: dur,
		PID: t.pid, TID: TrackTranslate,
		Args: []Arg{{Key: "resume_level", Kind: ArgInt, Int: int64(skippedTo)}},
	})
}

// AccelProbe records the current walk's acceleration-mechanism probe — an
// ASAP range-register lookup, a Victima L2-residency probe, a Revelator
// hash-bucket probe — and whether it hit. The instant lands at the walk's
// start cycle: architecturally the probe runs in parallel with walker
// activation.
func (t *Tracer) AccelProbe(mech string, hit bool) {
	if !t.walkOpen() {
		return
	}
	t.events = append(t.events, Event{
		Name: "accel.probe", Ph: 'i', TS: t.walkTS, PID: t.pid, TID: TrackTranslate,
		Args: []Arg{
			{Key: "mech", Kind: ArgStr, Str: mech},
			{Key: "hit", Kind: ArgBool, Bool: hit},
		},
	})
}

// Prefetch records one issued ASAP prefetch on the prefetch track: launched
// at cycle ts, landing in L1-D lat cycles later. It is an instant carrying
// the latency as an arg, not a span: host-dimension prefetches of a 2D walk
// launch at staggered times and their in-flight windows partially overlap,
// which a span track cannot represent without breaking strict nesting.
func (t *Tracer) Prefetch(level int, ts, lat int64) {
	if !t.walkOpen() {
		return
	}
	t.events = append(t.events, Event{
		Name: "asap.prefetch", Ph: 'i', TS: ts, PID: t.pid, TID: TrackPrefetch,
		Args: []Arg{
			{Key: "level", Kind: ArgInt, Int: int64(level)},
			{Key: "lat_cycles", Kind: ArgInt, Int: lat},
		},
	})
}

// MSHRDrop records a prefetch abandoned because no MSHR was free.
func (t *Tracer) MSHRDrop(level int, ts int64) {
	if !t.walkOpen() {
		return
	}
	t.events = append(t.events, Event{
		Name: "mshr.drop", Ph: 'i', TS: ts, PID: t.pid, TID: TrackPrefetch,
		Args: []Arg{{Key: "level", Kind: ArgInt, Int: int64(level)}},
	})
}

// ProcessSwitch records a context switch to pid at cycle ts: the descriptor
// registers moved by the save/restore and the modeled switch cost ride as
// args, and subsequent events attribute to the incoming process.
func (t *Tracer) ProcessSwitch(ts int64, pid, descMoved int, costCycles int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: "sched.switch", Ph: 'i', TS: ts, PID: t.pid, TID: TrackSched,
		Args: []Arg{
			{Key: "to_pid", Kind: ArgInt, Int: int64(pid)},
			{Key: "desc_moved", Kind: ArgInt, Int: int64(descMoved)},
			{Key: "cost_cycles", Kind: ArgInt, Int: costCycles},
		},
	})
	t.pid = int32(pid)
}

// MeasureBegin marks the warmup/measurement boundary.
func (t *Tracer) MeasureBegin(ts int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: "measure.begin", Ph: 'i', TS: ts, PID: t.pid, TID: TrackSched,
	})
}

// MeasureEnd marks the end of the measurement window.
func (t *Tracer) MeasureEnd(ts int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: "measure.end", Ph: 'i', TS: ts, PID: t.pid, TID: TrackSched,
	})
}
