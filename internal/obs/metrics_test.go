package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildRegistry assembles one of every metric shape: plain and labeled
// counters, a gauge, and a two-series histogram.
func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests handled.").Add(42)
	r.Counter("demo_errors_total", "Errors by class.", Label{"class", "timeout"}).Add(3)
	r.Counter("demo_errors_total", "Errors by class.", Label{"class", "refused"}).Inc()
	r.Gauge("demo_queue_depth", "Items waiting.").Set(7)
	r.Gauge("demo_load_ratio", "Fractional load.").Set(0.625)
	h := r.Histogram("demo_latency_cycles", "Latency distribution.", []float64{10, 100}, Label{"op", "walk"})
	for _, v := range []float64{5, 50, 500, 7} {
		h.Observe(v)
	}
	r.Histogram("demo_latency_cycles", "Latency distribution.", []float64{10, 100}, Label{"op", "hit"}).Observe(3)
	return r
}

// TestExpositionGolden locks the Prometheus text exposition byte for byte:
// HELP/TYPE ordering, family and series sort order, integer vs float value
// formatting, and cumulative histogram rendering.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden\n got:\n%s\nwant:\n%s", buf.String(), want)
	}
	// The golden must satisfy our own lint, or CI's checker would reject what
	// the registry emits.
	if errs := LintProm(buf.Bytes()); len(errs) > 0 {
		t.Fatalf("registry output fails LintProm: %v", errs)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRegistry().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical registries exposed differently")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "x", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, sum, total := h.snapshot()
	// Bounds are inclusive (le): 0.5 and 1 land in le=1; 1.5 in le=2; 3 in
	// le=4; 100 in +Inf.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if total != 5 || sum != 106 {
		t.Fatalf("total=%d sum=%v", total, sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "x")
	r.Gauge("m", "x")
}

func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "x", Label{"k", "1"})
	b := r.Counter("c", "x", Label{"k", "1"})
	if a != b {
		t.Fatal("same label set produced distinct series")
	}
	c := r.Counter("c", "x", Label{"k", "2"})
	if a == c {
		t.Fatal("distinct label sets shared a series")
	}
}
