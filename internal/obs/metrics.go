package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A dependency-free metrics registry with Prometheus text exposition.
// Families register lazily on first use and are identified by (name, kind);
// series within a family are identified by their ordered label sets.
// Exposition sorts families by name and series by label values, so output
// order is deterministic regardless of registration or update order.

// Label is one key/value metric label. Series carry ordered []Label slices —
// never maps — so identity and exposition order are deterministic.
type Label struct {
	Key string
	Val string
}

// metricKind discriminates family types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The float64 value is stored as
// atomic bits so readers never see a torn write.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Upper bounds are set at
// registration; a +Inf bucket is implicit. Observations take a mutex —
// histograms live on instrumentation paths, not disabled hot paths.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // sorted, exclusive of +Inf
	counts []uint64  // len(upper)+1; last is the +Inf bucket
	sum    float64
	total  uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (per bound, then +Inf), sum and
// total under the histogram's lock.
func (h *Histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// series is one labeled instance within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with its HELP/TYPE and series set.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series // insertion-ordered; sorted at exposition
}

// Registry holds metric families. It is safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and its series for the ordered label
// set. Registering the same name with a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	s := &series{labels: labels}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for name and the ordered label set,
// registering it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge returns the gauge for name and the ordered label set, registering it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels).g
}

// Histogram returns the histogram for name and the ordered label set,
// registering it with the given upper bounds on first use. Bounds must be
// sorted ascending; +Inf is implicit. Later calls for an existing series
// ignore the bounds argument.
func (r *Registry) Histogram(name, help string, upper []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		bounds := append([]float64(nil), upper...)
		s.h = &Histogram{upper: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return s.h
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else via strconv's shortest round-trip
// form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram upper bound for an le label.
func formatBound(v float64) string {
	return formatValue(v)
}

func writeLabels(w io.Writer, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	io.WriteString(w, "{")
	for i, l := range all {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s=%q", l.Key, l.Val)
	}
	io.WriteString(w, "}")
}

// WriteProm writes the registry in Prometheus text exposition format 0.0.4.
// Families sort by name and series by their label values, so the output is
// byte-stable for a given metric state.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		ser := append([]*series(nil), f.series...)
		sort.Slice(ser, func(i, j int) bool {
			a, b := ser[i].labels, ser[j].labels
			for k := 0; k < len(a) && k < len(b); k++ {
				if a[k].Val != b[k].Val {
					return a[k].Val < b[k].Val
				}
			}
			return len(a) < len(b)
		})
		for _, s := range ser {
			switch f.kind {
			case kindCounter:
				io.WriteString(w, f.name)
				writeLabels(w, s.labels)
				fmt.Fprintf(w, " %d\n", s.c.Value())
			case kindGauge:
				io.WriteString(w, f.name)
				writeLabels(w, s.labels)
				fmt.Fprintf(w, " %s\n", formatValue(s.g.Value()))
			case kindHistogram:
				cum, sum, total := s.h.snapshot()
				for i, bound := range s.h.upper {
					io.WriteString(w, f.name+"_bucket")
					writeLabels(w, s.labels, Label{"le", formatBound(bound)})
					fmt.Fprintf(w, " %d\n", cum[i])
				}
				io.WriteString(w, f.name+"_bucket")
				writeLabels(w, s.labels, Label{"le", "+Inf"})
				fmt.Fprintf(w, " %d\n", cum[len(cum)-1])
				io.WriteString(w, f.name+"_sum")
				writeLabels(w, s.labels)
				fmt.Fprintf(w, " %s\n", formatValue(sum))
				io.WriteString(w, f.name+"_count")
				writeLabels(w, s.labels)
				fmt.Fprintf(w, " %d\n", total)
			}
		}
	}
	return nil
}
