package obs

import (
	"strings"
	"testing"
)

func lintOne(t *testing.T, doc string) []error {
	t.Helper()
	return LintProm([]byte(doc))
}

func TestLintPromClean(t *testing.T) {
	doc := `# HELP a_total Things counted.
# TYPE a_total counter
a_total 4
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="10"} 2
lat_bucket{le="+Inf"} 5
lat_sum 61
lat_count 5
# HELP g Gauge with labels.
# TYPE g gauge
g{x="a",y="b c"} 1.5
`
	if errs := lintOne(t, doc); len(errs) > 0 {
		t.Fatalf("clean doc flagged: %v", errs)
	}
}

func TestLintPromFindings(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the expected diagnostic
	}{
		{"no help", "# TYPE a counter\na 1\n", "has no HELP"},
		{"no type", "# HELP a x\na 1\n", "has no TYPE"},
		{"type after samples", "# HELP a x\na 1\n# TYPE a counter\n", "has no TYPE"},
		{"unknown type", "# HELP a x\n# TYPE a widget\na 1\n", "unknown TYPE"},
		{"bad name", "# HELP a x\n# TYPE a counter\n9a 1\n", "bad metric name"},
		{"bad value", "# HELP a x\n# TYPE a counter\na one\n", "does not parse"},
		{"missing value", "# HELP a x\n# TYPE a counter\na\n", "sample without value"},
		{"bad label name", "# HELP a x\n# TYPE a gauge\na{9k=\"v\"} 1\n", "bad label name"},
		{"unquoted label", "# HELP a x\n# TYPE a gauge\na{k=v} 1\n", "unquoted value"},
		{"unbalanced braces", "# HELP a x\n# TYPE a gauge\na{k=\"v\" 1\n", "unbalanced braces"},
		{
			"non-cumulative buckets",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"not cumulative",
		},
		{
			"no inf bucket",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n",
			"no +Inf bucket",
		},
		{
			"count mismatch",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n",
			"_count 7 != +Inf bucket 5",
		},
		{
			"per-series histogram check",
			"# HELP h x\n# TYPE h histogram\n" +
				"h_bucket{op=\"a\",le=\"+Inf\"} 2\nh_count{op=\"a\"} 2\n" +
				"h_bucket{op=\"b\",le=\"1\"} 9\nh_count{op=\"b\"} 9\n",
			"no +Inf bucket",
		},
	}
	for _, tc := range cases {
		errs := lintOne(t, tc.doc)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no diagnostic containing %q (got %v)", tc.name, tc.want, errs)
		}
	}
}

// TestLintPromTypeAfterSamplesOrdering pins the specific HELP-after-use case:
// metadata arriving after the family's first sample is a scrape hazard even
// when it is otherwise well-formed.
func TestLintPromTypeAfterSamplesOrdering(t *testing.T) {
	doc := "# HELP a x\n# TYPE a counter\na 1\n# TYPE a counter\n"
	errs := lintOne(t, doc)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "after its samples") {
			found = true
		}
	}
	if !found {
		t.Fatalf("late TYPE not flagged: %v", errs)
	}
}
