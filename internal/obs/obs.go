// Package obs is the simulator's unified observability layer: a sampled,
// cycle-domain structured event tracer, a dependency-free metrics registry
// with Prometheus text exposition, and live run-progress accounting.
//
// Three design rules hold everywhere:
//
//   - Observation never perturbs simulation. Every hook is a nil-checked
//     pointer: a disabled tracer costs one predictable branch on the paths
//     that carry it (the bench guard in BENCH_5.json holds the overhead on
//     Table1/Fig3 under 1%), and an enabled tracer only appends to buffers —
//     it never feeds anything back into translation state.
//   - Event time is simulated cycles, never wall clock. Traces are a pure
//     function of (Scenario, Params), so two identical runs emit
//     byte-identical event files and a trace diffs cleanly across code
//     changes. The package is inside the determinism lint scope to keep it
//     that way; the progress meter, which genuinely measures wall-clock
//     throughput, takes explicit timestamps from its caller instead of
//     reading a clock.
//   - Exports use boring, widely readable formats: Chrome trace_event JSON
//     (loadable in Perfetto / chrome://tracing) for events, the Prometheus
//     text exposition format for metrics. ValidateTraceJSON and LintProm
//     check both without external tooling, so CI can gate on them.
package obs
