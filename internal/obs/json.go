package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace_event export and an in-repo validator for the result.
//
// WriteJSON is hand-rolled rather than encoding/json-driven so the byte
// stream is a pure function of the event list: fixed field order, no map
// iteration, no float formatting variance. ValidateTraceJSON is the inverse
// gate used by tests and the CI smoke job — it parses with encoding/json
// (deliberately not sharing code with the writer) and checks the structural
// invariants a timeline viewer relies on.

// trackName maps the fixed track ids to sidebar names.
func trackName(tid int32) string {
	switch tid {
	case TrackSched:
		return "sched"
	case TrackTranslate:
		return "translate"
	case TrackPrefetch:
		return "prefetch"
	default:
		return "track-" + strconv.Itoa(int(tid))
	}
}

func writeArg(w *bufio.Writer, a Arg) {
	w.WriteString(strconv.Quote(a.Key))
	w.WriteByte(':')
	switch a.Kind {
	case ArgStr:
		w.WriteString(strconv.Quote(a.Str))
	case ArgInt:
		w.WriteString(strconv.FormatInt(a.Int, 10))
	case ArgBool:
		w.WriteString(strconv.FormatBool(a.Bool))
	}
}

// WriteJSON writes the recorded events as a Chrome trace_event JSON object
// ({"traceEvents":[...]}) loadable in Perfetto and chrome://tracing.
// Timestamps are simulated cycles written into the "ts"/"dur" microsecond
// fields — the unit label in the viewer reads µs, the shape of the timeline
// is cycle-accurate. process_name/thread_name metadata events are
// synthesized for every (pid, tid) pair that appears.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(f func()) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		f()
	}

	// Metadata first: explicit DefineProcess names, then thread names for
	// every (pid, tid) pair seen in the event stream, in sorted order.
	named := map[int32]bool{}
	if t != nil {
		for _, p := range t.procs {
			named[p.pid] = true
			p := p
			emit(func() {
				fmt.Fprintf(bw,
					`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
					p.pid, strconv.Quote(p.name))
			})
		}
	}
	type pt struct{ pid, tid int32 }
	seen := map[pt]bool{}
	var pairs []pt
	for _, e := range t.Events() {
		k := pt{e.PID, e.TID}
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].pid != pairs[j].pid {
			return pairs[i].pid < pairs[j].pid
		}
		return pairs[i].tid < pairs[j].tid
	})
	for _, k := range pairs {
		k := k
		if !named[k.pid] {
			named[k.pid] = true
			emit(func() {
				fmt.Fprintf(bw,
					`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"proc %d"}}`,
					k.pid, k.pid)
			})
		}
		emit(func() {
			fmt.Fprintf(bw,
				`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				k.pid, k.tid, strconv.Quote(trackName(k.tid)))
		})
	}

	for _, e := range t.Events() {
		e := e
		emit(func() {
			bw.WriteByte('{')
			bw.WriteString(`"name":`)
			bw.WriteString(strconv.Quote(e.Name))
			fmt.Fprintf(bw, `,"ph":"%c","ts":%d`, e.Ph, e.TS)
			if e.Ph == 'X' {
				fmt.Fprintf(bw, `,"dur":%d`, e.Dur)
			}
			fmt.Fprintf(bw, `,"pid":%d,"tid":%d`, e.PID, e.TID)
			if e.Ph == 'i' {
				bw.WriteString(`,"s":"t"`) // thread-scoped instant
			}
			if len(e.Args) > 0 {
				bw.WriteString(`,"args":{`)
				for i, a := range e.Args {
					if i > 0 {
						bw.WriteByte(',')
					}
					writeArg(bw, a)
				}
				bw.WriteByte('}')
			}
			bw.WriteByte('}')
		})
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// jsonEvent is the subset of trace_event fields the validator inspects.
type jsonEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	TS   int64           `json:"ts"`
	Dur  int64           `json:"dur"`
	PID  int32           `json:"pid"`
	TID  int32           `json:"tid"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

// ValidateTraceJSON checks that data is a structurally sound trace_event
// file: it parses as {"traceEvents":[...]}, every event has a known phase,
// complete spans have non-negative durations, instants carry a scope, and
// within each (pid, tid) track the complete spans nest strictly — no span
// partially overlaps another, which is the property that makes a flame-style
// timeline renderable. Returns the number of events on success.
func ValidateTraceJSON(data []byte) (int, error) {
	var doc struct {
		TraceEvents []jsonEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace JSON does not parse: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace JSON has no traceEvents array")
	}

	type key struct{ pid, tid int32 }
	spans := map[key][]jsonEvent{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "i":
			if e.S == "" {
				return 0, fmt.Errorf("event %d (%s): instant without scope", i, e.Name)
			}
		case "X":
			if e.Dur < 0 {
				return 0, fmt.Errorf("event %d (%s): negative duration %d", i, e.Name, e.Dur)
			}
			k := key{e.PID, e.TID}
			spans[k] = append(spans[k], e)
		default:
			return 0, fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
	}

	// Nesting check per track: sort by start asc, duration desc (the order
	// viewers use to build the flame stack), then sweep with a stack of open
	// spans. A span starting before the innermost open span ends must also
	// end by then.
	tracks := make([]key, 0, len(spans))
	for k := range spans {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, k := range tracks {
		ss := spans[k]
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].TS != ss[j].TS {
				return ss[i].TS < ss[j].TS
			}
			return ss[i].Dur > ss[j].Dur
		})
		var stack []jsonEvent
		for _, e := range ss {
			for len(stack) > 0 && stack[len(stack)-1].TS+stack[len(stack)-1].Dur <= e.TS {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.TS+e.Dur > top.TS+top.Dur {
					return 0, fmt.Errorf(
						"track pid=%d tid=%d: span %q [%d,%d) overlaps %q [%d,%d) without nesting",
						k.pid, k.tid, e.Name, e.TS, e.TS+e.Dur, top.Name, top.TS, top.TS+top.Dur)
				}
			}
			stack = append(stack, e)
		}
	}
	return len(doc.TraceEvents), nil
}
