package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintProm is a promtool-style checker for the text exposition format,
// small enough to live in-repo so CI needs no external binary. It enforces
// the rules that matter for scrapability:
//
//   - every sample's base family has # HELP and # TYPE lines, in that order,
//     before its first sample;
//   - metric and label names match the Prometheus grammar, label values are
//     properly quoted;
//   - sample values parse as floats;
//   - histogram families have monotonically non-decreasing buckets, a +Inf
//     bucket, and _count equal to the +Inf bucket.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promFamily struct {
	help    bool
	typ     string
	typLine int
	samples int
	// histogram accounting, keyed by the non-le label signature
	buckets map[string][]bucketSample
	counts  map[string]float64
	hasCnt  map[string]bool
}

type bucketSample struct {
	le  float64
	val float64
}

// baseFamily strips histogram/summary suffixes to the family name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseLabels splits a {k="v",...} body into the label list and returns the
// value of le (NaN sentinel as found=false) plus the signature of the
// remaining labels.
func parseLabels(body string) (labels []Label, err error) {
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", rest)
		}
		key := rest[:eq]
		if !promLabelRe.MatchString(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		val, tail, err := unquotePrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("label %s: %v", key, err)
		}
		labels = append(labels, Label{key, val})
		rest = tail
		if rest != "" {
			if rest[0] != ',' {
				return nil, fmt.Errorf("junk after label %s: %q", key, rest)
			}
			rest = rest[1:]
		}
	}
	return labels, nil
}

// unquotePrefix consumes a leading quoted string and returns its value and
// the remainder.
func unquotePrefix(s string) (val, rest string, err error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

// LintProm checks Prometheus text exposition data and returns the problems
// found (nil for a clean document).
func LintProm(data []byte) []error {
	var errs []error
	fams := map[string]*promFamily{}
	fam := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{
				buckets: map[string][]bucketSample{},
				counts:  map[string]float64{},
				hasCnt:  map[string]bool{},
			}
			fams[name] = f
		}
		return f
	}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			f := fam(name)
			switch fields[1] {
			case "HELP":
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					errs = append(errs, fmt.Errorf("line %d: empty HELP for %s", lineNo, name))
				}
				f.help = true
			case "TYPE":
				if f.samples > 0 {
					errs = append(errs, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name))
				}
				if len(fields) < 4 {
					errs = append(errs, fmt.Errorf("line %d: TYPE for %s without a type", lineNo, name))
					continue
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					errs = append(errs, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name))
				}
				f.typ = typ
				f.typLine = lineNo
			}
			continue
		}

		// Sample line: name[{labels}] value
		var labelBody string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				errs = append(errs, fmt.Errorf("line %d: unbalanced braces", lineNo))
				continue
			}
			labelBody = line[i+1 : j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			errs = append(errs, fmt.Errorf("line %d: sample without value", lineNo))
			continue
		}
		name := fields[0]
		if !promNameRe.MatchString(name) {
			errs = append(errs, fmt.Errorf("line %d: bad metric name %q", lineNo, name))
			continue
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %s value %q does not parse", lineNo, name, fields[1]))
			continue
		}
		labels, err := parseLabels(labelBody)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %s: %v", lineNo, name, err))
			continue
		}

		base := baseFamily(name)
		f := fams[base]
		if f == nil || f.typ == "" {
			// _sum on a non-histogram family is its own family
			f = fam(name)
			base = name
		}
		f.samples++
		if !f.help {
			errs = append(errs, fmt.Errorf("line %d: %s has no HELP", lineNo, base))
			f.help = true // report once
		}
		if f.typ == "" {
			errs = append(errs, fmt.Errorf("line %d: %s has no TYPE", lineNo, base))
			f.typ = "untyped"
		}

		if f.typ == "histogram" {
			sig, le, hasLE := histSignature(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLE {
					errs = append(errs, fmt.Errorf("line %d: %s bucket without le label", lineNo, base))
					continue
				}
				f.buckets[sig] = append(f.buckets[sig], bucketSample{le: le, val: val})
			case strings.HasSuffix(name, "_count"):
				f.counts[sig] = val
				f.hasCnt[sig] = true
			}
		}
	}

	// Histogram closure checks.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typ != "histogram" {
			continue
		}
		sigs := make([]string, 0, len(f.buckets))
		for s := range f.buckets {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			bs := f.buckets[sig]
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			var prev float64
			var hasInf bool
			var infVal float64
			for _, b := range bs {
				if b.val < prev {
					errs = append(errs, fmt.Errorf(
						"%s%s: bucket le=%s count %s < previous %s (not cumulative)",
						n, sigSuffix(sig), formatBound(b.le), formatValue(b.val), formatValue(prev)))
				}
				prev = b.val
				if b.le == infBound {
					hasInf = true
					infVal = b.val
				}
			}
			if !hasInf {
				errs = append(errs, fmt.Errorf("%s%s: no +Inf bucket", n, sigSuffix(sig)))
				continue
			}
			if f.hasCnt[sig] && f.counts[sig] != infVal {
				errs = append(errs, fmt.Errorf(
					"%s%s: _count %s != +Inf bucket %s",
					n, sigSuffix(sig), formatValue(f.counts[sig]), formatValue(infVal)))
			}
		}
	}
	return errs
}

var infBound = math.Inf(1)

func sigSuffix(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// histSignature returns the non-le label signature and the parsed le bound.
func histSignature(labels []Label) (sig string, le float64, hasLE bool) {
	var parts []string
	for _, l := range labels {
		if l.Key == "le" {
			hasLE = true
			if l.Val == "+Inf" {
				le = infBound
			} else {
				le, _ = strconv.ParseFloat(l.Val, 64)
			}
			continue
		}
		parts = append(parts, l.Key+"="+strconv.Quote(l.Val))
	}
	return strings.Join(parts, ","), le, hasLE
}
