package obs

import (
	"math"
	"strings"
	"testing"
)

const second = int64(1e9)

func TestProgressMeterRate(t *testing.T) {
	m := NewProgressMeter(100, 5)
	m.Observe(0, 0)
	if s := m.Snapshot(); s.Rate != 0 || s.ETASeconds != -1 {
		t.Fatalf("before any interval: %+v", s)
	}
	// 10 items over 1 s: the first interval seeds the EWMA directly.
	m.Observe(1*second, 10)
	s := m.Snapshot()
	if math.Abs(s.Rate-10) > 1e-9 {
		t.Fatalf("rate = %v, want 10", s.Rate)
	}
	if math.Abs(s.ETASeconds-9) > 1e-9 { // 90 remaining / 10 per sec
		t.Fatalf("eta = %v, want 9", s.ETASeconds)
	}
	// A slower second interval pulls the estimate down, but not all the way:
	// 2/s over one 5s-half-life interval decays the old rate by 0.5^(1/5).
	m.Observe(2*second, 12)
	decay := math.Pow(0.5, 1.0/5)
	want := decay*10 + (1-decay)*2
	if got := m.Rate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ewma rate = %v, want %v", got, want)
	}
}

func TestProgressMeterUnknownTotal(t *testing.T) {
	m := NewProgressMeter(0, 5)
	m.Observe(0, 3)
	m.Observe(1*second, 6)
	s := m.Snapshot()
	if s.Total != 0 || s.ETASeconds != -1 {
		t.Fatalf("unknown total: %+v", s)
	}
	m.SetTotal(10)
	if s := m.Snapshot(); s.ETASeconds < 0 {
		t.Fatalf("total set but no ETA: %+v", s)
	}
}

func TestProgressMeterMonotonicDone(t *testing.T) {
	m := NewProgressMeter(10, 5)
	m.Observe(0, 5)
	m.Observe(1*second, 3) // stale reading must not move done backwards
	if s := m.Snapshot(); s.Done != 5 {
		t.Fatalf("done = %d, want 5", s.Done)
	}
}

func TestFormatProgress(t *testing.T) {
	s := ProgressSnapshot{Done: 12, Total: 40, Rate: 3.4, ETASeconds: 8}
	got := FormatProgress("cells", s)
	want := "cells 12/40 (30.0%) · 3.4 cells/s · ETA 8s"
	if got != want {
		t.Fatalf("format = %q, want %q", got, want)
	}
	// No total, no rate: just the count.
	if got := FormatProgress("cells", ProgressSnapshot{Done: 7, ETASeconds: -1}); got != "cells 7" {
		t.Fatalf("format = %q", got)
	}
	// Long ETAs switch units.
	long := FormatProgress("cells", ProgressSnapshot{Done: 1, Total: 1000, Rate: 0.01, ETASeconds: 3725})
	if !strings.Contains(long, "ETA 1h02m") {
		t.Fatalf("format = %q", long)
	}
	mid := FormatProgress("cells", ProgressSnapshot{Done: 1, Total: 100, Rate: 1, ETASeconds: 99})
	if !strings.Contains(mid, "ETA 1m39s") {
		t.Fatalf("format = %q", mid)
	}
}
