package obs

import (
	"fmt"
	"math"
	"sync"
)

// Live run progress. ProgressMeter is the one piece of obs that deals in
// wall-clock time, and it does so without ever reading a clock: callers pass
// explicit nanosecond timestamps (from time.Now in a cmd/ main, from the
// injected Clock in asapd), which keeps this package inside the determinism
// lint scope and makes the meter trivially testable.

// ProgressSnapshot is a point-in-time view of a run's progress.
type ProgressSnapshot struct {
	Done  int64
	Total int64 // 0 when unknown
	// Rate is the EWMA throughput in items per second; 0 until the first
	// inter-observation interval has elapsed.
	Rate float64
	// ETASeconds estimates the remaining seconds at the current rate;
	// negative when unknown (no total, or no rate yet).
	ETASeconds float64
}

// ProgressMeter tracks completion of a known or unknown total with an
// exponentially weighted throughput estimate. Safe for concurrent use.
type ProgressMeter struct {
	mu        sync.Mutex
	total     int64
	done      int64
	lastNanos int64
	haveLast  bool
	rate      float64 // items/sec EWMA
	haveRate  bool
	halfLife  float64 // seconds
}

// NewProgressMeter returns a meter for total items (0 if unknown; see
// SetTotal). halfLifeSec is the EWMA half-life — observations older than a
// few half-lives stop influencing the rate; 5s suits interactive CLIs.
func NewProgressMeter(total int64, halfLifeSec float64) *ProgressMeter {
	if halfLifeSec <= 0 {
		halfLifeSec = 5
	}
	return &ProgressMeter{total: total, halfLife: halfLifeSec}
}

// SetTotal updates the expected total (totals grow as jobs are planned).
func (m *ProgressMeter) SetTotal(total int64) {
	m.mu.Lock()
	m.total = total
	m.mu.Unlock()
}

// Observe records that done items (cumulative) were complete at nowNanos.
// Observations must be passed in non-decreasing time order.
func (m *ProgressMeter) Observe(nowNanos, done int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.haveLast {
		dt := float64(nowNanos-m.lastNanos) / 1e9
		if dt > 0 {
			inst := float64(done-m.done) / dt
			if !m.haveRate {
				m.rate = inst
				m.haveRate = true
			} else {
				decay := math.Pow(0.5, dt/m.halfLife)
				m.rate = decay*m.rate + (1-decay)*inst
			}
		}
	}
	m.lastNanos = nowNanos
	m.haveLast = true
	if done > m.done {
		m.done = done
	}
}

// Snapshot returns the current progress view.
func (m *ProgressMeter) Snapshot() ProgressSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ProgressSnapshot{Done: m.done, Total: m.total, ETASeconds: -1}
	if m.haveRate {
		s.Rate = m.rate
	}
	if m.total > 0 && s.Rate > 0 {
		remaining := m.total - m.done
		if remaining < 0 {
			remaining = 0
		}
		s.ETASeconds = float64(remaining) / s.Rate
	}
	return s
}

// Rate returns the current EWMA throughput in items per second.
func (m *ProgressMeter) Rate() float64 { return m.Snapshot().Rate }

// FormatProgress renders a snapshot as a one-line status suitable for
// stderr, e.g. "cells 12/40 (30.0%) · 3.4 cells/s · ETA 8s".
func FormatProgress(unit string, s ProgressSnapshot) string {
	var b []byte
	if s.Total > 0 {
		pct := 100 * float64(s.Done) / float64(s.Total)
		b = fmt.Appendf(b, "%s %d/%d (%.1f%%)", unit, s.Done, s.Total, pct)
	} else {
		b = fmt.Appendf(b, "%s %d", unit, s.Done)
	}
	if s.Rate > 0 {
		b = fmt.Appendf(b, " · %.1f %s/s", s.Rate, unit)
	}
	if s.ETASeconds >= 0 {
		b = fmt.Appendf(b, " · ETA %s", formatETA(s.ETASeconds))
	}
	return string(b)
}

func formatETA(sec float64) string {
	s := int64(math.Ceil(sec))
	switch {
	case s >= 3600:
		return fmt.Sprintf("%dh%02dm", s/3600, (s%3600)/60)
	case s >= 60:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%ds", s)
	}
}
