// Package suite assembles the repository's full analyzer set: the four
// repo-specific invariant checkers plus the curated stock passes.
package suite

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
	"repro/internal/lint/keycomplete"
	"repro/internal/lint/meterwindow"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/stock"
)

// Analyzers returns every analyzer asaplint runs, custom passes first.
func Analyzers() []*analysis.Analyzer {
	custom := []*analysis.Analyzer{
		meterwindow.Analyzer,
		keycomplete.Analyzer,
		determinism.Analyzer,
		seededrand.Analyzer,
	}
	return append(custom, stock.Analyzers()...)
}
