// Package suite assembles the repository's full analyzer set: the
// repo-specific invariant checkers plus the curated stock passes.
package suite

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/crashsafe"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/keycomplete"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/meterwindow"
	"repro/internal/lint/mixedaccess"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/stock"
)

// Analyzers returns every analyzer asaplint runs, custom passes first: the
// original four invariant checkers, the CFG-powered concurrency and
// crash-safety passes, then the stock set.
func Analyzers() []*analysis.Analyzer {
	custom := []*analysis.Analyzer{
		meterwindow.Analyzer,
		keycomplete.Analyzer,
		determinism.Analyzer,
		seededrand.Analyzer,
		ctxflow.Analyzer,
		crashsafe.Analyzer,
		lockcheck.Analyzer,
		mixedaccess.Analyzer,
	}
	return append(custom, stock.Analyzers()...)
}
