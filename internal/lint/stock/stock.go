// Package stock reimplements the curated subset of x/tools stock analyzers
// the suite runs alongside the repo-specific ones: nilness, unusedresult,
// copylocks and shadow. The real passes live in golang.org/x/tools, which
// this dependency-free repository cannot vendor; these are deliberately
// narrower ports that keep the same names, report the same bug classes, and
// can be swapped for the originals wholesale if a dependency on x/tools ever
// becomes acceptable. go vet (in CI) still runs the full-strength copylocks,
// so the port here is belt-and-braces rather than the only line of defense.
package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// Analyzers returns the curated stock passes in suite order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Nilness, Unusedresult, Copylocks, Shadow}
}

// ---- nilness ----------------------------------------------------------

// Nilness flags nil-deref bugs branch-sensitively over the CFG: when a
// condition proves x nil, the fact holds in every block the nil-carrying
// branch dominates — including the code after an `if x != nil { return x }`
// guard, whose fall-through is the nil branch — until a reassignment of x
// can reach the use.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of a variable on paths where a branch just proved it nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	for _, fn := range cfg.All(pass) {
		nilnessFunc(pass, fn)
	}
	return nil
}

func nilnessFunc(pass *analysis.Pass, fn *cfg.Func) {
	info := pass.TypesInfo
	reported := map[token.Pos]bool{}
	for ifStmt, br := range fn.IfBranches {
		be, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		var id *ast.Ident
		if x, ok := be.X.(*ast.Ident); ok && isNilIdent(pass, be.Y) {
			id = x
		} else if y, ok := be.Y.(*ast.Ident); ok && isNilIdent(pass, be.X) {
			id = y
		}
		if id == nil {
			continue
		}
		obj := info.ObjectOf(id)
		if obj == nil || !nilable(obj.Type()) {
			continue
		}
		// The block where "obj is nil" starts to hold: the then-arm of an
		// equality test, the (always-synthesized) else-arm of an inequality.
		var factBlock *cfg.Block
		switch be.Op {
		case token.EQL:
			factBlock = br.Then
		case token.NEQ:
			factBlock = br.Else
		default:
			continue
		}
		if !fn.Reachable(factBlock) {
			continue
		}
		defs := fn.Defs(pass)
		// A definition downstream of the condition may replace the proven-nil
		// value; when such a definition reaches the use, the fact is dead.
		killed := func(use ast.Node) bool {
			for _, d := range defs.Reaching(obj, use) {
				if !d.Param && fn.PathExists(ifStmt.Cond, d.Ident, nil) {
					return true
				}
			}
			return false
		}
		for _, b := range fn.Blocks {
			if !fn.Dominates(factBlock, b) {
				continue
			}
			for _, n := range b.Nodes {
				reportNilUse(pass, info, n, obj, killed, reported)
			}
		}
	}
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNil
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return true
	}
	return false
}

// reportNilUse reports dereferences of obj inside one CFG node, unless a
// reaching reassignment killed the nil fact at that use.
func reportNilUse(pass *analysis.Pass, info *types.Info, node ast.Node, obj types.Object,
	killed func(ast.Node) bool, reported map[token.Pos]bool) {
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	}
	report := func(use ast.Node, verb string) {
		if reported[use.Pos()] || killed(use) {
			return
		}
		reported[use.Pos()] = true
		pass.Reportf(use.Pos(), "%s is nil on this branch; %s it will panic", obj.Name(), verb)
	}
	cfg.InspectLocal(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			// Only a deref for pointer receivers of fields; method values on
			// nil pointers may be legal, so restrict to pointer field access
			// and interface method calls via the nilable check above.
			if isObj(e.X) {
				if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
					report(e, "selecting through")
				}
			}
		case *ast.StarExpr:
			if isObj(e.X) {
				report(e, "dereferencing")
			}
		case *ast.IndexExpr:
			if isObj(e.X) {
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					report(e, "indexing")
				}
			}
		case *ast.CallExpr:
			if isObj(e.Fun) {
				report(e, "calling")
			}
		}
		return true
	})
}

// ---- unusedresult -----------------------------------------------------

// Unusedresult flags statement-position calls to pure functions whose entire
// point is their return value.
var Unusedresult = &analysis.Analyzer{
	Name: "unusedresult",
	Doc:  "flag discarded results of pure functions (fmt.Errorf, errors.New, String/Error methods, ...)",
	Run:  runUnusedresult,
}

var pureFuncs = map[[2]string]bool{
	{"errors", "New"}:        true,
	{"errors", "Unwrap"}:     true,
	{"errors", "Join"}:       true,
	{"fmt", "Errorf"}:        true,
	{"fmt", "Sprint"}:        true,
	{"fmt", "Sprintf"}:       true,
	{"fmt", "Sprintln"}:      true,
	{"sort", "Reverse"}:      true,
	{"context", "WithValue"}: true,
	{"maps", "Clone"}:        true,
	{"slices", "Clone"}:      true,
}

func runUnusedresult(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() == nil {
				if fn.Pkg() != nil && pureFuncs[[2]string{fn.Pkg().Path(), fn.Name()}] {
					pass.Reportf(call.Pos(), "result of %s.%s is discarded", fn.Pkg().Name(), fn.Name())
				}
				return true
			}
			// Pure stringer-shaped methods: String() string / Error() string.
			if (fn.Name() == "String" || fn.Name() == "Error") &&
				sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				types.Identical(sig.Results().At(0).Type(), types.Typ[types.String]) {
				pass.Reportf(call.Pos(), "result of (%s).%s is discarded", sig.Recv().Type(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// ---- copylocks --------------------------------------------------------

// Copylocks flags by-value movement of types that contain a sync lock:
// receivers, parameters, results, range copies, and plain lvalue copies.
var Copylocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value copies of types containing sync.Mutex and friends",
	Run:  runCopylocks,
}

func runCopylocks(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl:
				checkFuncLocks(pass, e)
			case *ast.RangeStmt:
				if e.Value != nil {
					if t := pass.TypesInfo.TypeOf(e.Value); t != nil && containsLock(t, nil) {
						pass.Reportf(e.Value.Pos(), "range copies a lock by value: %s contains a sync lock; iterate by index or over pointers", t)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if i >= len(e.Lhs) {
						break
					}
					if !isLvalueCopy(rhs) {
						continue
					}
					if t := pass.TypesInfo.TypeOf(rhs); t != nil && containsLock(t, nil) {
						pass.Reportf(rhs.Pos(), "assignment copies a lock by value: %s contains a sync lock; use a pointer", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isLvalueCopy reports whether e is an expression whose assignment copies an
// existing value (as opposed to a fresh composite literal or call result).
func isLvalueCopy(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return isLvalueCopy(x.X)
	}
	return false
}

func checkFuncLocks(pass *analysis.Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t, nil) {
				pass.Reportf(field.Pos(), "%s passes a lock by value: %s contains a sync lock; use a pointer", what, t)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// containsLock reports whether t (by value) contains a sync lock type.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// ---- shadow -----------------------------------------------------------

// Shadow flags an inner := redeclaration of a function-local variable of the
// same type when the shadowed outer variable is still read after the inner
// scope closes — the classic lost-err-assignment bug. Three idioms are
// exempt: guard-clause declarations (if err := f(); ... and for/switch init
// clauses), declarations inside a func literal shadowing a variable of the
// enclosing function (closures carry their own err), and cases where the
// first use of the outer variable after the inner scope is itself a plain
// assignment (the shadowed value was dead, so the forced multi-assign
// `x, err := f()` inside a block is fine).
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag inner redeclarations that shadow a still-live outer variable of the same type",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShadow(pass, fd)
		}
	}
	return nil
}

func checkShadow(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Init-clause declarations are guard idiom, not shadow bugs.
	initStmts := map[ast.Stmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IfStmt:
			if e.Init != nil {
				initStmts[e.Init] = true
			}
		case *ast.ForStmt:
			if e.Init != nil {
				initStmts[e.Init] = true
			}
		case *ast.SwitchStmt:
			if e.Init != nil {
				initStmts[e.Init] = true
			}
		case *ast.TypeSwitchStmt:
			if e.Init != nil {
				initStmts[e.Init] = true
			}
		}
		return true
	})

	// Plain assignment targets kill the previous value, so a post-scope
	// occurrence that is a write does not make the shadowed variable live.
	writeAt := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writeAt[id.Pos()] = true
			}
		}
		return true
	})

	// Occurrences of each object, for the still-live check. go/types records
	// both reads and reused assignment targets in Uses.
	type occurrence struct {
		pos   token.Pos
		write bool
	}
	usesOf := map[types.Object][]occurrence{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				usesOf[obj] = append(usesOf[obj], occurrence{id.Pos(), writeAt[id.Pos()]})
			}
		}
		return true
	})

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || initStmts[as] {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			inner := pass.TypesInfo.Defs[id]
			if inner == nil {
				continue
			}
			scope := inner.Parent()
			if scope == nil {
				continue
			}
			outer := lookupOuter(scope, id.Name, fd, pass)
			if outer == nil || outer.Pos() >= id.Pos() {
				continue
			}
			if !types.Identical(inner.Type(), outer.Type()) {
				continue
			}
			// Shadowing across a func-literal boundary is the closure carrying
			// its own variable, not a lost assignment to the outer one.
			if crossesFuncLit(stack, outer.Pos()) {
				continue
			}
			var first *occurrence
			for i, occ := range usesOf[outer] {
				if occ.pos > scope.End() && (first == nil || occ.pos < first.pos) {
					first = &usesOf[outer][i]
				}
			}
			if first != nil && !first.write {
				pass.Reportf(id.Pos(),
					"declaration of %q shadows a variable of the same type declared at %s that is still read after this scope ends",
					id.Name, pass.Fset.Position(outer.Pos()))
			}
		}
		return true
	})
}

// crossesFuncLit reports whether the node currently on top of stack sits
// inside a func literal that the variable declared at outerPos does not —
// i.e. the shadow spans a closure boundary.
func crossesFuncLit(stack []ast.Node, outerPos token.Pos) bool {
	for _, n := range stack {
		if lit, ok := n.(*ast.FuncLit); ok && outerPos < lit.Pos() {
			return true
		}
	}
	return false
}

// lookupOuter finds a function-local variable named name in a scope strictly
// enclosing scope, stopping before package scope.
func lookupOuter(scope *types.Scope, name string, fd *ast.FuncDecl, pass *analysis.Pass) types.Object {
	for s := scope.Parent(); s != nil; s = s.Parent() {
		if s == pass.Pkg.Scope() || s == types.Universe {
			return nil
		}
		if obj := s.Lookup(name); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
				return v
			}
			return nil
		}
	}
	return nil
}
