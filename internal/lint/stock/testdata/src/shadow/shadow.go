// Package shadow exercises the shadow analyzer: the lost-err-assignment bug
// is flagged, while guard clauses, closures carrying their own err, and
// forced multi-assign declarations whose outer variable is dead are not.
package shadow

import "strconv"

// Lost is the classic bug: the inner err shadows the outer one, so the
// function returns the zero outer err no matter what Atoi reported.
func Lost(ss []string) (int, error) {
	var total int
	var err error
	for _, s := range ss {
		if s != "" {
			n, err := strconv.Atoi(s) // want `declaration of "err" shadows a variable of the same type`
			if err == nil {
				total += n
			}
		}
	}
	return total, err
}

// Guard clauses declare into the statement's own scope: idiomatic, exempt.
func Guard(s string) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return 0
}

// DeadAfter shadows err inside the block, but the outer err's first use
// after the block is a plain reassignment — the shadowed value was dead.
func DeadAfter(a, b string) (int, error) {
	n, err := strconv.Atoi(a)
	if err != nil {
		return 0, err
	}
	if n > 0 {
		m, err := strconv.Atoi(b)
		if err != nil {
			return 0, err
		}
		n += m
	}
	v, err := strconv.Atoi(b)
	if err != nil {
		return 0, err
	}
	return n + v, nil
}

// Closure declares its own err: shadowing across a func-literal boundary is
// the closure's private variable, not a lost assignment.
func Closure(s string) error {
	var err error
	done := func() {
		n, err := strconv.Atoi(s)
		_, _ = n, err
	}
	done()
	return err
}
