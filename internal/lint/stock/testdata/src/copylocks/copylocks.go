// Package copylocks exercises the copylocks analyzer: by-value movement of
// types containing a sync lock.
package copylocks

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func ByValue(g Guarded) int { // want `parameter passes a lock by value`
	return g.n
}

func (g Guarded) Get() int { // want `receiver passes a lock by value`
	return g.n
}

func Copy(g *Guarded) {
	local := *g // want `assignment copies a lock by value`
	local.n = 0
}

func ByPointer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
