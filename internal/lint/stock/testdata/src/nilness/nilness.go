// Package nilness exercises the nilness analyzer: using a value inside the
// branch that just proved it nil.
package nilness

type Node struct{ next *Node }

func Deref(n *Node) *Node {
	if n == nil {
		return n.next // want `n is nil on this branch; selecting through it will panic`
	}
	return n
}

func Reassigned(n *Node) *Node {
	if n == nil {
		n = &Node{}
		return n.next // fine: n was reassigned first
	}
	return n
}

func ElseBranch(fn func() int) int {
	if fn != nil {
		return fn()
	} else {
		return fn() // want `fn is nil on this branch; calling it will panic`
	}
}

// Branch sensitivity: when the non-nil arm returns, the fall-through is the
// nil branch even though it is not written as an else.
func LateDeref(n *Node) *Node {
	if n != nil {
		return n
	}
	return n.next // want `n is nil on this branch; selecting through it will panic`
}

// The mirrored guard proves n non-nil on the fall-through: no diagnostic.
func Guarded(n *Node) *Node {
	if n == nil {
		return nil
	}
	return n.next
}

// When the proving branch rejoins, the fall-through sees both arms: no fact.
func Rejoined(n *Node, count *int) *Node {
	if n != nil {
		*count++
	}
	return n.next
}
