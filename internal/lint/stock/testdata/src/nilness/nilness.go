// Package nilness exercises the nilness analyzer: using a value inside the
// branch that just proved it nil.
package nilness

type Node struct{ next *Node }

func Deref(n *Node) *Node {
	if n == nil {
		return n.next // want `n is nil on this branch; selecting through it will panic`
	}
	return n
}

func Reassigned(n *Node) *Node {
	if n == nil {
		n = &Node{}
		return n.next // fine: n was reassigned first
	}
	return n
}

func ElseBranch(fn func() int) int {
	if fn != nil {
		return fn()
	} else {
		return fn() // want `fn is nil on this branch; calling it will panic`
	}
}
