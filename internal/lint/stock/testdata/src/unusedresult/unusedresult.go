// Package unusedresult exercises the unusedresult analyzer: statement-
// position calls whose only effect is the discarded return value.
package unusedresult

import (
	"errors"
	"fmt"
)

type id int

func (i id) String() string { return fmt.Sprint(int(i)) }

func Discards(err error) {
	fmt.Errorf("wrapped: %w", err) // want `result of fmt.Errorf is discarded`
	errors.New("lost")             // want `result of errors.New is discarded`
	id(7).String()                 // want `result of \(unusedresult.id\).String is discarded`
}

func Used(err error) error {
	e := fmt.Errorf("wrapped: %w", err)
	fmt.Println(id(7).String()) // fine: result consumed
	return e
}
