package stock_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/stock"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, stock.Shadow, "shadow")
}

func TestNilness(t *testing.T) {
	analysistest.Run(t, stock.Nilness, "nilness")
}

func TestUnusedresult(t *testing.T) {
	analysistest.Run(t, stock.Unusedresult, "unusedresult")
}

func TestCopylocks(t *testing.T) {
	analysistest.Run(t, stock.Copylocks, "copylocks")
}
