package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/ctxflow"
)

// allPackages widens the analyzer's package scope to the fixture under test
// and restores it afterwards.
func allPackages(t *testing.T) {
	t.Helper()
	saved := ctxflow.Scope
	ctxflow.Scope = nil
	t.Cleanup(func() { ctxflow.Scope = saved })
}

func TestGood(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, ctxflow.Analyzer, "good")
}

func TestBad(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, ctxflow.Analyzer, "bad")
}

// TestScope pins the service-path packages (and, via prefix matching, their
// subpackages) into the default scope.
func TestScope(t *testing.T) {
	want := []string{
		"repro/internal/asapd",
		"repro/internal/runner",
		"repro/internal/sim",
		"repro/internal/exp",
	}
	have := map[string]bool{}
	for _, p := range ctxflow.Scope {
		have[p] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("ctxflow.Scope no longer covers %s: %v", p, ctxflow.Scope)
		}
	}
}
