// Package ctxflow enforces the service path's cancellation discipline with
// the CFG layer. In the scoped packages, a function that receives a
// context.Context must actually thread it: every callee that accepts a
// context gets the incoming ctx (or a context derived from it, via
// context.WithCancel/WithTimeout/...), and context.Background()/context.TODO()
// may not re-root the tree inside such a function — re-rooting silently
// detaches the callee from the caller's deadline, which is how a "cancelled"
// job keeps simulating forever.
//
// The third rule is flow-sensitive and guards the historical shape from the
// simulator: a loop that consumes a reference source (a Next method with no
// parameters and a (value, ok) result — the stream driving a simulation)
// must poll ctx on every cycle path. The poll's block has to dominate every
// latch of the loop, so a check hidden behind a conditional does not count.
// Deleting the ctx-poll from sim.drive or sim.runMulti trips this rule.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// Scope lists the package prefixes checked; a package matches when its path
// equals an entry or sits below it. Empty means every package (the
// analysistest fixtures rely on that).
var Scope = []string{
	"repro/internal/asapd",
	"repro/internal/runner",
	"repro/internal/sim",
	"repro/internal/exp",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "ctx-receiving functions must thread ctx to context-accepting callees, " +
		"never re-root via context.Background/TODO, and poll ctx on every cycle " +
		"of a reference-source loop",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, fn := range cfg.All(pass) {
		checkFunc(pass, fn)
	}
	return nil
}

func inScope(path string) bool {
	if len(Scope) == 0 {
		return true
	}
	for _, p := range Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *cfg.Func) {
	info := pass.TypesInfo
	params := ctxParams(info, fn)
	if len(params) == 0 {
		return // nothing to thread: Background/TODO is this function's job
	}
	derived := deriveSet(info, fn, params)

	cfg.InspectLocal(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := ctxRoot(info, call); ok {
			pass.Reportf(call.Pos(),
				"context.%s re-roots the context inside %s, which already receives a ctx: derive from the incoming ctx instead",
				name, fn.Name())
			return true
		}
		sig, _ := info.TypeOf(call.Fun).(*types.Signature)
		if sig == nil || sig.Params().Len() != len(call.Args) {
			return true // builtin, conversion, or f(g()) forwarding
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			arg := call.Args[i]
			if argCall, ok := arg.(*ast.CallExpr); ok {
				if _, root := ctxRoot(info, argCall); root {
					continue // the inner Background/TODO call reports itself
				}
			}
			if !derivesFrom(info, derived, arg) {
				pass.Reportf(arg.Pos(),
					"call to %s does not receive the incoming ctx: pass ctx or a context derived from it",
					calleeName(call))
			}
		}
		return true
	})

	checkLoops(pass, fn, derived)
}

// checkLoops enforces the reference-source rule: a loop whose body consumes a
// refSource-shaped Next must have a ctx poll whose block dominates every
// latch, so no cycle completes without observing cancellation.
func checkLoops(pass *analysis.Pass, fn *cfg.Func, derived map[types.Object]bool) {
	info := pass.TypesInfo
	var pollBlocks []*cfg.Block
	cfg.InspectLocal(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && derived[info.ObjectOf(id)] {
			if b, ok := fn.BlockOf(call); ok {
				pollBlocks = append(pollBlocks, b)
			}
		}
		return true
	})

	for _, loop := range fn.Loops {
		var latches []*cfg.Block
		for _, l := range loop.Latches {
			if fn.Reachable(l) {
				latches = append(latches, l)
			}
		}
		if len(latches) == 0 {
			continue // no live back edge: the body cannot cycle
		}
		if !consumesRefSource(info, loop.Stmt) {
			continue
		}
		covered := false
		for _, p := range pollBlocks {
			if !fn.Dominates(loop.Head, p) {
				continue // poll outside the loop runs at most once per entry
			}
			all := true
			for _, l := range latches {
				if !fn.Dominates(p, l) {
					all = false
					break
				}
			}
			if all {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(loop.Stmt.Pos(),
				"loop consumes a reference source but can cycle without checking ctx: poll ctx.Err on every iteration path")
		}
	}
}

// consumesRefSource reports whether the loop statement contains a call to a
// refSource-shaped Next: no parameters, two results, the second bool.
func consumesRefSource(info *types.Info, loop ast.Stmt) bool {
	found := false
	cfg.InspectLocal(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeName(call) != "Next" {
			return true
		}
		sig, _ := info.TypeOf(call.Fun).(*types.Signature)
		if sig == nil || sig.Params().Len() != 0 || sig.Results().Len() != 2 {
			return true
		}
		if b, ok := sig.Results().At(1).Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			found = true
			return false
		}
		return true
	})
	return found
}

// ctxParams returns the objects of the function's context.Context parameters.
func ctxParams(info *types.Info, fn *cfg.Func) []types.Object {
	var ft *ast.FuncType
	switch f := fn.Fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// deriveSet computes the ctx-derived variables by fixpoint: the ctx
// parameters, plus anything assigned from an expression that mentions a
// derived value (cctx, cancel := context.WithTimeout(ctx, d); c := ctx).
func deriveSet(info *types.Info, fn *cfg.Func, params []types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, p := range params {
		derived[p] = true
	}
	for changed := true; changed; {
		changed = false
		cfg.InspectLocal(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) == 0 {
				return true
			}
			fromDerived := false
			for _, rhs := range as.Rhs {
				if derivesFrom(info, derived, rhs) {
					fromDerived = true
				}
			}
			if !fromDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || derived[obj] || !isContextType(obj.Type()) {
					continue
				}
				derived[obj] = true
				changed = true
			}
			return true
		})
	}
	return derived
}

// derivesFrom reports whether expr mentions a derived context variable.
func derivesFrom(info *types.Info, derived map[types.Object]bool, expr ast.Expr) bool {
	found := false
	cfg.InspectLocal(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && derived[info.ObjectOf(id)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// ctxRoot reports whether call is context.Background() or context.TODO().
func ctxRoot(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fnObj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "context" {
		return "", false
	}
	if name := fnObj.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "function"
}
