// Package good threads contexts the way the service path does: incoming ctx
// (or a derived one) to every context-accepting callee, Background only where
// no ctx arrives, and a dominating poll in every reference-source loop.
package good

import (
	"context"
	"time"
)

type source struct{ n int }

// Next is refSource-shaped: no params, (value, ok) results.
func (s *source) Next() (uint64, bool) {
	s.n--
	return uint64(s.n), s.n >= 0
}

func consume(ctx context.Context, src *source) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if _, ok := src.Next(); !ok {
			return nil
		}
	}
}

// headPoll keeps the cancellation check in the loop condition itself.
func headPoll(ctx context.Context, src *source) (n int) {
	for ctx.Err() == nil {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	return n
}

// masked matches the simulator's cheap poll: the ctx check is skipped on most
// iterations by a mask, but the polling condition still runs on every cycle.
func masked(ctx context.Context, src *source) error {
	for refs := 0; ; refs++ {
		if refs&1023 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if _, ok := src.Next(); !ok {
			return nil
		}
	}
}

// derived contexts count as the incoming ctx.
func timed(ctx context.Context, src *source) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return consume(cctx, src)
}

// inline derivation counts too.
func tagged(ctx context.Context, src *source) error {
	return consume(context.WithValue(ctx, struct{}{}, 1), src)
}

// root has no ctx parameter, so it is where Background legitimately lives.
func root(src *source) error {
	return consume(context.Background(), src)
}

// onceOnly never cycles: every path out of the body leaves the loop, so no
// poll is required.
func onceOnly(ctx context.Context, src *source) (uint64, bool) {
	for {
		v, ok := src.Next()
		return v, ok
	}
}
