// Package bad collects the cancellation-discipline violations: re-rooting,
// dropping the incoming ctx, and reference-source loops whose cycles can run
// without observing cancellation — the shape sim.drive had before its poll.
package bad

import "context"

type source struct{ n int }

func (s *source) Next() (uint64, bool) {
	s.n--
	return uint64(s.n), s.n >= 0
}

func consume(ctx context.Context, src *source) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if _, ok := src.Next(); !ok {
			return nil
		}
	}
}

type holder struct{ ctx context.Context }

// reroot detaches the callee from the caller's deadline.
func reroot(ctx context.Context, src *source) error {
	return consume(context.Background(), src) // want `context.Background re-roots the context inside reroot, which already receives a ctx: derive from the incoming ctx instead`
}

// stale passes a stored context instead of the incoming one.
func stale(ctx context.Context, h *holder, src *source) error {
	return consume(h.ctx, src) // want `call to consume does not receive the incoming ctx: pass ctx or a context derived from it`
}

// dropLoop is the historical simulator shape: the reference-stream loop with
// its cancellation poll deleted.
func dropLoop(ctx context.Context, src *source) int {
	n := 0
	for { // want `loop consumes a reference source but can cycle without checking ctx: poll ctx.Err on every iteration path`
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}

// conditionalPoll checks ctx only on a branch: the poll's block does not
// dominate the latch, so a cycle can complete without it.
func conditionalPoll(ctx context.Context, src *source, verbose bool) int {
	n := 0
	for { // want `loop consumes a reference source but can cycle without checking ctx: poll ctx.Err on every iteration path`
		if verbose {
			if ctx.Err() != nil {
				return n
			}
		}
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}
