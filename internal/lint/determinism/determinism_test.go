package determinism_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/determinism"
)

// allPackages widens the analyzer's package scope to the fixture under test
// and restores it afterwards.
func allPackages(t *testing.T) {
	t.Helper()
	saved := determinism.Scope
	determinism.Scope = nil
	t.Cleanup(func() { determinism.Scope = saved })
}

// TestGood: sorted-collect, effect-free loops, justified //lint:ordered
// annotations and explicit *rand.Rand streams all pass.
func TestGood(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, determinism.Analyzer, "good")
}

// TestBad: time.Now, the global rand stream, and order-leaking map ranges
// (including an unsorted collect) are flagged.
func TestBad(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, determinism.Analyzer, "bad")
}

// TestScope pins the default scope to the packages whose determinism the
// golden tests rely on; the simulator core must never silently drop out.
func TestScope(t *testing.T) {
	found := false
	for _, p := range determinism.Scope {
		if p == "repro/internal/sim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("determinism.Scope no longer covers repro/internal/sim: %v", determinism.Scope)
	}
}
