// Package determinism enforces the simulator's bit-reproducibility contract
// in the packages that produce or transform results: no wall-clock reads, no
// global math/rand stream, and no map iteration whose order can leak into
// output, accumulation or spawned work.
//
// The paper's evaluation — and this repository's golden tests, memoization
// and trace replay — depend on a run being a pure function of (Scenario,
// Params). time.Now and the process-global rand stream break that outright.
// Map iteration breaks it subtly: ranging over a map is order-randomized per
// run, so any loop that writes outside itself, calls anything, or spawns a
// goroutine can smuggle that order into results. Loops that provably only
// collect keys that are sorted before use are recognized and allowed; a loop
// the analyzer cannot prove safe but a human can is annotated in place:
//
//	//lint:ordered <why the iteration order cannot matter>
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Scope limits the analyzer to the packages whose determinism the golden
// tests and the memo cache rely on. Empty means every package (the
// analysistest fixtures use that).
var Scope = []string{
	"repro/internal/sim",
	"repro/internal/core",
	"repro/internal/mmu",
	"repro/internal/exp",
	"repro/internal/obs",
	"repro/internal/report",
	"repro/internal/runner",
	"repro/internal/trace",
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, the global math/rand stream, and order-leaking map " +
		"iteration in the simulation/reporting packages",
	Run: run,
}

func inScope(path string) bool {
	if len(Scope) == 0 {
		return true
	}
	for _, p := range Scope {
		if p == path {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, e)
		case *ast.RangeStmt:
			checkRange(pass, fd, e)
		}
		return true
	})
}

// checkSelector flags wall-clock reads and global math/rand functions.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(sel.Pos(),
				"time.Now is wall-clock state: results must be a pure function of (Scenario, Params); plumb an explicit clock or timestamp instead")
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are fine
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors: seededrand checks their seeds
		}
		pass.Reportf(sel.Pos(),
			"%s.%s draws from the process-global random stream: construct a *rand.Rand (or rng.Stream) from an explicit seed instead",
			fn.Pkg().Name(), fn.Name())
	}
}

// checkRange flags map iterations whose order can escape the loop.
func checkRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isSortedCollect(pass, fd, rs) {
		return
	}
	if !hasEscapingEffect(pass, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order is randomized per run and this loop lets it escape (into output, accumulation, or spawned work): iterate sorted keys instead, or annotate with //lint:ordered <why>")
}

// isSortedCollect recognizes the collect-then-sort idiom: the loop body only
// appends the key to a slice declared outside the loop, and the same slice
// is later passed to a sort function in the same enclosing function.
func isSortedCollect(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil || dstObj.Pos() > rs.Pos() {
		return false
	}
	// Look for sort.X(dst, ...) / slices.Sort(dst) after the loop.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(arg) == dstObj {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// hasEscapingEffect reports whether the loop body can carry iteration order
// outside the loop: any call, send, go/defer, return, or write to a variable
// declared outside the range statement.
func hasEscapingEffect(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	escapes := false
	writesOutside := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
				continue
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				// Writing through any pointer escapes the loop.
				return true
			case *ast.Ident:
				if x.Name == "_" {
					return false
				}
				obj := pass.TypesInfo.ObjectOf(x)
				return obj == nil || obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
			default:
				return true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
			escapes = true
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if writesOutside(lhs) {
					escapes = true
				}
			}
		case *ast.IncDecStmt:
			if writesOutside(e.X) {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}
