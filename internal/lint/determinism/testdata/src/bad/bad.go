// Package bad holds the three violation classes: wall-clock reads, the
// process-global random stream, and map iterations whose order escapes into
// output or accumulation.
package bad

import (
	"fmt"
	"math/rand"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now is wall-clock state`
}

func Roll() int {
	return rand.Intn(6) // want `rand.Intn draws from the process-global random stream`
}

func Emit(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized per run and this loop lets it escape`
		fmt.Println(k, v)
	}
}

func Flatten(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is randomized per run and this loop lets it escape`
		out = append(out, k)
	}
	return out // collected but never sorted: order leaks into the result
}
