// Package good holds map iterations and randomness uses the determinism
// analyzer must accept: the collect-then-sort idiom, an effect-free loop, a
// justified //lint:ordered annotation on an order-commutative accumulation,
// and methods on an explicitly seeded *rand.Rand.
package good

import (
	"math/rand"
	"sort"
)

// SortedKeys is the collect-then-sort idiom: recognized automatically, no
// annotation needed.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Drop is an effect-free loop: nothing escapes the body, so iteration order
// cannot matter.
func Drop(m map[string]int) {
	for k, v := range m {
		_ = k
		_ = v
	}
}

// Total accumulates commutatively; the analyzer cannot prove that, so the
// loop carries a justified annotation.
func Total(m map[string]int) int {
	total := 0
	//lint:ordered addition is commutative, so the sum is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

// Draw uses methods on an explicit, plumbed stream — only the process-global
// stream is forbidden.
func Draw(r *rand.Rand) int {
	return r.Intn(6)
}
