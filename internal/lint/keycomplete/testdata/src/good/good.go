// Package good holds key structs whose identity functions cover every field:
// a Name-style renderer referencing fields one by one (with an allowlisted
// Seed), and a Digest-style function that passes the whole struct to a
// formatter, which counts as rendering every field.
package good

import "fmt"

//lint:key ref=Name allow=Seed
type Scenario struct {
	Workload string
	Virt     bool
	Seed     uint64
}

func (s Scenario) Name() string {
	n := s.Workload
	if s.Virt {
		n += "/virt"
	}
	return n
}

//lint:key ref=Digest
type Params struct {
	Registers int
	HoleProb  float64
}

func Digest(p Params) string {
	return fmt.Sprintf("%+v", p)
}
