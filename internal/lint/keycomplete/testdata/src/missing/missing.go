// Package missing holds the failure modes: a field added to a key struct
// without extending its renderer or the allowlist, and a directive naming an
// identity function that does not exist (which must not cascade into
// per-field findings).
package missing

//lint:key ref=Name
type Scenario struct {
	Workload string
	Trace    string // want `field Trace of Scenario is not referenced by any identity function \(Name\)`
}

func (s Scenario) Name() string { return s.Workload }

//lint:key ref=Nope
type Params struct { // want `identity function "Nope" for Params not found in the analyzed packages`
	Registers int
}
