// Package keycomplete checks that cell-identity structs stay in sync with
// the functions that render their identity.
//
// The simulator memoizes on (Scenario, Params) and reports cells through
// Scenario.Name() and the report package's params digest and CSV columns.
// History shows that extending one of these structs without extending its
// renderers silently merges distinct cells in logs, goldens and artifacts.
// A struct opts in with a directive in its doc comment:
//
//	//lint:key ref=Name,Digest allow=Seed
//
// Every field of the struct must then be referenced by at least one of the
// named identity functions, or appear on the allow list. An identity
// function is resolved anywhere in the analyzed program: a method with that
// name whose receiver is the struct, or any function with that name taking
// the struct (or a pointer to it) as a parameter. A function that passes the
// whole struct value to another call (e.g. fmt.Fprintf(h, "%+v", p)) counts
// as referencing every field.
package keycomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "keycomplete",
	Doc: "check that every field of a //lint:key struct is referenced by its " +
		"identity functions (Scenario.Name, the params digest, CSV emission)",
	Run: run,
}

// directive is one parsed //lint:key marker.
type directive struct {
	spec  *ast.TypeSpec
	refs  []string
	allow map[string]bool
}

func run(pass *analysis.Pass) error {
	for _, d := range collectDirectives(pass) {
		check(pass, d)
	}
	return nil
}

// collectDirectives finds //lint:key directives on struct type declarations
// in the current package.
func collectDirectives(pass *analysis.Pass) []directive {
	var out []directive
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				text := directiveText(gd.Doc) + directiveText(ts.Doc) + directiveText(ts.Comment)
				if text == "" {
					continue
				}
				d := directive{spec: ts, allow: map[string]bool{}}
				for _, field := range strings.Fields(text) {
					if v, ok := strings.CutPrefix(field, "ref="); ok {
						d.refs = append(d.refs, splitList(v)...)
					}
					if v, ok := strings.CutPrefix(field, "allow="); ok {
						for _, name := range splitList(v) {
							d.allow[name] = true
						}
					}
				}
				if len(d.refs) == 0 {
					pass.Reportf(ts.Pos(), "//lint:key directive on %s names no identity functions (want ref=F1,F2)", ts.Name.Name)
					continue
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func directiveText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if rest, ok := strings.CutPrefix(c.Text, "//lint:key "); ok {
			return rest + " "
		}
	}
	return ""
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func check(pass *analysis.Pass, d directive) {
	obj, ok := pass.TypesInfo.Defs[d.spec.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(d.spec.Pos(), "//lint:key directive on %s, which is not a struct", d.spec.Name.Name)
		return
	}

	// Canonical field objects of the struct.
	fields := map[types.Object]bool{} // field -> referenced
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = false
	}

	resolved := 0
	for _, name := range d.refs {
		funcs := resolveKeyFuncs(pass.Program, named, name)
		if len(funcs) == 0 {
			pass.Reportf(d.spec.Pos(),
				"identity function %q for %s not found in the analyzed packages (run asaplint over the full module, or fix the //lint:key directive)",
				name, d.spec.Name.Name)
			continue
		}
		resolved++
		for _, kf := range funcs {
			markReferences(kf.pkg, kf.decl, named, fields)
		}
	}
	if resolved == 0 {
		// No identity function seen at all (typically a partial-module run):
		// per-field findings would be a misleading cascade.
		return
	}

	// Report unreferenced, unallowed fields at their declarations.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fields[f] || d.allow[f.Name()] {
			continue
		}
		pass.Reportf(f.Pos(),
			"field %s of %s is not referenced by any identity function (%s): cell identity will silently collapse — render it there or add allow=%s to the //lint:key directive",
			f.Name(), d.spec.Name.Name, strings.Join(d.refs, ", "), f.Name())
	}
}

// keyFunc is one resolved identity function.
type keyFunc struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

// resolveKeyFuncs finds functions named name across the program that take
// the struct as receiver or parameter.
func resolveKeyFuncs(prog *analysis.Program, named *types.Named, name string) []keyFunc {
	var out []keyFunc
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != name || fd.Body == nil {
					continue
				}
				if fnTakes(pkg, fd, named) {
					out = append(out, keyFunc{pkg: pkg, decl: fd})
				}
			}
		}
	}
	return out
}

// fnTakes reports whether fd's receiver or any parameter has type named (or
// a pointer to it).
func fnTakes(pkg *analysis.Package, fd *ast.FuncDecl, named *types.Named) bool {
	var lists []*ast.FieldList
	if fd.Recv != nil {
		lists = append(lists, fd.Recv)
	}
	lists = append(lists, fd.Type.Params)
	for _, fl := range lists {
		for _, field := range fl.List {
			t := pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if types.Identical(t, named) {
				return true
			}
		}
	}
	return false
}

// markReferences scans one identity function body and marks struct fields it
// references. Passing a whole value of the struct type as a call argument
// (other than as the receiver of a field selection) marks every field.
func markReferences(pkg *analysis.Package, fd *ast.FuncDecl, named *types.Named, fields map[types.Object]bool) {
	markAll := func() {
		for f := range fields {
			fields[f] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if _, tracked := fields[sel.Obj()]; tracked {
					fields[sel.Obj()] = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range e.Args {
				t := pkg.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if types.Identical(t, named) {
					// The whole struct escapes into a call (a digest or
					// formatter): every field is part of the rendering.
					markAll()
				}
			}
		}
		return true
	})
}
