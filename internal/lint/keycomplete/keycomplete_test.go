package keycomplete_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/keycomplete"
)

// TestGood: field-by-field rendering plus an allowlisted Seed, and a
// whole-struct formatter escape, both cover every field.
func TestGood(t *testing.T) {
	analysistest.Run(t, keycomplete.Analyzer, "good")
}

// TestMissing: a field added without rendering or allowlisting it is flagged
// at its declaration; an unresolvable ref reports once, without a per-field
// cascade.
func TestMissing(t *testing.T) {
	analysistest.Run(t, keycomplete.Analyzer, "missing")
}
