// Package lockcheck enforces the repository's mutex discipline with the CFG
// layer: every sync.Mutex/RWMutex Lock must be released on all paths out of
// the function — including early returns — or be explicitly deferred (the
// only panic-safe form); the same lock must not be taken again before its
// release; and a lock must not be held across a blocking operation (a bare
// channel send or receive, a select without a default, or a call in the
// Wait/Sleep/Pop/Submit family).
//
// The runner's doomed-cell path is the historical shape this guards: an early
// return inside SubmitCtx that skips r.mu.Unlock deadlocks every later
// submission. Locks are identified by the written access path (receiver
// field, package var), so r.mu and f.r.mu in different functions are
// different keys while two uses of r.mu in one function are the same.
//
// (*sync.Cond).Wait is exempt from the blocking rule — it releases the mutex
// it wraps while parked; methods whose name starts with Try are exempt by
// contract.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "mutex Locks must be released on every path out (or deferred), never " +
		"re-taken before release, and never held across a blocking operation",
	Run: run,
}

// blockingNames are methods/functions that park the calling goroutine. Names
// starting with Try never block by contract and are not listed.
var blockingNames = map[string]bool{
	"Wait": true, "WaitCtx": true, "Sleep": true, "Pop": true,
	"Submit": true, "SubmitCtx": true, "SubmitRepeat": true, "SubmitRepeatCtx": true,
}

// op is one lock or unlock call found in a function.
type op struct {
	call     *ast.CallExpr
	node     ast.Node // the CFG node containing the call
	key      string   // canonical access path, e.g. "r@1234.mu"
	display  string   // the access path as written, e.g. "r.mu"
	read     bool     // RLock/RUnlock
	unlock   bool
	deferred bool
}

func run(pass *analysis.Pass) error {
	for _, fn := range cfg.All(pass) {
		checkFunc(pass, fn)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *cfg.Func) {
	ops := collect(pass, fn)
	if len(ops) == 0 {
		return
	}
	unlocksAt := map[ast.Node][]*op{}
	var locks []*op
	for _, o := range ops {
		if o.unlock {
			unlocksAt[o.node] = append(unlocksAt[o.node], o)
		} else {
			locks = append(locks, o)
		}
	}
	// A select's comm statements block (or not) as part of the select itself,
	// which is its own CFG node; don't re-flag them as bare channel ops.
	selectComm := map[ast.Node]bool{}
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				continue
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					selectComm[cc.Comm] = true
				}
			}
		}
	}
	// releases reports whether node n releases (key, read) — directly, or as
	// a defer when deferred releases count.
	releases := func(n ast.Node, key string, read, countDefer bool) bool {
		for _, u := range unlocksAt[n] {
			if u.key == key && u.read == read && (countDefer || !u.deferred) {
				return true
			}
		}
		return false
	}

	for _, l := range locks {
		// Released (or deferred) on every path out of the function.
		gate := func(n ast.Node) bool { return releases(n, l.key, l.read, true) }
		if fn.PathToExit(l.node, gate) {
			pass.Reportf(l.call.Pos(),
				"%s.%s is not released on every path out of %s: unlock it before each return or defer the unlock",
				l.display, lockName(l), fn.Name())
		}

		// Not taken again before release. Two RLocks may overlap; every other
		// combination self-deadlocks on the same goroutine.
		direct := func(n ast.Node) bool { return releases(n, l.key, l.read, false) }
		for _, l2 := range locks {
			if l.key != l2.key || (l.read && l2.read) {
				continue
			}
			if l == l2 {
				// The same Lock reached again around a loop without a release.
				if fn.PathExists(l.node, l.node, direct) {
					pass.Reportf(l.call.Pos(),
						"%s.%s can be reached again before the lock is released (loop path without an unlock)",
						l.display, lockName(l))
				}
				continue
			}
			if l.node == l2.node {
				pass.Reportf(l2.call.Pos(), "%s locked twice in the same statement", l2.display)
				continue
			}
			if fn.PathExists(l.node, l2.node, direct) {
				pass.Reportf(l2.call.Pos(),
					"%s.%s while the lock from line %d may still be held",
					l2.display, lockName(l2), pass.Fset.Position(l.call.Pos()).Line)
			}
		}

		// Not held across a blocking operation.
		for _, b := range fn.Blocks {
			for _, n := range b.Nodes {
				if n == l.node || selectComm[n] {
					continue
				}
				what, blocking := blockingOp(pass, n)
				if !blocking || releases(n, l.key, l.read, false) {
					continue
				}
				if fn.PathExists(l.node, n, direct) {
					pass.Reportf(n.Pos(),
						"%s while %s is held (locked at line %d): release the lock first",
						what, l.display, pass.Fset.Position(l.call.Pos()).Line)
				}
			}
		}
	}
}

func lockName(o *op) string {
	if o.read {
		return "RLock"
	}
	return "Lock"
}

// collect finds every sync mutex Lock/Unlock call in the function.
func collect(pass *analysis.Pass, fn *cfg.Func) []*op {
	var ops []*op
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			node := n
			inspect := cfg.InspectLocal
			if _, ok := n.(*ast.DeferStmt); ok {
				// A deferred unlock may hide in a deferred closure; scan the
				// whole defer including nested literals.
				inspect = func(root ast.Node, visit func(ast.Node) bool) { ast.Inspect(root, visit) }
			}
			inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				var read, unlock bool
				switch sel.Sel.Name {
				case "Lock":
				case "RLock":
					read = true
				case "Unlock":
					unlock = true
				case "RUnlock":
					read, unlock = true, true
				default:
					return true
				}
				if !isSyncLocker(pass, sel) {
					return true
				}
				key, display, ok := accessPath(pass, sel.X)
				if !ok {
					return true
				}
				_, isDefer := node.(*ast.DeferStmt)
				ops = append(ops, &op{
					call: call, node: node, key: key, display: display,
					read: read, unlock: unlock, deferred: isDefer,
				})
				return true
			})
		}
	}
	return ops
}

// isSyncLocker reports whether the selected method is declared by
// sync.Mutex/sync.RWMutex (directly or via embedding).
func isSyncLocker(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	name := recvTypeName(sig.Recv().Type())
	return name == "Mutex" || name == "RWMutex"
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// accessPath canonicalizes the lock expression: the root identifier's object
// (position-keyed, so distinct variables never collide) plus the written
// field chain. Expressions it cannot resolve (map/slice elements, call
// results) return ok=false and are skipped.
func accessPath(pass *analysis.Pass, e ast.Expr) (key, display string, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return "", "", false
		}
		return objKey(obj), e.Name, true
	case *ast.SelectorExpr:
		k, d, ok := accessPath(pass, e.X)
		if !ok {
			return "", "", false
		}
		return k + "." + e.Sel.Name, d + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return accessPath(pass, e.X)
	case *ast.StarExpr:
		return accessPath(pass, e.X)
	case *ast.UnaryExpr:
		return accessPath(pass, e.X)
	}
	return "", "", false
}

// objKey identifies a variable by name and declaration position, so distinct
// variables that share a name never collide.
func objKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// blockingOp reports whether node n performs an operation that can park the
// goroutine, and names it for the diagnostic.
func blockingOp(pass *analysis.Pass, n ast.Node) (string, bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		// A deferred call runs at return, when the CFG position of the defer
		// statement says nothing about what is still held.
		return "", false
	}
	if sel, ok := n.(*ast.SelectStmt); ok {
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // default case: never blocks
			}
		}
		return "select without default", true
	}
	what := ""
	cfg.InspectLocal(n, func(m ast.Node) bool {
		if what != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			what = "channel send"
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				what = "channel receive"
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(m.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					what = "range over channel"
				}
			}
		case *ast.CallExpr:
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok || !blockingNames[sel.Sel.Name] {
				return true
			}
			if fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
				if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
					if fnObj.Pkg() != nil && fnObj.Pkg().Path() == "sync" && recvTypeName(sig.Recv().Type()) == "Cond" {
						return true // Cond.Wait releases its mutex while parked
					}
				}
			}
			what = "call to " + sel.Sel.Name
		}
		return true
	})
	return what, what != ""
}
