package lockcheck_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/lockcheck"
)

// TestGood: balanced locks, deferred unlocks, releasing early returns, the
// cond.Wait worker loop, and select-with-default under a lock all pass.
func TestGood(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "good")
}

// TestBad: the runner's historical doomed-cell unlock drop, double locks,
// read-to-write upgrades, and blocking operations under a held lock are all
// flagged.
func TestBad(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "bad")
}
