// Package bad holds the lock shapes the analyzer must reject. Doomed is the
// historical one: PR 8's runner had exactly this early return on the
// doomed-cell path, and dropping its unlock deadlocks every later submission.
package bad

import (
	"sync"
	"time"
)

type pool struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cells map[string]int
	queue []int
	ch    chan int
}

// The runner's doomed-cell shape with the unlock dropped: the early return
// leaves the mutex held.
func (p *pool) doomed(k string) int {
	p.mu.Lock() // want `p\.mu\.Lock is not released on every path out of doomed`
	if c, ok := p.cells[k]; ok {
		return c
	}
	p.mu.Unlock()
	return -1
}

// Re-locking before the release self-deadlocks.
func (p *pool) double() {
	p.mu.Lock()
	p.queue = append(p.queue, 1)
	p.mu.Lock() // want `p\.mu\.Lock while the lock from line \d+ may still be held`
	p.queue = append(p.queue, 2)
	p.mu.Unlock()
}

// Upgrading a read lock to a write lock deadlocks the same way.
func (p *pool) upgrade() {
	p.rw.RLock() // want `p\.rw\.RLock is not released on every path out of upgrade`
	p.rw.Lock()  // want `p\.rw\.Lock while the lock from line \d+ may still be held`
	p.queue = nil
	p.rw.Unlock()
}

// A bare receive can park the goroutine forever while the lock is held.
func (p *pool) recvHeld(done chan struct{}) {
	p.mu.Lock()
	<-done // want `channel receive while p\.mu is held`
	p.mu.Unlock()
}

// So can a send without a default...
func (p *pool) sendHeld(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- v // want `channel send while p\.mu is held`
}

// ...a select with no default...
func (p *pool) selectHeld() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `select without default while p\.mu is held`
	case v := <-p.ch:
		return v
	case p.ch <- 0:
		return 0
	}
}

// ...or a sleep.
func (p *pool) sleepHeld() {
	p.mu.Lock()
	time.Sleep(time.Second) // want `call to Sleep while p\.mu is held`
	p.mu.Unlock()
}

// A loop that re-enters Lock without ever unlocking on the cycle.
func (p *pool) spin() {
	for {
		p.mu.Lock() // want `p\.mu\.Lock can be reached again before the lock is released`
		if len(p.queue) == 0 {
			break
		}
	}
	p.mu.Unlock()
}
