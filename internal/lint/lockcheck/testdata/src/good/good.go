// Package good holds lock shapes the analyzer must accept: balanced
// lock/unlock, deferred unlock, early returns that release first, the
// condition-variable worker loop, and non-blocking channel use under a lock.
package good

import (
	"sync"
	"time"
)

type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rw     sync.RWMutex
	queue  []int
	closed bool
	ch     chan int
}

// Balanced straight-line lock.
func (p *pool) count() int {
	p.mu.Lock()
	n := len(p.queue)
	p.mu.Unlock()
	return n
}

// Deferred unlock covers every path out, including panics.
func (p *pool) stats() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, false
	}
	return len(p.queue), true
}

// Early return that releases first (the shape the runner's doomed-cell path
// must keep).
func (p *pool) take() (int, bool) {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return 0, false
	}
	v := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	return v, true
}

// The worker loop: re-locking every iteration is fine because the unlock is
// on every cycle, and Cond.Wait releases the mutex while parked.
func (p *pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		v := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		use(v)
	}
}

// Select with a default never blocks, even while the lock is held.
func (p *pool) tryPush(v int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- v:
		return true
	default:
		return false
	}
}

// Read locks pair with RUnlock; two readers may overlap.
func (p *pool) peek() int {
	p.rw.RLock()
	defer p.rw.RUnlock()
	if len(p.queue) == 0 {
		return 0
	}
	return p.queue[0]
}

// Blocking work after the release is fine.
func (p *pool) drainThenWait(done chan struct{}) {
	p.mu.Lock()
	p.queue = nil
	p.mu.Unlock()
	<-done
	time.Sleep(time.Millisecond)
}

// A package-level mutex is a lock root like any receiver field.
var tableMu sync.Mutex
var table = map[string]int{}

func record(k string) {
	tableMu.Lock()
	table[k]++
	tableMu.Unlock()
}

// Sequential lock/unlock pairs of the same mutex are not a double lock.
func (p *pool) twice() {
	p.mu.Lock()
	p.queue = append(p.queue, 1)
	p.mu.Unlock()
	p.mu.Lock()
	p.queue = append(p.queue, 2)
	p.mu.Unlock()
}

func use(int) {}
