package meterwindow_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/meterwindow"
)

// TestGood: the correct protocol — every finish read paired with a begin
// snapshot — produces no diagnostics.
func TestGood(t *testing.T) {
	analysistest.Run(t, meterwindow.Analyzer, "good")
}

// TestPR1Window reconstructs the PR 1 bug: RangeHitRate and MSHRDropped
// reported cumulatively (warmup included) instead of as window deltas.
func TestPR1Window(t *testing.T) {
	analysistest.Run(t, meterwindow.Analyzer, "pr1window")
}

// TestPR4Overflow reconstructs the PR 4 bug: the Overflowed delta's baseline
// is never snapshotted in begin (plus the mismatched-getter variant).
func TestPR4Overflow(t *testing.T) {
	analysistest.Run(t, meterwindow.Analyzer, "pr4overflow")
}
