// Package good models the meter protocol done right: every cumulative
// counter finish reads is reported as a delta against a *0 baseline that
// begin snapshots from the same getter.
package good

type Engine struct{ overflowed, lookups int }

func (e *Engine) Overflowed() int { return e.overflowed }
func (e *Engine) Lookups() int    { return e.lookups }

type MSHRFile struct{ dropped int }

func (f *MSHRFile) Dropped() int { return f.dropped }

type Result struct {
	Lookups    int
	Overflowed int
	Dropped    int
}

type meter struct {
	lookups0    int
	overflowed0 int
	dropped0    int
}

func (m *meter) begin(engine *Engine, mshr *MSHRFile) {
	m.lookups0 = engine.Lookups()
	m.overflowed0 = engine.Overflowed()
	m.dropped0 = mshr.Dropped()
}

func (m *meter) finish(res *Result, engine *Engine, mshr *MSHRFile) {
	res.Lookups = engine.Lookups() - m.lookups0
	res.Overflowed += engine.Overflowed() - m.overflowed0
	res.Dropped = mshr.Dropped() - m.dropped0
}
