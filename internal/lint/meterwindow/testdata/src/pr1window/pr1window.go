// Package pr1window reconstructs the PR 1 regression: finish reported
// engine.RangeHitRate() and mshr.Dropped() as cumulative values — warmup
// included — instead of measured-window deltas against baselines snapshotted
// in begin.
package pr1window

type Engine struct{ rangeHits, lookups int }

func (e *Engine) Lookups() int { return e.lookups }
func (e *Engine) RangeHitRate() float64 {
	if e.lookups == 0 {
		return 0
	}
	return float64(e.rangeHits) / float64(e.lookups)
}

type MSHRFile struct{ dropped int }

func (f *MSHRFile) Dropped() int { return f.dropped }

type Result struct {
	Lookups      int
	RangeHitRate float64
	MSHRDropped  int
}

type meter struct{ lookups0 int }

func (m *meter) begin(engine *Engine, mshr *MSHRFile) {
	m.lookups0 = engine.Lookups()
}

func (m *meter) finish(res *Result, engine *Engine, mshr *MSHRFile) {
	res.Lookups = engine.Lookups() - m.lookups0
	res.RangeHitRate = engine.RangeHitRate() // want `cumulative counter engine.RangeHitRate used in finish without a measured-window baseline`
	res.MSHRDropped = mshr.Dropped()         // want `cumulative counter mshr.Dropped used in finish without a measured-window baseline`
}
