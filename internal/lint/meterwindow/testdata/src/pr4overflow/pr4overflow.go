// Package pr4overflow reconstructs the PR 4 regression: finish reports a
// window delta for the engine's Overflowed counter, but begin never
// snapshots the m.overflowed0 baseline it subtracts — so the delta silently
// measures against zero. A second meter shows the mismatched-getter variant:
// the baseline exists but was snapshotted from a different counter.
package pr4overflow

type Engine struct{ overflowed, lookups int }

func (e *Engine) Overflowed() int { return e.overflowed }
func (e *Engine) Lookups() int    { return e.lookups }

type Result struct {
	Lookups    int
	Overflowed int
}

type meter struct {
	lookups0    int
	overflowed0 int
}

func (m *meter) begin(engine *Engine) {
	m.lookups0 = engine.Lookups()
}

func (m *meter) finish(res *Result, engine *Engine) {
	res.Lookups = engine.Lookups() - m.lookups0
	res.Overflowed += engine.Overflowed() - m.overflowed0 // want `window delta subtracts m.overflowed0, but begin never snapshots it`
}

type crossMeter struct {
	overflowed0 int
}

func (m *crossMeter) begin(engine *Engine) {
	m.overflowed0 = engine.Lookups()
}

func (m *crossMeter) finish(res *Result, engine *Engine) {
	res.Overflowed = engine.Overflowed() - m.overflowed0 // want `window delta pairs Overflowed with baseline m.overflowed0, but begin snapshots m.overflowed0 from Lookups`
}
