// Package meterwindow checks the simulator's measured-window accounting
// protocol: a meter-style type (any type with both a begin and a finish
// method) must snapshot every cumulative counter it later reports a
// windowed delta of.
//
// The protocol under guard, from internal/sim's meter: begin runs at the
// warmup/measure boundary and stores baselines into `*0` receiver fields
// (m.overflowed0 = engine.Overflowed()); finish reads the same counters again
// and reports counter-minus-baseline. Two historical bugs broke it the same
// way — PR 1 reported cumulative engine.RangeHitRate() and mshr.Dropped()
// including warmup, PR 4 reported engine.Overflowed() without its baseline —
// so the analyzer enforces both halves mechanically:
//
//  1. every cumulative-counter getter finish reads off one of its parameters
//     must be used as `getter - m.<field>0` (a measured-window delta), and
//  2. the baseline field of that delta must be assigned in begin from the
//     same getter.
//
// Parameters finish writes to (the *Result being filled in) are outputs, not
// counters, and are exempt. Receiver fields are the meter's own windowed
// accumulators and are exempt too.
package meterwindow

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "meterwindow",
	Doc: "check that every cumulative counter read in a meter's finish has a " +
		"matching *0 baseline snapshot in its begin",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Collect begin/finish method declarations per receiver type name.
	type pair struct{ begin, finish *ast.FuncDecl }
	pairs := map[string]*pair{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if fd.Name.Name != "begin" && fd.Name.Name != "finish" {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			p := pairs[recv]
			if p == nil {
				p = &pair{}
				pairs[recv] = p
			}
			if fd.Name.Name == "begin" {
				p.begin = fd
			} else {
				p.finish = fd
			}
		}
	}
	for _, p := range pairs {
		if p.begin != nil && p.finish != nil {
			checkPair(pass, p.begin, p.finish)
		}
	}
	return nil
}

// receiverTypeName unwraps *T / T receiver syntax to the type name.
func receiverTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverName returns the name binding a method's receiver, or "".
func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name
	}
	return ""
}

// paramNames returns the named parameters of fd.
func paramNames(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	for _, field := range fd.Type.Params.List {
		for _, n := range field.Names {
			out[n.Name] = true
		}
	}
	return out
}

// counterUse is one read of a parameter's counter in finish: a call
// p.Getter() or a field read p.Counter.
type counterUse struct {
	node   ast.Node // the call (or bare selector) expression
	param  string   // parameter the counter lives on
	getter string   // selector name: the counter's identity
}

func checkPair(pass *analysis.Pass, begin, finish *ast.FuncDecl) {
	beginRecv := receiverName(begin)
	finishRecv := receiverName(finish)
	if beginRecv == "" || finishRecv == "" || finish.Body == nil || begin.Body == nil {
		return
	}

	// Baselines established by begin: field name -> getter it snapshots.
	snapshots := map[string]string{}
	ast.Inspect(begin.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			field, ok := recvField(lhs, beginRecv)
			if !ok || !strings.HasSuffix(field, "0") {
				continue
			}
			if getter, _, ok := selectorRead(as.Rhs[i]); ok {
				snapshots[field] = getter
			}
		}
		return true
	})

	params := paramNames(finish)
	written := writtenParams(finish, params)

	// Pass 1 over finish: find every delta expression `use - recv.field0`,
	// record the pairing, and remember the use node as accounted for.
	paired := map[ast.Node]string{} // use node -> baseline field
	ast.Inspect(finish.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SUB {
			return true
		}
		field, ok := recvField(be.Y, finishRecv)
		if !ok || !strings.HasSuffix(field, "0") {
			return true
		}
		if use, ok := counterRead(be.X, params, written); ok {
			paired[use.node] = field
			if got, ok := snapshots[field]; !ok {
				pass.Reportf(be.Y.Pos(),
					"window delta subtracts %s.%s, but begin never snapshots it (add %s.%s = <counter>.%s in begin)",
					finishRecv, field, beginRecv, field, use.getter)
			} else if got != use.getter {
				pass.Reportf(be.Y.Pos(),
					"window delta pairs %s with baseline %s.%s, but begin snapshots %s.%s from %s",
					use.getter, finishRecv, field, beginRecv, field, got)
			}
		}
		return true
	})

	// Pass 2: any remaining counter read in finish reports a cumulative value
	// (warmup included) instead of a measured-window delta.
	ast.Inspect(finish.Body, func(n ast.Node) bool {
		use, ok := counterRead(n, params, written)
		if !ok || use.node != n {
			return true
		}
		if _, ok := paired[n]; !ok {
			pass.Reportf(n.Pos(),
				"cumulative counter %s.%s used in finish without a measured-window baseline (subtract a *0 field snapshotted in begin)",
				use.param, use.getter)
		}
		// Don't descend into the matched selector/call again.
		return false
	})
}

// recvField matches expr against recv.<field> and returns the field name.
func recvField(e ast.Expr, recv string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// selectorRead matches `x.Sel` or `x.Sel()` and returns (Sel, x) for an
// ident x.
func selectorRead(e ast.Expr) (getter, on string, ok bool) {
	if call, isCall := e.(*ast.CallExpr); isCall {
		e = call.Fun
	}
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	return sel.Sel.Name, id.Name, true
}

// counterRead matches a read of a counter off a read-only parameter:
// p.Getter() or p.Field for p in params and not written in finish.
func counterRead(n ast.Node, params, written map[string]bool) (counterUse, bool) {
	e, ok := n.(ast.Expr)
	if !ok {
		return counterUse{}, false
	}
	getter, on, ok := selectorRead(e)
	if !ok || !params[on] || written[on] {
		return counterUse{}, false
	}
	return counterUse{node: n, param: on, getter: getter}, true
}

// writtenParams returns the parameters finish assigns through (p.X = ..., or
// compound ops): those are result outputs, not counter sources.
func writtenParams(fd *ast.FuncDecl, params map[string]bool) map[string]bool {
	written := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			for {
				switch e := lhs.(type) {
				case *ast.SelectorExpr:
					lhs = e.X
					continue
				case *ast.IndexExpr:
					lhs = e.X
					continue
				case *ast.Ident:
					if params[e.Name] {
						written[e.Name] = true
					}
				}
				break
			}
		}
		return true
	})
	return written
}
