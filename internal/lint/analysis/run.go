package analysis

import (
	"strings"
)

// Suppression directives.
//
// A diagnostic can be silenced — with a written justification — by a comment
// on the offending line or the line directly above it:
//
//	//lint:ignore <analyzer> <justification>   silence one analyzer here
//	//lint:ordered <justification>             shorthand: this map iteration
//	                                           is order-safe (silences the
//	                                           determinism analyzer)
//
// A directive without a justification is itself a diagnostic: unexplained
// suppressions are exactly the reviewer-vigilance failure the suite exists to
// remove.

// suppression is one parsed //lint:ignore or //lint:ordered directive.
type suppression struct {
	analyzer string // analyzer name to silence
	line     int    // line the directive is written on
	hasWhy   bool   // a justification was given
}

// collectSuppressions parses every //lint: directive in prog, returning them
// keyed by filename, plus diagnostics for malformed directives.
func collectSuppressions(prog *Program) (map[string][]suppression, []Diagnostic) {
	byFile := map[string][]suppression{}
	var bad []Diagnostic
	malformed := func(pos Diagnostic) { bad = append(bad, pos) }
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					var s suppression
					switch fields[0] {
					case "ordered":
						s = suppression{analyzer: "determinism", line: pos.Line, hasWhy: len(fields) > 1}
					case "ignore":
						if len(fields) < 2 {
							malformed(Diagnostic{
								Analyzer: "directive", Pos: c.Pos(), Position: pos,
								Message: "malformed //lint:ignore: want //lint:ignore <analyzer> <justification>",
							})
							continue
						}
						s = suppression{analyzer: fields[1], line: pos.Line, hasWhy: len(fields) > 2}
					default:
						// Other //lint: directives (e.g. //lint:key) belong to
						// individual analyzers.
						continue
					}
					if !s.hasWhy {
						malformed(Diagnostic{
							Analyzer: "directive", Pos: c.Pos(), Position: pos,
							Message: "suppression directive needs a justification: //lint:" + fields[0] + " ... <why>",
						})
						continue
					}
					byFile[pos.Filename] = append(byFile[pos.Filename], s)
				}
			}
		}
	}
	return byFile, bad
}

// partitionSuppressed splits diagnostics into survivors and those covered by
// a justified suppression directive on the same line or the line above.
// Diagnostics for malformed directives are appended to the survivors: an
// unjustified suppression is never silent.
func partitionSuppressed(prog *Program, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	byFile, bad := collectSuppressions(prog)
	for _, d := range diags {
		hit := false
		for _, s := range byFile[d.Position.Filename] {
			if s.analyzer != d.Analyzer {
				continue
			}
			if s.line == d.Position.Line || s.line == d.Position.Line-1 {
				hit = true
				break
			}
		}
		if hit {
			d.Suppressed = true
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...), suppressed
}
