// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's lint suite.
//
// The repository is intentionally dependency-free (go.mod lists nothing), so
// the real x/tools module is off the table; this package mirrors its shape —
// an Analyzer with a Run(*Pass) hook reporting Diagnostics over type-checked
// syntax — closely enough that migrating the suite onto the real library is a
// mechanical import swap. Package loading (see Load) shells out to the go
// tool: target packages are parsed and type-checked from source, their
// dependencies are imported from compiler export data, so analyzers see the
// exact types the compiler does.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis pass: a named invariant checker that
// inspects a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression comments
	// (//lint:ignore <Name> <justification>). It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by asaplint -help.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one target package to an analyzer, together with the
// whole-program view cross-package analyzers need.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program is the full set of target packages loaded for this run, in
	// dependency order. Analyzers that resolve references across package
	// boundaries (keycomplete) consult it; per-package analyzers ignore it.
	Program *Program

	diagnostics *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// A Package is one type-checked target package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Program is the set of target packages under analysis, dependencies before
// dependents. All packages share one FileSet, and references between target
// packages resolve to the same types.Object identities, so a declaration in
// one package can be matched against uses in another.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Run applies every analyzer to every target package of prog and returns the
// surviving diagnostics sorted by position, with suppressed diagnostics (see
// //lint:ignore in run.go) filtered out.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        prog.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Program:     prog,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = filterSuppressed(prog, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
