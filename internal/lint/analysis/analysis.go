// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's lint suite.
//
// The repository is intentionally dependency-free (go.mod lists nothing), so
// the real x/tools module is off the table; this package mirrors its shape —
// an Analyzer with a Run(*Pass) hook reporting Diagnostics over type-checked
// syntax — closely enough that migrating the suite onto the real library is a
// mechanical import swap. Package loading (see Load) shells out to the go
// tool: target packages are parsed and type-checked from source, their
// dependencies are imported from compiler export data, so analyzers see the
// exact types the compiler does.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// An Analyzer describes one analysis pass: a named invariant checker that
// inspects a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression comments
	// (//lint:ignore <Name> <justification>). It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by asaplint -help.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one target package to an analyzer, together with the
// whole-program view cross-package analyzers need.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program is the full set of target packages loaded for this run, in
	// dependency order. Analyzers that resolve references across package
	// boundaries (keycomplete) consult it; per-package analyzers ignore it.
	Program *Program

	pkg         *Package
	diagnostics *[]Diagnostic
}

// Shared returns the package-scoped result for key, computing it with compute
// on the first request and serving every later request (including from other
// analyzers in the same run) from a per-package cache. Analyzers use it to
// share expensive derived structures — the CFG layer builds each package's
// function graphs once and every dataflow analyzer consumes them. Keys follow
// the context.Value convention: an unexported zero-size type per result.
func (p *Pass) Shared(key any, compute func() any) any {
	if p.pkg.shared == nil {
		p.pkg.shared = map[any]any{}
	}
	if v, ok := p.pkg.shared[key]; ok {
		return v
	}
	v := compute()
	p.pkg.shared[key] = v
	return v
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string

	// Suppressed marks a diagnostic covered by a justified //lint: directive.
	// Run drops these; RunAll returns them separately so tooling (asaplint
	// -json) can surface what was silenced and why that is visible.
	Suppressed bool
}

// A Package is one type-checked target package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	shared map[any]any // per-package cache behind Pass.Shared
}

// A Program is the set of target packages under analysis, dependencies before
// dependents. All packages share one FileSet, and references between target
// packages resolve to the same types.Object identities, so a declaration in
// one package can be matched against uses in another.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// A Timing records the wall-clock cost of one analyzer summed over every
// target package in a run.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// A Result is the full outcome of one RunAll: surviving diagnostics,
// diagnostics silenced by justified suppression directives, and per-analyzer
// timings — all in deterministic order (diagnostics by position, timings by
// suite order).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
	Timings     []Timing
}

// Run applies every analyzer to every target package of prog and returns the
// surviving diagnostics sorted by position, with suppressed diagnostics (see
// //lint:ignore in run.go) filtered out.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(prog, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunAll is Run keeping everything: it also returns the suppressed
// diagnostics (marked Suppressed) and how long each analyzer took.
func RunAll(prog *Program, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range prog.Pkgs {
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        prog.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Program:     prog,
				pkg:         pkg,
				diagnostics: &diags,
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[i] += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	kept, suppressed := partitionSuppressed(prog, diags)
	sortDiagnostics(kept)
	sortDiagnostics(suppressed)
	res := &Result{Diagnostics: kept, Suppressed: suppressed}
	for i, a := range analyzers {
		res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Elapsed: elapsed[i]})
	}
	return res, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
