// Package suppress exercises the framework's suppression directives against
// the determinism analyzer's map-range finding.
package suppress

import "fmt"

// SameLine carries a justified //lint:ignore on the offending line: silenced.
func SameLine(m map[string]int) {
	for k := range m { //lint:ignore determinism output order is irrelevant in this diagnostic helper
		fmt.Println(k)
	}
}

// LineAbove carries a justified //lint:ordered on the line above: silenced.
func LineAbove(m map[string]int) {
	//lint:ordered output order is irrelevant in this diagnostic helper
	for k := range m {
		fmt.Println(k)
	}
}

// Unjustified omits the justification: the finding stays and the directive
// itself is flagged.
func Unjustified(m map[string]int) {
	//lint:ordered
	for k := range m {
		fmt.Println(k)
	}
}

// WrongName suppresses a different analyzer: the determinism finding stays.
func WrongName(m map[string]int) {
	//lint:ignore seededrand not the analyzer that fired
	for k := range m {
		fmt.Println(k)
	}
}

// Malformed names no analyzer at all: flagged as a malformed directive, and
// the finding stays.
func Malformed(m map[string]int) {
	//lint:ignore
	for k := range m {
		fmt.Println(k)
	}
}
