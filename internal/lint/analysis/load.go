package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// Fset is the process-wide file set. Every load in the process shares it so
// that one export-data importer instance (whose cache is keyed on it) serves
// all loads, and positions from different loads never collide.
var Fset = token.NewFileSet()

var (
	exportMu sync.Mutex
	// exportFiles maps an import path to its compiler export-data file, as
	// reported by go list -export. The gc importer below reads these.
	exportFiles = map[string]string{}
	// imported caches dependency packages materialized from export data.
	imported = map[string]*types.Package{}
	gcImport = importer.ForCompiler(Fset, "gc", func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file, ok := exportFiles[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data recorded for %q", path)
		}
		return os.Open(file)
	})
)

// listedPackage is the subset of go list -json output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList runs go list -export -deps -json in dir over patterns and returns
// the decoded packages, dependencies before dependents.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,DepOnly,GoFiles,Imports,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// recordExports registers every listed package's export-data file.
func recordExports(pkgs []*listedPackage) {
	exportMu.Lock()
	defer exportMu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
}

// chainImporter resolves an import against the source-checked target packages
// first (so references between targets share object identities), then falls
// back to compiler export data.
type chainImporter struct {
	source map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := c.source[path]; ok {
		return pkg, nil
	}
	exportMu.Lock()
	pkg, ok := imported[path]
	exportMu.Unlock()
	if ok {
		return pkg, nil
	}
	pkg, err := gcImport.Import(path)
	if err != nil {
		return nil, err
	}
	exportMu.Lock()
	imported[path] = pkg
	exportMu.Unlock()
	return pkg, nil
}

// newInfo returns a types.Info with every map analyzers consult populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func typesConfig(imp types.Importer) *types.Config {
	return &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

// checkPackage parses files and type-checks them as one package.
func checkPackage(pkgPath string, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tpkg, err := typesConfig(imp).Check(pkgPath, Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Files: files, Types: tpkg, Info: info}, nil
}

// Load type-checks the packages matching patterns (resolved by the go tool in
// dir) and returns them as a Program: each matched package is parsed from
// source with full type information, while dependencies outside the match are
// imported from compiler export data. Test files are not loaded — the suite's
// invariants concern production code.
func Load(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	recordExports(listed)
	prog := &Program{Fset: Fset}
	source := map[string]*types.Package{}
	imp := &chainImporter{source: source}
	for _, lp := range listed {
		if lp.DepOnly || lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		source[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	if len(prog.Pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return prog, nil
}

// LoadFiles type-checks one package assembled from the given source files
// under the import path pkgPath, resolving its imports via export data. The
// analysistest harness uses it to load testdata fixture packages, which the
// go tool itself refuses to list. moduleDir anchors the go list invocations
// that locate export data for the fixture's imports.
func LoadFiles(moduleDir, pkgPath string, fileNames []string) (*Program, error) {
	if err := ensureExports(moduleDir, fileNames); err != nil {
		return nil, err
	}
	pkg, err := checkPackage(pkgPath, "", fileNames, &chainImporter{})
	if err != nil {
		return nil, err
	}
	return &Program{Fset: Fset, Pkgs: []*Package{pkg}}, nil
}

// ensureExports makes export data available for every package the given
// files import (transitively).
func ensureExports(moduleDir string, fileNames []string) error {
	need := map[string]bool{}
	for _, name := range fileNames {
		f, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, spec := range f.Imports {
			path := spec.Path.Value
			path = path[1 : len(path)-1] // unquote
			if path == "unsafe" {
				continue
			}
			need[path] = true
		}
	}
	var missing []string
	exportMu.Lock()
	for path := range need {
		if _, ok := exportFiles[path]; !ok {
			missing = append(missing, path)
		}
	}
	exportMu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing) // deterministic go list invocation
	listed, err := goList(moduleDir, missing)
	if err != nil {
		return err
	}
	recordExports(listed)
	return nil
}
