// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want comments, mirroring the x/tools package of
// the same name.
//
// Fixtures live in testdata/src/<name>/ next to the test (directories named
// testdata are invisible to the go tool, so fixtures never build with the
// repository). A line expecting diagnostics carries a trailing comment:
//
//	res.Dropped = mshr.Dropped() // want `without a measured-window baseline`
//
// Each quoted or backquoted string is a regexp that must match a distinct
// diagnostic reported on that line; diagnostics with no matching want — and
// wants with no matching diagnostic — fail the test.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRE extracts the expectation strings of a want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<fixture> as one package, applies the analyzer, and
// reports every mismatch between its diagnostics and the fixture's // want
// comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s: no Go files", fixture)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadFiles(cwd, fixture, files)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	expects := collectWants(t, prog)
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == d.Position.Filename && e.line == d.Position.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants parses every // want comment of the fixture.
func collectWants(t *testing.T, prog *analysis.Program) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), " want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllString(rest, -1) {
						pattern := q
						if pattern[0] == '`' {
							pattern = pattern[1 : len(pattern)-1]
						} else if s, err := strconv.Unquote(pattern); err == nil {
							pattern = s
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	sort.SliceStable(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	return expects
}
