package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
)

// TestSuppression runs the determinism analyzer over the suppress fixture
// and checks the directive semantics: a justified //lint:ignore or
// //lint:ordered on the offending line or the line above silences the
// finding; an unjustified or malformed directive silences nothing and is
// itself a diagnostic; a directive naming a different analyzer does not
// apply.
func TestSuppression(t *testing.T) {
	saved := determinism.Scope
	determinism.Scope = nil
	t.Cleanup(func() { determinism.Scope = saved })

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	file, err := filepath.Abs(filepath.Join("testdata", "src", "suppress", "suppress.go"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadFiles(cwd, "suppress", []string{file})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}

	var det, directive []analysis.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "determinism":
			det = append(det, d)
		case "directive":
			directive = append(directive, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}

	// Exactly the Unjustified, WrongName and Malformed loops keep their
	// findings; SameLine and LineAbove are silenced.
	if len(det) != 3 {
		t.Errorf("determinism findings = %d, want 3 (Unjustified, WrongName, Malformed):\n%s",
			len(det), render(det))
	}

	// Both broken directives are flagged.
	if len(directive) != 2 {
		t.Fatalf("directive findings = %d, want 2:\n%s", len(directive), render(directive))
	}
	if !strings.Contains(directive[0].Message, "needs a justification") &&
		!strings.Contains(directive[1].Message, "needs a justification") {
		t.Errorf("no directive finding demands a justification:\n%s", render(directive))
	}
	if !strings.Contains(directive[0].Message, "malformed //lint:ignore") &&
		!strings.Contains(directive[1].Message, "malformed //lint:ignore") {
		t.Errorf("no directive finding reports the malformed //lint:ignore:\n%s", render(directive))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.Position.String() + ": [" + d.Analyzer + "] " + d.Message + "\n")
	}
	return b.String()
}
