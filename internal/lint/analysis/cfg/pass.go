package cfg

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// A Func pairs one function — declaration or literal — with its Graph.
type Func struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	*Graph

	defs *Defs
}

// Name returns the declared name, or "func literal" for literals.
func (f *Func) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	return "func literal"
}

// Defs returns the function's reaching-definitions result, computed once.
func (f *Func) Defs(pass *analysis.Pass) *Defs {
	if f.defs == nil {
		f.defs = f.Graph.Definitions(pass.TypesInfo)
	}
	return f.defs
}

type sharedKey struct{}

// All returns the CFG of every function in the pass's package — declarations
// and literals, literals each as their own entry. The graphs are built once
// per package and shared across analyzers via Pass.Shared.
func All(pass *analysis.Pass) []*Func {
	v := pass.Shared(sharedKey{}, func() any {
		var funcs []*Func
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						funcs = append(funcs, &Func{Decl: n, Graph: New(n, n.Body, pass.TypesInfo)})
					}
				case *ast.FuncLit:
					funcs = append(funcs, &Func{Lit: n, Graph: New(n, n.Body, pass.TypesInfo)})
				}
				return true
			})
		}
		return funcs
	})
	return v.([]*Func)
}
