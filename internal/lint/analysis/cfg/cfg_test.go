package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFunc parses src (a complete file), type-checks it, and returns the
// graph of the function named name plus the type info.
func buildFunc(t *testing.T, src, name string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
			return New(fd, fd.Body, info), info
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil
}

// nodeCalls reports whether n contains a call to a method named name.
func nodeCalls(n ast.Node, name string) bool {
	found := false
	InspectLocal(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

// findNode returns the first recorded node for which pred is true.
func findNode(g *Graph, pred func(ast.Node) bool) ast.Node {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return n
			}
		}
	}
	return nil
}

func TestIfElseBranches(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}`, "f")
	if len(g.IfBranches) != 1 {
		t.Fatalf("IfBranches = %d, want 1", len(g.IfBranches))
	}
	for _, br := range g.IfBranches {
		if br.Else == nil {
			t.Fatal("no synthesized else block")
		}
		if !g.Reachable(br.Then) || !g.Reachable(br.Else) {
			t.Fatal("branch blocks unreachable")
		}
	}
}

func TestReturnMakesFollowingUnreachable(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f() int {
	return 1
	x := 2
	return x
}`, "f")
	var returns []ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns = append(returns, n)
			}
		}
	}
	if len(returns) != 2 {
		t.Fatalf("returns = %d, want 2", len(returns))
	}
	b0, _ := g.BlockOf(returns[0])
	b1, _ := g.BlockOf(returns[1])
	if !g.Reachable(b0) {
		t.Fatal("first return unreachable")
	}
	if g.Reachable(b1) {
		t.Fatal("dead return reported reachable")
	}
}

func TestPanicEdgesToExit(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
	println("after")
}`, "f")
	p := findNode(g, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	})
	if p == nil {
		t.Fatal("panic node not recorded")
	}
	pb, _ := g.BlockOf(p)
	toExit := false
	for _, s := range pb.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		t.Fatal("panic block has no edge to exit")
	}
	// The statement after the if is still reachable through the else edge.
	after := findNode(g, isPrintln)
	if after == nil {
		t.Fatal("println node not recorded")
	}
	ab, _ := g.BlockOf(after)
	if !g.Reachable(ab) {
		t.Fatal("statement after guarded panic should be reachable")
	}
}

func isPrintln(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "println"
}

func TestLoopHeadAndLatches(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		s += i
	}
	return s
}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if len(l.Latches) == 0 {
		t.Fatal("loop has no latches")
	}
	for _, latch := range l.Latches {
		hasHead := false
		for _, s := range latch.Succs {
			if s == l.Head {
				hasHead = true
			}
		}
		if !hasHead {
			t.Fatalf("latch %d has no back edge to head", latch.Index)
		}
	}
	// The head decides the loop, so it must dominate every latch.
	for _, latch := range l.Latches {
		if g.Reachable(latch) && !g.Dominates(l.Head, latch) {
			t.Fatalf("head does not dominate latch %d", latch.Index)
		}
	}
}

func TestDeferRecorded(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f() {
	defer println("x")
	println("y")
}`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(g.Defers))
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r = 2
	default:
		r = 3
	}
	return r
}`, "f")
	// All three case assignments must be reachable.
	count := 0
	for _, b := range g.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				count++
			}
		}
	}
	if count != 3 {
		t.Fatalf("reachable case assignments = %d, want 3", count)
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
		return 0
	}
}`, "f")
	sel := findNode(g, func(n ast.Node) bool { _, ok := n.(*ast.SelectStmt); return ok })
	if sel == nil {
		t.Fatal("select not recorded as a node")
	}
	sb, _ := g.BlockOf(sel)
	// No default: the select head must not edge straight to the join.
	for _, s := range sb.Succs {
		if s.Kind == "select.after" {
			t.Fatal("select without default has a fall-through edge")
		}
	}
}

func TestGotoBackEdge(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`, "f")
	// The goto must create a cycle: the label block is its own ancestor.
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			label = b
		}
	}
	if label == nil {
		t.Fatal("label block missing")
	}
	if len(label.Preds) < 2 {
		t.Fatalf("label block preds = %d, want >= 2 (entry + goto)", len(label.Preds))
	}
}

func TestPathToExitGates(t *testing.T) {
	src := `package p
type mutex struct{}
func (mutex) Lock()   {}
func (mutex) Unlock() {}
var mu mutex
func ok(c bool) {
	mu.Lock()
	if c {
		mu.Unlock()
		return
	}
	mu.Unlock()
}
func leak(c bool) {
	mu.Lock()
	if c {
		return
	}
	mu.Unlock()
}`
	unlock := func(n ast.Node) bool { return nodeCalls(n, "Unlock") }
	lockNode := func(g *Graph) ast.Node {
		return findNode(g, func(n ast.Node) bool { return nodeCalls(n, "Lock") && !nodeCalls(n, "Unlock") })
	}

	g, _ := buildFunc(t, src, "ok")
	if g.PathToExit(lockNode(g), unlock) {
		t.Fatal("ok: reported a path to exit that skips Unlock")
	}
	g, _ = buildFunc(t, src, "leak")
	if !g.PathToExit(lockNode(g), unlock) {
		t.Fatal("leak: missed the early return that skips Unlock")
	}
}

func TestPathExistsAroundLoop(t *testing.T) {
	g, _ := buildFunc(t, `package p
type mutex struct{}
func (mutex) Lock()   {}
func (mutex) Unlock() {}
var mu mutex
func f(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		mu.Unlock()
	}
}`, "f")
	lock := findNode(g, func(n ast.Node) bool { return nodeCalls(n, "Lock") && !nodeCalls(n, "Unlock") })
	unlock := func(n ast.Node) bool { return nodeCalls(n, "Unlock") }
	// Lock to the same Lock around the loop always passes Unlock.
	if g.PathExists(lock, lock, unlock) {
		t.Fatal("found a Lock->Lock path that skips Unlock")
	}
	if !g.PathExists(lock, lock, nil) {
		t.Fatal("no Lock->Lock path around the loop at all")
	}
}

func TestDominators(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	var br Branches
	for _, b := range g.IfBranches {
		br = b
	}
	ret := findNode(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	rb, _ := g.BlockOf(ret)
	if g.Dominates(br.Then, rb) || g.Dominates(br.Else, rb) {
		t.Fatal("a single branch arm must not dominate the join")
	}
	if !g.Dominates(g.Entry, rb) {
		t.Fatal("entry must dominate the return")
	}
}

func TestReachingDefs(t *testing.T) {
	g, info := buildFunc(t, `package p
func f(c bool, p *int) *int {
	if c {
		p = nil
	}
	return p
}`, "f")
	ret := findNode(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	var pObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "p" && obj != nil {
			pObj = obj
		}
	}
	if pObj == nil {
		t.Fatal("no object for p")
	}
	d := g.Definitions(info)
	defs := d.Reaching(pObj, ret)
	if len(defs) != 2 {
		t.Fatalf("defs reaching return = %d, want 2 (param + nil assignment)", len(defs))
	}
	hasParam := false
	for _, def := range defs {
		if def.Param {
			hasParam = true
		}
	}
	if !hasParam {
		t.Fatal("parameter pseudo-definition missing")
	}
}

func TestReachingDefsKilled(t *testing.T) {
	g, info := buildFunc(t, `package p
func f(p *int) *int {
	p = new(int)
	return p
}`, "f")
	ret := findNode(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	var pObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "p" && obj != nil {
			pObj = obj
		}
	}
	d := g.Definitions(info)
	defs := d.Reaching(pObj, ret)
	if len(defs) != 1 || defs[0].Param {
		t.Fatalf("want exactly the new(int) assignment to reach the return, got %d defs", len(defs))
	}
}
