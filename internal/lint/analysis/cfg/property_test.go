package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestEveryReturnReachable generates randomized synthetic functions whose
// grammar places every statement in a live position (terminators only at the
// tail of a statement list, never both arms of a non-final if, loop bodies
// that can be skipped) and asserts the structural CFG invariants hold on each:
// every return is reachable from entry, the exit block is reachable, entry
// dominates every reachable block, and succ/pred edge lists agree.
func TestEveryReturnReachable(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		src := generateFunc(seed)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "gen.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, src)
		}
		var fd *ast.FuncDecl
		for _, d := range file.Decls {
			if f, ok := d.(*ast.FuncDecl); ok {
				fd = f
			}
		}
		g := New(fd, fd.Body, nil)

		checkEdgesConsistent(t, g, seed, src)

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			b, found := g.BlockOf(ret)
			if !found {
				t.Fatalf("seed %d: return at %v not in graph\n%s", seed, fset.Position(ret.Pos()), src)
			}
			if !g.Reachable(b) {
				t.Fatalf("seed %d: return at %v unreachable\n%s", seed, fset.Position(ret.Pos()), src)
			}
			return true
		})

		if !g.Reachable(g.Exit) {
			t.Fatalf("seed %d: exit unreachable\n%s", seed, src)
		}
		for _, b := range g.Blocks {
			if g.Reachable(b) && !g.Dominates(g.Entry, b) {
				t.Fatalf("seed %d: entry does not dominate reachable block %d\n%s", seed, b.Index, src)
			}
		}
	}
}

func checkEdgesConsistent(t *testing.T, g *Graph, seed uint64, src string) {
	t.Helper()
	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if count(s.Preds, b) != count(b.Succs, s) {
				t.Fatalf("seed %d: edge %d->%d succ/pred mismatch\n%s", seed, b.Index, s.Index, src)
			}
		}
	}
}

// gen is a small deterministic linear-congruential generator, so failures
// reproduce from the seed alone.
type gen struct {
	state uint64
	buf   strings.Builder
	depth int
	vars  int
}

func (r *gen) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

func (r *gen) pick(n int) int { return int(r.next() % uint64(n)) }

func (r *gen) line(format string, args ...any) {
	r.buf.WriteString(strings.Repeat("\t", r.depth))
	fmt.Fprintf(&r.buf, format, args...)
	r.buf.WriteString("\n")
}

func generateFunc(seed uint64) string {
	r := &gen{state: seed}
	r.line("package p")
	r.line("")
	r.line("func f(a, b int) int {")
	r.depth = 1
	r.line("x := a + b")
	if !r.stmts(3, false) {
		r.line("return x")
	}
	r.depth = 0
	r.line("}")
	return r.buf.String()
}

// stmts emits a statement list: a few non-terminating statements and, with
// some probability, a final terminator (which keeps everything after the
// enclosing construct reachable, because only the last slot terminates).
// It reports whether the list ended in a terminator.
func (r *gen) stmts(budget int, inLoop bool) bool {
	n := 1 + r.pick(budget)
	for i := 0; i < n; i++ {
		r.stmt(inLoop)
	}
	if inLoop && r.pick(3) == 0 {
		if r.pick(2) == 0 {
			r.line("break")
		} else {
			r.line("continue")
		}
		return true
	}
	if r.pick(4) == 0 {
		r.line("return x")
		return true
	}
	return false
}

// stmt emits one non-terminating statement. Ifs keep at least one arm
// open-ended; loops are conditionally entered, so code after them stays
// reachable.
func (r *gen) stmt(inLoop bool) {
	if r.depth >= 5 {
		r.line("x++")
		return
	}
	switch r.pick(6) {
	case 0:
		r.line("x += %d", 1+r.pick(9))
	case 1:
		r.vars++
		r.line("v%d := x * %d", r.vars, 1+r.pick(5))
		r.line("x = v%d", r.vars)
	case 2: // if without else: always open
		r.line("if x > %d {", r.pick(100))
		r.depth++
		r.stmts(2, inLoop)
		r.depth--
		r.line("}")
	case 3: // if/else: the else arm never terminates
		r.line("if x%%2 == %d {", r.pick(2))
		r.depth++
		r.stmts(2, inLoop)
		r.depth--
		r.line("} else {")
		r.depth++
		r.line("x--")
		r.depth--
		r.line("}")
	case 4: // conditional loop: may execute zero times
		r.vars++
		r.line("for v%d := 0; v%d < %d; v%d++ {", r.vars, r.vars, 1+r.pick(5), r.vars)
		r.depth++
		r.stmts(2, true)
		r.depth--
		r.line("}")
	case 5: // switch: default arm never terminates
		r.line("switch {")
		r.line("case x > %d:", r.pick(50))
		r.depth++
		r.stmts(2, inLoop)
		r.depth--
		r.line("default:")
		r.depth++
		r.line("x = x / 2")
		r.depth--
		r.line("}")
	}
}
