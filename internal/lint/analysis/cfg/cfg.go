// Package cfg builds per-function control-flow graphs over go/ast and layers
// the dataflow queries the lint suite's flow-sensitive analyzers share:
// reachability, dominators, a must-pass-through path engine (PathExists /
// PathToExit with a caller-supplied gate set), and reaching definitions.
//
// The graph is statement-level: each Block holds the statements (and branch
// conditions) that execute unconditionally together, in source order. Short-
// circuit operators do not split blocks — an if condition lives whole in the
// branching block — which keeps the graph small and is precise enough for the
// invariants this suite checks (a cancellation poll inside a condition still
// dominates the branch it guards). Function literals are independent
// functions: the builder never descends into a nested *ast.FuncLit, and
// FuncCFGs gives every literal its own Graph.
//
// Terminators: return edges to the synthetic Exit block, as does an explicit
// call to the panic builtin. A function can also leave through a runtime
// panic anywhere, which no statement-level CFG models edge-by-edge; analyzers
// that care about panic paths (lockcheck) treat "release only via defer" as
// the panic-safe form, which the Defers list makes checkable.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is a maximal run of statements with no internal control transfer.
// Nodes holds the recorded statements and branch conditions in execution
// order; Succs and Preds are the control-flow edges.
type Block struct {
	Index int
	Kind  string // "entry", "if.then", "for.head", ... (for debugging/tests)
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Loop is one for or range statement: Head is the block that decides
// another iteration, Latches are the blocks that jump back to Head (loop-body
// ends, continue targets). "Poll on every cycle path" checks reduce to "poll
// block dominates every latch".
type Loop struct {
	Stmt    ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Head    *Block
	Latches []*Block
}

// Branches records where an if statement's two arms start. The else block
// always exists (synthesized for if-without-else), so edge facts like "cond
// was false here" have a block to live on.
type Branches struct {
	Then, Else *Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Fn     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body   *ast.BlockStmt
	Blocks []*Block
	Entry  *Block
	Exit   *Block // synthetic: every return/panic/fall-off edges here
	Defers []*ast.DeferStmt
	Loops  []*Loop

	IfBranches map[*ast.IfStmt]Branches

	reach []bool
	idom  []int // immediate dominator per block index; -1 = none/unreachable
	pos   map[ast.Node]nodePos
}

type nodePos struct {
	block *Block
	index int
}

// New builds the CFG for one function body. info may be nil; with type info
// the builder recognizes a shadowed panic identifier and does not treat it as
// terminating.
func New(fn ast.Node, body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{
		Fn:         fn,
		Body:       body,
		IfBranches: map[*ast.IfStmt]Branches{},
		pos:        map[ast.Node]nodePos{},
	}
	b := &builder{g: g, info: info, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // fall off the end = implicit return
	for _, pg := range b.gotos {
		if dst, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, dst)
		} else {
			b.edge(pg.from, g.Exit) // undeclared label: ill-typed input
		}
	}
	g.finalize()
	return g
}

type target struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select targets
}

type pendingGoto struct {
	label string
	from  *Block
}

type builder struct {
	g       *Graph
	info    *types.Info
	cur     *Block
	targets []target
	labels  map[string]*Block
	gotos   []pendingGoto
	fall    *Block // fallthrough target inside the current case clause
	label   string // pending label for the next breakable statement
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add records n as the next node of the current block.
func (b *builder) add(n ast.Node) {
	b.g.pos[n] = nodePos{b.cur, len(b.cur.Nodes)}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// dead replaces the current block with a fresh, predecessor-less block for
// the statements that follow a terminator. They stay in the graph (and in
// the pos map) but are unreachable.
func (b *builder) dead() {
	b.cur = b.newBlock("dead")
}

func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.dead()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if b.isPanic(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.dead()
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line statements.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.edge(b.cur, t.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.edge(b.cur, t.cont)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{label, b.cur})
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.edge(b.cur, b.fall)
		}
	}
	b.dead()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	els := b.newBlock("if.else")
	b.edge(cond, then)
	b.edge(cond, els)
	b.g.IfBranches[s] = Branches{Then: then, Else: els}

	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	b.cur = els
	if s.Else != nil {
		b.stmt(s.Else)
	}
	elseEnd := b.cur

	join := b.newBlock("if.join")
	b.edge(thenEnd, join)
	b.edge(elseEnd, join)
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.targets = append(b.targets, target{label, after, cont})
	b.cur = body
	b.stmtList(s.Body.List)
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
	} else {
		b.edge(b.cur, head)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head, Latches: latchesOf(head)})
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	b.cur = head
	b.add(s) // the range clause itself: key/value assignment + iteration test
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(head, body)
	b.edge(head, after)
	b.targets = append(b.targets, target{label, after, head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head, Latches: latchesOf(head)})
	b.cur = after
}

// latchesOf is every predecessor of a loop head except the initial entry
// edge, which the builders above always wire first.
func latchesOf(head *Block) []*Block {
	if len(head.Preds) <= 1 {
		return nil
	}
	return append([]*Block(nil), head.Preds[1:]...)
}

func (b *builder) switchBody(body *ast.BlockStmt, label string, valueSwitch bool) {
	head := b.cur
	after := b.newBlock("switch.after")
	b.targets = append(b.targets, target{label, after, nil})
	clauses := body.List
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock("switch.case")
		b.edge(head, caseBlocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	prevFall := b.fall
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.fall = nil
		if valueSwitch && i+1 < len(clauses) {
			b.fall = caseBlocks[i+1]
		}
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fall = prevFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	b.add(s) // the select itself is a node: without a default it blocks here
	head := b.cur
	after := b.newBlock("select.after")
	b.targets = append(b.targets, target{label, after, nil})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock("select.case")
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// isPanic reports whether x is a call to the panic builtin.
func (b *builder) isPanic(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		if obj := b.info.Uses[id]; obj != nil {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}
