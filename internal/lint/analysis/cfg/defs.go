package cfg

import (
	"go/ast"
	"go/types"
)

// A Def is one definition site of a local variable: an assignment, a short
// declaration, a range clause binding, an inc/dec, or — for parameters,
// receivers and named results — a pseudo-definition at function entry.
type Def struct {
	Obj   types.Object
	Ident *ast.Ident // the identifier being assigned
	Rhs   ast.Expr   // the assigned expression when syntactically evident, else nil
	Param bool       // function-entry pseudo-definition
}

// Defs is the reaching-definitions result for one function: for any local
// object and program point, which definition sites may supply its value.
type Defs struct {
	g     *Graph
	defs  []*Def
	byObj map[types.Object][]int
	// sites[b][i] lists defs produced by block b's node i, in order.
	sites map[*Block]map[int][]int
	in    [][]uint64
}

// Definitions computes reaching definitions over the graph. info must be the
// package's types.Info (the engine keys definitions by types.Object).
func (g *Graph) Definitions(info *types.Info) *Defs {
	d := &Defs{
		g:     g,
		byObj: map[types.Object][]int{},
		sites: map[*Block]map[int][]int{},
	}

	addDef := func(b *Block, node int, id *ast.Ident, rhs ast.Expr, param bool) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || id.Name == "_" {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		idx := len(d.defs)
		d.defs = append(d.defs, &Def{Obj: obj, Ident: id, Rhs: rhs, Param: param})
		d.byObj[obj] = append(d.byObj[obj], idx)
		if !param {
			if d.sites[b] == nil {
				d.sites[b] = map[int][]int{}
			}
			d.sites[b][node] = append(d.sites[b][node], idx)
		}
	}

	// Entry pseudo-definitions: receiver, parameters, named results.
	var pseudo []int
	fields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				addDef(nil, 0, name, nil, true)
				pseudo = append(pseudo, len(d.defs)-1)
			}
		}
	}
	switch fn := g.Fn.(type) {
	case *ast.FuncDecl:
		fields(fn.Recv)
		fields(fn.Type.Params)
		fields(fn.Type.Results)
	case *ast.FuncLit:
		fields(fn.Type.Params)
		fields(fn.Type.Results)
	}

	// Definition sites inside the body. Nodes are statements or conditions;
	// nested function literals are separate functions and are skipped.
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			InspectLocal(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					for j, lhs := range m.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						var rhs ast.Expr
						if len(m.Rhs) == len(m.Lhs) {
							rhs = m.Rhs[j]
						}
						addDef(b, i, id, rhs, false)
					}
				case *ast.IncDecStmt:
					if id, ok := m.X.(*ast.Ident); ok {
						addDef(b, i, id, nil, false)
					}
				case *ast.GenDecl:
					for _, spec := range m.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for j, name := range vs.Names {
							var rhs ast.Expr
							if len(vs.Values) == len(vs.Names) {
								rhs = vs.Values[j]
							}
							addDef(b, i, name, rhs, false)
						}
					}
				case *ast.RangeStmt:
					if id, ok := m.Key.(*ast.Ident); ok {
						addDef(b, i, id, nil, false)
					}
					if id, ok := m.Value.(*ast.Ident); ok {
						addDef(b, i, id, nil, false)
					}
				}
				return true
			})
		}
	}

	d.solve(pseudo)
	return d
}

// solve runs the forward may-analysis to a fixpoint.
func (d *Defs) solve(pseudo []int) {
	g := d.g
	words := (len(d.defs) + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	set := func(s []uint64, i int) { s[i/64] |= 1 << (i % 64) }
	clearObj := func(s []uint64, obj types.Object) {
		for _, i := range d.byObj[obj] {
			s[i/64] &^= 1 << (i % 64)
		}
	}

	// Per-block transfer: apply defs in order.
	transfer := func(b *Block, s []uint64) {
		for i := range b.Nodes {
			for _, di := range d.sites[b][i] {
				clearObj(s, d.defs[di].Obj)
				set(s, di)
			}
		}
	}

	d.in = make([][]uint64, len(g.Blocks))
	for i := range d.in {
		d.in[i] = newSet()
	}
	for _, i := range pseudo {
		set(d.in[g.Entry.Index], i)
	}

	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !g.reach[b.Index] {
				continue
			}
			out := append([]uint64(nil), d.in[b.Index]...)
			transfer(b, out)
			for _, s := range b.Succs {
				dst := d.in[s.Index]
				for w := range out {
					if out[w]&^dst[w] != 0 {
						dst[w] |= out[w]
						changed = true
					}
				}
			}
		}
	}
}

// Of returns every definition site of obj, entry pseudo-definitions first.
func (d *Defs) Of(obj types.Object) []*Def {
	var out []*Def
	for _, i := range d.byObj[obj] {
		out = append(out, d.defs[i])
	}
	return out
}

// Reaching returns the definition sites of obj whose value may be live at
// `at` (a node of the graph, or a sub-expression of one). Definitions made
// by the node containing `at` itself are not included.
func (d *Defs) Reaching(obj types.Object, at ast.Node) []*Def {
	p, ok := d.g.Locate(at)
	if !ok || !d.g.reach[p.block.Index] {
		return nil
	}
	live := map[int]bool{}
	for _, i := range d.byObj[obj] {
		if d.in[p.block.Index][i/64]&(1<<(i%64)) != 0 {
			live[i] = true
		}
	}
	for i := 0; i < p.index; i++ {
		for _, di := range d.sites[p.block][i] {
			if d.defs[di].Obj == obj {
				live = map[int]bool{di: true}
			}
		}
	}
	var out []*Def
	for _, i := range d.byObj[obj] { // deterministic order
		if live[i] {
			out = append(out, d.defs[i])
		}
	}
	return out
}

// InspectLocal walks root in the manner of ast.Inspect but does not descend
// into nested function literals: their statements belong to their own Graph.
func InspectLocal(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}
