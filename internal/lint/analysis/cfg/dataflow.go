package cfg

import (
	"go/ast"
	"go/token"
)

// finalize computes reachability from Entry and immediate dominators over the
// reachable subgraph (Cooper/Harvey/Kennedy iterative algorithm).
func (g *Graph) finalize() {
	n := len(g.Blocks)
	g.reach = make([]bool, n)
	var stack []*Block
	stack = append(stack, g.Entry)
	g.reach[g.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !g.reach[s.Index] {
				g.reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}

	// Reverse postorder over reachable blocks.
	post := make([]*Block, 0, n)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	var dfs func(*Block)
	dfs = func(b *Block) {
		state[b.Index] = 1
		for _, s := range b.Succs {
			if state[s.Index] == 0 {
				dfs(s)
			}
		}
		state[b.Index] = 2
		post = append(post, b)
	}
	dfs(g.Entry)
	rpo := make([]*Block, 0, len(post))
	rpoNum := make([]int, n)
	for i := len(post) - 1; i >= 0; i-- {
		rpoNum[post[i].Index] = len(rpo)
		rpo = append(rpo, post[i])
	}

	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	g.idom[g.Entry.Index] = g.Entry.Index
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range b.Preds {
				if !g.reach[p.Index] || g.idom[p.Index] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = intersect(p.Index, newIdom)
				}
			}
			if newIdom >= 0 && g.idom[b.Index] != newIdom {
				g.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
}

// Reachable reports whether b is reachable from Entry.
func (g *Graph) Reachable(b *Block) bool { return g.reach[b.Index] }

// Dominates reports whether a dominates b (reflexively): every path from
// Entry to b passes through a. Unreachable blocks are dominated by nothing
// and dominate nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	if !g.reach[a.Index] || !g.reach[b.Index] {
		return false
	}
	for i := b.Index; ; i = g.idom[i] {
		if i == a.Index {
			return true
		}
		if i == g.Entry.Index || g.idom[i] < 0 {
			return false
		}
	}
}

// DominatesNode is Dominates lifted to recorded nodes: within one block,
// earlier nodes dominate later ones.
func (g *Graph) DominatesNode(a, b ast.Node) bool {
	pa, oka := g.Locate(a)
	pb, okb := g.Locate(b)
	if !oka || !okb {
		return false
	}
	if pa.block == pb.block {
		return g.reach[pa.block.Index] && pa.index <= pb.index
	}
	return g.Dominates(pa.block, pb.block) && pa.block != pb.block
}

// BlockOf returns the block holding n (or the recorded node enclosing n),
// and false if n is not part of this function.
func (g *Graph) BlockOf(n ast.Node) (*Block, bool) {
	p, ok := g.Locate(n)
	if !ok {
		return nil, false
	}
	return p.block, true
}

// Locate finds the position of n in the graph. If n was not recorded
// directly (it is a sub-expression of a statement or condition), the
// smallest recorded node whose source span contains n is used. The caller
// must not pass nodes from a nested function literal; those belong to the
// literal's own Graph.
func (g *Graph) Locate(n ast.Node) (nodePos, bool) {
	if p, ok := g.pos[n]; ok {
		return p, true
	}
	var best nodePos
	bestSpan := token.Pos(-1)
	found := false
	for r, p := range g.pos {
		if r.Pos() <= n.Pos() && n.End() <= r.End() {
			span := r.End() - r.Pos()
			if !found || span < bestSpan {
				best, bestSpan, found = p, span, true
			}
		}
	}
	return best, found
}

// PathExists reports whether control can flow from just after `from` to `to`
// without first executing a node for which avoid returns true. Both nodes
// must belong to this function; avoid may be nil. The gate is checked on
// every recorded node strictly between the two, including around loop back
// edges, so "no path from Lock to Lock that does not pass Unlock" and
// "every path from Create to this return passes a Remove" are direct calls.
func (g *Graph) PathExists(from, to ast.Node, avoid func(ast.Node) bool) bool {
	fp, ok := g.Locate(from)
	if !ok {
		return false
	}
	tp, ok := g.Locate(to)
	if !ok {
		return false
	}
	return g.search(fp, &tp, avoid)
}

// PathToExit reports whether control can reach function exit from just after
// `from` without first executing a node for which avoid returns true. Exit
// here means any return, explicit panic, or falling off the end — a defer
// registration en route counts as a node like any other, so passing defer
// statements as gates models "released or deferred on every path out".
func (g *Graph) PathToExit(from ast.Node, avoid func(ast.Node) bool) bool {
	fp, ok := g.Locate(from)
	if !ok {
		return false
	}
	return g.search(fp, nil, avoid)
}

// search walks forward from fp. A nil target means the Exit block.
func (g *Graph) search(fp nodePos, tp *nodePos, avoid func(ast.Node) bool) bool {
	// scan visits b.Nodes[start:]; it reports (blocked, found).
	scan := func(b *Block, start int) (bool, bool) {
		for i := start; i < len(b.Nodes); i++ {
			if tp != nil && b == tp.block && i == tp.index {
				return false, true
			}
			if avoid != nil && avoid(b.Nodes[i]) {
				return true, false
			}
		}
		return false, false
	}
	blocked, found := scan(fp.block, fp.index+1)
	if found {
		return true
	}
	if blocked {
		return false
	}
	seen := make([]bool, len(g.Blocks))
	queue := append([]*Block(nil), fp.block.Succs...)
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		if tp == nil && b == g.Exit {
			return true
		}
		blocked, found := scan(b, 0)
		if found {
			return true
		}
		if blocked {
			continue
		}
		queue = append(queue, b.Succs...)
	}
	return false
}
