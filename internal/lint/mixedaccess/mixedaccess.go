// Package mixedaccess flags fields and variables that are accessed through
// sync/atomic in one place and plainly in another without holding a lock.
// Mixing the two is a data race the race detector only catches when the
// schedule cooperates: an atomic.AddUint64 in one goroutine and a bare read
// in another tears on 32-bit platforms and is undefined under the memory
// model everywhere.
//
// A plain access is allowed when a mutex Lock dominates it and at least one
// path from that Lock reaches the access without an intervening Unlock
// (deferred Unlocks release at function exit and so do not end the guarded
// region). The analyzer is package-scoped: the atomic site and the plain
// site may be in different functions.
package mixedaccess

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "mixedaccess",
	Doc: "a field accessed via sync/atomic must not also be accessed plainly " +
		"outside a guarding mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	atomicObjs, exempt := collectAtomic(pass)
	if len(atomicObjs) == 0 {
		return nil
	}
	for _, fn := range cfg.All(pass) {
		checkFunc(pass, fn, atomicObjs, exempt)
	}
	return nil
}

// collectAtomic finds every object passed by address to a sync/atomic
// function anywhere in the package, plus the ident nodes of those atomic
// call sites (exempt from the plain-access scan). Composite-literal keys are
// field names, not accesses, and are exempt too.
func collectAtomic(pass *analysis.Pass) (map[types.Object]bool, map[*ast.Ident]bool) {
	info := pass.TypesInfo
	objs := map[types.Object]bool{}
	exempt := map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					exempt[id] = true
				}
			case *ast.CallExpr:
				if !isAtomicCall(info, n) {
					return true
				}
				for _, arg := range n.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok {
						continue
					}
					obj := addressedObj(info, un.X)
					if obj == nil {
						continue
					}
					objs[obj] = true
					ast.Inspect(un, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
							exempt[id] = true
						}
						return true
					})
				}
			}
			return true
		})
	}
	return objs, exempt
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedObj resolves &expr to the field or variable object being aliased.
func addressedObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *cfg.Func, atomicObjs map[types.Object]bool, exempt map[*ast.Ident]bool) {
	info := pass.TypesInfo

	// The lock and unlock sites, excluding defers: a deferred Unlock releases
	// only at function exit, so it never ends the guarded region mid-body.
	var locks, unlocks []ast.Node
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			node := n
			cfg.InspectLocal(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if isSyncMethod(info, call, "Lock", "RLock") {
						locks = append(locks, node)
					}
					if isSyncMethod(info, call, "Unlock", "RUnlock") {
						unlocks = append(unlocks, node)
					}
				}
				return true
			})
		}
	}

	isLock := func(n ast.Node) bool {
		for _, l := range locks {
			if l == n {
				return true
			}
		}
		return false
	}

	// guarded: some Lock dominates the access and no Unlock can interpose —
	// an unlock that control can pass between the two (without re-locking on
	// the way to the access) means the guard may already be gone.
	guarded := func(access ast.Node) bool {
	nextLock:
		for _, l := range locks {
			if l == access || !fn.DominatesNode(l, access) {
				continue
			}
			for _, u := range unlocks {
				if fn.PathExists(l, u, nil) && fn.PathExists(u, access, isLock) {
					continue nextLock
				}
			}
			return true
		}
		return false
	}

	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			node := n
			cfg.InspectLocal(n, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok || exempt[id] {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil || !atomicObjs[obj] {
					return true
				}
				if !guarded(node) {
					pass.Reportf(id.Pos(),
						"plain access to %s, which is elsewhere accessed with sync/atomic: make every access atomic or hold the guarding lock",
						obj.Name())
				}
				return true
			})
		}
	}
}

func isSyncMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}
