package mixedaccess_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/mixedaccess"
)

func TestGood(t *testing.T) {
	analysistest.Run(t, mixedaccess.Analyzer, "good")
}

func TestBad(t *testing.T) {
	analysistest.Run(t, mixedaccess.Analyzer, "bad")
}
