// Package good keeps every access to an atomically-updated field either
// atomic or under the guarding mutex.
package good

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  uint64
	m  int // never touched by sync/atomic: unconstrained
}

func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

// snapshot reads n plainly, but the guarding mutex is held: the Lock
// dominates the access and the deferred Unlock releases only at exit.
func (c *counter) snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// reset writes n plainly under an explicit Lock/Unlock pair.
func (c *counter) reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

// plain fields stay invisible to the analyzer.
func (c *counter) setM(v int) {
	c.m = v
}
