// Package bad mixes atomic and plain access: the races the analyzer exists
// to catch.
package bad

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  uint64
}

func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1)
}

// torn reads n with no lock at all while bump updates it atomically.
func (c *counter) torn() uint64 {
	return c.n // want `plain access to n, which is elsewhere accessed with sync/atomic: make every access atomic or hold the guarding lock`
}

// late writes n after the mutex has already been released.
func (c *counter) late() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n++ // want `plain access to n, which is elsewhere accessed with sync/atomic: make every access atomic or hold the guarding lock`
}

// branch releases the lock on one path and still writes on the join.
func (c *counter) branch(flush bool) {
	c.mu.Lock()
	if flush {
		c.mu.Unlock()
	}
	c.n = 0 // want `plain access to n, which is elsewhere accessed with sync/atomic: make every access atomic or hold the guarding lock`
	if !flush {
		c.mu.Unlock()
	}
}
