package crashsafe_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/crashsafe"
)

// allPackages widens the analyzer's package scope to the fixture under test
// and restores it afterwards.
func allPackages(t *testing.T) {
	t.Helper()
	saved := crashsafe.Scope
	crashsafe.Scope = nil
	t.Cleanup(func() { crashsafe.Scope = saved })
}

// TestGood: the full create→write→sync→close→rename discipline, including
// helper-based disposal and the quarantine rename of a non-temp source.
func TestGood(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, crashsafe.Analyzer, "good")
}

// TestBad: the historical fsync drop, a branch-only sync, a write after the
// sync, and error paths that strand the temp file are all flagged.
func TestBad(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, crashsafe.Analyzer, "bad")
}

// TestOptIn: the //lint:crashsafe directive pulls an out-of-scope package
// into the analysis — Scope is NOT widened here.
func TestOptIn(t *testing.T) {
	analysistest.Run(t, crashsafe.Analyzer, "optin")
}

// TestScope pins the default scope to the store package.
func TestScope(t *testing.T) {
	found := false
	for _, p := range crashsafe.Scope {
		if p == "repro/internal/asapd/store" {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashsafe.Scope no longer covers repro/internal/asapd/store: %v", crashsafe.Scope)
	}
}
