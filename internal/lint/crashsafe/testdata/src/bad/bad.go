// Package bad holds the crash-consistency shapes the analyzer must reject.
// writeNoSync is the historical one: PR 8's store.writeAtomic minus its
// f.Sync() call, which lets a crash publish an empty entry under the final
// name.
package bad

import "os"

// The fsync-drop shape: rename without a dominating sync on the handle.
func writeNoSync(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final) // want `Rename of temp file tmp is not dominated by a Sync on f`
}

// A sync that only happens on one branch does not dominate the rename.
func syncOneBranch(tmp, final string, data []byte, flush bool) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if flush {
		f.Sync()
	}
	f.Close()
	return os.Rename(tmp, final) // want `Rename of temp file tmp is not dominated by a Sync on f`
}

// Writing after the sync publishes bytes the fsync never covered.
func writeAfterSync(tmp, final string, data, footer []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.Write(footer) // want `write to f between its Sync and the Rename of tmp`
	f.Close()
	return os.Rename(tmp, final)
}

// Error paths that walk away from the temp file strand it in the store dir.
func leaky(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err // want `error return without removing temp file tmp`
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err // want `error return without removing temp file tmp`
	}
	f.Close()
	return os.Rename(tmp, final)
}
