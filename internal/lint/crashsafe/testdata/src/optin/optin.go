// Package optin sits outside the analyzer's default scope and opts in with
// the //lint:crashsafe directive — the mechanism the future run ledger will
// use. The analyzer must still catch the missing sync here.
package optin

//lint:crashsafe

import "os"

func publish(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	return os.Rename(tmp, final) // want `Rename of temp file tmp is not dominated by a Sync on f`
}
