// Package good is the store's atomic-write discipline done right: create,
// write, sync, close, rename — with the temp removed on every failure path.
package good

import "os"

func writeAtomic(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err // Create failed: no temp file exists yet
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// quarantine renames an existing durable entry aside; its source is not a
// freshly created temp, so the fsync discipline does not apply.
func quarantine(path, dst string) error {
	return os.Rename(path, dst)
}

// helper-style disposal counts: anything remove/discard-named that takes the
// temp path clears the error path.
func writeViaHelper(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		discard(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		discard(tmp)
		return err
	}
	f.Close()
	return os.Rename(tmp, final)
}

func discard(path string) {
	os.Remove(path)
}
