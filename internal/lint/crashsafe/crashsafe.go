// Package crashsafe enforces the store's atomic-write discipline with the
// CFG layer: in the packages that persist durable state, every Rename whose
// source is a freshly created temp file must be dominated by a Sync on the
// same file handle (fsync-before-rename — without it a crash can publish an
// empty or truncated entry under the final name), no write may land between
// that sync and the rename, and every error return reachable from the create
// must remove (or rename away) the temp file first, so failed writes never
// strand garbage in the store directory.
//
// The historical shape this guards is PR 8's store.writeAtomic: deleting its
// f.Sync() call leaves rename ordering to the filesystem's whim, which is
// precisely the crash-consistency bug the service's resubmit-after-restart
// contract cannot survive.
//
// Scope: repro/internal/asapd/store by default; any other package can opt in
// by carrying a //lint:crashsafe comment in one of its files (the future run
// ledger will). The analyzer keys on shape, not names: a create is any
// Create/CreateTemp call whose result handle and path argument are tracked
// through Sync/Write/Remove/Rename calls in the same function.
package crashsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// Scope lists the packages checked by default. Empty means every package
// (the analysistest fixtures use that); other packages opt in with a
// //lint:crashsafe file comment.
var Scope = []string{
	"repro/internal/asapd/store",
}

var Analyzer = &analysis.Analyzer{
	Name: "crashsafe",
	Doc: "durable renames must be fsync-dominated, nothing may write between " +
		"sync and rename, and temp files must be removed on all error paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) && !optedIn(pass.Files) {
		return nil
	}
	for _, fn := range cfg.All(pass) {
		checkFunc(pass, fn)
	}
	return nil
}

func inScope(path string) bool {
	if len(Scope) == 0 {
		return true
	}
	for _, p := range Scope {
		if p == path {
			return true
		}
	}
	return false
}

// optedIn reports whether any file carries a //lint:crashsafe directive.
func optedIn(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == "//lint:crashsafe" || strings.HasPrefix(c.Text, "//lint:crashsafe ") {
					return true
				}
			}
		}
	}
	return false
}

// create is one tracked `handle, err := X.Create(tmpPath)` site.
type create struct {
	node   ast.Node // the assignment statement
	call   *ast.CallExpr
	handle types.Object // the file handle variable
	tmp    types.Object // the temp-path variable passed to Create
	err    types.Object // the error variable of the same assignment, if any
}

func checkFunc(pass *analysis.Pass, fn *cfg.Func) {
	info := pass.TypesInfo
	creates := findCreates(info, fn)
	if len(creates) == 0 {
		return
	}
	for _, cr := range creates {
		checkCreate(pass, fn, cr)
	}
}

func findCreates(info *types.Info, fn *cfg.Func) []*create {
	var out []*create
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			name := calleeName(call)
			if name != "Create" && name != "CreateTemp" {
				continue
			}
			cr := &create{node: n, call: call}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				cr.handle = info.ObjectOf(id)
			}
			if len(as.Lhs) > 1 {
				if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					cr.err = info.ObjectOf(id)
				}
			}
			if id, ok := call.Args[len(call.Args)-1].(*ast.Ident); ok {
				cr.tmp = info.ObjectOf(id)
			}
			if cr.handle != nil && cr.tmp != nil {
				out = append(out, cr)
			}
		}
	}
	return out
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func checkCreate(pass *analysis.Pass, fn *cfg.Func, cr *create) {
	info := pass.TypesInfo

	// consumed reports whether node n disposes of the temp file: a remove/
	// discard-style call taking the temp path, or a rename moving it away.
	consumed := func(n ast.Node) bool {
		found := false
		cfg.InspectLocal(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := strings.ToLower(calleeName(call))
			disposal := strings.Contains(name, "remove") || strings.Contains(name, "discard") || name == "rename"
			if !disposal {
				return true
			}
			for _, a := range call.Args {
				if id, ok := a.(*ast.Ident); ok && info.ObjectOf(id) == cr.tmp {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Collect the handle's Sync and Write nodes and the temp's Renames.
	type site struct {
		node ast.Node
		call *ast.CallExpr
	}
	var syncs, writes, renames []site
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			node := n
			cfg.InspectLocal(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Sync":
					if recvIs(info, sel, cr.handle) {
						syncs = append(syncs, site{node, call})
					}
				case "Write", "WriteString", "WriteAt":
					if recvIs(info, sel, cr.handle) {
						writes = append(writes, site{node, call})
					}
				case "Rename":
					if len(call.Args) == 2 {
						if id, ok := call.Args[0].(*ast.Ident); ok && info.ObjectOf(id) == cr.tmp {
							renames = append(renames, site{node, call})
						}
					}
				}
				return true
			})
		}
	}

	// Rule 1: each rename of the temp is dominated by a sync on the handle.
	// Rule 2: no write on the handle between that sync and the rename.
	for _, rn := range renames {
		var domSync *site
		for i := range syncs {
			if fn.DominatesNode(syncs[i].node, rn.node) {
				domSync = &syncs[i]
				break
			}
		}
		if domSync == nil {
			pass.Reportf(rn.call.Pos(),
				"Rename of temp file %s is not dominated by a Sync on %s: fsync before rename, or a crash can publish an empty entry",
				cr.tmp.Name(), cr.handle.Name())
			continue
		}
		for _, w := range writes {
			if w.node == domSync.node || w.node == rn.node {
				continue
			}
			if fn.PathExists(domSync.node, w.node, nil) && fn.PathExists(w.node, rn.node, nil) {
				pass.Reportf(w.call.Pos(),
					"write to %s between its Sync and the Rename of %s: the synced bytes are no longer what gets published",
					cr.handle.Name(), cr.tmp.Name())
			}
		}
	}

	// Rule 3: every error return reachable from the create removes the temp
	// first. The create's own error check is exempt — when Create itself
	// fails there is no temp file to clean up.
	if !returnsError(info, fn) {
		return
	}
	exemptBlocks := createErrGuards(info, fn, cr)
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || !isErrorReturn(ret) {
				continue
			}
			if inExempt(fn, exemptBlocks, n) || consumed(n) {
				continue // `return os.Rename(tmp, ...)` disposes inline
			}
			if fn.PathExists(cr.node, n, consumed) {
				pass.Reportf(ret.Pos(),
					"error return without removing temp file %s: clean up the temp on every failure path",
					cr.tmp.Name())
			}
		}
	}
}

func recvIs(info *types.Info, sel *ast.SelectorExpr, obj types.Object) bool {
	id, ok := sel.X.(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// returnsError reports whether the function's last result is of type error.
func returnsError(info *types.Info, fn *cfg.Func) bool {
	var ft *ast.FuncType
	switch f := fn.Fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	}
	if ft == nil || ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	t := info.TypeOf(last.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorReturn reports whether the return's final value can be a non-nil
// error (anything but the nil literal).
func isErrorReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false // naked return: named results, not used on store paths
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// createErrGuards returns the then-blocks of `if err != nil` checks on the
// create's own error variable.
func createErrGuards(info *types.Info, fn *cfg.Func, cr *create) []*cfg.Block {
	if cr.err == nil {
		return nil
	}
	var blocks []*cfg.Block
	for ifStmt, br := range fn.IfBranches {
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			continue
		}
		id, ok := cond.X.(*ast.Ident)
		if !ok {
			id, ok = cond.Y.(*ast.Ident)
		}
		if !ok {
			continue
		}
		// The guard must test the same err object the create assigned, and
		// sit after the create (the same err var may be reused earlier).
		if info.ObjectOf(id) == cr.err && ifStmt.Pos() > cr.node.Pos() {
			blocks = append(blocks, br.Then)
		}
	}
	return blocks
}

func inExempt(fn *cfg.Func, blocks []*cfg.Block, n ast.Node) bool {
	b, ok := fn.BlockOf(n)
	if !ok {
		return false
	}
	for _, eb := range blocks {
		if fn.Dominates(eb, b) {
			return true
		}
	}
	return false
}
