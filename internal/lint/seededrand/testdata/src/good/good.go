// Package good seeds every stream from explicit plumbing: a Params-style
// seed field, possibly salted — never a literal, never the clock.
package good

import (
	"math/rand"
	randv2 "math/rand/v2"

	"repro/internal/rng"
)

type Params struct{ Seed uint64 }

func Stream(p Params) *rand.Rand {
	return rand.New(rand.NewSource(int64(p.Seed)))
}

func StreamV2(p Params) *randv2.Rand {
	return randv2.New(randv2.NewPCG(p.Seed, p.Seed>>32))
}

func Salted(p Params, salt uint64) *rng.Stream {
	return rng.New(p.Seed ^ salt)
}
