// Package bad seeds streams from literals and the wall clock: both hide the
// stream's identity from the cell key (sweeping Seed no longer sweeps the
// run) or destroy reproducibility outright.
package bad

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"

	"repro/internal/rng"
)

func Literal() *rand.Rand {
	return rand.New(rand.NewSource(7)) // want `NewSource seeded with a constant`
}

func LiteralV2() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `NewPCG seeded with a constant` `NewPCG seeded with a constant`
}

func LiteralStream() *rng.Stream {
	return rng.New(42) // want `New seeded with a constant`
}

func Clock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `NewSource seeded from time.Now`
}
