package seededrand_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/determinism"
	"repro/internal/lint/seededrand"
)

// allPackages widens the shared determinism scope to the fixture under test
// and restores it afterwards.
func allPackages(t *testing.T) {
	t.Helper()
	saved := determinism.Scope
	determinism.Scope = nil
	t.Cleanup(func() { determinism.Scope = saved })
}

// TestGood: seeds plumbed from Params (possibly salted) pass, across
// math/rand, math/rand/v2 and the repo's own rng package.
func TestGood(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, seededrand.Analyzer, "good")
}

// TestBad: literal and wall-clock seeds are flagged at the construction site.
func TestBad(t *testing.T) {
	allPackages(t)
	analysistest.Run(t, seededrand.Analyzer, "bad")
}
