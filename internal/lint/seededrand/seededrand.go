// Package seededrand checks that every pseudo-random stream constructed in
// the simulation/reporting packages derives its seed from explicit seed
// plumbing (ultimately sim.Params.Seed), never from a literal or the wall
// clock.
//
// A literal seed hides a second source of truth: the cell's identity says
// "Seed: 42" while some inner component quietly runs on 7, so sweeping the
// seed no longer sweeps the run and repeats stop being independent. A
// wall-clock seed destroys reproducibility outright. Both are flagged at the
// construction site: rand.New(rand.NewSource(...)), rand/v2 PCG and ChaCha8
// constructors, and this repository's own rng.New stream constructor.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "require PRNG constructions to be seeded from explicit seed plumbing " +
		"(sim.Params), never a literal or the wall clock",
	Run: run,
}

// Scope shares the determinism analyzer's package scope: both guard the same
// reproducibility contract.
func inScope(path string) bool {
	if len(determinism.Scope) == 0 {
		return true
	}
	for _, p := range determinism.Scope {
		if p == path {
			return true
		}
	}
	return false
}

// seedArgIndex names the seed parameter position of known PRNG constructors;
// -1 means every argument is a seed (rand/v2 NewPCG takes two words).
var constructors = map[[2]string]int{
	{"math/rand", "NewSource"}:     0,
	{"math/rand/v2", "NewPCG"}:     -1,
	{"math/rand/v2", "NewChaCha8"}: 0,
	{"repro/internal/rng", "New"}:  0,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			idx, ok := constructors[[2]string{fn.Pkg().Path(), fn.Name()}]
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				if idx >= 0 && i != idx {
					continue
				}
				checkSeed(pass, fn, arg)
			}
			return true
		})
	}
	return nil
}

// checkSeed flags constant and wall-clock seed expressions. Anything else is
// assumed to be plumbed from Params or a derived salt, which is the point:
// the seed must arrive through an explicit data path the cell key can see.
func checkSeed(pass *analysis.Pass, fn *types.Func, arg ast.Expr) {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		pass.Reportf(arg.Pos(),
			"%s seeded with a constant: derive the seed from Params/explicit seed plumbing so the cell key governs every random stream",
			fn.Name())
		return
	}
	if clock := wallClockCall(pass, arg); clock != "" {
		pass.Reportf(arg.Pos(),
			"%s seeded from %s: wall-clock seeds make runs irreproducible; derive the seed from Params instead",
			fn.Name(), clock)
	}
}

// wallClockCall reports a time-package call nested in e, if any.
func wallClockCall(pass *analysis.Pass, e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			// Only package-level functions read the clock; methods (UnixNano,
			// Sub, ...) just convert a value that already escaped it.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				found = "time." + fn.Name()
				return false
			}
		}
		return true
	})
	return found
}
