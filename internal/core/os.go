package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/vma"
)

// Reserver supplies contiguous physical regions for sorted page-table levels.
// Both mem.Buddy and mem.Bump satisfy it.
type Reserver interface {
	Reserve(frames uint64) (mem.Frame, error)
}

// VMASetup is the OS-side outcome of registering one VMA with ASAP: the
// hardware descriptor and the placement regions the page-table allocator must
// honour so that the descriptor's arithmetic lands on real entries.
type VMASetup struct {
	Descriptor *Descriptor
	Regions    []*pt.Region
	Frames     uint64 // total frames reserved across levels
}

// SetupVMA reserves, at VMA creation time, one contiguous physical region per
// configured page-table level covering the area (paper §3.3: "the OS can
// reserve contiguous physical memory regions for PT nodes at each level of
// the page table ahead of the eventual demand allocation"). The returned
// regions are handed to a pt.SortedAlloc; the descriptor goes to an Engine.
func SetupVMA(area *vma.VMA, levels []int, src Reserver) (*VMASetup, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: no levels configured for %s", area)
	}
	setup := &VMASetup{
		Descriptor: &Descriptor{Start: area.Start, End: area.End},
	}
	for _, l := range levels {
		if l < 1 || l > MaxLevels {
			return nil, fmt.Errorf("core: invalid prefetch level %d", l)
		}
		n := pt.NodesFor(l, area.Start, area.End)
		base, err := src.Reserve(n)
		if err != nil {
			return nil, fmt.Errorf("core: reserving %d frames for PL%d of %s: %w", n, l, area, err)
		}
		setup.Frames += n
		setup.Regions = append(setup.Regions, &pt.Region{
			Level:   l,
			VAStart: area.Start,
			VAEnd:   area.End,
			Base:    base,
		})
		setup.Descriptor.Base[l] = base.Addr()
		setup.Descriptor.Has[l] = true
	}
	return setup, nil
}

// RegionFootprint returns the total bytes of contiguous physical memory ASAP
// must reserve for the given VMA at the given levels — the paper's "under
// 200 MB for an application dataset of 100 GB" cost figure (§1, §3.3).
func RegionFootprint(area *vma.VMA, levels []int) uint64 {
	var frames uint64
	for _, l := range levels {
		frames += pt.NodesFor(l, area.Start, area.End)
	}
	return frames * mem.PageSize
}
