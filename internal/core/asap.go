// Package core implements the paper's contribution: ASAP, Address
// Translation with Prefetching.
//
// ASAP adds a small file of architecturally exposed range registers to the
// TLB-miss path. Each register describes one prefetchable VMA: its virtual
// range and the physical base addresses of the contiguous, virtually sorted
// regions holding that VMA's page-table nodes for the deep levels (PL1 and
// PL2, plus PL3 under the five-level extension). On a TLB miss the faulting
// address is matched against the registers; on a hit the physical addresses
// of the PL1/PL2 entries the walk will reach are computed with base-plus-
// offset arithmetic and prefetched into L1-D, concurrently with the normal
// walk. The walk itself is unmodified and validates everything it consumes,
// so ASAP is invisible to correctness (paper §3.1).
package core

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pt"
)

// Config selects which page-table levels ASAP prefetches. The paper's main
// configurations are P1 (leaf level only) and P1+P2; P3 exists for the
// five-level extension of §3.5.
type Config struct {
	P1 bool
	P2 bool
	P3 bool
}

// Enabled reports whether any prefetch level is selected.
func (c Config) Enabled() bool { return c.P1 || c.P2 || c.P3 }

// Levels returns the selected levels, deepest first.
func (c Config) Levels() []int {
	var ls []int
	if c.P1 {
		ls = append(ls, 1)
	}
	if c.P2 {
		ls = append(ls, 2)
	}
	if c.P3 {
		ls = append(ls, 3)
	}
	return ls
}

// String names the configuration the way the paper's figures do.
func (c Config) String() string {
	if !c.Enabled() {
		return "baseline"
	}
	s := ""
	for _, l := range c.Levels() {
		if s != "" {
			s += "+"
		}
		s += fmt.Sprintf("P%d", l)
	}
	return s
}

// ParseConfig parses a figure-style configuration name as the CLIs accept
// it: "off" (also "", "baseline", "none"), "p1", "p2", "p1+p2", "p1+p2+p3".
func ParseConfig(s string) (Config, error) {
	var c Config
	switch strings.ToLower(s) {
	case "", "off", "baseline", "none":
	case "p1":
		c.P1 = true
	case "p2":
		c.P2 = true
	case "p1+p2":
		c.P1, c.P2 = true, true
	case "p1+p2+p3":
		c.P1, c.P2, c.P3 = true, true, true
	default:
		return c, fmt.Errorf("core: unknown ASAP config %q (want off, p1, p2, p1+p2, p1+p2+p3)", s)
	}
	return c, nil
}

// MaxLevels bounds the per-descriptor level array (root of a 5-level tree).
const MaxLevels = 5

// Descriptor is one VMA descriptor: the architectural state ASAP exposes per
// prefetch-target VMA (paper §3.4, Figure 6). Base[L] is the physical address
// of the sorted region holding the VMA's level-L page-table nodes; 0 means
// the level is not prefetchable for this VMA.
type Descriptor struct {
	Start mem.VirtAddr
	End   mem.VirtAddr
	Base  [MaxLevels + 1]mem.PhysAddr
	Has   [MaxLevels + 1]bool
}

// Contains reports whether va falls in the descriptor's range.
func (d *Descriptor) Contains(va mem.VirtAddr) bool { return va >= d.Start && va < d.End }

// TargetAddr computes, with base-plus-offset arithmetic, the physical address
// of the level-L page-table entry that a walk of va will read. This is the
// paper's PL{L}_base + (offset >> s{L}) computation: the sorted region places
// the node for va's span at a fixed slot, and the entry at a fixed offset
// within it.
func (d *Descriptor) TargetAddr(level int, va mem.VirtAddr) (mem.PhysAddr, bool) {
	if level < 1 || level > MaxLevels || !d.Has[level] {
		return 0, false
	}
	span := pt.SpanShift(level)
	nodeIdx := uint64(va)>>span - uint64(d.Start)>>span
	entryIdx := uint64(va) >> pt.SpanShift(level-1) & (mem.NodeSpan - 1)
	return d.Base[level] + mem.PhysAddr(nodeIdx*mem.PageSize+entryIdx*mem.PTEBytes), true
}

// Target is one computed prefetch: the PT level it covers and the physical
// address of the entry to fetch.
type Target struct {
	Level int
	Addr  mem.PhysAddr
}

// Engine is the range-register file plus prefetch-target computation. It is
// per hardware thread; the OS swaps its contents on context switches.
type Engine struct {
	cfg      Config
	capacity int
	regs     []*Descriptor

	// Trace, when non-nil, receives a range-probe event per lookup
	// (internal/obs). Disabled tracing costs one nil check per TLB miss.
	Trace *obs.Tracer

	lookups    uint64
	rangeHits  uint64
	installs   uint64
	overflowed uint64
}

// NewEngine returns an engine with the given register capacity (the paper
// finds 8–16 registers cover 99% of the studied footprints, §3.4).
func NewEngine(capacity int, cfg Config) *Engine {
	if capacity <= 0 {
		panic("core: engine needs at least one range register")
	}
	return &Engine{cfg: cfg, capacity: capacity}
}

// Config returns the prefetch-level configuration.
func (e *Engine) Config() Config { return e.cfg }

// Capacity returns the number of range registers.
func (e *Engine) Capacity() int { return e.capacity }

// Install loads a descriptor into a free range register. When all registers
// are occupied the descriptor is dropped (and counted): walks into its VMA
// simply run unaccelerated, mirroring the paper's capacity-limited design.
func (e *Engine) Install(d *Descriptor) bool {
	e.installs++
	if len(e.regs) >= e.capacity {
		e.overflowed++
		return false
	}
	e.regs = append(e.regs, d)
	return true
}

// Swap replaces the register-file contents with the descriptor file of an
// incoming process — the per-context-switch OS work the paper's cost argument
// is about (§3.3: the VMA descriptors are per-thread architectural state the
// OS saves and restores like any other register). The outgoing contents are
// discarded (each process's canonical descriptor file lives with its address
// space, so there is nothing to write back), the incoming descriptors install
// under the usual capacity limit — descriptors beyond the register count are
// dropped and counted, every switch, exactly as a real capacity-limited
// restore would drop them — and the cumulative lookup/hit/overflow counters
// carry across the swap so windowed metering spans all processes. The return
// value is the number of registers moved (saved + restored), the volume that
// scales the modeled switch cost.
func (e *Engine) Swap(descs []*Descriptor) int {
	saved := len(e.regs)
	e.regs = e.regs[:0]
	for _, d := range descs {
		e.Install(d)
	}
	return saved + len(e.regs)
}

// Lookup matches va against the range registers (the check that runs in
// parallel with page-walker activation on every TLB miss).
func (e *Engine) Lookup(va mem.VirtAddr) *Descriptor {
	e.lookups++
	for _, d := range e.regs {
		if d.Contains(va) {
			e.rangeHits++
			if e.Trace != nil {
				e.Trace.AccelProbe("range", true)
			}
			return d
		}
	}
	if e.Trace != nil {
		e.Trace.AccelProbe("range", false)
	}
	return nil
}

// Targets appends the prefetch targets for va to buf and returns it. It
// returns buf unchanged when va misses the range registers or no configured
// level is available in the matching descriptor.
func (e *Engine) Targets(va mem.VirtAddr, buf []Target) []Target {
	if !e.cfg.Enabled() {
		return buf
	}
	d := e.Lookup(va)
	if d == nil {
		return buf
	}
	for _, l := range e.cfg.Levels() {
		if addr, ok := d.TargetAddr(l, va); ok {
			buf = append(buf, Target{Level: l, Addr: addr})
		}
	}
	return buf
}

// RangeHitRate returns the fraction of lookups that matched a register.
func (e *Engine) RangeHitRate() float64 {
	if e.lookups == 0 {
		return 0
	}
	return float64(e.rangeHits) / float64(e.lookups)
}

// Lookups returns the cumulative number of range-register lookups.
func (e *Engine) Lookups() uint64 { return e.lookups }

// RangeHits returns the cumulative number of lookups that matched a register.
func (e *Engine) RangeHits() uint64 { return e.rangeHits }

// Overflowed returns how many descriptors were dropped for lack of registers.
func (e *Engine) Overflowed() uint64 { return e.overflowed }
