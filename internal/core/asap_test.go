package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/vma"
)

func TestConfigString(t *testing.T) {
	cases := map[string]Config{
		"baseline": {},
		"P1":       {P1: true},
		"P1+P2":    {P1: true, P2: true},
		"P2":       {P2: true},
		"P1+P2+P3": {P1: true, P2: true, P3: true},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", cfg, got, want)
		}
	}
}

func TestDescriptorTargetMatchesPageTable(t *testing.T) {
	// The defining correctness property of ASAP: the base-plus-offset
	// computation must land exactly on the entry the walker will read, for
	// every address in the VMA, when the PT allocator honours the regions.
	area := &vma.VMA{Start: mem.FromVPN(1000), End: mem.FromVPN(1000 + 64*mem.NodeSpan), Kind: vma.Heap, Name: "heap"}
	src := mem.NewBump(1<<20, 1<<20)
	setup, err := SetupVMA(area, []int{1, 2}, src)
	if err != nil {
		t.Fatal(err)
	}
	alloc := pt.NewSortedAlloc(pt.NewScatterAlloc(1<<24, 1<<20, 1), 0, 2)
	for _, r := range setup.Regions {
		alloc.AddRegion(r)
	}
	table, err := pt.New(pt.Config{Levels: 4, LeafLevel: 1}, alloc, false)
	if err != nil {
		t.Fatal(err)
	}
	table.PopulateRange(area.Start, area.End)

	f := func(raw uint64) bool {
		va := area.Start + mem.VirtAddr(raw%area.Bytes())
		wr := table.Walk(va)
		if !wr.Present {
			return false
		}
		for _, e := range wr.Entries[:wr.N] {
			if e.Level > 2 {
				continue
			}
			got, ok := setup.Descriptor.TargetAddr(e.Level, va)
			if !ok || got != e.EntryAddr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTargetAddrSortedness(t *testing.T) {
	// Paper footnote 1: VPN X < VPN Y implies the PT entry for X sits at a
	// lower physical address than the entry for Y, per level.
	d := &Descriptor{Start: mem.FromVPN(512), End: mem.FromVPN(512 + 100*mem.NodeSpan)}
	d.Base[1], d.Has[1] = mem.PhysAddr(1<<30), true
	d.Base[2], d.Has[2] = mem.PhysAddr(1<<31), true
	f := func(a, b uint64) bool {
		x := d.Start + mem.VirtAddr(a%uint64(d.End-d.Start))
		y := d.Start + mem.VirtAddr(b%uint64(d.End-d.Start))
		if x > y {
			x, y = y, x
		}
		for _, l := range []int{1, 2} {
			ax, _ := d.TargetAddr(l, x)
			ay, _ := d.TargetAddr(l, y)
			if ax > ay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetAddrUnconfiguredLevel(t *testing.T) {
	d := &Descriptor{Start: 0, End: mem.VirtAddr(mem.GiB)}
	d.Base[1], d.Has[1] = 4096, true
	if _, ok := d.TargetAddr(2, 0); ok {
		t.Fatal("level 2 target computed without a region")
	}
	if _, ok := d.TargetAddr(0, 0); ok {
		t.Fatal("level 0 accepted")
	}
	if _, ok := d.TargetAddr(6, 0); ok {
		t.Fatal("level 6 accepted")
	}
}

func TestEngineCapacity(t *testing.T) {
	e := NewEngine(2, Config{P1: true})
	d1 := &Descriptor{Start: 0, End: mem.PageSize}
	d2 := &Descriptor{Start: 2 * mem.PageSize, End: 3 * mem.PageSize}
	d3 := &Descriptor{Start: 4 * mem.PageSize, End: 5 * mem.PageSize}
	if !e.Install(d1) || !e.Install(d2) {
		t.Fatal("install within capacity failed")
	}
	if e.Install(d3) {
		t.Fatal("install beyond capacity succeeded")
	}
	if e.Overflowed() != 1 {
		t.Fatalf("Overflowed = %d", e.Overflowed())
	}
	if e.Capacity() != 2 {
		t.Fatalf("Capacity = %d", e.Capacity())
	}
}

func TestEngineLookupAndTargets(t *testing.T) {
	e := NewEngine(4, Config{P1: true, P2: true})
	d := &Descriptor{Start: mem.FromVPN(0), End: mem.FromVPN(10 * mem.NodeSpan)}
	d.Base[1], d.Has[1] = mem.PhysAddr(1<<30), true
	d.Base[2], d.Has[2] = mem.PhysAddr(1<<31), true
	e.Install(d)

	if e.Lookup(mem.FromVPN(5)) != d {
		t.Fatal("lookup inside VMA missed")
	}
	if e.Lookup(mem.FromVPN(20*mem.NodeSpan)) != nil {
		t.Fatal("lookup outside VMA hit")
	}
	ts := e.Targets(mem.FromVPN(5), nil)
	if len(ts) != 2 {
		t.Fatalf("targets = %v", ts)
	}
	if ts[0].Level != 1 || ts[1].Level != 2 {
		t.Fatalf("target levels = %v", ts)
	}
	// Outside range: no targets.
	if ts := e.Targets(mem.FromVPN(20*mem.NodeSpan), nil); len(ts) != 0 {
		t.Fatalf("out-of-range targets = %v", ts)
	}
	if e.RangeHitRate() <= 0 || e.RangeHitRate() >= 1 {
		t.Fatalf("RangeHitRate = %v", e.RangeHitRate())
	}
}

func TestEngineDisabled(t *testing.T) {
	e := NewEngine(1, Config{})
	d := &Descriptor{Start: 0, End: mem.VirtAddr(mem.GiB)}
	d.Base[1], d.Has[1] = 4096, true
	e.Install(d)
	if ts := e.Targets(0, nil); len(ts) != 0 {
		t.Fatal("disabled engine produced targets")
	}
}

func TestEngineZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine(0) did not panic")
		}
	}()
	NewEngine(0, Config{P1: true})
}

func TestSetupVMAFrames(t *testing.T) {
	// 1 GiB VMA: PL1 needs 512 node frames, PL2 needs 1.
	area := &vma.VMA{Start: 0, End: mem.VirtAddr(mem.GiB), Kind: vma.Heap, Name: "heap"}
	src := mem.NewBump(0, 1<<20)
	setup, err := SetupVMA(area, []int{1, 2}, src)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Frames != 513 {
		t.Fatalf("Frames = %d, want 513", setup.Frames)
	}
	if len(setup.Regions) != 2 {
		t.Fatalf("regions = %d", len(setup.Regions))
	}
	if !setup.Descriptor.Has[1] || !setup.Descriptor.Has[2] {
		t.Fatal("descriptor levels missing")
	}
	if RegionFootprint(area, []int{1, 2}) != 513*mem.PageSize {
		t.Fatalf("RegionFootprint = %d", RegionFootprint(area, []int{1, 2}))
	}
}

func TestSetupVMACostMatchesPaper(t *testing.T) {
	// Paper §3.3: for a 100 GB dataset, PL2 requires ~400 KB and PL1 ~200 MB,
	// i.e. ~0.2% of the dataset.
	area := &vma.VMA{Start: 0, End: mem.VirtAddr(100 * mem.GiB), Kind: vma.Heap, Name: "heap"}
	pl1 := RegionFootprint(area, []int{1})
	pl2 := RegionFootprint(area, []int{2})
	if pl1 != 200*mem.MiB {
		t.Fatalf("PL1 footprint = %d MiB, want 200", pl1/mem.MiB)
	}
	if pl2 != 400*mem.KiB {
		t.Fatalf("PL2 footprint = %d KiB, want 400", pl2/mem.KiB)
	}
	total := float64(pl1+pl2) / float64(area.Bytes())
	if total > 0.0021 {
		t.Fatalf("region cost fraction = %v, want ≤ 0.2%%", total)
	}
}

func TestSetupVMAErrors(t *testing.T) {
	area := &vma.VMA{Start: 0, End: mem.VirtAddr(mem.GiB), Kind: vma.Heap, Name: "heap"}
	if _, err := SetupVMA(area, nil, mem.NewBump(0, 1<<20)); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, err := SetupVMA(area, []int{7}, mem.NewBump(0, 1<<20)); err == nil {
		t.Fatal("invalid level accepted")
	}
	if _, err := SetupVMA(area, []int{1}, mem.NewBump(0, 4)); err == nil {
		t.Fatal("exhausted reserver accepted")
	}
}

func TestEngineSwap(t *testing.T) {
	e := NewEngine(2, Config{P1: true})
	a := &Descriptor{Start: 0, End: 0x1000}
	b := &Descriptor{Start: 0x2000, End: 0x3000}
	c := &Descriptor{Start: 0x4000, End: 0x5000}
	if moved := e.Swap([]*Descriptor{a, b, c}); moved != 2 {
		t.Fatalf("restore into empty file moved %d registers, want 2", moved)
	}
	if e.Overflowed() != 1 {
		t.Fatalf("capacity drop not counted: %d", e.Overflowed())
	}
	if e.Lookup(0x2800) != b {
		t.Fatal("restored descriptor not resident")
	}
	// Swapping in a one-descriptor file saves 2 and restores 1.
	if moved := e.Swap([]*Descriptor{c}); moved != 3 {
		t.Fatalf("swap moved %d registers, want 3", moved)
	}
	if e.Lookup(0x2800) != nil {
		t.Fatal("outgoing descriptor survived the swap")
	}
	if e.Lookup(0x4800) != c {
		t.Fatal("incoming descriptor missing after swap")
	}
	// Overflow keeps accumulating across swaps: the same file re-restored
	// re-drops its excess.
	e.Swap([]*Descriptor{a, b, c})
	if e.Overflowed() != 2 {
		t.Fatalf("cumulative overflow = %d, want 2", e.Overflowed())
	}
}
