// Package walker models the hardware page-table walker: the serial pointer
// chase through the radix tree on every TLB miss, accelerated by page-walk
// caches and, when an ASAP engine is attached, by prefetches to the deep
// page-table levels.
//
// Timing follows the paper's methodology (§4): a walk's latency is the sum of
// the latencies of the memory-hierarchy levels serving its accesses (plus the
// PWC lookup). An ASAP prefetch issued at walk start completes after the
// latency of wherever the target line resided; when the serial walker reaches
// that level it pays max(L1 latency, remaining prefetch time) — a fully
// covered access costs one L1-D hit, a partially covered one merges with the
// in-flight request.
package walker

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pt"
	"repro/internal/pwc"
)

// Dim tags which translation dimension an access belongs to.
type Dim int8

// Walk dimensions.
const (
	DimNative Dim = iota
	DimGuest
	DimHost
)

// String names the dimension.
func (d Dim) String() string {
	switch d {
	case DimNative:
		return "native"
	case DimGuest:
		return "guest"
	case DimHost:
		return "host"
	default:
		return "dim?"
	}
}

// MaxAccesses bounds the per-walk access trace: a 4-level 2D walk performs up
// to 24 memory accesses plus PWC-skip markers.
const MaxAccesses = 48

// Access records one page-walk request: which PT level it read, where the
// memory hierarchy served it, what it cost, and whether an ASAP prefetch
// covered it. PWC-skipped levels appear with Served == ServedPWC and zero
// cycles (the single PWC lookup latency is accounted once per walk).
type Access struct {
	Dim        Dim
	Level      int8
	Served     cache.ServedBy
	Cycles     int32
	Prefetched bool
}

// Result is the outcome of one simulated walk.
type Result struct {
	Cycles          int  // total walk latency
	Present         bool // translation exists
	Huge            bool // terminal mapping is a 2 MB page
	N               int
	Accesses        [MaxAccesses]Access
	PrefetchIssued  int // prefetches launched
	PrefetchCovered int // demand accesses satisfied by a prefetch
}

func (r *Result) reset() {
	r.Cycles = 0
	r.Present = false
	r.Huge = false
	r.N = 0
	r.PrefetchIssued = 0
	r.PrefetchCovered = 0
}

func (r *Result) add(dim Dim, level int, served cache.ServedBy, cycles int, prefetched bool) {
	if r.N < MaxAccesses {
		r.Accesses[r.N] = Access{Dim: dim, Level: int8(level), Served: served, Cycles: int32(cycles), Prefetched: prefetched}
		r.N++
	}
}

// prefetchState tracks in-flight ASAP prefetches for one (sub)walk: the
// completion time (relative to walk start) and target line per PT level.
type prefetchState struct {
	done [core.MaxLevels + 1]int
	line [core.MaxLevels + 1]uint64
}

func (p *prefetchState) clear() {
	for i := range p.done {
		p.done[i] = -1
	}
}

// issue launches the engine's prefetches for va at relative time t, charging
// MSHRs (absolute base time now) and filling the hierarchy.
func issue(e *core.Engine, h *cache.Hierarchy, mshr *cache.MSHRFile, tr *obs.Tracer,
	va mem.VirtAddr, now int64, t int, buf []core.Target, p *prefetchState) (issued int, _ []core.Target) {
	p.clear()
	if e == nil {
		return 0, buf
	}
	buf = e.Targets(va, buf[:0])
	for _, tg := range buf {
		where := h.Where(tg.Addr)
		lat := h.Latency(where)
		if mshr != nil && !mshr.TryAcquire(now+int64(t), now+int64(t+lat)) {
			if tr != nil {
				tr.MSHRDrop(tg.Level, now+int64(t))
			}
			continue // best effort: no MSHR, no prefetch (paper §3.4)
		}
		// The prefetch travels like a normal request and lands in L1-D.
		h.Access(tg.Addr)
		p.done[tg.Level] = t + lat
		p.line[tg.Level] = tg.Addr.Line()
		issued++
		if tr != nil {
			tr.Prefetch(tg.Level, now+int64(t), int64(lat))
		}
	}
	return issued, buf
}

// Walker simulates native (1D) walks.
type Walker struct {
	H    *cache.Hierarchy
	PWC  *pwc.PWC
	ASAP *core.Engine    // nil for the baseline
	MSHR *cache.MSHRFile // nil means unlimited MSHRs
	// Trace, when non-nil, receives per-step walk events (internal/obs).
	// Disabled tracing costs one nil check per walk phase, nothing per
	// reference.
	Trace *obs.Tracer

	targets []core.Target
	pf      prefetchState
}

// Walk simulates the walk triggered by a TLB miss on va at absolute time now,
// writing the trace into res.
func (w *Walker) Walk(now int64, table *pt.Table, va mem.VirtAddr, res *Result) {
	res.reset()
	t := 0
	var issued int
	issued, w.targets = issue(w.ASAP, w.H, w.MSHR, w.Trace, va, now, t, w.targets, &w.pf)
	res.PrefetchIssued = issued

	root := table.Config().Levels
	t += w.PWC.Latency()
	start := w.PWC.Lookup(va, root)
	if w.Trace != nil {
		w.Trace.PWCLookup(now, int64(w.PWC.Latency()), start)
	}
	for l := root; l > start; l-- {
		res.add(DimNative, l, cache.ServedPWC, 0, false)
		if w.Trace != nil {
			w.Trace.Step(DimNative.String(), l, cache.ServedPWC.String(), now+int64(t), 0, false)
		}
	}

	wr := table.Walk(va)
	l1 := w.H.Latency(cache.ServedL1)
	for i := 0; i < wr.N; i++ {
		e := wr.Entries[i]
		if e.Level > start {
			continue // skipped via PWC
		}
		served, cost, wasPf := cache.ServedL1, 0, false
		if d := w.pf.done[e.Level]; d >= 0 && w.pf.line[e.Level] == e.EntryAddr.Line() {
			cost = d - t
			if cost < l1 {
				cost = l1
			}
			wasPf = true
			res.PrefetchCovered++
		} else {
			served, cost = w.H.Access(e.EntryAddr)
		}
		if w.Trace != nil {
			w.Trace.Step(DimNative.String(), int(e.Level), served.String(), now+int64(t), int64(cost), wasPf)
		}
		t += cost
		res.add(DimNative, e.Level, served, cost, wasPf)
		if e.Level != wr.TermLevel {
			w.PWC.Insert(va, e.Level)
		}
	}
	res.Cycles = t
	res.Present = wr.Present
	res.Huge = wr.Huge
}
