package walker

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/pwc"
	"repro/internal/vma"
)

// rig bundles a small native setup: a 64 MiB heap VMA with its page table,
// optionally placed in ASAP sorted regions.
type rig struct {
	h      *cache.Hierarchy
	pwc    *pwc.PWC
	table  *pt.Table
	area   *vma.VMA
	engine *core.Engine
	alloc  *pt.SortedAlloc
}

func newRig(t *testing.T, cfg core.Config, holeProb float64) *rig {
	t.Helper()
	r := &rig{
		h:    cache.NewHierarchy(cache.DefaultConfig()),
		pwc:  pwc.New(pwc.DefaultConfig()),
		area: &vma.VMA{Start: mem.FromVPN(1 << 20), End: mem.FromVPN(1<<20 + 32*mem.NodeSpan), Kind: vma.Heap, Name: "heap"},
	}
	setup, err := core.SetupVMA(r.area, []int{1, 2}, mem.NewBump(1<<22, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	r.alloc = pt.NewSortedAlloc(pt.NewScatterAlloc(1<<26, 1<<20, 3), holeProb, 4)
	for _, reg := range setup.Regions {
		r.alloc.AddRegion(reg)
	}
	r.table, err = pt.New(pt.Config{Levels: 4, LeafLevel: 1}, r.alloc, false)
	if err != nil {
		t.Fatal(err)
	}
	r.table.PopulateRange(r.area.Start, r.area.End)
	if cfg.Enabled() {
		r.engine = core.NewEngine(16, cfg)
		r.engine.Install(setup.Descriptor)
	}
	return r
}

func (r *rig) walker() *Walker {
	return &Walker{H: r.h, PWC: r.pwc, ASAP: r.engine}
}

func TestBaselineColdWalk(t *testing.T) {
	r := newRig(t, core.Config{}, 0)
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	// Cold: PWC lookup (2) + 4 accesses all served by memory (191 each).
	want := 2 + 4*191
	if res.Cycles != want {
		t.Fatalf("cold walk cycles = %d, want %d", res.Cycles, want)
	}
	if !res.Present || res.Huge {
		t.Fatalf("present/huge = %v/%v", res.Present, res.Huge)
	}
	if res.N != 4 {
		t.Fatalf("accesses = %d", res.N)
	}
	for i, a := range res.Accesses[:res.N] {
		if a.Served != cache.ServedMem || a.Dim != DimNative {
			t.Fatalf("access %d: %+v", i, a)
		}
	}
	// Walk order is root-first.
	if res.Accesses[0].Level != 4 || res.Accesses[3].Level != 1 {
		t.Fatalf("walk order: %+v", res.Accesses[:res.N])
	}
}

func TestWarmWalkUsesPWCAndCaches(t *testing.T) {
	r := newRig(t, core.Config{}, 0)
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	w.Walk(0, r.table, r.area.Start, &res)
	// Second identical walk: PWC caches the PL2 entry, so the walker resumes
	// at PL1, which is L1-resident. Cost = 2 (PWC) + 4 (L1).
	if res.Cycles != 6 {
		t.Fatalf("warm walk cycles = %d, want 6", res.Cycles)
	}
	pwcServed := 0
	for _, a := range res.Accesses[:res.N] {
		if a.Served == cache.ServedPWC {
			pwcServed++
		}
	}
	if pwcServed != 3 {
		t.Fatalf("PWC-served levels = %d, want 3 (PL4, PL3, PL2)", pwcServed)
	}
}

func TestASAPColdWalkOverlap(t *testing.T) {
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	// Prefetches to PL1/PL2 launch at t=0, completing at 191. The walker
	// reaches PL2 at t = 2 + 191 + 191 = 384 > 191, so both deep accesses
	// cost one L1 hit: total = 2 + 191 + 191 + 4 + 4.
	want := 2 + 191 + 191 + 4 + 4
	if res.Cycles != want {
		t.Fatalf("ASAP cold walk = %d, want %d", res.Cycles, want)
	}
	if res.PrefetchIssued != 2 || res.PrefetchCovered != 2 {
		t.Fatalf("prefetch issued/covered = %d/%d", res.PrefetchIssued, res.PrefetchCovered)
	}
	covered := 0
	for _, a := range res.Accesses[:res.N] {
		if a.Prefetched {
			covered++
			if a.Level > 2 {
				t.Fatalf("prefetch covered level %d", a.Level)
			}
		}
	}
	if covered != 2 {
		t.Fatalf("covered accesses = %d", covered)
	}
}

func TestASAPPartialOverlapMergesInFlight(t *testing.T) {
	// Warm the upper levels so the walker arrives at PL1 before the prefetch
	// completes; the cost must be the remaining prefetch time, not a full
	// memory access and not a free L1 hit.
	r := newRig(t, core.Config{P1: true}, 0)
	w := r.walker()
	var res Result
	va := r.area.Start
	w.Walk(0, r.table, va, &res) // cold walk warms PL4..PL2 + the PWC
	// Same 2 MB span, different page: the PWC now resumes directly at PL1
	// (t=2), but the target PTE sits in a different, cold cache line, so the
	// prefetch (completing at 191) is only partially overlapped.
	va2 := r.area.Start + mem.VirtAddr(32*mem.PageSize)
	w.Walk(0, r.table, va2, &res)
	var pl1 *Access
	for i := range res.Accesses[:res.N] {
		if res.Accesses[i].Level == 1 {
			pl1 = &res.Accesses[i]
		}
	}
	if pl1 == nil || !pl1.Prefetched {
		t.Fatalf("PL1 access not prefetch-covered: %+v", res.Accesses[:res.N])
	}
	if pl1.Cycles >= 191 || pl1.Cycles <= 4 {
		t.Fatalf("PL1 partial overlap cost = %d, want in (4, 191)", pl1.Cycles)
	}
	if res.Cycles >= 2+191+191 {
		t.Fatalf("partially covered walk (%d cycles) no better than baseline", res.Cycles)
	}
}

func TestASAPHolesNotAccelerated(t *testing.T) {
	r := newRig(t, core.Config{P1: true, P2: true}, 1.0) // every node displaced
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	if res.PrefetchCovered != 0 {
		t.Fatalf("hole walk covered %d accesses", res.PrefetchCovered)
	}
	// Prefetches still issue (the engine cannot know about holes) but the
	// walk runs at baseline speed.
	if res.PrefetchIssued != 2 {
		t.Fatalf("prefetch issued = %d", res.PrefetchIssued)
	}
	if res.Cycles != 2+4*191 {
		t.Fatalf("hole walk cycles = %d, want baseline %d", res.Cycles, 2+4*191)
	}
}

func TestASAPOutsideRangeRegisters(t *testing.T) {
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	// Map another VMA outside the registered range.
	outside := mem.FromVPN(1 << 24)
	r.table.PopulateRange(outside, outside+mem.VirtAddr(mem.HugeSize))
	w := r.walker()
	var res Result
	w.Walk(0, r.table, outside, &res)
	if res.PrefetchIssued != 0 || res.PrefetchCovered != 0 {
		t.Fatalf("prefetch outside range registers: %d/%d", res.PrefetchIssued, res.PrefetchCovered)
	}
}

func TestASAPMSHRLimitDropsPrefetches(t *testing.T) {
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	w := r.walker()
	w.MSHR = cache.NewMSHRFile(1)
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	if res.PrefetchIssued != 1 {
		t.Fatalf("issued %d prefetches with 1 MSHR", res.PrefetchIssued)
	}
	if w.MSHR.Dropped() != 1 {
		t.Fatalf("dropped = %d", w.MSHR.Dropped())
	}
}

func TestWalkFaultStillWalks(t *testing.T) {
	// Paper §3.7.1: a walk that ends in a fault performs its accesses (and
	// ASAP prefetches still issue, accelerating fault detection).
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	w := r.walker()
	var res Result
	// An address in the registered VMA range... but unmapped: extend the VMA
	// view by walking one page past the populated range while still inside
	// the descriptor? The rig populates the whole VMA, so probe an address
	// in a neighbouring span that shares the PL4/PL3 path but has no PL2
	// entry.
	unmapped := r.area.End + mem.VirtAddr(mem.HugeSize)
	w.Walk(0, r.table, unmapped, &res)
	if res.Present {
		t.Fatal("unmapped address reported present")
	}
	if res.N == 0 || res.Cycles == 0 {
		t.Fatal("faulting walk performed no accesses")
	}
}

func TestFiveLevelWalk(t *testing.T) {
	alloc := pt.NewScatterAlloc(0, 1<<24, 9)
	table, err := pt.New(pt.Config{Levels: 5, LeafLevel: 1}, alloc, false)
	if err != nil {
		t.Fatal(err)
	}
	va := mem.FromVPN(12345)
	table.EnsurePage(va)
	w := &Walker{H: cache.NewHierarchy(cache.DefaultConfig()), PWC: pwc.New(pwc.DefaultConfig())}
	var res Result
	w.Walk(0, table, va, &res)
	if res.N != 5 {
		t.Fatalf("5-level walk accesses = %d", res.N)
	}
	if res.Cycles != 2+5*191 {
		t.Fatalf("5-level cold walk = %d, want %d", res.Cycles, 2+5*191)
	}
}

func TestHugePageWalkStopsAtPL2(t *testing.T) {
	r := newRig(t, core.Config{}, 0)
	hugeVA := mem.VirtAddr(uint64(40) << pt.SpanShift(1))
	r.table.EnsureHuge(hugeVA)
	w := r.walker()
	var res Result
	w.Walk(0, r.table, hugeVA+5, &res)
	if !res.Present || !res.Huge {
		t.Fatalf("huge walk present/huge = %v/%v", res.Present, res.Huge)
	}
	if res.N != 3 {
		t.Fatalf("huge walk accesses = %d, want 3", res.N)
	}
}

func TestASAPNeverChangesOutcome(t *testing.T) {
	// Correctness guarantee (paper §3.1): with and without ASAP, the walk
	// returns identical translations — only the timing differs.
	base := newRig(t, core.Config{}, 0)
	asap := newRig(t, core.Config{P1: true, P2: true}, 0)
	wb, wa := base.walker(), asap.walker()
	var rb, ra Result
	for vpn := uint64(0); vpn < 32*mem.NodeSpan; vpn += 97 {
		va := base.area.Start + mem.FromVPN(vpn)
		wb.Walk(0, base.table, va, &rb)
		wa.Walk(0, asap.table, va, &ra)
		if rb.Present != ra.Present || rb.Huge != ra.Huge {
			t.Fatalf("outcome diverged at vpn %d", vpn)
		}
		if ra.Cycles > rb.Cycles {
			t.Fatalf("ASAP walk slower at vpn %d: %d > %d", vpn, ra.Cycles, rb.Cycles)
		}
	}
}

func TestDimString(t *testing.T) {
	if DimNative.String() != "native" || DimGuest.String() != "guest" || DimHost.String() != "host" {
		t.Fatal("Dim names wrong")
	}
}
