package walker

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pt"
	"repro/internal/pwc"
)

// Nested simulates the 2D page walks of a virtualized system (paper Fig 7):
// each guest page-table access first requires a full 1D walk of the host
// (nested/EPT) page table to translate the guest-physical address of the
// guest PT node, and the final data page takes one more host walk — up to 24
// memory accesses for 4-level tables.
//
// ASAP applies in both dimensions: guest prefetches (to the machine addresses
// of the guest's pinned, sorted PL1/PL2 regions) launch at 2D-walk start;
// host prefetches launch at the start of each constituent 1D host walk.
type Nested struct {
	H         *cache.Hierarchy
	GuestPWC  *pwc.PWC
	HostPWC   *pwc.PWC
	GuestASAP *core.Engine // nil disables guest-dimension prefetch
	HostASAP  *core.Engine // nil disables host-dimension prefetch
	MSHR      *cache.MSHRFile
	GuestPT   *pt.Table
	HostPT    *pt.Table
	// Translate maps a guest-physical address to its machine address. It
	// must agree with the host page table's layout (virt.Machine provides
	// both consistently).
	Translate func(gpa mem.PhysAddr) mem.PhysAddr
	// Trace, when non-nil, receives per-step walk events (internal/obs).
	Trace *obs.Tracer

	gTargets []core.Target
	hTargets []core.Target
	gpf      prefetchState
	hpf      prefetchState
}

// Walk simulates the 2D walk for guest virtual address gva whose data page
// lives at guest-physical address dataGPA, writing the trace into res.
func (n *Nested) Walk(now int64, gva mem.VirtAddr, dataGPA mem.PhysAddr, res *Result) {
	res.reset()
	t := 0

	// Guest-dimension prefetches launch immediately at 2D-walk start,
	// overlapping the guest PT-entry accesses with everything before them
	// (paper §3.6: accesses 15 and 20 in Fig 7).
	var issued int
	issued, n.gTargets = issue(n.GuestASAP, n.H, n.MSHR, n.Trace, gva, now, t, n.gTargets, &n.gpf)
	res.PrefetchIssued += issued

	gRoot := n.GuestPT.Config().Levels
	t += n.GuestPWC.Latency()
	gStart := n.GuestPWC.Lookup(gva, gRoot)
	if n.Trace != nil {
		n.Trace.PWCLookup(now, int64(n.GuestPWC.Latency()), gStart)
	}
	for l := gRoot; l > gStart; l-- {
		// A guest PWC hit caches the guest entry together with its machine
		// pointer, so the host walk for that level is skipped entirely.
		res.add(DimGuest, l, cache.ServedPWC, 0, false)
		if n.Trace != nil {
			n.Trace.Step(DimGuest.String(), l, cache.ServedPWC.String(), now+int64(t), 0, false)
		}
	}

	gw := n.GuestPT.Walk(gva)
	l1 := n.H.Latency(cache.ServedL1)
	for i := 0; i < gw.N; i++ {
		e := gw.Entries[i]
		if e.Level > gStart {
			continue
		}
		// 1D host walk translating the guest PT node's page.
		t = n.hostWalk(now, t, e.EntryAddr, res)
		// Access the guest PT entry itself, at its machine address.
		maddr := n.Translate(e.EntryAddr)
		served, cost, wasPf := cache.ServedL1, 0, false
		if d := n.gpf.done[e.Level]; d >= 0 && n.gpf.line[e.Level] == maddr.Line() {
			cost = d - t
			if cost < l1 {
				cost = l1
			}
			wasPf = true
			res.PrefetchCovered++
		} else {
			served, cost = n.H.Access(maddr)
		}
		if n.Trace != nil {
			n.Trace.Step(DimGuest.String(), int(e.Level), served.String(), now+int64(t), int64(cost), wasPf)
		}
		t += cost
		res.add(DimGuest, e.Level, served, cost, wasPf)
		if e.Level != gw.TermLevel {
			n.GuestPWC.Insert(gva, e.Level)
		}
	}

	if gw.Present {
		// Final 1D host walk translating the data page itself.
		t = n.hostWalk(now, t, dataGPA, res)
	}

	res.Cycles = t
	res.Present = gw.Present
	res.Huge = gw.Huge
}

// hostWalk performs one 1D walk of the host page table for guest-physical
// address gpa, starting at relative walk time t, and returns the updated
// time.
func (n *Nested) hostWalk(now int64, t int, gpa mem.PhysAddr, res *Result) int {
	// Host-dimension prefetches launch as the 1D walk starts (paper §3.6),
	// using the guest-physical address against the host range registers.
	var issued int
	issued, n.hTargets = issue(n.HostASAP, n.H, n.MSHR, n.Trace, mem.VirtAddr(gpa), now, t, n.hTargets, &n.hpf)
	res.PrefetchIssued += issued

	hRoot := n.HostPT.Config().Levels
	hT0 := t
	t += n.HostPWC.Latency()
	hStart := n.HostPWC.Lookup(mem.VirtAddr(gpa), hRoot)
	if n.Trace != nil {
		n.Trace.PWCLookup(now+int64(hT0), int64(n.HostPWC.Latency()), hStart)
	}
	for l := hRoot; l > hStart; l-- {
		res.add(DimHost, l, cache.ServedPWC, 0, false)
		if n.Trace != nil {
			n.Trace.Step(DimHost.String(), l, cache.ServedPWC.String(), now+int64(t), 0, false)
		}
	}

	hw := n.HostPT.Walk(mem.VirtAddr(gpa))
	l1 := n.H.Latency(cache.ServedL1)
	for i := 0; i < hw.N; i++ {
		e := hw.Entries[i]
		if e.Level > hStart {
			continue
		}
		served, cost, wasPf := cache.ServedL1, 0, false
		if d := n.hpf.done[e.Level]; d >= 0 && n.hpf.line[e.Level] == e.EntryAddr.Line() {
			cost = d - t
			if cost < l1 {
				cost = l1
			}
			wasPf = true
			res.PrefetchCovered++
		} else {
			served, cost = n.H.Access(e.EntryAddr)
		}
		if n.Trace != nil {
			n.Trace.Step(DimHost.String(), int(e.Level), served.String(), now+int64(t), int64(cost), wasPf)
		}
		t += cost
		res.add(DimHost, e.Level, served, cost, wasPf)
		if e.Level != hw.TermLevel {
			n.HostPWC.Insert(mem.VirtAddr(gpa), e.Level)
		}
	}
	return t
}
