package walker

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/pwc"
	"repro/internal/virt"
	"repro/internal/vma"
)

// nestedRig assembles a small virtualized setup: a guest with a 64 MiB heap,
// its guest PT placed in guest-physical frames, an EPT over 1 GiB of guest
// RAM, and optional ASAP in both dimensions.
type nestedRig struct {
	h      *cache.Hierarchy
	m      *virt.Machine
	area   *vma.VMA
	gASAP  *core.Engine
	hASAP  *core.Engine
	vpnGPA func(vpn uint64) mem.PhysAddr
}

func newNestedRig(t *testing.T, gCfg, hCfg core.Config, hostHuge bool) *nestedRig {
	t.Helper()
	r := &nestedRig{
		h:    cache.NewHierarchy(cache.DefaultConfig()),
		area: &vma.VMA{Start: mem.FromVPN(1 << 20), End: mem.FromVPN(1<<20 + 32*mem.NodeSpan), Kind: vma.Heap, Name: "heap"},
	}
	const guestFrames = uint64(1) << 18 // 1 GiB of guest RAM
	gmap := virt.NewGPAMap(1<<24, 1<<22, hostHuge, 42)

	// Guest PT: nodes in guest-physical frames from a bump region at the top
	// of guest RAM (kept simple; scattering guest PT frames adds nothing for
	// these unit tests).
	guestPTBase := mem.Frame(guestFrames - (1 << 14))
	var guestAlloc pt.Allocator = pt.NewScatterAlloc(guestPTBase, 1<<14, 7)
	if gCfg.Enabled() {
		sorted := pt.NewSortedAlloc(guestAlloc, 0, 8)
		setup, err := core.SetupVMA(r.area, gCfg.Levels(), mem.NewBump(guestPTBase-(1<<14), 1<<14))
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range setup.Regions {
			sorted.AddRegion(reg)
			// Pin the region machine-contiguously and expose machine bases in
			// the descriptor (paper §3.6: contiguity in both physical spaces).
			mbase := mem.Frame(1<<23) + mem.Frame(uint64(reg.Base))
			if err := gmap.Pin(uint64(reg.Base), pt.NodesFor(reg.Level, reg.VAStart, reg.VAEnd), mbase); err != nil {
				t.Fatal(err)
			}
			setup.Descriptor.Base[reg.Level] = mbase.Addr()
		}
		guestAlloc = sorted
		r.gASAP = core.NewEngine(16, gCfg)
		r.gASAP.Install(setup.Descriptor)
	}
	guestPT, err := pt.New(pt.Config{Levels: 4, LeafLevel: 1}, guestAlloc, false)
	if err != nil {
		t.Fatal(err)
	}
	guestPT.PopulateRange(r.area.Start, r.area.End)

	// Host EPT over guest-physical space, nodes in machine frames.
	var hostAlloc pt.Allocator = pt.NewScatterAlloc(1<<22, 1<<20, 9)
	guestRAM := &vma.VMA{Start: 0, End: mem.VirtAddr(guestFrames * mem.PageSize), Kind: vma.GuestRAM, Name: "vm"}
	if hCfg.Enabled() {
		sorted := pt.NewSortedAlloc(hostAlloc, 0, 10)
		setup, err := core.SetupVMA(guestRAM, hCfg.Levels(), mem.NewBump(1<<21, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range setup.Regions {
			sorted.AddRegion(reg)
		}
		hostAlloc = sorted
		r.hASAP = core.NewEngine(4, hCfg)
		r.hASAP.Install(setup.Descriptor)
	}
	hostPT, err := pt.New(virt.EPTConfig(hostHuge), hostAlloc, false)
	if err != nil {
		t.Fatal(err)
	}
	hostPT.PopulateRange(0, guestRAM.End)

	r.m = &virt.Machine{GuestPT: guestPT, HostPT: hostPT, Map: gmap}
	r.vpnGPA = func(vpn uint64) mem.PhysAddr {
		return mem.PhysAddr((vpn % (guestFrames / 2)) * mem.PageSize)
	}
	return r
}

func (r *nestedRig) walker() *Nested {
	return &Nested{
		H:         r.h,
		GuestPWC:  pwc.New(pwc.DefaultConfig()),
		HostPWC:   pwc.New(pwc.DefaultConfig()),
		GuestASAP: r.gASAP,
		HostASAP:  r.hASAP,
		GuestPT:   r.m.GuestPT,
		HostPT:    r.m.HostPT,
		Translate: r.m.Map.Translate,
	}
}

func (r *nestedRig) dataGPA(va mem.VirtAddr) mem.PhysAddr {
	return r.vpnGPA(va.VPN()) + mem.PhysAddr(va.PageOffset())
}

func TestNestedColdWalkShape(t *testing.T) {
	r := newNestedRig(t, core.Config{}, core.Config{}, false)
	w := r.walker()
	var res Result
	va := r.area.Start
	w.Walk(0, va, r.dataGPA(va), &res)
	if !res.Present {
		t.Fatal("mapped guest page absent")
	}
	// The 2D walk performs up to 24 memory accesses (paper Fig 7); with PWC
	// inserts during the walk some later host levels hit, so the bound is
	// 12..24 real accesses.
	real := 0
	guestAcc, hostAcc := 0, 0
	for _, a := range res.Accesses[:res.N] {
		if a.Served == cache.ServedPWC {
			continue
		}
		real++
		switch a.Dim {
		case DimGuest:
			guestAcc++
		case DimHost:
			hostAcc++
		default:
			t.Fatalf("native access in a 2D walk: %+v", a)
		}
	}
	if real < 12 || real > 24 {
		t.Fatalf("2D walk real accesses = %d, want 12..24", real)
	}
	if guestAcc != 4 {
		t.Fatalf("guest-dimension accesses = %d, want 4", guestAcc)
	}
	if hostAcc < 8 {
		t.Fatalf("host-dimension accesses = %d, want ≥ 8", hostAcc)
	}
	// A 2D walk must cost far more than a native walk (paper: 4.4× average).
	if res.Cycles <= 2+4*191 {
		t.Fatalf("2D walk (%d cycles) not above native cold walk", res.Cycles)
	}
}

func TestNestedWarmWalkCheap(t *testing.T) {
	r := newNestedRig(t, core.Config{}, core.Config{}, false)
	w := r.walker()
	var res Result
	va := r.area.Start
	w.Walk(0, va, r.dataGPA(va), &res)
	cold := res.Cycles
	w.Walk(0, va, r.dataGPA(va), &res)
	if res.Cycles >= cold/4 {
		t.Fatalf("warm 2D walk %d vs cold %d: caches/PWC not helping", res.Cycles, cold)
	}
}

func TestNestedGuestASAPCoversGuestEntries(t *testing.T) {
	r := newNestedRig(t, core.Config{P1: true, P2: true}, core.Config{}, false)
	w := r.walker()
	var res Result
	va := r.area.Start
	w.Walk(0, va, r.dataGPA(va), &res)
	if res.PrefetchIssued != 2 {
		t.Fatalf("guest prefetches issued = %d", res.PrefetchIssued)
	}
	if res.PrefetchCovered != 2 {
		t.Fatalf("guest prefetches covered = %d", res.PrefetchCovered)
	}
	for _, a := range res.Accesses[:res.N] {
		if a.Prefetched && a.Dim != DimGuest {
			t.Fatalf("prefetch covered a %v access with host ASAP off", a.Dim)
		}
	}
}

func TestNestedHostASAPCoversHostWalks(t *testing.T) {
	r := newNestedRig(t, core.Config{}, core.Config{P1: true, P2: true}, false)
	w := r.walker()
	var res Result
	va := r.area.Start
	w.Walk(0, va, r.dataGPA(va), &res)
	// Five 1D host walks × 2 prefetches each.
	if res.PrefetchIssued != 10 {
		t.Fatalf("host prefetches issued = %d", res.PrefetchIssued)
	}
	if res.PrefetchCovered == 0 {
		t.Fatal("no host accesses covered")
	}
	for _, a := range res.Accesses[:res.N] {
		if a.Prefetched && a.Dim != DimHost {
			t.Fatalf("prefetch covered a %v access with guest ASAP off", a.Dim)
		}
	}
}

func TestNestedFullASAPFastest(t *testing.T) {
	// A page in a different PL1 node than the warm-up walk's page, so the
	// second walk still performs deep accesses.
	va := mem.FromVPN(1<<20+13*mem.NodeSpan+77) + 123
	run := func(g, h core.Config) int {
		r := newNestedRig(t, g, h, false)
		w := r.walker()
		var res Result
		w.Walk(0, r.area.Start, r.dataGPA(r.area.Start), &res)
		w.Walk(0, va, r.dataGPA(va), &res)
		return res.Cycles
	}
	base := run(core.Config{}, core.Config{})
	g := run(core.Config{P1: true, P2: true}, core.Config{})
	gh := run(core.Config{P1: true, P2: true}, core.Config{P1: true, P2: true})
	if !(gh < g && g < base) {
		t.Fatalf("ordering violated: base=%d, guest=%d, guest+host=%d", base, g, gh)
	}
}

func TestNestedHostHugePagesShortenWalks(t *testing.T) {
	rSmall := newNestedRig(t, core.Config{}, core.Config{}, false)
	rHuge := newNestedRig(t, core.Config{}, core.Config{}, true)
	var res Result
	va := rSmall.area.Start

	wSmall := rSmall.walker()
	wSmall.Walk(0, va, rSmall.dataGPA(va), &res)
	smallN := realAccesses(&res)

	wHuge := rHuge.walker()
	wHuge.Walk(0, va, rHuge.dataGPA(va), &res)
	hugeN := realAccesses(&res)

	// 2 MB host pages eliminate one access per 1D host walk: up to 5 fewer
	// (paper §5.4.2: accesses 4, 9, 14, 19, 24 of Fig 7).
	if hugeN >= smallN {
		t.Fatalf("2MB host pages did not shorten the walk: %d vs %d", hugeN, smallN)
	}
}

func realAccesses(res *Result) int {
	n := 0
	for _, a := range res.Accesses[:res.N] {
		if a.Served != cache.ServedPWC {
			n++
		}
	}
	return n
}

func TestNestedFaultReported(t *testing.T) {
	r := newNestedRig(t, core.Config{}, core.Config{}, false)
	w := r.walker()
	var res Result
	unmapped := r.area.End + mem.VirtAddr(mem.GiB)
	w.Walk(0, unmapped, 0, &res)
	if res.Present {
		t.Fatal("unmapped guest address present")
	}
	if res.N == 0 {
		t.Fatal("faulting 2D walk performed no accesses")
	}
}
