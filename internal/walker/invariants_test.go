package walker

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func TestPropertyPrefetchOnlyConfiguredLevels(t *testing.T) {
	// Whatever address is walked, prefetch coverage may only appear at the
	// levels the ASAP configuration selects.
	r := newRig(t, core.Config{P1: true}, 0)
	w := r.walker()
	var res Result
	f := func(raw uint64) bool {
		va := r.area.Start + mem.VirtAddr(raw%r.area.Bytes())
		w.Walk(0, r.table, va, &res)
		for _, a := range res.Accesses[:res.N] {
			if a.Prefetched && a.Level != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWalkCyclesMatchAccessSum(t *testing.T) {
	// The walk's total latency must equal the PWC lookup plus the per-access
	// costs it reports — the accounting the paper's §4 defines.
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	w := r.walker()
	var res Result
	f := func(raw uint64) bool {
		va := r.area.Start + mem.VirtAddr(raw%r.area.Bytes())
		w.Walk(0, r.table, va, &res)
		sum := w.PWC.Latency()
		for _, a := range res.Accesses[:res.N] {
			sum += int(a.Cycles)
		}
		return sum == res.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAccessOrderRootFirst(t *testing.T) {
	r := newRig(t, core.Config{}, 0)
	w := r.walker()
	var res Result
	f := func(raw uint64) bool {
		va := r.area.Start + mem.VirtAddr(raw%r.area.Bytes())
		w.Walk(0, r.table, va, &res)
		prev := int8(5)
		for _, a := range res.Accesses[:res.N] {
			if a.Level >= prev {
				return false
			}
			prev = a.Level
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDeterministic(t *testing.T) {
	mk := func() []int {
		r := newNestedRig(t, core.Config{P1: true, P2: true}, core.Config{P1: true}, false)
		w := r.walker()
		var res Result
		var cycles []int
		for vpn := uint64(0); vpn < 16*mem.NodeSpan; vpn += 333 {
			va := r.area.Start + mem.FromVPN(vpn)
			w.Walk(0, va, r.dataGPA(va), &res)
			cycles = append(cycles, res.Cycles)
		}
		return cycles
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nested walk %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNestedWalkCyclesMatchAccessSum(t *testing.T) {
	r := newNestedRig(t, core.Config{P1: true, P2: true}, core.Config{P1: true, P2: true}, false)
	w := r.walker()
	var res Result
	for vpn := uint64(0); vpn < 8*mem.NodeSpan; vpn += 97 {
		va := r.area.Start + mem.FromVPN(vpn)
		w.Walk(0, va, r.dataGPA(va), &res)
		// Each 1D host walk plus the guest dimension pays one PWC lookup.
		pwcLookups := 1 // guest
		for _, a := range res.Accesses[:res.N] {
			if a.Dim == DimHost && a.Level == int8(4) {
				pwcLookups++ // each host walk starts at its own PWC lookup
			}
		}
		sum := 0
		for _, a := range res.Accesses[:res.N] {
			sum += int(a.Cycles)
		}
		// The access-cost sum plus PWC lookups must equal the total; host
		// walks whose PL4 access was PWC-skipped still paid the lookup, so
		// allow the small remaining delta to be a multiple of the latency.
		delta := res.Cycles - sum
		if delta < w.GuestPWC.Latency() || delta%w.GuestPWC.Latency() != 0 {
			t.Fatalf("vpn %d: cycles %d, access sum %d, delta %d not PWC-lookup multiples",
				vpn, res.Cycles, sum, delta)
		}
	}
}

func TestPrefetchStateClearedBetweenWalks(t *testing.T) {
	// A walk outside the range registers must not be covered by the
	// previous walk's prefetch state.
	r := newRig(t, core.Config{P1: true, P2: true}, 0)
	outside := mem.FromVPN(1 << 24)
	r.table.PopulateRange(outside, outside+mem.VirtAddr(mem.HugeSize))
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	if res.PrefetchCovered == 0 {
		t.Fatal("setup: first walk not covered")
	}
	w.Walk(0, r.table, outside, &res)
	if res.PrefetchCovered != 0 {
		t.Fatal("stale prefetch state leaked into an unregistered walk")
	}
	for _, a := range res.Accesses[:res.N] {
		if a.Prefetched {
			t.Fatal("unregistered access marked prefetched")
		}
	}
}

func TestServedPWCAccessesAreFree(t *testing.T) {
	r := newRig(t, core.Config{}, 0)
	w := r.walker()
	var res Result
	w.Walk(0, r.table, r.area.Start, &res)
	w.Walk(0, r.table, r.area.Start, &res)
	for _, a := range res.Accesses[:res.N] {
		if a.Served == cache.ServedPWC && a.Cycles != 0 {
			t.Fatalf("PWC-served access charged %d cycles", a.Cycles)
		}
	}
}
