// Package cache models the processor-side caching structures of the paper's
// simulated memory hierarchy (Table 5): a generic set-associative array with
// true LRU, the three-level data cache hierarchy plus main memory, and the
// MSHR file that makes ASAP prefetches best-effort.
package cache

import "fmt"

// invalidTag marks an empty way. Keys are cache-line numbers, page numbers or
// VA prefixes, all far below 2^64-1, so the sentinel can never collide with a
// real key; Insert enforces this.
const invalidTag = ^uint64(0)

// way is one entry of a set: its tag and its LRU age, packed together so a
// set probe walks one contiguous run of memory instead of three parallel
// slices.
type way struct {
	tag uint64
	age uint64
}

// SetAssoc is a set-associative array of 64-bit keys with true-LRU
// replacement. It is the building block for caches, TLBs and page-walk
// caches. Sets are indexed by the low bits of the key (as hardware does), so
// conflict behaviour is realistic.
type SetAssoc struct {
	sets    int
	nways   int
	setMask uint64
	ways    []way
	clock   uint64
}

// NewSetAssoc returns an array with the given geometry. entries must be a
// positive multiple of ways, and entries/ways must be a power of two.
func NewSetAssoc(entries, ways int) *SetAssoc {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d entries / %d ways", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	s := &SetAssoc{
		sets:    sets,
		nways:   ways,
		setMask: uint64(sets - 1),
		ways:    make([]way, entries),
	}
	s.Flush()
	return s
}

// Entries returns the total capacity in entries.
func (s *SetAssoc) Entries() int { return s.sets * s.nways }

// Ways returns the associativity.
func (s *SetAssoc) Ways() int { return s.nways }

// set returns the ways of key's set.
func (s *SetAssoc) set(key uint64) []way {
	base := int(key&s.setMask) * s.nways
	return s.ways[base : base+s.nways]
}

// Lookup reports whether key is present, updating its LRU age on a hit.
func (s *SetAssoc) Lookup(key uint64) bool {
	if key == invalidTag {
		return false // never falsely hit an empty way
	}
	set := s.set(key)
	for i := range set {
		if set[i].tag == key {
			s.clock++
			set[i].age = s.clock
			return true
		}
	}
	return false
}

// Contains reports whether key is present without updating LRU state.
func (s *SetAssoc) Contains(key uint64) bool {
	if key == invalidTag {
		return false // never falsely hit an empty way
	}
	set := s.set(key)
	for i := range set {
		if set[i].tag == key {
			return true
		}
	}
	return false
}

// LookupInsert probes for key and, on a miss, installs it over the first
// invalid way of its set (else the LRU way) in the same scan, reporting
// whether the probe hit. A hit refreshes the key's age. It is exactly
// equivalent to Lookup followed by Insert on a miss, at half the set scans.
// The scan must cover the whole set even after seeing an invalid way:
// FlushMask can invalidate ways mid-set, so the key (or a better victim
// ordering) may sit beyond a hole. Without holes, invalid ways form a suffix
// (fills take the lowest invalid index first), so full-scan-first-invalid
// picks the same victim the historical break-at-first-invalid did.
func (s *SetAssoc) LookupInsert(key uint64) bool {
	if key == invalidTag {
		panic("cache: key collides with the invalid-tag sentinel")
	}
	set := s.set(key)
	s.clock++
	victim := -1
	for i := range set {
		if set[i].tag == key {
			set[i].age = s.clock
			return true
		}
		if set[i].tag == invalidTag {
			if victim < 0 || set[victim].tag != invalidTag {
				victim = i
			}
			continue
		}
		if victim < 0 || (set[victim].tag != invalidTag && set[i].age < set[victim].age) {
			victim = i
		}
	}
	set[victim] = way{tag: key, age: s.clock}
	return false
}

// Insert installs key, evicting the LRU way of its set if needed. Inserting a
// present key refreshes its age.
func (s *SetAssoc) Insert(key uint64) { s.LookupInsert(key) }

// Flush invalidates every entry.
func (s *SetAssoc) Flush() {
	for i := range s.ways {
		s.ways[i].tag = invalidTag
	}
}

// FlushMask invalidates every entry whose tag matches match under mask
// (tag&mask == match), returning how many entries were invalidated. It is the
// selective-invalidate primitive behind ASID shootdowns: callers that pack an
// address-space identifier into the high tag bits can evict one address
// space's entries without disturbing the rest. Empty ways never match — the
// invalid-tag sentinel is all ones, which a real key can't be.
func (s *SetAssoc) FlushMask(mask, match uint64) uint64 {
	var n uint64
	for i := range s.ways {
		if s.ways[i].tag != invalidTag && s.ways[i].tag&mask == match {
			s.ways[i].tag = invalidTag
			n++
		}
	}
	return n
}
