// Package cache models the processor-side caching structures of the paper's
// simulated memory hierarchy (Table 5): a generic set-associative array with
// true LRU, the three-level data cache hierarchy plus main memory, and the
// MSHR file that makes ASAP prefetches best-effort.
package cache

import "fmt"

// SetAssoc is a set-associative array of 64-bit keys with true-LRU
// replacement. It is the building block for caches, TLBs and page-walk
// caches. Sets are indexed by the low bits of the key (as hardware does), so
// conflict behaviour is realistic.
type SetAssoc struct {
	sets    int
	ways    int
	setMask uint64
	tags    []uint64
	valid   []bool
	age     []uint64
	clock   uint64
}

// NewSetAssoc returns an array with the given geometry. entries must be a
// positive multiple of ways, and entries/ways must be a power of two.
func NewSetAssoc(entries, ways int) *SetAssoc {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d entries / %d ways", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &SetAssoc{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		valid:   make([]bool, entries),
		age:     make([]uint64, entries),
	}
}

// Entries returns the total capacity in entries.
func (s *SetAssoc) Entries() int { return s.sets * s.ways }

// Ways returns the associativity.
func (s *SetAssoc) Ways() int { return s.ways }

// Lookup reports whether key is present, updating its LRU age on a hit.
func (s *SetAssoc) Lookup(key uint64) bool {
	base := int(key&s.setMask) * s.ways
	for w := 0; w < s.ways; w++ {
		if s.valid[base+w] && s.tags[base+w] == key {
			s.clock++
			s.age[base+w] = s.clock
			return true
		}
	}
	return false
}

// Contains reports whether key is present without updating LRU state.
func (s *SetAssoc) Contains(key uint64) bool {
	base := int(key&s.setMask) * s.ways
	for w := 0; w < s.ways; w++ {
		if s.valid[base+w] && s.tags[base+w] == key {
			return true
		}
	}
	return false
}

// Insert installs key, evicting the LRU way of its set if needed. Inserting a
// present key refreshes its age.
func (s *SetAssoc) Insert(key uint64) {
	base := int(key&s.setMask) * s.ways
	s.clock++
	victim := base
	for w := 0; w < s.ways; w++ {
		i := base + w
		if s.valid[i] && s.tags[i] == key {
			s.age[i] = s.clock
			return
		}
		if !s.valid[i] {
			victim = i
			break
		}
		if s.age[i] < s.age[victim] {
			victim = i
		}
	}
	s.tags[victim] = key
	s.valid[victim] = true
	s.age[victim] = s.clock
}

// Flush invalidates every entry.
func (s *SetAssoc) Flush() {
	for i := range s.valid {
		s.valid[i] = false
	}
}
