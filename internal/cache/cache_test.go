package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestSetAssocBasic(t *testing.T) {
	s := NewSetAssoc(16, 4)
	if s.Lookup(42) {
		t.Fatal("hit in empty array")
	}
	s.Insert(42)
	if !s.Lookup(42) {
		t.Fatal("miss after insert")
	}
	if !s.Contains(42) {
		t.Fatal("Contains false after insert")
	}
	s.Flush()
	if s.Lookup(42) {
		t.Fatal("hit after flush")
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// One set (fully associative, 4 ways): the least recently used entry
	// must be the victim.
	s := NewSetAssoc(4, 4)
	for k := uint64(0); k < 4; k++ {
		s.Insert(k * 4) // same set when sets=1
	}
	s.Lookup(0) // make key 0 most recently used
	s.Insert(100)
	if !s.Contains(0) {
		t.Fatal("most recently used entry evicted")
	}
	if s.Contains(4) {
		t.Fatal("LRU entry 4 survived eviction")
	}
}

func TestSetAssocSetConflicts(t *testing.T) {
	// 2 sets × 1 way: keys with the same low bit conflict.
	s := NewSetAssoc(2, 1)
	s.Insert(0)
	s.Insert(2) // same set as 0
	if s.Contains(0) {
		t.Fatal("direct-mapped conflict did not evict")
	}
	s.Insert(1) // other set
	if !s.Contains(2) || !s.Contains(1) {
		t.Fatal("non-conflicting keys evicted each other")
	}
}

func TestSetAssocInsertRefreshesAge(t *testing.T) {
	s := NewSetAssoc(2, 2)
	s.Insert(0)
	s.Insert(2)
	s.Insert(0) // refresh; must not duplicate
	s.Insert(4) // evicts 2, not 0
	if !s.Contains(0) || s.Contains(2) {
		t.Fatal("re-insert did not refresh LRU age")
	}
}

func TestSetAssocLookupInsertEquivalence(t *testing.T) {
	// LookupInsert must leave the array in exactly the state that the
	// two-scan Lookup-then-Insert sequence would, for any key stream.
	combined, split := NewSetAssoc(64, 4), NewSetAssoc(64, 4)
	s := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 10_000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		key := s >> 40 // small key space so sets fill and evict
		hit := combined.LookupInsert(key)
		if split.Lookup(key) != hit {
			t.Fatalf("op %d: LookupInsert hit=%v, Lookup disagrees", i, hit)
		}
		if !hit {
			split.Insert(key)
		}
		// The two arrays must stay observationally identical: probe a window
		// of keys around the current one without disturbing LRU state.
		for d := uint64(0); d < 8; d++ {
			if combined.Contains(key+d) != split.Contains(key+d) {
				t.Fatalf("op %d: arrays diverged at key %d", i, key+d)
			}
		}
	}
}

func TestSetAssocSentinelKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inserting the invalid-tag sentinel did not panic")
		}
	}()
	NewSetAssoc(16, 4).Insert(^uint64(0))
}

func TestSetAssocSentinelKeyNeverHits(t *testing.T) {
	// The sentinel marks empty ways; probing it must miss, not match them.
	s := NewSetAssoc(16, 4)
	if s.Lookup(^uint64(0)) || s.Contains(^uint64(0)) {
		t.Fatal("sentinel key hit an empty way")
	}
}

func TestSetAssocGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {8, 3}, {12, 2}, {-4, 2}} {
		g := g
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", g)
				}
			}()
			NewSetAssoc(g[0], g[1])
		}()
	}
}

func TestSetAssocPropertyInsertThenLookup(t *testing.T) {
	s := NewSetAssoc(1024, 8)
	f := func(key uint64) bool {
		s.Insert(key)
		return s.Lookup(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocPropertyCapacityBound(t *testing.T) {
	// The number of resident keys can never exceed capacity.
	s := NewSetAssoc(64, 4)
	inserted := map[uint64]bool{}
	f := func(key uint64) bool {
		s.Insert(key)
		inserted[key] = true
		resident := 0
		for k := range inserted {
			if s.Contains(k) {
				resident++
			}
		}
		return resident <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyAccessLatencies(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := mem.PhysAddr(1 << 20)
	served, lat := h.Access(addr)
	if served != ServedMem || lat != 191 {
		t.Fatalf("cold access: %v, %d", served, lat)
	}
	served, lat = h.Access(addr)
	if served != ServedL1 || lat != 4 {
		t.Fatalf("hot access: %v, %d", served, lat)
	}
	if h.ServedCount(ServedMem) != 1 || h.ServedCount(ServedL1) != 1 {
		t.Fatal("served counters wrong")
	}
}

func TestHierarchyFillsUpperLevels(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := mem.PhysAddr(64)
	h.Access(addr)
	if h.Where(addr) != ServedL1 {
		t.Fatalf("line not in L1 after fill: %v", h.Where(addr))
	}
	// Thrash L1 only (32 KB = 512 lines, 8-way, 64 sets): fill lines mapping
	// to the same set until the line falls out of L1 but stays in L2.
	for i := 1; i <= 8; i++ {
		h.Access(mem.PhysAddr(64 + i*64*64)) // same L1 set (64 sets)
	}
	where := h.Where(addr)
	if where == ServedL1 {
		t.Fatal("line survived L1 conflict thrash")
	}
	if where == ServedMem {
		t.Fatal("line fell out of the whole hierarchy")
	}
	served, _ := h.Access(addr)
	if served != where {
		t.Fatalf("Access served at %v, probe said %v", served, where)
	}
}

func TestHierarchyL1DistinctSets(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Fill many distinct sets; all must be L1 hits on re-access.
	for i := 0; i < 64; i++ {
		h.Access(mem.PhysAddr(i * 64))
	}
	for i := 0; i < 64; i++ {
		if served, _ := h.Access(mem.PhysAddr(i * 64)); served != ServedL1 {
			t.Fatalf("line %d not L1 resident", i)
		}
	}
}

func TestHierarchyLatencyAccessor(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	if h.Latency(ServedL1) != 4 || h.Latency(ServedL2) != 12 || h.Latency(ServedL3) != 40 || h.Latency(ServedMem) != 191 {
		t.Fatal("latency table wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Latency(ServedPWC) did not panic")
		}
	}()
	h.Latency(ServedPWC)
}

func TestServedByString(t *testing.T) {
	want := map[ServedBy]string{ServedPWC: "PWC", ServedL1: "L1", ServedL2: "L2", ServedL3: "LLC", ServedMem: "Mem"}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestMSHRFile(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.TryAcquire(0, 100) || !m.TryAcquire(0, 50) {
		t.Fatal("fresh MSHRs not acquirable")
	}
	if m.TryAcquire(0, 10) {
		t.Fatal("third acquisition succeeded with 2 MSHRs")
	}
	if m.Dropped() != 1 {
		t.Fatalf("Dropped = %d", m.Dropped())
	}
	if m.InUse(0) != 2 || m.InUse(60) != 1 || m.InUse(100) != 0 {
		t.Fatal("InUse accounting wrong")
	}
	if !m.TryAcquire(50, 200) {
		t.Fatal("expired MSHR not reusable")
	}
}

func TestMSHRPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMSHRFile(0) did not panic")
		}
	}()
	NewMSHRFile(0)
}

func TestFlushMask(t *testing.T) {
	s := NewSetAssoc(8, 4)
	const hi = uint64(1) << 40
	s.Insert(0)      // set 0
	s.Insert(hi | 8) // set 0, tagged
	s.Insert(hi | 1) // set 1, tagged
	if n := s.FlushMask(^uint64(1<<40-1), hi); n != 2 {
		t.Fatalf("FlushMask invalidated %d entries, want 2", n)
	}
	if !s.Contains(0) {
		t.Fatal("untagged entry lost to the masked flush")
	}
	if s.Contains(hi|8) || s.Contains(hi|1) {
		t.Fatal("tagged entry survived the masked flush")
	}
	// Empty ways never match, even though the sentinel has all mask bits set.
	if n := s.FlushMask(^uint64(0), invalidTag); n != 0 {
		t.Fatalf("masked flush matched %d empty ways", n)
	}
}

func TestLookupInsertAfterMidSetHole(t *testing.T) {
	// FlushMask can invalidate ways mid-set. LookupInsert must keep scanning
	// past the hole: a resident key beyond it is a hit, not a duplicate
	// install (which would halve the set's effective associativity).
	s := NewSetAssoc(4, 4) // one set
	const hi = uint64(1) << 40
	s.Insert(hi | 4) // way 0: tagged
	s.Insert(8)      // way 1: untagged
	if n := s.FlushMask(^uint64(1<<40-1), hi); n != 1 {
		t.Fatalf("FlushMask invalidated %d, want 1", n)
	}
	if !s.LookupInsert(8) {
		t.Fatal("resident key beyond the hole reported as a miss")
	}
	// Still exactly one copy: invalidate it and count.
	if n := s.FlushMask(^uint64(0)>>1, 8); n != 1 {
		t.Fatalf("key resident %d times after hole probe, want 1", n)
	}
}
