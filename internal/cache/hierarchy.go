package cache

import (
	"fmt"

	"repro/internal/mem"
)

// ServedBy identifies the memory-hierarchy level that satisfied an access.
// PWC is included so that page-walk accounting (Fig 9) can attribute skipped
// walk levels to the page-walk caches.
type ServedBy int

// Hierarchy levels, fastest first.
const (
	ServedPWC ServedBy = iota
	ServedL1
	ServedL2
	ServedL3
	ServedMem
	servedCount
)

// NumServedBy is the number of ServedBy values, for sizing breakdown tables.
const NumServedBy = int(servedCount)

// String returns the conventional name of the level.
func (s ServedBy) String() string {
	switch s {
	case ServedPWC:
		return "PWC"
	case ServedL1:
		return "L1"
	case ServedL2:
		return "L2"
	case ServedL3:
		return "LLC"
	case ServedMem:
		return "Mem"
	default:
		return fmt.Sprintf("ServedBy(%d)", int(s))
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	SizeBytes int
	Ways      int
	Latency   int // total load-to-use latency when served at this level
}

// Config describes the whole hierarchy. The defaults mirror the paper's
// Table 5 (Intel Broadwell-like).
type Config struct {
	L1, L2, L3 LevelConfig
	MemLatency int
}

// DefaultConfig returns the paper's Table 5 hierarchy: 32 KB/8-way L1 at 4
// cycles, 256 KB/8-way L2 at 12 cycles, 20 MB/20-way L3 at 40 cycles and
// 191-cycle main memory.
func DefaultConfig() Config {
	return Config{
		L1:         LevelConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:         LevelConfig{SizeBytes: 256 << 10, Ways: 8, Latency: 12},
		L3:         LevelConfig{SizeBytes: 20 << 20, Ways: 20, Latency: 40},
		MemLatency: 191,
	}
}

// Hierarchy is the simulated L1-D/L2/LLC/DRAM stack. It tracks only tags
// (this is a timing model, not a data model) and fills every level on the
// way back, as an inclusive hierarchy would.
type Hierarchy struct {
	cfg    Config
	levels [3]*SetAssoc
	lats   [3]int
	served [int(servedCount)]uint64
}

// NewHierarchy builds the stack from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{cfg: cfg}
	for i, lc := range []LevelConfig{cfg.L1, cfg.L2, cfg.L3} {
		lines := lc.SizeBytes / mem.LineBytes
		h.levels[i] = NewSetAssoc(lines, lc.Ways)
		h.lats[i] = lc.Latency
	}
	return h
}

// Config returns the hierarchy parameters.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access performs a demand access to addr: it returns the level that served
// the line and the access latency, and installs the line in every level.
//
// Each level is probed and filled in a single combined scan: a LookupInsert
// miss at a level both detects the miss and performs the fill that the
// inclusive hierarchy would do on the way back, so a full miss costs one set
// scan per level instead of two.
func (h *Hierarchy) Access(addr mem.PhysAddr) (ServedBy, int) {
	line := addr.Line()
	for i, c := range h.levels {
		if c.LookupInsert(line) {
			s := ServedL1 + ServedBy(i)
			h.served[s]++
			return s, h.lats[i]
		}
	}
	h.served[ServedMem]++
	return ServedMem, h.cfg.MemLatency
}

// Latency returns the access latency when served at the given level. PWC is
// not part of the data hierarchy and is rejected.
func (h *Hierarchy) Latency(s ServedBy) int {
	switch s {
	case ServedL1:
		return h.lats[0]
	case ServedL2:
		return h.lats[1]
	case ServedL3:
		return h.lats[2]
	case ServedMem:
		return h.cfg.MemLatency
	default:
		panic(fmt.Sprintf("cache: no latency for %v", s))
	}
}

// Where probes for the line without changing any state, reporting the level
// that would serve it.
func (h *Hierarchy) Where(addr mem.PhysAddr) ServedBy {
	line := addr.Line()
	for i, c := range h.levels {
		if c.Contains(line) {
			return ServedL1 + ServedBy(i)
		}
	}
	return ServedMem
}

// ServedCount returns how many accesses each level has served.
func (h *Hierarchy) ServedCount(s ServedBy) uint64 { return h.served[s] }

// MSHRFile models the L1-D miss-status holding registers. ASAP prefetches
// are issued only if a free MSHR is available at issue time (paper §3.4:
// "prefetches are thus best-effort").
type MSHRFile struct {
	busyUntil []int64
	dropped   uint64
}

// NewMSHRFile returns a file with n registers.
func NewMSHRFile(n int) *MSHRFile {
	if n <= 0 {
		panic("cache: MSHR file needs at least one register")
	}
	return &MSHRFile{busyUntil: make([]int64, n)}
}

// TryAcquire claims a register from now until until; it reports false (and
// counts a drop) if all registers are busy.
func (m *MSHRFile) TryAcquire(now, until int64) bool {
	for i, b := range m.busyUntil {
		if b <= now {
			m.busyUntil[i] = until
			return true
		}
	}
	m.dropped++
	return false
}

// InUse returns the number of registers busy at time now.
func (m *MSHRFile) InUse(now int64) int {
	n := 0
	for _, b := range m.busyUntil {
		if b > now {
			n++
		}
	}
	return n
}

// Dropped returns how many acquisitions failed.
func (m *MSHRFile) Dropped() uint64 { return m.dropped }
