package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/obs"
	"repro/internal/stats"
)

// WriteArtifacts writes the run's artifact tree under dir, mirroring the
// paper_runs/<stamp>/{csv,analysis} layout of comparable artifact pipelines:
//
//	dir/<format>/<experiment>.<format>   one per-cell record file per experiment
//	dir/analysis/summary.<format>        grouped mean/std/CI95 over repeats
//	dir/analysis/metrics.prom            the summary in Prometheus text format
//
// format is "csv" or "json". Experiments appear in first-record order;
// records within an experiment keep insertion order. Experiments that
// simulate no cells (e.g. the static parameter tables) emit no file.
func WriteArtifacts(dir, format string, records []Record) error {
	if format != "csv" && format != "json" {
		return fmt.Errorf("report: unknown format %q (want csv or json)", format)
	}
	perExp := map[string][]Record{}
	var order []string
	for _, r := range records {
		if _, ok := perExp[r.Experiment]; !ok {
			order = append(order, r.Experiment)
		}
		perExp[r.Experiment] = append(perExp[r.Experiment], r)
	}
	recDir := filepath.Join(dir, format)
	if err := os.MkdirAll(recDir, 0o755); err != nil {
		return err
	}
	for _, exp := range order {
		name := exp
		if name == "" {
			// Records emitted outside exp.Run carry no experiment name; keep
			// the file visible rather than writing a dotfile ".csv".
			name = "unnamed"
		}
		path := filepath.Join(recDir, name+"."+format)
		if err := writeRecords(path, format, perExp[exp]); err != nil {
			return err
		}
	}
	anaDir := filepath.Join(dir, "analysis")
	if err := os.MkdirAll(anaDir, 0o755); err != nil {
		return err
	}
	if err := writeSummary(filepath.Join(anaDir, "summary."+format), format, records); err != nil {
		return err
	}
	return writePromSummary(filepath.Join(anaDir, "metrics.prom"), Summarize(records))
}

// writePromSummary renders the grouped summary as Prometheus text exposition
// so dashboards can scrape paper-grid results straight from an artifact tree.
// One series per (experiment, cell, digest, metric) group; the registry
// sorts families and series, so the file is deterministic for any record
// order.
func writePromSummary(path string, summary []SummaryRow) error {
	reg := obs.NewRegistry()
	for _, s := range summary {
		labels := []obs.Label{
			{Key: "experiment", Val: s.Experiment},
			{Key: "cell", Val: s.Cell},
			{Key: "digest", Val: s.ParamsDigest},
			{Key: "metric", Val: s.Metric},
		}
		reg.Gauge("repro_metric_mean", "Mean of the metric over a cell's repeats.", labels...).Set(s.Stat.Mean)
		reg.Gauge("repro_metric_std", "Sample standard deviation over a cell's repeats.", labels...).Set(s.Stat.Std)
		reg.Gauge("repro_metric_repeats", "Number of repeats in the group.", labels...).Set(float64(s.Stat.N))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func num(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// row renders a record's identity columns (parallel to KeyCols) followed by
// its metrics (parallel to MetricCols).
func (r Record) row() []string {
	cells := []string{
		r.Experiment, r.Cell, r.Workload,
		strconv.FormatBool(r.Virtualized), strconv.FormatBool(r.Colocated),
		strconv.FormatBool(r.HostHugePages), strconv.FormatBool(r.ClusteredTLB),
		r.ASAP, r.Scheme, strconv.Itoa(r.RangeRegisters), num(r.HoleProb),
		strconv.FormatBool(r.FiveLevel), r.PWCEntries,
		strconv.Itoa(r.Processes), strconv.Itoa(r.QuantumRefs),
		strconv.FormatBool(r.FlushOnSwitch),
		r.ParamsDigest, strconv.Itoa(r.Repeat),
		strconv.FormatUint(r.Seed, 10),
	}
	for _, v := range r.Metrics {
		cells = append(cells, num(v))
	}
	return cells
}

// object renders a record as the JSON object the json format emits; keys are
// KeyCols and MetricCols (encoding/json sorts them, so output is stable).
func (r Record) object() map[string]any {
	o := map[string]any{
		"experiment": r.Experiment, "cell": r.Cell, "workload": r.Workload,
		"virtualized": r.Virtualized, "colocated": r.Colocated,
		"host_huge_pages": r.HostHugePages, "clustered_tlb": r.ClusteredTLB,
		"asap": r.ASAP, "scheme": r.Scheme, "range_registers": r.RangeRegisters,
		"hole_prob": r.HoleProb, "five_level": r.FiveLevel,
		"pwc_entries": r.PWCEntries,
		"processes":   r.Processes, "quantum_refs": r.QuantumRefs,
		"flush_on_switch": r.FlushOnSwitch,
		"params_digest":   r.ParamsDigest, "repeat": r.Repeat,
		"seed": strconv.FormatUint(r.Seed, 10),
	}
	for i, name := range MetricCols {
		o[name] = r.Metrics[i]
	}
	return o
}

func writeRecords(path, format string, records []Record) error {
	if format == "json" {
		objs := make([]map[string]any, len(records))
		for i, r := range records {
			objs[i] = r.object()
		}
		return writeJSON(path, objs)
	}
	rows := [][]string{append(append([]string{}, KeyCols...), MetricCols...)}
	for _, r := range records {
		rows = append(rows, r.row())
	}
	return writeCSV(path, rows)
}

// SummaryRow is the grouped statistic of one metric over a cell's repeats.
type SummaryRow struct {
	Experiment   string
	Cell         string
	ParamsDigest string
	Metric       string
	Stat         stats.Summary
}

// SummaryCols is the ordered column schema of the summary file.
var SummaryCols = []string{
	"experiment", "cell", "params_digest", "metric", "repeats", "mean", "std", "ci95",
}

// Summarize groups records by (experiment, cell, params digest) and computes
// each metric's mean, sample standard deviation and 95% CI half-width over
// the group's repeats. Groups keep first-record order; metrics keep
// MetricCols order.
func Summarize(records []Record) []SummaryRow {
	groups := map[string][]Record{}
	var order []string
	for _, r := range records {
		k := r.GroupKey()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var rows []SummaryRow
	for _, k := range order {
		g := groups[k]
		for i, metric := range MetricCols {
			xs := make([]float64, len(g))
			for j, r := range g {
				xs[j] = r.Metrics[i]
			}
			rows = append(rows, SummaryRow{
				Experiment:   g[0].Experiment,
				Cell:         g[0].Cell,
				ParamsDigest: g[0].ParamsDigest,
				Metric:       metric,
				Stat:         stats.Summarize(xs),
			})
		}
	}
	return rows
}

func writeSummary(path, format string, records []Record) error {
	summary := Summarize(records)
	if format == "json" {
		objs := make([]map[string]any, len(summary))
		for i, s := range summary {
			objs[i] = map[string]any{
				"experiment": s.Experiment, "cell": s.Cell,
				"params_digest": s.ParamsDigest, "metric": s.Metric,
				"repeats": s.Stat.N, "mean": s.Stat.Mean,
				"std": s.Stat.Std, "ci95": s.Stat.CI95,
			}
		}
		return writeJSON(path, objs)
	}
	rows := [][]string{SummaryCols}
	for _, s := range summary {
		rows = append(rows, []string{
			s.Experiment, s.Cell, s.ParamsDigest, s.Metric,
			strconv.Itoa(s.Stat.N), num(s.Stat.Mean), num(s.Stat.Std), num(s.Stat.CI95),
		})
	}
	return writeCSV(path, rows)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
