package report

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func testResult(lat float64) *sim.Result {
	return &sim.Result{
		Accesses: 1000, Walks: 100, WalkCycles: uint64(100 * lat),
		AvgWalkLat: lat, TLBMissRatio: 0.1, MPKI: 2.5,
		TotalCycles: 50000, WalkFraction: 0.2,
		PrefetchIssued: 80, PrefetchCovered: 60,
		RangeHitRate: 0.9, HostRangeHitRate: 0.5,
		MSHRDropped: 3, RangeOverflowed: 1,
	}
}

func testScenario() sim.Scenario {
	return sim.Scenario{Workload: workload.Spec{Name: "tiny"}, Virtualized: true}
}

func TestFromResult(t *testing.T) {
	p := sim.DefaultParams()
	r := FromResult("fig3", testScenario(), p, 2, testResult(12.5))
	if r.Experiment != "fig3" || r.Workload != "tiny" || !r.Virtualized || r.Repeat != 2 {
		t.Fatalf("identity: %+v", r)
	}
	if r.Cell != testScenario().Name() {
		t.Fatalf("cell %q", r.Cell)
	}
	if r.Seed != p.ForRepeat(2).Seed {
		t.Fatalf("seed %d not the repeat-derived seed", r.Seed)
	}
	if len(r.Metrics) != len(MetricCols) {
		t.Fatalf("%d metrics for %d columns", len(r.Metrics), len(MetricCols))
	}
	// avg_walk_lat is the fourth metric column.
	if MetricCols[3] != "avg_walk_lat" || r.Metrics[3] != 12.5 {
		t.Fatalf("metric order: %v", r.Metrics)
	}
	if len(r.row()) != len(KeyCols)+len(MetricCols) {
		t.Fatalf("row width %d", len(r.row()))
	}
}

func TestDigestIgnoresSeedOnly(t *testing.T) {
	p := sim.DefaultParams()
	q := p
	q.Seed = 999
	if Digest(p) != Digest(q) {
		t.Fatal("digest must not depend on the seed")
	}
	q = p
	q.RangeRegisters = 4
	if Digest(p) == Digest(q) {
		t.Fatal("digest must depend on non-seed parameters")
	}
	// Repeats of one cell share the digest by construction.
	a := FromResult("x", testScenario(), p, 0, testResult(1))
	b := FromResult("x", testScenario(), p, 3, testResult(2))
	if a.ParamsDigest != b.ParamsDigest || a.GroupKey() != b.GroupKey() {
		t.Fatal("repeats must group together")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(Record{Experiment: "e", Metrics: make([]float64, len(MetricCols))})
			}
		}()
	}
	wg.Wait()
	if got := len(c.Records()); got != 800 {
		t.Fatalf("%d records", got)
	}
}

func TestSummarizeGroups(t *testing.T) {
	p := sim.DefaultParams()
	records := []Record{
		FromResult("fig3", testScenario(), p, 0, testResult(10)),
		FromResult("fig3", testScenario(), p, 1, testResult(14)),
	}
	rows := Summarize(records)
	if len(rows) != len(MetricCols) {
		t.Fatalf("%d summary rows for one group", len(rows))
	}
	for _, row := range rows {
		if row.Metric != "avg_walk_lat" {
			continue
		}
		if row.Stat.N != 2 || row.Stat.Mean != 12 {
			t.Fatalf("avg_walk_lat summary: %+v", row.Stat)
		}
		if row.Stat.Std < 2.82 || row.Stat.Std > 2.84 {
			t.Fatalf("std: %+v", row.Stat)
		}
		return
	}
	t.Fatal("no avg_walk_lat summary row")
}

func TestWriteArtifactsCSV(t *testing.T) {
	dir := t.TempDir()
	p := sim.DefaultParams()
	records := []Record{
		FromResult("fig3", testScenario(), p, 0, testResult(10)),
		FromResult("fig3", testScenario(), p, 1, testResult(14)),
		FromResult("fig8", testScenario(), p, 0, testResult(9)),
	}
	if err := WriteArtifacts(dir, "csv", records); err != nil {
		t.Fatal(err)
	}
	readCSV := func(path string) [][]string {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	fig3 := readCSV(filepath.Join(dir, "csv", "fig3.csv"))
	if len(fig3) != 3 { // header + 2 repeats
		t.Fatalf("fig3.csv rows: %d", len(fig3))
	}
	wantHeader := append(append([]string{}, KeyCols...), MetricCols...)
	for i, h := range wantHeader {
		if fig3[0][i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, fig3[0][i], h)
		}
	}
	if fig8 := readCSV(filepath.Join(dir, "csv", "fig8.csv")); len(fig8) != 2 {
		t.Fatalf("fig8.csv rows: %d", len(fig8))
	}
	summary := readCSV(filepath.Join(dir, "analysis", "summary.csv"))
	// One group per (experiment, cell): 2 groups × len(MetricCols) + header.
	if want := 2*len(MetricCols) + 1; len(summary) != want {
		t.Fatalf("summary rows: %d, want %d", len(summary), want)
	}
	for i, h := range SummaryCols {
		if summary[0][i] != h {
			t.Fatalf("summary header[%d] = %q", i, summary[0][i])
		}
	}
}

func TestWriteArtifactsJSON(t *testing.T) {
	dir := t.TempDir()
	p := sim.DefaultParams()
	records := []Record{FromResult("fig3", testScenario(), p, 0, testResult(10))}
	if err := WriteArtifacts(dir, "json", records); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "json", "fig3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var objs []map[string]any
	if err := json.Unmarshal(b, &objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("%d objects", len(objs))
	}
	for _, key := range append(append([]string{}, KeyCols...), MetricCols...) {
		if _, ok := objs[0][key]; !ok {
			t.Fatalf("json record missing %q", key)
		}
	}
	if objs[0]["avg_walk_lat"] != 10.0 {
		t.Fatalf("avg_walk_lat = %v", objs[0]["avg_walk_lat"])
	}
	if _, err := os.Stat(filepath.Join(dir, "analysis", "summary.json")); err != nil {
		t.Fatal(err)
	}
}

func TestWriteArtifactsUnnamedExperiment(t *testing.T) {
	dir := t.TempDir()
	p := sim.DefaultParams()
	records := []Record{FromResult("", testScenario(), p, 0, testResult(10))}
	if err := WriteArtifacts(dir, "csv", records); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "csv", "unnamed.csv")); err != nil {
		t.Fatalf("empty experiment name not mapped to a visible file: %v", err)
	}
}

func TestRecordCarriesSweptParams(t *testing.T) {
	p := sim.DefaultParams()
	p.RangeRegisters = 4
	p.HoleProb = 0.2
	p.FiveLevel = true
	r := FromResult("ablation-regs", testScenario(), p, 0, testResult(10))
	if r.RangeRegisters != 4 || r.HoleProb != 0.2 || !r.FiveLevel {
		t.Fatalf("swept params not recorded: %+v", r)
	}
	if r.PWCEntries == "" {
		t.Fatal("PWC entries not recorded")
	}
}

func TestWriteArtifactsRejectsFormat(t *testing.T) {
	if err := WriteArtifacts(t.TempDir(), "xml", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}
