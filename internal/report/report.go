// Package report turns experiment results into machine-readable artifacts.
//
// The paper's tables and figures render as fixed-width text on stdout, which
// is good for eyeballs and byte-identical golden tests but useless for
// downstream analysis. This package defines the typed per-cell record every
// experiment emits alongside its text table — one record per (experiment,
// scenario cell, repeat), carrying the scenario key, a digest of the
// parameter set, the repeat's seed and every sim.Result metric — plus CSV and
// JSON writers and a grouped mean/std/CI summary over repeats, mirroring the
// artifact pipelines of comparable evaluation harnesses.
package report

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/sim"
)

// KeyCols is the ordered list of identity columns in every artifact file.
// Besides the scenario key, the parameters the ablation experiments sweep
// (range registers, hole probability, five-level tables, PWC capacities) are
// broken out as plain columns so sweep rows are distinguishable without
// decoding the digest.
var KeyCols = []string{
	"experiment", "cell", "workload", "virtualized", "colocated",
	"host_huge_pages", "clustered_tlb", "asap", "scheme",
	"range_registers", "hole_prob", "five_level", "pwc_entries",
	"processes", "quantum_refs", "flush_on_switch",
	"params_digest", "repeat", "seed",
}

// MetricCols is the ordered metric schema shared by the CSV header, the JSON
// records and the grouped summary. It mirrors sim.Result field for field.
var MetricCols = []string{
	"accesses", "walks", "walk_cycles", "avg_walk_lat", "tlb_miss_ratio",
	"mpki", "total_cycles", "walk_fraction", "prefetch_issued",
	"prefetch_covered", "range_hit_rate", "host_range_hit_rate",
	"mshr_dropped", "range_overflowed", "switches", "shootdown_flushes",
}

// Record is one simulated cell repeat in machine-readable form. asaplint's
// keycomplete analyzer enforces that CSV emission (row) and JSON emission
// (object) render every field, so a column added here cannot silently vanish
// from the artifacts.
//
//lint:key ref=row,object
type Record struct {
	Experiment    string
	Cell          string // sim.Scenario.Name()
	Workload      string
	Virtualized   bool
	Colocated     bool
	HostHugePages bool
	ClusteredTLB  bool
	ASAP          string
	Scheme        string // translation backend (mmu.Canonical: "asap" when unset)
	// Swept parameters (the ablation axes), broken out from the digest.
	RangeRegisters int
	HoleProb       float64
	FiveLevel      bool
	PWCEntries     string // "PL4/PL3/PL2" entry counts
	Processes      int
	QuantumRefs    int
	FlushOnSwitch  bool
	ParamsDigest   string // Digest of the base parameter set (seed excluded)
	Repeat         int
	Seed           uint64    // the repeat's derived seed
	Metrics        []float64 // parallel to MetricCols
}

// GroupKey identifies the cell a record belongs to regardless of repeat:
// records with equal GroupKeys are repeats of one simulation configuration.
func (r Record) GroupKey() string {
	return r.Experiment + "\x00" + r.Cell + "\x00" + r.ParamsDigest
}

// FromResult builds the record for one repeat of a cell. base is the
// experiment's parameter set before per-repeat seed derivation: the digest
// identifies the configuration, while Seed records the seed the repeat
// actually ran with.
func FromResult(experiment string, sc sim.Scenario, base sim.Params, repeat int, res *sim.Result) Record {
	return Record{
		Experiment:     experiment,
		Cell:           sc.Name(),
		Workload:       sc.Workload.Name,
		Virtualized:    sc.Virtualized,
		Colocated:      sc.Colocated,
		HostHugePages:  sc.HostHugePages,
		ClusteredTLB:   sc.ClusteredTLB,
		ASAP:           sc.ASAP.String(),
		Scheme:         sc.SchemeName(),
		RangeRegisters: base.RangeRegisters,
		HoleProb:       base.HoleProb,
		FiveLevel:      base.FiveLevel,
		PWCEntries: fmt.Sprintf("%d/%d/%d",
			base.PWC.PL4Entries, base.PWC.PL3Entries, base.PWC.PL2Entries),
		Processes:     base.Processes,
		QuantumRefs:   base.QuantumRefs,
		FlushOnSwitch: base.FlushOnSwitch,
		ParamsDigest:  Digest(base),
		Repeat:        repeat,
		Seed:          base.ForRepeat(repeat).Seed,
		Metrics: []float64{
			float64(res.Accesses), float64(res.Walks), float64(res.WalkCycles),
			res.AvgWalkLat, res.TLBMissRatio, res.MPKI, res.TotalCycles,
			res.WalkFraction, float64(res.PrefetchIssued),
			float64(res.PrefetchCovered), res.RangeHitRate,
			res.HostRangeHitRate, float64(res.MSHRDropped),
			float64(res.RangeOverflowed), float64(res.Switches),
			float64(res.ShootdownFlushes),
		},
	}
}

// Digest returns a stable hex digest of the parameter set with the seed
// zeroed: two cells share a digest iff they simulate the same configuration,
// and repeats of one cell (which differ only in derived seed) always share
// it. Params is a flat struct of scalars, so its %+v rendering is canonical.
func Digest(p sim.Params) string {
	p.Seed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", p)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Sink receives records as experiments produce them.
type Sink interface {
	Add(Record)
}

// Collector is a Sink that accumulates records in memory for writing at the
// end of a run. It is safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	records []Record
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one record.
func (c *Collector) Add(r Record) {
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
}

// Records returns the accumulated records in insertion order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}
