// Package mmu defines the pluggable translation-scheme interface the
// simulator's run loops drive: everything between "the core issued a data
// reference" and "the translation is resolved" — TLB lookups, page walks,
// prefetch engines, speculative translation — lives behind Scheme, so rival
// MMU designs can be modeled without forking the hot loop.
//
// Three backends are registered:
//
//   - asap: the paper's pipeline — two-level TLB, split PWCs, radix walks,
//     and the ASAP range-register prefetch engine (byte-identical to the
//     historical inlined path in internal/sim).
//   - victima: Victima-style TLB-entry residency in the L2 data cache
//     (PAPERS.md): on an L2-TLB miss the backing PTE line is probed in the
//     L2 cache before falling back to a full walk, and walked translations
//     are transplanted into the cache-resident set.
//   - revelator: system-software-guided hash-based speculative translation
//     (PAPERS.md): per-page-size OS hash tables are fetched through the data
//     hierarchy on an L2-TLB miss; a hash hit yields a speculative
//     translation verified by an off-critical-path walk, a miss falls back
//     to the walk and the OS records the translation.
package mmu

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pt"
	"repro/internal/pwc"
	"repro/internal/tlb"
	"repro/internal/walker"
)

// Process is the per-address-space state a scheme translates against: the
// page table, the data placement (for TLB fills and coalescing probes) and
// the ASAP descriptor file the OS would swap on context switches (empty for
// schemes and configurations without range registers).
type Process struct {
	Table *pt.Table
	// Frame returns the physical frame backing a virtual page number.
	Frame func(vpn uint64) uint64
	// Neighbors reports the frames of adjacent pages for coalescing TLBs
	// (nil for placements without a coalescing probe).
	Neighbors tlb.NeighborFunc
	// Descs is the process's VMA descriptor file (asap scheme only).
	Descs []*core.Descriptor
}

// Counters is a snapshot of a scheme's cumulative translation counters, taken
// at the warmup/measure boundary and at run end so internal/sim's meter can
// report measured-window deltas without knowing which scheme ran. Lookups and
// Hits are the scheme's acceleration-path probes: ASAP range-register
// lookups, Victima L2-residency probes, or Revelator hash-table probes —
// each scheme's "did my mechanism cover this miss" rate lands in the same
// report column. Fields a scheme has no counterpart for stay zero.
type Counters struct {
	TLBAccesses uint64
	TLBL2Misses uint64
	TLBFlushes  uint64

	Lookups    uint64
	Hits       uint64
	Overflowed uint64

	HostLookups    uint64
	HostHits       uint64
	HostOverflowed uint64

	MSHRDropped uint64
}

// Scheme is one pluggable translation backend. The run loop drives it with
// the lifecycle of a time-shared core: Attach registers each process once,
// Boot makes the first process current, Switch performs a context switch
// (charging descriptor-swap volume back to the caller), and Translate
// resolves one reference.
type Scheme interface {
	// Attach registers process pid's address-space state. Processes are
	// attached once, before Boot, with dense pids starting at 0.
	Attach(pid int, p *Process)
	// Boot makes pid the current process and loads its descriptor state,
	// modeling boot-time setup rather than a context switch: no flush or
	// ASID policy action is taken and no cost is reported.
	Boot(pid int)
	// Switch makes pid the current process: descriptor files are swapped and
	// translation state follows the configured policy (flush-on-switch or
	// ASID retagging). It returns the number of descriptor registers moved
	// (saved + restored), the volume that scales the caller's modeled switch
	// cost; schemes without descriptor state return 0.
	Switch(pid int) int
	// Translate resolves the reference to va at absolute time now. It
	// reports false for a TLB hit (wr untouched); on a TLB miss it performs
	// the scheme's resolution path, fills wr with the walk result — Cycles
	// is the translation's critical-path latency — and reports true.
	Translate(now int64, va mem.VirtAddr, wr *walker.Result) bool
	// Counters snapshots the cumulative translation counters.
	Counters() Counters
}

// Config carries the platform state a native scheme builds on. The TLB, PWC
// and any scheme-private structures are constructed per scheme; the cache
// hierarchy and MSHR file are the simulation's shared ones.
type Config struct {
	Hier *cache.Hierarchy
	MSHR *cache.MSHRFile
	PWC  pwc.Config
	// ClusteredTLB replaces the second-level TLB with the clustered design.
	ClusteredTLB bool
	// ASAP selects the range-prefetch levels (asap scheme only; rival
	// schemes reject enabled configurations upstream).
	ASAP core.Config
	// RangeRegisters is the descriptor capacity of the asap engine.
	RangeRegisters int
	// FlushOnSwitch selects the untagged context-switch policy: Switch
	// flushes translation state instead of retagging by ASID.
	FlushOnSwitch bool
	// Trace, when non-nil, receives the scheme's translation events: TLB
	// hits, walk-context opens, acceleration-path probes (internal/obs).
	// Disabled tracing costs one nil check per translation.
	Trace *obs.Tracer
}

// schemeNames lists the registered backends in presentation order.
var schemeNames = []string{"asap", "victima", "revelator"}

// Names returns the registered scheme names.
func Names() []string { return append([]string(nil), schemeNames...) }

// Canonical resolves a scheme name to its registry entry: the empty string —
// the zero Scenario value every pre-scheme cell carries — is the asap
// pipeline.
func Canonical(name string) string {
	if name == "" {
		return "asap"
	}
	return name
}

// Validate checks that name denotes a registered scheme ("" selects asap).
func Validate(name string) error {
	name = Canonical(name)
	for _, n := range schemeNames {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("mmu: unknown translation scheme %q (have %s)",
		name, strings.Join(schemeNames, ", "))
}

// ParseASAP parses a figure-style ASAP configuration (core.ParseConfig) in
// the context of a scheme selection, rejecting contradictory combinations:
// prefetch levels are the asap scheme's mechanism, so enabling them under a
// rival scheme is an error rather than a silently dropped flag.
func ParseASAP(scheme, s string) (core.Config, error) {
	cfg, err := core.ParseConfig(s)
	if err != nil {
		return core.Config{}, err
	}
	if cfg.Enabled() && Canonical(scheme) != "asap" {
		return core.Config{}, fmt.Errorf(
			"mmu: scheme %s does not take ASAP prefetch levels (got %q; use -scheme asap)",
			Canonical(scheme), s)
	}
	return cfg, nil
}

// New constructs the named scheme over the given platform.
func New(name string, cfg Config) (Scheme, error) {
	switch Canonical(name) {
	case "asap":
		return newASAP(cfg), nil
	case "victima":
		return newVictima(cfg), nil
	case "revelator":
		return newRevelator(cfg), nil
	}
	return nil, Validate(name)
}

// procList is the dense pid-indexed process registry shared by the native
// schemes (a slice, not a map, so iteration and growth are deterministic).
type procList []*Process

func (l *procList) attach(pid int, p *Process) {
	for len(*l) <= pid {
		*l = append(*l, nil)
	}
	(*l)[pid] = p
}
