package mmu

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pwc"
	"repro/internal/tlb"
	"repro/internal/walker"
)

// victimaScheme models Victima-style TLB-entry residency in the L2 data
// cache (PAPERS.md): the L2 cache doubles as a massive victim TLB. On an
// L2-TLB miss the scheme probes a transplanted-entry tag set sized like the
// L2; a tag hit whose backing page-table entry line still resides in L2 (or
// closer) resolves the translation at data-cache latency, skipping the walk
// entirely. A miss pays the failed L2 probe and falls back to a full walk,
// after which the discovered translation is transplanted: its tag enters the
// resident set and its PTE line — just fetched by the walk — sits in the
// cache, ready to serve the next miss to the same page.
//
// There is no prefetch engine; the acceleration counters report the L2
// residency probes (Lookups) and the probes resolved from the cache (Hits).
type victimaScheme struct {
	tlb *tlb.TwoLevel
	pwc *pwc.PWC
	w   *walker.Walker
	h   *cache.Hierarchy
	tr  *obs.Tracer

	// resident tags the translations transplanted into the L2 cache, with
	// the L2's own geometry (one tag per line). A tag records that a
	// transplant happened; validity is the backing PTE line still being
	// L2-resident, so cache evictions invalidate transplants naturally.
	resident *cache.SetAssoc
	probeLat int // latency of a failed L2 probe

	flushOnSwitch bool
	asid          uint64
	probes, hits  uint64

	procs procList
	cur   *Process
}

func newVictima(cfg Config) *victimaScheme {
	l2 := cfg.Hier.Config().L2
	s := &victimaScheme{
		tlb:           tlb.NewTwoLevel(cfg.ClusteredTLB),
		pwc:           pwc.New(cfg.PWC),
		h:             cfg.Hier,
		tr:            cfg.Trace,
		resident:      cache.NewSetAssoc(l2.SizeBytes/mem.LineBytes, l2.Ways),
		probeLat:      l2.Latency,
		flushOnSwitch: cfg.FlushOnSwitch,
	}
	s.w = &walker.Walker{H: cfg.Hier, PWC: s.pwc, MSHR: cfg.MSHR, Trace: cfg.Trace}
	return s
}

// vtag packs a transplanted-entry tag; the layout mirrors the TLB's
// (asid, page number, size class) encoding so ASID-tagged retention works
// identically.
func vtag(asid, pageNum uint64, class tlb.PageClass) uint64 {
	return asid<<tlb.ASIDShift | pageNum<<1 | uint64(class)
}

// Attach implements Scheme.
func (s *victimaScheme) Attach(pid int, p *Process) { s.procs.attach(pid, p) }

// Boot implements Scheme.
func (s *victimaScheme) Boot(pid int) { s.cur = s.procs[pid] }

// Switch implements Scheme. Transplanted entries are TLB state: the untagged
// policy flushes them with the TLBs, the tagged policy retains them under
// the incoming ASID.
func (s *victimaScheme) Switch(pid int) int {
	s.cur = s.procs[pid]
	if s.flushOnSwitch {
		s.tlb.Flush()
		s.pwc.Flush()
		s.resident.Flush()
	} else {
		s.asid = uint64(pid)
		s.tlb.SetASID(uint64(pid))
		s.pwc.SetASID(uint64(pid))
	}
	return 0
}

// probe checks the transplanted set for either page size of va and, on a tag
// hit, whether the backing PTE line still resides within the L2. It returns
// the serving level and latency of the cache access that resolved the
// translation.
func (s *victimaScheme) probe(va mem.VirtAddr) (served cache.ServedBy, lat int, huge, ok bool) {
	for _, class := range [2]tlb.PageClass{tlb.Page4K, tlb.Page2M} {
		if !s.resident.Lookup(vtag(s.asid, tlb.PageNumber(va, class), class)) {
			continue
		}
		level := 1
		if class == tlb.Page2M {
			level = 2
		}
		addr, reach := s.cur.Table.EntryAddr(va, level)
		if !reach {
			continue // stale transplant: the walk path no longer reaches here
		}
		if s.h.Where(addr) > cache.ServedL2 {
			continue // evicted beyond L2: the transplant is dead
		}
		served, lat = s.h.Access(addr)
		return served, lat, class == tlb.Page2M, true
	}
	return 0, 0, false, false
}

// Translate implements Scheme.
func (s *victimaScheme) Translate(now int64, va mem.VirtAddr, wr *walker.Result) bool {
	p := s.cur
	pfn := p.Frame(va.VPN())
	if s.tlb.LookupVA(va, pfn, p.Neighbors) {
		if s.tr != nil {
			s.tr.TLBHit(now)
		}
		return false
	}
	if s.tr != nil {
		s.tr.WalkStart(now)
	}
	s.probes++
	if served, lat, huge, ok := s.probe(va); ok {
		s.hits++
		if s.tr != nil {
			s.tr.AccelProbe("resident", true)
		}
		level := 1
		if huge {
			level = 2
		}
		*wr = walker.Result{Cycles: lat, Present: true, Huge: huge, N: 1}
		wr.Accesses[0] = walker.Access{
			Dim: walker.DimNative, Level: int8(level), Served: served, Cycles: int32(lat),
		}
		if s.tr != nil {
			s.tr.Step(walker.DimNative.String(), level, served.String(), now, int64(lat), false)
		}
		s.tlb.InsertVA(va, huge, pfn, p.Neighbors)
		return true
	}
	if s.tr != nil {
		s.tr.AccelProbe("resident", false)
	}
	s.w.Walk(now, p.Table, va, wr)
	// The failed L2 probe precedes the walk on the critical path.
	wr.Cycles += s.probeLat
	class := tlb.Page4K
	if wr.Huge {
		class = tlb.Page2M
	}
	s.resident.LookupInsert(vtag(s.asid, tlb.PageNumber(va, class), class))
	s.tlb.InsertVA(va, wr.Huge, pfn, p.Neighbors)
	return true
}

// Counters implements Scheme.
func (s *victimaScheme) Counters() Counters {
	return Counters{
		TLBAccesses: s.tlb.Accesses,
		TLBL2Misses: s.tlb.L2Misses,
		TLBFlushes:  s.tlb.Flushes,
		Lookups:     s.probes,
		Hits:        s.hits,
		MSHRDropped: s.w.MSHR.Dropped(),
	}
}
