package mmu

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pt"
	"repro/internal/pwc"
	"repro/internal/tlb"
	"repro/internal/walker"
)

// asapScheme is the paper's pipeline: two-level TLB, split PWCs, the radix
// walker and — when a prefetch configuration is enabled — the ASAP
// range-register engine. Its Translate path reproduces the historical
// inlined loop of internal/sim byte for byte.
type asapScheme struct {
	tlb    *tlb.TwoLevel
	pwc    *pwc.PWC
	w      *walker.Walker
	engine *core.Engine // nil for the baseline
	mshr   *cache.MSHRFile
	tr     *obs.Tracer

	flushOnSwitch bool
	procs         procList
	cur           *Process
}

func newASAP(cfg Config) *asapScheme {
	s := &asapScheme{
		tlb:           tlb.NewTwoLevel(cfg.ClusteredTLB),
		pwc:           pwc.New(cfg.PWC),
		mshr:          cfg.MSHR,
		tr:            cfg.Trace,
		flushOnSwitch: cfg.FlushOnSwitch,
	}
	if cfg.ASAP.Enabled() {
		s.engine = core.NewEngine(cfg.RangeRegisters, cfg.ASAP)
		s.engine.Trace = cfg.Trace
	}
	s.w = &walker.Walker{H: cfg.Hier, PWC: s.pwc, ASAP: s.engine, MSHR: cfg.MSHR, Trace: cfg.Trace}
	return s
}

// Attach implements Scheme.
func (s *asapScheme) Attach(pid int, p *Process) { s.procs.attach(pid, p) }

// Boot implements Scheme: the boot-time descriptor install of the first
// scheduled process (a swap of an empty register file, so the install and
// overflow accounting matches a capacity-limited load exactly).
func (s *asapScheme) Boot(pid int) {
	s.cur = s.procs[pid]
	if s.engine != nil {
		s.engine.Swap(s.cur.Descs)
	}
}

// Switch implements Scheme: descriptor swap first (the OS restores register
// state before resuming), then the TLB/PWC policy action.
func (s *asapScheme) Switch(pid int) int {
	s.cur = s.procs[pid]
	moved := 0
	if s.engine != nil {
		moved = s.engine.Swap(s.cur.Descs)
	}
	if s.flushOnSwitch {
		s.tlb.Flush()
		s.pwc.Flush()
	} else {
		s.tlb.SetASID(uint64(pid))
		s.pwc.SetASID(uint64(pid))
	}
	return moved
}

// Translate implements Scheme: TLB probe, then walk (range prefetches issue
// inside the walker) and fill.
func (s *asapScheme) Translate(now int64, va mem.VirtAddr, wr *walker.Result) bool {
	p := s.cur
	pfn := p.Frame(va.VPN())
	if s.tlb.LookupVA(va, pfn, p.Neighbors) {
		if s.tr != nil {
			s.tr.TLBHit(now)
		}
		return false
	}
	if s.tr != nil {
		s.tr.WalkStart(now)
	}
	s.w.Walk(now, p.Table, va, wr)
	s.tlb.InsertVA(va, wr.Huge, pfn, p.Neighbors)
	return true
}

// Counters implements Scheme.
func (s *asapScheme) Counters() Counters {
	c := Counters{
		TLBAccesses: s.tlb.Accesses,
		TLBL2Misses: s.tlb.L2Misses,
		TLBFlushes:  s.tlb.Flushes,
		MSHRDropped: s.mshr.Dropped(),
	}
	if s.engine != nil {
		c.Lookups = s.engine.Lookups()
		c.Hits = s.engine.RangeHits()
		c.Overflowed = s.engine.Overflowed()
	}
	return c
}

// NestedConfig assembles the virtualized (2D-walk) variant of the asap
// scheme: guest and host page tables, per-dimension ASAP engines, and the
// GPA-to-machine translation closures of the deployment.
type NestedConfig struct {
	Hier         *cache.Hierarchy
	MSHR         *cache.MSHRFile
	PWC          pwc.Config
	ClusteredTLB bool

	Guest, Host           core.Config
	GuestDescs, HostDescs []*core.Descriptor
	RangeRegisters        int

	GuestPT, HostPT *pt.Table
	// Translate maps a guest-physical address to its machine address.
	Translate func(gpa mem.PhysAddr) mem.PhysAddr
	// DataGPA maps a guest virtual address to the guest-physical address
	// backing its data page.
	DataGPA func(va mem.VirtAddr) mem.PhysAddr
	// Trace receives the scheme's translation events (see Config.Trace).
	Trace *obs.Tracer
}

// nestedScheme is the virtualized asap pipeline. Virtualization is
// single-process in this simulator, so the multi-process lifecycle hooks are
// inert.
type nestedScheme struct {
	tlb     *tlb.TwoLevel
	w       *walker.Nested
	mshr    *cache.MSHRFile
	tr      *obs.Tracer
	dataGPA func(va mem.VirtAddr) mem.PhysAddr
}

// NewNested constructs the virtualized asap scheme. Engines install their
// descriptor files at construction, mirroring the boot-time load of the
// native path.
func NewNested(cfg NestedConfig) Scheme {
	s := &nestedScheme{
		tlb:     tlb.NewTwoLevel(cfg.ClusteredTLB),
		mshr:    cfg.MSHR,
		tr:      cfg.Trace,
		dataGPA: cfg.DataGPA,
	}
	s.w = &walker.Nested{
		H:         cfg.Hier,
		GuestPWC:  pwc.New(cfg.PWC),
		HostPWC:   pwc.New(cfg.PWC),
		GuestASAP: engineFor(cfg.Guest, cfg.GuestDescs, cfg.RangeRegisters),
		HostASAP:  engineFor(cfg.Host, cfg.HostDescs, cfg.RangeRegisters),
		MSHR:      cfg.MSHR,
		GuestPT:   cfg.GuestPT,
		HostPT:    cfg.HostPT,
		Translate: cfg.Translate,
		Trace:     cfg.Trace,
	}
	if s.w.GuestASAP != nil {
		s.w.GuestASAP.Trace = cfg.Trace
	}
	if s.w.HostASAP != nil {
		s.w.HostASAP.Trace = cfg.Trace
	}
	return s
}

// engineFor loads descriptors into a fresh range-register file, or returns
// nil for a disabled configuration.
func engineFor(cfg core.Config, descs []*core.Descriptor, capacity int) *core.Engine {
	if !cfg.Enabled() {
		return nil
	}
	e := core.NewEngine(capacity, cfg)
	for _, d := range descs {
		e.Install(d)
	}
	return e
}

// Attach implements Scheme (inert: the nested deployment is assembled whole
// in NewNested).
func (s *nestedScheme) Attach(pid int, p *Process) {}

// Boot implements Scheme (inert; see Attach).
func (s *nestedScheme) Boot(pid int) {}

// Switch implements Scheme. Virtualized runs are single-process, a dimension
// internal/sim validates before constructing the scheme.
func (s *nestedScheme) Switch(pid int) int {
	panic("mmu: the nested asap scheme is single-process")
}

// Translate implements Scheme: the data page's machine frame is resolved up
// front (the GPA map is a pure function), then TLB probe, 2D walk and fill.
func (s *nestedScheme) Translate(now int64, va mem.VirtAddr, wr *walker.Result) bool {
	gpa := s.dataGPA(va)
	maddr := s.w.Translate(gpa)
	if s.tlb.LookupVA(va, uint64(maddr.Frame()), nil) {
		if s.tr != nil {
			s.tr.TLBHit(now)
		}
		return false
	}
	if s.tr != nil {
		s.tr.WalkStart(now)
	}
	s.w.Walk(now, va, gpa, wr)
	s.tlb.InsertVA(va, wr.Huge, uint64(maddr.Frame()), nil)
	return true
}

// Counters implements Scheme: the guest engine reports through the primary
// acceleration counters, the host engine through the host set.
func (s *nestedScheme) Counters() Counters {
	c := Counters{
		TLBAccesses: s.tlb.Accesses,
		TLBL2Misses: s.tlb.L2Misses,
		TLBFlushes:  s.tlb.Flushes,
		MSHRDropped: s.mshr.Dropped(),
	}
	if e := s.w.GuestASAP; e != nil {
		c.Lookups = e.Lookups()
		c.Hits = e.RangeHits()
		c.Overflowed = e.Overflowed()
	}
	if e := s.w.HostASAP; e != nil {
		c.HostLookups = e.Lookups()
		c.HostHits = e.RangeHits()
		c.HostOverflowed = e.Overflowed()
	}
	return c
}
