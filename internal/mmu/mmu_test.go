package mmu

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pwc"
	"repro/internal/tlb"
)

func TestValidateAndCanonical(t *testing.T) {
	if Canonical("") != "asap" {
		t.Fatalf("Canonical(\"\") = %q", Canonical(""))
	}
	for _, name := range append(Names(), "") {
		if err := Validate(name); err != nil {
			t.Fatalf("Validate(%q): %v", name, err)
		}
	}
	err := Validate("bogus")
	if err == nil {
		t.Fatal("Validate accepted an unknown scheme")
	}
	// The error must name every valid scheme, in the style of workload.MixFor.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scheme %q", err, name)
		}
	}
}

func TestNewRejectsUnknownScheme(t *testing.T) {
	cfg := Config{Hier: cache.NewHierarchy(cache.DefaultConfig()),
		MSHR: cache.NewMSHRFile(10), PWC: pwc.DefaultConfig()}
	if _, err := New("bogus", cfg); err == nil {
		t.Fatal("New accepted an unknown scheme")
	}
	for _, name := range Names() {
		s, err := New(name, cfg)
		if err != nil || s == nil {
			t.Fatalf("New(%q): %v", name, err)
		}
	}
}

func TestParseASAPRejectsContradictoryCombos(t *testing.T) {
	// Prefetch levels belong to the asap scheme.
	for _, scheme := range []string{"", "asap"} {
		cfg, err := ParseASAP(scheme, "p1+p2")
		if err != nil {
			t.Fatalf("ParseASAP(%q, p1+p2): %v", scheme, err)
		}
		if !cfg.P1 || !cfg.P2 {
			t.Fatalf("ParseASAP(%q, p1+p2) = %+v", scheme, cfg)
		}
	}
	for _, scheme := range []string{"victima", "revelator"} {
		if _, err := ParseASAP(scheme, "p1"); err == nil {
			t.Fatalf("ParseASAP(%q, p1) accepted", scheme)
		}
		// Disabled configs combine with any scheme.
		if cfg, err := ParseASAP(scheme, "off"); err != nil || cfg.Enabled() {
			t.Fatalf("ParseASAP(%q, off) = %+v, %v", scheme, cfg, err)
		}
	}
	// A malformed config still errors through the core parser.
	if _, err := ParseASAP("asap", "p9"); err == nil {
		t.Fatal("ParseASAP accepted a malformed config")
	}
}

func TestProcListAttachIsDense(t *testing.T) {
	var l procList
	p2, p0 := &Process{}, &Process{}
	l.attach(2, p2)
	l.attach(0, p0)
	if len(l) != 3 || l[0] != p0 || l[1] != nil || l[2] != p2 {
		t.Fatalf("procList = %v", l)
	}
}

func TestVictimaTagPacking(t *testing.T) {
	// Distinct (asid, page, class) must yield distinct tags, and the layout
	// must match the TLB's so ASID-tagged retention composes.
	tags := map[uint64]bool{}
	for _, asid := range []uint64{0, 1, 7} {
		for _, page := range []uint64{0, 1, 1 << 20} {
			for _, class := range []tlb.PageClass{tlb.Page4K, tlb.Page2M} {
				tag := vtag(asid, page, class)
				if tags[tag] {
					t.Fatalf("tag collision at asid=%d page=%d class=%d", asid, page, class)
				}
				tags[tag] = true
			}
		}
	}
}

func TestRevelatorSlotDeterministicAndInRegion(t *testing.T) {
	s := &revelatorScheme{pid: 3}
	k1, a1 := s.slot(1234, tlb.Page4K)
	k2, a2 := s.slot(1234, tlb.Page4K)
	if k1 != k2 || a1 != a2 {
		t.Fatal("slot is not deterministic")
	}
	kOther, _ := s.slot(1234, tlb.Page2M)
	if kOther == k1 {
		t.Fatal("page-size classes share a slot key")
	}
	lo := revelatorTableBase.Addr()
	hi := lo + mem.PhysAddr(revelatorBuckets*mem.LineBytes)
	if a1 < lo || a1 >= hi {
		t.Fatalf("bucket address %#x outside table region [%#x, %#x)", a1, lo, hi)
	}
	// The region must sit above every area of internal/sim's address plan.
	if lo <= (mem.Frame(1) << 35).Addr() {
		t.Fatal("hash-table region aliases the simulator address plan")
	}
}

func TestASAPSchemeCountersNilEngine(t *testing.T) {
	cfg := Config{Hier: cache.NewHierarchy(cache.DefaultConfig()),
		MSHR: cache.NewMSHRFile(10), PWC: pwc.DefaultConfig()}
	s, err := New("asap", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Lookups != 0 || c.Hits != 0 || c.Overflowed != 0 {
		t.Fatalf("baseline asap counters not zero: %+v", c)
	}
	cfg.ASAP = core.Config{P1: true, P2: true}
	cfg.RangeRegisters = 16
	if _, err := New("asap", cfg); err != nil {
		t.Fatal(err)
	}
}
