package mmu

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pwc"
	"repro/internal/rng"
	"repro/internal/tlb"
	"repro/internal/walker"
)

// Revelator hash-table plan. The OS maintains one hashed translation table
// per page-size class in ordinary memory; buckets are cache-line sized, so a
// probe is one data-hierarchy fetch per class. The region sits above every
// area of internal/sim's machine address-space plan (whose top allocation is
// frame 1<<35), so hash traffic contends for cache capacity with walks and
// co-runner data without aliasing them.
const (
	revelatorTableBase = mem.Frame(1) << 36
	revelatorBuckets   = 1 << 18 // per-class buckets (16 MB of bucket lines)
	revelatorWays      = 4       // translations per bucket
)

// revelatorScheme models system-software-guided hash-based speculative
// translation (PAPERS.md): on an L2-TLB miss the per-size hash buckets for
// the faulting page are fetched through the data hierarchy (in parallel, so
// the critical path is the slower fetch). A bucket entry for the page yields
// a speculative translation at fetch latency; the execution continues while
// a verification walk runs off the critical path — its page-table and PWC
// traffic still happens, modeling the bandwidth cost of verification. On a
// hash miss the walk is the translation (overlapped with the failed bucket
// fetches) and the OS records the discovered translation in the table.
//
// The hash table is OS-managed memory, not hardware state: context switches
// never flush it (even under the untagged-TLB policy), and entries are
// always tagged by process.
type revelatorScheme struct {
	tlb *tlb.TwoLevel
	pwc *pwc.PWC
	w   *walker.Walker
	h   *cache.Hierarchy
	tr  *obs.Tracer

	// entries models the table's bounded occupancy: per-bucket capacity with
	// OS LRU replacement. Keys are mixed (pid, page, class) tags whose low
	// bits double as the bucket index, so the occupancy model and the
	// fetched bucket addresses agree.
	entries *cache.SetAssoc
	scratch walker.Result // verification-walk sink (off the critical path)

	flushOnSwitch bool
	pid           uint64
	probes, hits  uint64

	procs procList
	cur   *Process
}

func newRevelator(cfg Config) *revelatorScheme {
	s := &revelatorScheme{
		tlb:           tlb.NewTwoLevel(cfg.ClusteredTLB),
		pwc:           pwc.New(cfg.PWC),
		h:             cfg.Hier,
		tr:            cfg.Trace,
		entries:       cache.NewSetAssoc(revelatorBuckets*revelatorWays, revelatorWays),
		flushOnSwitch: cfg.FlushOnSwitch,
	}
	s.w = &walker.Walker{H: cfg.Hier, PWC: s.pwc, MSHR: cfg.MSHR, Trace: cfg.Trace}
	return s
}

// slot returns the occupancy key and bucket-line address for a page. The key
// is the mixed (pid, page number, class) tag; its low bits index the bucket,
// exactly the arithmetic the OS hash function would perform. Mixing makes
// bucket pressure uniform; distinct pages colliding on a full 64-bit mixed
// tag is negligible (and a real design verifies every speculation anyway).
func (s *revelatorScheme) slot(pageNum uint64, class tlb.PageClass) (key uint64, addr mem.PhysAddr) {
	key = rng.Mix64(s.pid<<tlb.ASIDShift | pageNum<<1 | uint64(class))
	addr = revelatorTableBase.Addr() + mem.PhysAddr((key&(revelatorBuckets-1))*mem.LineBytes)
	return key, addr
}

// Attach implements Scheme.
func (s *revelatorScheme) Attach(pid int, p *Process) { s.procs.attach(pid, p) }

// Boot implements Scheme.
func (s *revelatorScheme) Boot(pid int) {
	s.cur = s.procs[pid]
	s.pid = uint64(pid)
}

// Switch implements Scheme: hardware translation state follows the policy;
// the in-memory hash table survives every switch.
func (s *revelatorScheme) Switch(pid int) int {
	s.cur = s.procs[pid]
	s.pid = uint64(pid)
	if s.flushOnSwitch {
		s.tlb.Flush()
		s.pwc.Flush()
	} else {
		s.tlb.SetASID(uint64(pid))
		s.pwc.SetASID(uint64(pid))
	}
	return 0
}

// Translate implements Scheme.
func (s *revelatorScheme) Translate(now int64, va mem.VirtAddr, wr *walker.Result) bool {
	p := s.cur
	pfn := p.Frame(va.VPN())
	if s.tlb.LookupVA(va, pfn, p.Neighbors) {
		if s.tr != nil {
			s.tr.TLBHit(now)
		}
		return false
	}
	if s.tr != nil {
		s.tr.WalkStart(now)
	}
	s.probes++
	k4, a4 := s.slot(tlb.PageNumber(va, tlb.Page4K), tlb.Page4K)
	k2, a2 := s.slot(tlb.PageNumber(va, tlb.Page2M), tlb.Page2M)
	// Both per-size buckets are fetched in parallel; the critical path is
	// the slower one.
	served4, lat4 := s.h.Access(a4)
	served2, lat2 := s.h.Access(a2)
	lat, served := lat4, served4
	if lat2 > lat {
		lat, served = lat2, served2
	}
	hit4 := s.entries.Lookup(k4)
	hit2 := !hit4 && s.entries.Lookup(k2)
	if hit4 || hit2 {
		s.hits++
		if s.tr != nil {
			s.tr.AccelProbe("hash", true)
		}
		// Speculative translation at bucket-fetch latency; the verification
		// walk proceeds off the critical path but performs its memory and
		// PWC accesses. Its steps are not traced: overlapping the speculative
		// resolution, they would break the timeline's span nesting, and the
		// walk's cycles are off the critical path by construction.
		s.w.Trace = nil
		s.w.Walk(now, p.Table, va, &s.scratch)
		s.w.Trace = s.tr
		level := 1
		if hit2 {
			level = 2
		}
		*wr = walker.Result{Cycles: lat, Present: true, Huge: hit2, N: 1}
		wr.Accesses[0] = walker.Access{
			Dim: walker.DimNative, Level: int8(level), Served: served, Cycles: int32(lat),
		}
		if s.tr != nil {
			s.tr.Step(walker.DimNative.String(), level, served.String(), now, int64(lat), false)
		}
		s.tlb.InsertVA(va, hit2, pfn, p.Neighbors)
		return true
	}
	if s.tr != nil {
		s.tr.AccelProbe("hash", false)
	}
	s.w.Walk(now, p.Table, va, wr)
	// The walk started alongside the bucket fetches; a fetch outlasting the
	// walk (never in practice) would bound the latency.
	if wr.Cycles < lat {
		wr.Cycles = lat
	}
	// The OS records the faulted translation under its discovered size.
	k := k4
	if wr.Huge {
		k = k2
	}
	s.entries.LookupInsert(k)
	s.tlb.InsertVA(va, wr.Huge, pfn, p.Neighbors)
	return true
}

// Counters implements Scheme.
func (s *revelatorScheme) Counters() Counters {
	return Counters{
		TLBAccesses: s.tlb.Accesses,
		TLBL2Misses: s.tlb.L2Misses,
		TLBFlushes:  s.tlb.Flushes,
		Lookups:     s.probes,
		Hits:        s.hits,
		MSHRDropped: s.w.MSHR.Dropped(),
	}
}
