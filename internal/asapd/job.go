package asapd

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// JobSpec is the wire format of a submitted job: an experiment grid (one or
// more scenario cells over a shared parameter set) or a trace-replay job
// (cells whose Trace names a server-side capture file). Cells × Repeats is
// the unit of work; every (cell, repeat) pair simulates — or is served from
// the persistent store — independently, so a failed or timed-out cell never
// takes the rest of the grid down with it.
type JobSpec struct {
	Cells []CellSpec `json:"cells"`
	// Params tunes the measurement protocol for every cell of the job.
	Params ParamSpec `json:"params"`
	// Repeats is the number of independent repeats per cell (seeds derived
	// per repeat exactly like cmd/paperrepro); 0 means 1.
	Repeats int `json:"repeats,omitempty"`
	// TimeoutMS bounds the whole job. On expiry the job reports the cells
	// that completed plus per-cell deadline errors for the rest. 0 means no
	// per-job deadline (the service's lifetime still bounds it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CellSpec names one scenario cell in CLI vocabulary (the same strings
// cmd/asapsim accepts).
type CellSpec struct {
	Workload      string `json:"workload"`
	Virtualized   bool   `json:"virtualized,omitempty"`
	Colocated     bool   `json:"colocated,omitempty"`
	HostHugePages bool   `json:"host_huge_pages,omitempty"`
	ClusteredTLB  bool   `json:"clustered_tlb,omitempty"`
	ASAP          string `json:"asap,omitempty"`   // native config: off, p1, p1+p2, ...
	Guest         string `json:"guest,omitempty"`  // guest config (with virtualized)
	Host          string `json:"host,omitempty"`   // host config (with virtualized)
	Scheme        string `json:"scheme,omitempty"` // translation scheme (empty = asap)
	Mix           string `json:"mix,omitempty"`    // multi-process mix names
	// Trace is a server-side trace file (recorded with asaptrace) that
	// drives this cell as a replay; Workload is taken from the trace header.
	Trace string `json:"trace,omitempty"`
}

// ParamSpec is the subset of sim.Params a job may override; zero values keep
// the defaults (sim.DefaultParams, or the reduced Fast protocol).
type ParamSpec struct {
	Fast           bool    `json:"fast,omitempty"` // reduced measurement protocol
	WarmupWalks    int     `json:"warmup_walks,omitempty"`
	MeasureWalks   int     `json:"measure_walks,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Processes      int     `json:"processes,omitempty"`
	QuantumRefs    int     `json:"quantum_refs,omitempty"`
	FlushOnSwitch  bool    `json:"flush_on_switch,omitempty"`
	RangeRegisters int     `json:"range_registers,omitempty"`
	HoleProb       float64 `json:"hole_prob,omitempty"`
	FiveLevel      bool    `json:"five_level,omitempty"`
}

// params materializes the effective sim.Params.
func (ps ParamSpec) params() sim.Params {
	p := sim.DefaultParams()
	if ps.Fast {
		p.WarmupWalks = 10_000
		p.MeasureWalks = 8_000
	}
	if ps.WarmupWalks > 0 {
		p.WarmupWalks = ps.WarmupWalks
	}
	if ps.MeasureWalks > 0 {
		p.MeasureWalks = ps.MeasureWalks
	}
	if ps.Seed != 0 {
		p.Seed = ps.Seed
	}
	if ps.Processes > 1 {
		p.Processes = ps.Processes
	}
	if ps.QuantumRefs > 0 {
		p.QuantumRefs = ps.QuantumRefs
	}
	p.FlushOnSwitch = ps.FlushOnSwitch
	if ps.RangeRegisters > 0 {
		p.RangeRegisters = ps.RangeRegisters
	}
	if ps.HoleProb > 0 {
		p.HoleProb = ps.HoleProb
	}
	p.FiveLevel = ps.FiveLevel
	return p
}

// plannedCell is one (cell, repeat) unit of work after validation: the
// scenario, the job's base parameter set, and the repeat index. The memo/
// store key is sim.Key(sc, base.ForRepeat(repeat)).
type plannedCell struct {
	sc     sim.Scenario
	base   sim.Params
	repeat int
}

func (pc plannedCell) key() sim.CellKey {
	return sim.Key(pc.sc, pc.base.ForRepeat(pc.repeat))
}

// scenario validates one cell spec and builds its Scenario. Trace files are
// loaded (and registered for replay) at submission, so a bad path is a 400
// at submit time, not a buried per-cell error an hour later.
func (cs CellSpec) scenario() (sim.Scenario, error) {
	var sc sim.Scenario
	if cs.Trace != "" {
		tr, err := trace.LoadFile(cs.Trace)
		if err != nil {
			return sc, fmt.Errorf("trace %s: %w", cs.Trace, err)
		}
		sc = sim.UseTrace(tr)
		if cs.Workload != "" && cs.Workload != sc.Workload.Name {
			return sc, fmt.Errorf("trace %s records workload %s, spec says %s",
				cs.Trace, sc.Workload.Name, cs.Workload)
		}
	} else {
		spec, ok := workload.ByName(cs.Workload)
		if !ok {
			return sc, fmt.Errorf("unknown workload %q", cs.Workload)
		}
		sc.Workload = spec
	}
	sc.Virtualized = cs.Virtualized
	sc.Colocated = cs.Colocated
	sc.HostHugePages = cs.HostHugePages
	sc.ClusteredTLB = cs.ClusteredTLB
	sc.Mix = cs.Mix
	scheme := cs.Scheme
	if scheme == "" {
		scheme = "asap"
	}
	if err := mmu.Validate(scheme); err != nil {
		return sc, err
	}
	if mmu.Canonical(scheme) != "asap" {
		// The asap default keeps the zero Scenario value so digests and
		// store keys match the CLI harness exactly.
		sc.Scheme = mmu.Canonical(scheme)
	}
	// The native config parses in scheme context (prefetch levels belong to
	// the asap scheme), mirroring cmd/asapsim's flag validation.
	var err error
	if sc.ASAP.Native, err = mmu.ParseASAP(scheme, orOff(cs.ASAP)); err != nil {
		return sc, fmt.Errorf("asap: %w", err)
	}
	if sc.ASAP.Guest, err = core.ParseConfig(orOff(cs.Guest)); err != nil {
		return sc, fmt.Errorf("guest: %w", err)
	}
	if sc.ASAP.Host, err = core.ParseConfig(orOff(cs.Host)); err != nil {
		return sc, fmt.Errorf("host: %w", err)
	}
	// Contradictory combinations are submit-time errors, exactly like the
	// CLI: silently ignoring a dimension produces misleading results.
	if !sc.Virtualized && (sc.ASAP.Guest.Enabled() || sc.ASAP.Host.Enabled() || sc.HostHugePages) {
		return sc, fmt.Errorf("guest, host and host_huge_pages require virtualized")
	}
	if sc.Virtualized && sc.ASAP.Native.Enabled() {
		return sc, fmt.Errorf("asap selects the native engine; under virtualized use guest/host")
	}
	if sc.Virtualized && sc.Scheme != "" {
		return sc, fmt.Errorf("scheme %s is native-only; virtualized runs the asap pipeline", sc.Scheme)
	}
	return sc, nil
}

func orOff(s string) string {
	if s == "" {
		return "off"
	}
	return s
}

// plan validates the whole spec and expands it to (cell, repeat) units.
func (spec JobSpec) plan() ([]plannedCell, error) {
	if len(spec.Cells) == 0 {
		return nil, fmt.Errorf("job has no cells")
	}
	if spec.Repeats < 0 {
		return nil, fmt.Errorf("repeats must be >= 0")
	}
	repeats := spec.Repeats
	if repeats == 0 {
		repeats = 1
	}
	base := spec.Params.params()
	var out []plannedCell
	for i, cs := range spec.Cells {
		sc, err := cs.scenario()
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		for rep := 0; rep < repeats; rep++ {
			out = append(out, plannedCell{sc: sc, base: base, repeat: rep})
		}
	}
	return out, nil
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// Cell sources (how a completed cell's result was obtained).
const (
	SourceStore     = "store"     // served from the persistent store
	SourceSimulated = "simulated" // simulated by this job (or shared in-flight)
)

// CellStatus is the per-cell outcome in a job's status.
type CellStatus struct {
	Cell   string `json:"cell"` // scenario name
	Repeat int    `json:"repeat"`
	State  string `json:"state"`            // pending | done | error
	Source string `json:"source,omitempty"` // store | simulated
	Error  string `json:"error,omitempty"`
	// Record carries the full machine-readable result (schema identical to
	// cmd/paperrepro's JSON artifacts; Metrics parallels report.MetricCols).
	Record *report.Record `json:"record,omitempty"`
}

// JobProgress summarizes how far a job has advanced, derived from the
// per-cell states at snapshot time (Total = Done + Failed + Pending).
type JobProgress struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Pending int `json:"pending"`
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID        string       `json:"id"`
	State     string       `json:"state"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Progress  JobProgress  `json:"progress"`
	Cells     []CellStatus `json:"cells"`
	// Error summarizes a partial outcome (e.g. the job deadline expired):
	// completed cells keep their results, the rest carry per-cell errors.
	Error string `json:"error,omitempty"`
}

// Job is one submitted job's full lifecycle. All mutation goes through
// methods holding mu; Status returns deep-enough copies for concurrent use.
type Job struct {
	id   string
	spec JobSpec
	plan []plannedCell

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cells     []CellStatus
	errMsg    string
	done      chan struct{}
}

func newJob(id string, spec JobSpec, plan []plannedCell, now time.Time) *Job {
	cells := make([]CellStatus, len(plan))
	for i, pc := range plan {
		cells[i] = CellStatus{Cell: pc.sc.Name(), Repeat: pc.repeat, State: "pending"}
	}
	return &Job{
		id: id, spec: spec, plan: plan,
		state: StateQueued, submitted: now, cells: cells,
		done: make(chan struct{}),
	}
}

// Done is closed when the job reaches its terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) start(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
}

func (j *Job) completeCell(i int, source string, rec *report.Record) {
	j.mu.Lock()
	j.cells[i].State = "done"
	j.cells[i].Source = source
	j.cells[i].Record = rec
	j.mu.Unlock()
}

func (j *Job) failCell(i int, err error) {
	j.mu.Lock()
	j.cells[i].State = "error"
	j.cells[i].Error = err.Error()
	j.mu.Unlock()
}

// finish moves the job to done, deriving the partial-outcome summary from
// the per-cell states.
func (j *Job) finish(now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.finished = now
	completed, failed := 0, 0
	for _, c := range j.cells {
		switch c.State {
		case "done":
			completed++
		case "error":
			failed++
		}
	}
	if failed > 0 {
		j.errMsg = fmt.Sprintf("%d/%d cells failed; %d completed", failed, len(j.cells), completed)
	}
	j.mu.Unlock()
	close(j.done)
}

// Status snapshots the job for serving. Cell records are shared read-only
// pointers — they are never mutated after completion.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Submitted: j.submitted,
		Cells:     append([]CellStatus(nil), j.cells...),
		Error:     j.errMsg,
	}
	st.Progress.Total = len(j.cells)
	for _, c := range j.cells {
		switch c.State {
		case "done":
			st.Progress.Done++
		case "error":
			st.Progress.Failed++
		default:
			st.Progress.Pending++
		}
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
