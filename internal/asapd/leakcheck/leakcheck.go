// Package leakcheck is a small, dependency-free goroutine-leak detector in
// the spirit of go.uber.org/goleak, used by the runner and asapd shutdown
// tests: a service that claims to have drained must leave zero goroutines
// behind, and under -race a leaked worker is exactly the kind of bug that
// only bites in production.
//
// Usage, first line of a test:
//
//	defer leakcheck.Check(t)()
//
// Check snapshots the goroutines alive at call time; the returned function
// re-snapshots and fails the test if goroutines exist that were not running
// at the start and are not on the always-benign allowlist. Because goroutine
// shutdown is asynchronous (a worker closes its done channel before
// returning), the final snapshot retries briefly before declaring a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxStack bounds one all-goroutine stack snapshot. 1 MiB holds thousands of
// goroutines — far beyond anything these tests spawn.
const maxStack = 1 << 20

// goroutine is one parsed stanza of a runtime.Stack(all=true) dump.
type goroutine struct {
	id    string // the numeric id from the "goroutine N [state]:" header
	stack string // the full stanza, header included
}

// snapshot parses the current all-goroutine dump.
func snapshot() []goroutine {
	buf := make([]byte, maxStack)
	n := runtime.Stack(buf, true)
	var out []goroutine
	for _, stanza := range strings.Split(string(buf[:n]), "\n\n") {
		header, _, ok := strings.Cut(stanza, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id, _, _ := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		out = append(out, goroutine{id: id, stack: stanza})
	}
	return out
}

// benign reports whether a goroutine is infrastructure that may come and go
// regardless of the code under test: the testing framework itself, runtime
// helpers, and the signal watcher the os/signal package starts lazily.
func benign(g goroutine) bool {
	for _, marker := range []string{
		"testing.(*T).Run",         // the test runner's own goroutines
		"testing.(*M).startAlarm",  // -timeout watchdog
		"testing.runFuzzing",       // fuzz workers
		"testing.tRunner.func",     // cleanup goroutines
		"runtime.goexit0",          // exiting, header already parsed
		"runtime.gc",               // GC background workers
		"runtime.bgsweep",          // ...
		"runtime.bgscavenge",       // ...
		"runtime.forcegchelper",    // ...
		"runtime.runfinq",          // finalizer goroutine
		"os/signal.signal_recv",    // signal watcher, started once per process
		"os/signal.loop",           // ...
		"leakcheck.snapshot",       // this package taking the snapshot
		"net/http.(*Server).Serve", // covered by the http.Server's own Close
	} {
		if strings.Contains(g.stack, marker) {
			return true
		}
	}
	return false
}

// Check snapshots running goroutines and returns the verification function;
// defer it so it runs at test end. Verification retries for up to a second —
// goroutine teardown is asynchronous even after a clean Close — and then
// fails the test with the stacks of every goroutine it considers leaked.
func Check(t testing.TB) func() {
	t.Helper()
	before := map[string]bool{}
	for _, g := range snapshot() {
		before[g.id] = true
	}
	return func() {
		t.Helper()
		deadline := time.Now().Add(time.Second)
		var leaked []goroutine
		for {
			leaked = leaked[:0]
			for _, g := range snapshot() {
				if !before[g.id] && !benign(g) {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var b strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n%s\n", g.stack)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:%s", len(leaked), b.String())
	}
}
