package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures failures so the detector can be tested without failing
// the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = format
	for _, a := range args {
		if s, ok := a.(string); ok {
			r.msg += " " + s
		}
	}
}

func TestCleanTestPasses(t *testing.T) {
	rec := &recorder{TB: t}
	done := make(chan struct{})
	verify := Check(rec)
	go func() { close(done) }() // starts and exits before verification
	<-done
	verify()
	if rec.failed {
		t.Fatalf("clean run flagged as leaking: %s", rec.msg)
	}
}

func TestLeakedGoroutineIsReported(t *testing.T) {
	rec := &recorder{TB: t}
	verify := Check(rec)
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() { // deliberately outlives verification
		close(started)
		<-stop
	}()
	<-started
	start := time.Now()
	verify()
	close(stop)
	if !rec.failed {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(rec.msg, "leaked") {
		t.Fatalf("unexpected failure message: %q", rec.msg)
	}
	// The retry loop must have tried for about a second before giving up.
	if time.Since(start) < 900*time.Millisecond {
		t.Fatalf("verification gave up after %v, want ~1s of retries", time.Since(start))
	}
}

func TestPreexistingGoroutineIgnored(t *testing.T) {
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() { // alive before Check: must not count as a leak
		close(started)
		<-stop
	}()
	<-started
	defer close(stop)

	rec := &recorder{TB: t}
	verify := Check(rec)
	verify()
	if rec.failed {
		t.Fatalf("pre-existing goroutine flagged as leak: %s", rec.msg)
	}
}
