package queue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFIFOAndBackpressure(t *testing.T) {
	q := New[int](2)
	if err := q.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(2); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(3); !errors.Is(err, ErrFull) {
		t.Fatalf("push at capacity returned %v, want ErrFull", err)
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	for want := 1; want <= 2; want++ {
		v, ok := q.Pop(context.Background())
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, want)
		}
	}
	// Capacity freed: intake resumes.
	if err := q.TryPush(4); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	q := New[string](4)
	q.TryPush("a")
	q.TryPush("b")
	q.Close()
	q.Close() // idempotent
	if err := q.TryPush("c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close returned %v, want ErrClosed", err)
	}
	for _, want := range []string{"a", "b"} {
		v, ok := q.Pop(context.Background())
		if !ok || v != want {
			t.Fatalf("Pop = %q,%v; want %q,true", v, ok, want)
		}
	}
	if _, ok := q.Pop(context.Background()); ok {
		t.Fatal("Pop on closed+drained queue reported ok")
	}
}

func TestPopHonorsContext(t *testing.T) {
	q := New[int](1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := q.Pop(ctx); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Pop ignored the context deadline")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int](8)
	const items = 400
	var got sync.Map
	var consumers sync.WaitGroup
	for c := 0; c < 4; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				v, ok := q.Pop(context.Background())
				if !ok {
					return
				}
				got.Store(v, true)
			}
		}()
	}
	var producers sync.WaitGroup
	for p := 0; p < 4; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; i < items/4; i++ {
				v := p*(items/4) + i
				for {
					if err := q.TryPush(v); err == nil {
						break
					}
					time.Sleep(time.Millisecond) // backpressure: retry
				}
			}
		}(p)
	}
	producers.Wait()
	q.Close()
	consumers.Wait()
	for i := 0; i < items; i++ {
		if _, ok := got.Load(i); !ok {
			t.Fatalf("item %d lost", i)
		}
	}
}
