// Package queue is asapd's bounded job queue: a fixed-capacity FIFO whose
// full state is a first-class outcome, not an error to retry blindly. The
// service maps ErrFull to HTTP 429 + Retry-After — backpressure propagates
// to clients instead of growing an unbounded in-memory backlog that a crash
// would silently drop.
package queue

import (
	"context"
	"errors"
	"sync"
)

// ErrFull reports a queue at capacity; the submitter should back off and
// retry (the asapd client helper implements jittered exponential backoff).
var ErrFull = errors.New("queue: full")

// ErrClosed reports a queue that no longer accepts work (service draining).
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded FIFO, safe for concurrent producers and consumers.
type Queue[T any] struct {
	ch chan T

	mu     sync.Mutex
	closed bool
}

// New returns a queue holding at most capacity items; capacity < 1 is
// clamped to 1 (a zero-capacity queue could never accept work).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// TryPush enqueues v without blocking. It returns ErrFull at capacity and
// ErrClosed after Close — the two states a service must distinguish (retry
// later vs go away).
func (q *Queue[T]) TryPush(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	select {
	case q.ch <- v:
		return nil
	default:
		return ErrFull
	}
}

// Pop dequeues the oldest item, blocking until one is available, the queue
// is closed and drained (ok=false), or ctx ends (ok=false). Items pushed
// before Close are always deliverable — draining consumers keep popping
// until ok=false.
func (q *Queue[T]) Pop(ctx context.Context) (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		return v, ok
	case <-ctx.Done():
		return v, false
	}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap reports the queue's capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Close stops intake. Idempotent; queued items remain poppable.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}
