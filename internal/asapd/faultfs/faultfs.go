// Package faultfs puts the result store's filesystem behind a small
// interface so tests can inject the failures that matter for crash safety —
// failed writes, failed fsyncs, failed renames, and torn writes (a write
// that reports success but leaves truncated bytes on disk, exactly what a
// power cut between write-back and fsync produces).
//
// Faults are armed deterministically: each rule names an operation and the
// 1-based occurrence it fires on, so a test expresses a whole fault schedule
// ("the 3rd write is torn after 17 bytes, the 2nd rename fails") and replays
// it exactly. No randomness, no timing dependence.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// File is the subset of *os.File the store's write path needs: write bytes,
// force them to stable storage, close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the result store runs on. The production
// implementation is OS(); tests wrap it (or a throwaway temp-dir OS) in a
// Faulty to inject failures.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Glob(pattern string) ([]string, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the production FS backed by package os.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Glob(pattern string) ([]string, error) {
	return filepath.Glob(pattern)
}

// Op names a filesystem operation a fault can target.
type Op string

// The injectable operations.
const (
	OpCreate Op = "create"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	OpRead   Op = "read"
)

// ErrInjected is the default error returned by a firing fault.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault is one armed failure: it fires on the N-th occurrence (1-based) of
// Op after arming. A zero Err injects ErrInjected. Torn applies to OpWrite
// only: the write persists just KeepBytes of the buffer yet reports full
// success — the caller believes the data is safe, the "disk" holds a
// truncated record, and nothing fails until a later read. That is the
// classic torn-write crash the store's digest check must catch.
type Fault struct {
	Op        Op
	N         int
	Err       error
	Torn      bool
	KeepBytes int
}

// Faulty wraps an FS with a deterministic fault schedule. Arm as many faults
// as the scenario needs; every operation not matched by a fault passes
// through unchanged. Faulty is safe for concurrent use.
type Faulty struct {
	inner FS

	mu     sync.Mutex
	counts map[Op]int
	faults []Fault
}

// Wrap returns a Faulty passing everything through to inner until faults are
// armed.
func Wrap(inner FS) *Faulty {
	return &Faulty{inner: inner, counts: map[Op]int{}}
}

// Arm appends faults to the schedule. Occurrence counting starts at Wrap
// time; arming mid-test counts operations performed since Wrap.
func (f *Faulty) Arm(faults ...Fault) {
	f.mu.Lock()
	f.faults = append(f.faults, faults...)
	f.mu.Unlock()
}

// Reset clears the schedule and occurrence counters.
func (f *Faulty) Reset() {
	f.mu.Lock()
	f.faults = nil
	f.counts = map[Op]int{}
	f.mu.Unlock()
}

// step counts one occurrence of op and returns the fault that fires on it,
// if any.
func (f *Faulty) step(op Op) (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for _, ft := range f.faults {
		if ft.Op == op && ft.N == f.counts[op] {
			return ft, true
		}
	}
	return Fault{}, false
}

func faultErr(ft Fault) error {
	if ft.Err != nil {
		return ft.Err
	}
	return ErrInjected
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Create(name string) (File, error) {
	if ft, hit := f.step(OpCreate); hit {
		return nil, faultErr(ft)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if ft, hit := f.step(OpRead); hit {
		return nil, faultErr(ft)
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if ft, hit := f.step(OpWrite); hit {
		if ft.Torn {
			keep := min(ft.KeepBytes, len(data))
			// Persist the prefix, report success: a torn write.
			return f.inner.WriteFile(name, data[:keep], perm)
		}
		return faultErr(ft)
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if ft, hit := f.step(OpRename); hit {
		return faultErr(ft)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if ft, hit := f.step(OpRemove); hit {
		return faultErr(ft)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) Glob(pattern string) ([]string, error) {
	return f.inner.Glob(pattern)
}

// faultyFile applies write/sync faults to one open file.
type faultyFile struct {
	fs    *Faulty
	inner File
}

func (f *faultyFile) Write(p []byte) (int, error) {
	if ft, hit := f.fs.step(OpWrite); hit {
		if ft.Torn {
			keep := min(ft.KeepBytes, len(p))
			if _, err := f.inner.Write(p[:keep]); err != nil {
				return 0, err
			}
			// Report the full length: the writer believes everything landed.
			return len(p), nil
		}
		return 0, faultErr(ft)
	}
	return f.inner.Write(p)
}

func (f *faultyFile) Sync() error {
	if ft, hit := f.fs.step(OpSync); hit {
		return faultErr(ft)
	}
	return f.inner.Sync()
}

func (f *faultyFile) Close() error { return f.inner.Close() }
