package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPassThroughUntilArmed(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(OS())
	name := filepath.Join(dir, "a")
	if err := f.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := f.Rename(name, name+"2"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(name + "2"); err != nil {
		t.Fatal(err)
	}
}

// TestNthOccurrence proves the deterministic schedule: the fault fires on
// exactly the armed occurrence, not before, not after.
func TestNthOccurrence(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(OS())
	f.Arm(Fault{Op: OpWrite, N: 3})
	for i, wantErr := range []bool{false, false, true, false} {
		err := f.WriteFile(filepath.Join(dir, "x"), []byte("data"), 0o644)
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("write %d: err = %v, want failure=%v", i+1, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: %v is not ErrInjected", i+1, err)
		}
	}
}

// TestTornWriteReportsSuccess checks the lying contract: a torn write
// persists only KeepBytes yet reports the full length to the caller.
func TestTornWriteReportsSuccess(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(OS())
	f.Arm(Fault{Op: OpWrite, N: 1, Torn: true, KeepBytes: 3})
	name := filepath.Join(dir, "torn")
	file, err := f.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("full payload"))
	if err != nil || n != len("full payload") {
		t.Fatalf("torn write reported %d, %v; want full success", n, err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name)
	if err != nil || string(got) != "ful" {
		t.Fatalf("on-disk bytes = %q, %v; want the 3-byte prefix", got, err)
	}
}

func TestCustomErrAndReset(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	f := Wrap(OS())
	f.Arm(Fault{Op: OpRename, N: 1, Err: boom})
	name := filepath.Join(dir, "y")
	if err := f.WriteFile(name, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(name, name+"2"); !errors.Is(err, boom) {
		t.Fatalf("Rename = %v, want boom", err)
	}
	f.Reset()
	// Counters and schedule are gone: the same occurrence passes now.
	if err := f.Rename(name, name+"2"); err != nil {
		t.Fatalf("Rename after Reset = %v", err)
	}
}

// TestFileWritesShareTheCounter: writes through Create'd files and WriteFile
// draw from one per-op sequence, so a schedule spans both paths.
func TestFileWritesShareTheCounter(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(OS())
	f.Arm(Fault{Op: OpWrite, N: 2})
	if err := f.WriteFile(filepath.Join(dir, "a"), []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	file, err := f.Create(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if _, err := file.Write([]byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v, want ErrInjected", err)
	}
}
