package asapd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/rng"
)

// Client talks to an asapd service and cooperates with its backpressure:
// 429 (queue full) and 503 (draining/booting) responses are retried with
// jittered exponential backoff, honoring Retry-After as a floor. The zero
// value is not usable; set Base.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (<= 0: 6).
	MaxAttempts int
	// BaseDelay is the first backoff step (<= 0: 100ms); it doubles per
	// attempt up to MaxDelay (<= 0: 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the backoff jitter. Plumbed rather than drawn from a
	// global source so client behavior in tests is deterministic.
	Seed uint64
	// Sleep overrides how the client waits between attempts; nil sleeps on
	// a timer honoring ctx. Tests inject a recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 6
}

func (c *Client) delays() (base, max time.Duration) {
	base, max = c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	return base, max
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the wait before attempt n (0-based): exponential with
// equal jitter — half the step is guaranteed, half is uniform random — so
// simultaneous rejected clients spread out instead of re-colliding.
func (c *Client) backoff(st *rng.Stream, attempt int, retryAfter time.Duration) time.Duration {
	base, maxD := c.delays()
	step := base << attempt
	if step > maxD || step <= 0 {
		step = maxD
	}
	d := step/2 + time.Duration(st.Uint64n(uint64(step/2)+1))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// retryAfter parses a Retry-After header (seconds form) as a backoff floor.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// apiError is a non-retryable HTTP error response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("asapd: HTTP %d: %s", e.Status, e.Msg)
}

func decodeError(resp *http.Response, body []byte) *apiError {
	var e struct {
		Error string `json:"error"`
	}
	msg := string(body)
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &apiError{Status: resp.StatusCode, Msg: msg}
}

// do issues one request with backpressure retries and decodes the JSON
// response into out (when out is non-nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	st := rng.New(c.Seed)
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			var floor time.Duration
			if e, ok := lastErr.(*retryableError); ok {
				floor = e.after
			}
			if err := c.sleep(ctx, c.backoff(st, attempt-1, floor)); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			// Transport errors (service still booting, connection reset mid-
			// drain) are retryable like backpressure.
			lastErr = &retryableError{err: err}
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = &retryableError{err: err}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = &retryableError{err: decodeError(resp, respBody), after: retryAfter(resp)}
			continue
		case resp.StatusCode >= 400:
			return decodeError(resp, respBody)
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(respBody, out)
	}
	return fmt.Errorf("asapd: giving up after %d attempts: %w", c.maxAttempts(), lastErr)
}

// retryableError wraps a backpressure rejection or transport failure with
// its Retry-After floor.
type retryableError struct {
	err   error
	after time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// SubmitJob submits spec and returns the accepted job's initial status.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// JobStatus fetches one job's current status.
func (c *Client) JobStatus(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// WaitJob polls a job until it reaches the done state (or ctx ends),
// returning its final status. poll <= 0 defaults to 250ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == StateDone {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return st, err
		}
	}
}

// Metrics fetches the service's /metrics document.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}
