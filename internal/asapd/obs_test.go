package asapd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asapd/leakcheck"
	"repro/internal/obs"
)

// stepClock is a deterministic Clock that advances a fixed step per read, so
// uptime and throughput in the exposition are reproducible.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// TestMetricsPromExposition covers the /metrics content negotiation: the
// default document stays JSON (with the additive observability fields), and
// ?format=prom serves Prometheus text exposition that passes the repo's own
// lint.
func TestMetricsPromExposition(t *testing.T) {
	defer leakcheck.Check(t)()
	clk := &stepClock{now: time.Unix(1700000000, 0), step: 50 * time.Millisecond}
	s := newService(t, Config{Workers: 2, JobWorkers: 1, Clock: clk})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	c := &Client{Base: srv.URL, Seed: 1}
	st, err := c.SubmitJob(context.Background(), fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(context.Background(), st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// JSON remains the default and carries the additive fields.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{
		"queue_depth", "cells_done", "cells_per_sec_recent",
		"runner_cells_submitted", "runner_cells_done", "runner_memo_hit_rate",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/metrics JSON missing %q: %v", key, doc)
		}
	}

	// ?format=prom switches to text exposition.
	resp, err = http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if errs := obs.LintProm(body); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v\n%s", errs, body)
	}
	for _, want := range []string{
		"asapd_cells_done_total 2",
		"asapd_queue_capacity 16",
		"asapd_runner_cells_submitted_total",
		"# TYPE asapd_queue_depth gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsSnapshotConsistent hammers MetricsSnapshot while jobs move from
// queued to in-flight and checks the atomicity fix: because depth and
// in-flight come from one lock (and the worker's dequeue/start transition
// holds the same lock), no snapshot may show more work than the service can
// hold — the bug this pins was a reader catching a job counted in both.
func TestMetricsSnapshotConsistent(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 1, JobWorkers: 1, QueueCap: 2})

	stop := make(chan struct{})
	var snapErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.MetricsSnapshot()
			if m.QueueDepth > m.QueueCap {
				snapErr = fmt.Errorf("queue depth exceeds capacity: %d/%d", m.QueueDepth, m.QueueCap)
				return
			}
			if m.QueueDepth+m.JobsInFlight > m.QueueCap+1 { // 1 job worker
				snapErr = fmt.Errorf("job counted in queue and in flight at once: %+v", m)
				return
			}
		}
	}()

	// Keep submitting stuck jobs until the queue refuses; the worker picks one
	// up, so submissions keep crossing the queued->running transition the
	// snapshot reader is racing against.
	var jobs []*Job
	for i := 0; i < 50; i++ {
		j, err := s.Submit(hugeSpec())
		if errors.Is(err, ErrBusy) {
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		if len(jobs) >= 3 { // worker + both queue slots occupied
			break
		}
	}
	close(stop)
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	// Force-abort the stuck work.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown = %v, want DeadlineExceeded", err)
	}

	// The aborted cells surface in the per-job progress as failures.
	st := jobs[0].Status()
	pr := st.Progress
	if pr.Total != 1 || pr.Failed != 1 || pr.Done != 0 || pr.Pending != 0 {
		t.Fatalf("aborted job progress = %+v", pr)
	}
}

// TestJobProgressField tracks the progress counters through a job's life:
// all-pending while queued, all-done after completion, and always summing to
// the cell count.
func TestJobProgressField(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 1, JobWorkers: 1})
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// A stuck job occupies the single worker so the job under test is
	// observable in its queued state; its deadline then frees the worker.
	spec := hugeSpec()
	spec.TimeoutMS = 500
	blocker, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}

	j, err := s.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != StateQueued {
		t.Fatalf("state %q, want queued behind the blocker", st.State)
	}
	if pr := st.Progress; pr.Total != 2 || pr.Pending != 2 || pr.Done != 0 || pr.Failed != 0 {
		t.Fatalf("queued progress = %+v", pr)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		st = j.Status()
		pr := st.Progress
		if pr.Done+pr.Failed+pr.Pending != pr.Total {
			t.Fatalf("progress does not sum to total: %+v", pr)
		}
		if st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if pr := st.Progress; pr.Total != 2 || pr.Done != 2 || pr.Failed != 0 || pr.Pending != 0 {
		t.Fatalf("final progress = %+v", pr)
	}
}
