package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// FuzzEntryDecode drives the on-disk entry decoder with arbitrary bytes:
// whatever the input — truncated, bit-flipped, hostile lengths — Decode must
// return a clean error or a verified result, never panic, never over-allocate
// on a lying length field, and never serve data that fails verification.
func FuzzEntryDecode(f *testing.F) {
	w, ok := workload.ByName("mcf")
	if !ok {
		f.Fatal("missing workload mcf")
	}
	p := sim.DefaultParams()
	p.WarmupWalks = 120
	p.MeasureWalks = 80
	key := sim.Key(sim.Scenario{Workload: w}, p)
	res, err := sim.Run(key.Scenario, key.Params)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(key, res)
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: the valid entry, systematic truncations, a bit flip in every
	// region (magic, length, payload, trailer), and framing edge cases.
	f.Add(valid)
	f.Add(valid[:0])
	f.Add(valid[:len(magic)])
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-1])
	for _, off := range []int{0, len(magic), headerLen, len(valid) / 2, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	huge := append([]byte(nil), valid...)
	huge[len(magic)] = 0xff // length field claims ~4 GiB
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Decode(data, key)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt decode error: %v", err)
			}
			if res != nil {
				t.Fatal("error with partial result")
			}
			return
		}
		// A successful decode must be a verified entry for this key: its
		// re-encoding reproduces the canonical bytes.
		enc, err := Encode(key, res)
		if err != nil {
			t.Fatalf("re-encode of decoded result: %v", err)
		}
		if !bytes.Equal(enc, valid) {
			t.Fatal("decoder accepted bytes that are not the canonical entry")
		}
	})
}
