// Package store is the crash-safe persistent result store behind asapd: the
// runner's in-memory memo cache moved to disk, content-addressed by the
// existing (Scenario, Params) cell identity, so identical cells are never
// re-simulated across processes or restarts.
//
// Crash safety rests on three mechanisms:
//
//   - Atomic writes. An entry is written to a temp file in the store
//     directory, fsynced, and renamed into place. Readers only ever see no
//     file or a complete rename; a crash mid-write leaves a temp file the
//     next Open sweeps away.
//   - Self-verifying reads. Every entry carries framing, a payload digest
//     and the full cell key (see entry.go). A torn write — rename durable,
//     data blocks lost — fails verification on the next read.
//   - Quarantine, never deletion of evidence. A corrupt entry is moved to
//     quarantine/ (so a recurring corruption source stays diagnosable) and
//     the cell reports a miss: the caller re-simulates and overwrites. A
//     corrupt result is never served.
//
// The filesystem is injected (internal/asapd/faultfs), so the tests in this
// package prove each property under deterministic fault schedules instead of
// hoping.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/asapd/faultfs"
	"repro/internal/sim"
)

// Stats counts store outcomes since Open.
type Stats struct {
	Hits        uint64 `json:"hits"`         // results served from disk
	Misses      uint64 `json:"misses"`       // absent entries
	Corrupt     uint64 `json:"corrupt"`      // entries quarantined on read
	Writes      uint64 `json:"writes"`       // entries persisted
	WriteErrors uint64 `json:"write_errors"` // failed persists (the result was still returned to the caller)
	Recovered   uint64 `json:"recovered"`    // orphaned temp files swept by Open
}

// Store is a directory of result entries. It is safe for concurrent use.
type Store struct {
	dir string
	fs  faultfs.FS

	tmpSeq atomic.Uint64

	mu    sync.Mutex
	stats Stats
}

// Open prepares dir (and its quarantine/ subdirectory) and sweeps orphaned
// temp files left by a crash mid-write — they were never renamed into place,
// so no reader ever observed them. fsys nil selects the real filesystem.
func Open(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, fs: fsys}
	orphans, err := fsys.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		return nil, fmt.Errorf("store: recovery sweep: %w", err)
	}
	for _, o := range orphans {
		// Best effort: a sweep failure leaves a harmless temp file (never
		// read, overwritten namespace-wise by the next write's fresh suffix).
		if s.fs.Remove(o) == nil {
			s.stats.Recovered++
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry file for a cell.
func (s *Store) path(key sim.CellKey) string {
	return filepath.Join(s.dir, KeyDigest(key)+".res")
}

// Get returns the stored result for key, or ok=false on a miss. A corrupt
// entry is quarantined and reported as a miss — the caller re-simulates and
// the next Put replaces the entry.
func (s *Store) Get(key sim.CellKey) (*sim.Result, bool) {
	data, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) && !errors.Is(err, os.ErrNotExist) {
			// An unreadable entry (injected read fault, permission damage) is
			// indistinguishable from corruption for serving purposes; count
			// it and miss, but leave the file for quarantine on a later read.
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil, false
		}
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	res, err := Decode(data, key)
	if err != nil {
		s.quarantine(key)
		s.count(func(st *Stats) { st.Corrupt++ })
		return nil, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	return res, true
}

// Put persists the result for key with an atomic temp-file+rename write. On
// error the entry is untouched (readers keep seeing the previous state) and
// the temp file is removed best-effort.
func (s *Store) Put(key sim.CellKey, res *sim.Result) error {
	data, err := Encode(key, res)
	if err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return err
	}
	final := s.path(key)
	tmp := fmt.Sprintf("%s.tmp-%d-%d", final, os.Getpid(), s.tmpSeq.Add(1))
	if err := s.writeAtomic(tmp, final, data); err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return fmt.Errorf("store: put %s: %w", KeyDigest(key), err)
	}
	s.count(func(st *Stats) { st.Writes++ })
	return nil
}

func (s *Store) writeAtomic(tmp, final string, data []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		s.discard(tmp)
		return err
	}
	// fsync before rename: otherwise the rename can become durable before
	// the data, and a crash manufactures exactly the torn entry the digest
	// check exists to catch. The check is the backstop, not the plan.
	if err := f.Sync(); err != nil {
		f.Close()
		s.discard(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		s.discard(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.discard(tmp)
		return err
	}
	return nil
}

// discard best-effort removes a failed write's temp file; Open's recovery
// sweep handles whatever survives a crash.
func (s *Store) discard(tmp string) { _ = s.fs.Remove(tmp) }

// quarantine moves a corrupt entry out of the serving namespace, keeping the
// bytes for diagnosis. A unique suffix preserves repeated corruptions of the
// same cell.
func (s *Store) quarantine(key sim.CellKey) {
	name := KeyDigest(key)
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.res.%d-%d", name, os.Getpid(), s.tmpSeq.Add(1)))
	if err := s.fs.Rename(s.path(key), dst); err != nil {
		// Rename failed (injected fault, cross-device dir): fall back to
		// removal so the corrupt entry can at least never be read again.
		_ = s.fs.Remove(s.path(key))
	}
}

// Len reports the number of live entries on disk.
func (s *Store) Len() (int, error) {
	entries, err := s.fs.Glob(filepath.Join(s.dir, "*.res"))
	if err != nil {
		return 0, err
	}
	return len(entries), nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
