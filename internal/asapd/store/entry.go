// Entry encoding for the on-disk result store.
//
// An entry is a self-verifying record of one simulated cell:
//
//	offset  size  field
//	0       8     magic "ASAPRES1"
//	8       4     payload length (big-endian uint32)
//	12      n     payload: JSON {key, result}
//	12+n    8     FNV-64a digest of the payload (big-endian)
//
// The payload embeds the cell's full canonical key string, so a read
// verifies three independent things before serving a result: the framing
// (magic + exact length), the content (payload digest), and the identity
// (the stored key equals the requested key — a digest collision or a
// misplaced file can never serve the wrong cell's numbers). Decode returns
// a wrapped ErrCorrupt for every malformed input; it never panics and never
// returns a partially decoded result.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

const (
	magic      = "ASAPRES1"
	headerLen  = len(magic) + 4 // magic + payload length
	trailerLen = 8              // payload digest
)

// maxPayload bounds a decoded payload. Real entries are a few KiB of JSON;
// the bound keeps a corrupt length field from driving a huge allocation.
const maxPayload = 16 << 20

// ErrCorrupt marks an entry that failed structural, checksum or identity
// verification. The store quarantines the file and treats the cell as a
// miss.
var ErrCorrupt = errors.New("store: corrupt entry")

// payload is the JSON body of an entry.
type payload struct {
	Key    string      `json:"key"` // canonical cell key (CanonicalKey)
	Result *sim.Result `json:"result"`
}

// CanonicalKey renders the full cell identity as a stable string. Scenario
// and Params are flat structs of scalars and strings (the property the
// runner's memo map already relies on), so their %+v rendering is canonical:
// equal keys produce equal strings and vice versa.
func CanonicalKey(key sim.CellKey) string {
	return fmt.Sprintf("%+v|%+v", key.Scenario, key.Params)
}

// Encode serializes one cell result as a self-verifying entry.
func Encode(key sim.CellKey, res *sim.Result) ([]byte, error) {
	body, err := json.Marshal(payload{Key: CanonicalKey(key), Result: res})
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	if len(body) > maxPayload {
		return nil, fmt.Errorf("store: encode: payload %d bytes exceeds limit", len(body))
	}
	out := make([]byte, 0, headerLen+len(body)+trailerLen)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	h := fnv.New64a()
	h.Write(body)
	out = binary.BigEndian.AppendUint64(out, h.Sum64())
	return out, nil
}

// Decode verifies and decodes an entry, checking that it records the cell
// identified by key. Any structural damage — truncation, bad magic, length
// mismatch, checksum mismatch, malformed JSON, or an identity mismatch —
// returns an error wrapping ErrCorrupt.
func Decode(data []byte, key sim.CellKey) (*sim.Result, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than framing", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	n := binary.BigEndian.Uint32(data[len(magic):headerLen])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	if len(data) != headerLen+int(n)+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, framing says %d", ErrCorrupt, len(data), headerLen+int(n)+trailerLen)
	}
	body := data[headerLen : headerLen+int(n)]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.BigEndian.Uint64(data[headerLen+int(n):]); got != want {
		return nil, fmt.Errorf("%w: payload digest %016x, trailer says %016x", ErrCorrupt, got, want)
	}
	var p payload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("%w: payload JSON: %v", ErrCorrupt, err)
	}
	if p.Result == nil {
		return nil, fmt.Errorf("%w: payload carries no result", ErrCorrupt)
	}
	if want := CanonicalKey(key); p.Key != want {
		return nil, fmt.Errorf("%w: entry records key %q, want %q", ErrCorrupt, p.Key, want)
	}
	return p.Result, nil
}

// KeyDigest names a cell's entry file: a 64-bit FNV-1a over the canonical
// key, rendered as 16 hex digits. Collisions are tolerable because Decode
// verifies the full key string — a colliding cell reads as corrupt-identity
// and re-simulates rather than serving the wrong numbers.
func KeyDigest(key sim.CellKey) string {
	h := fnv.New64a()
	h.Write([]byte(CanonicalKey(key)))
	return fmt.Sprintf("%016x", h.Sum64())
}
