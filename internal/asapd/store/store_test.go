package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/asapd/faultfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testCell returns a small real simulation cell: the store's contract is
// byte-level fidelity for genuine results, so the tests round-trip the real
// thing rather than a hand-rolled struct.
func testCell(t *testing.T) sim.CellKey {
	t.Helper()
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("missing workload mcf")
	}
	p := sim.DefaultParams()
	p.WarmupWalks = 300
	p.MeasureWalks = 200
	return sim.Key(sim.Scenario{Workload: w}, p)
}

func simulate(t *testing.T, key sim.CellKey) *sim.Result {
	t.Helper()
	res, err := sim.Run(key.Scenario, key.Params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func openStore(t *testing.T, dir string, fsys faultfs.FS) *Store {
	t.Helper()
	s, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, nil)
	key := testCell(t)
	res := simulate(t, key)

	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("stored result differs:\ngot  %+v\nwant %+v", got, res)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSurvivesRestart is the cross-process contract: a second Store over the
// same directory serves the first one's results.
func TestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := testCell(t)
	res := simulate(t, key)

	s1 := openStore(t, dir, nil)
	if err := s1.Put(key, res); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, nil)
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("restarted store missed a persisted entry")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("restarted store returned a different result")
	}
}

// TestRecoverySweep checks that Open deletes temp files a crash mid-write
// left behind, and only those.
func TestRecoverySweep(t *testing.T) {
	dir := t.TempDir()
	key := testCell(t)
	res := simulate(t, key)
	s1 := openStore(t, dir, nil)
	if err := s1.Put(key, res); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, KeyDigest(key)+".res.tmp-999-7")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, nil)
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan temp file survived recovery: %v", err)
	}
	if s2.Stats().Recovered != 1 {
		t.Fatalf("recovered = %d, want 1", s2.Stats().Recovered)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("recovery sweep destroyed a live entry")
	}
}

// TestTornWriteCrashSafety is the headline crash-safety proof: the store is
// killed mid-write by a torn-write fault (the write reports success but only
// a prefix reaches "disk", then the process is gone — rename durable, data
// lost), a fresh store over the same directory must never serve the corrupt
// entry, the entry must land in quarantine, and re-simulating the cell must
// reproduce a byte-identical record.
func TestTornWriteCrashSafety(t *testing.T) {
	dir := t.TempDir()
	key := testCell(t)
	res := simulate(t, key)
	reference, err := Encode(key, res)
	if err != nil {
		t.Fatal(err)
	}

	for _, keep := range []int{0, 11, 40, len(reference) - 1} {
		faulty := faultfs.Wrap(faultfs.OS())
		s1 := openStore(t, dir, faulty)
		faulty.Arm(faultfs.Fault{Op: faultfs.OpWrite, N: 1, Torn: true, KeepBytes: keep})
		if err := s1.Put(key, res); err != nil {
			t.Fatalf("keep=%d: a torn write is silent by definition, got %v", keep, err)
		}
		// s1 "crashes" here; s2 is the restarted process.
		s2 := openStore(t, dir, nil)
		if _, ok := s2.Get(key); ok {
			t.Fatalf("keep=%d: torn entry was served", keep)
		}
		if st := s2.Stats(); st.Corrupt != 1 {
			t.Fatalf("keep=%d: stats = %+v, want 1 corrupt", keep, st)
		}
		q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
		if err != nil || len(q) == 0 {
			t.Fatalf("keep=%d: torn entry not quarantined (%v, %v)", keep, q, err)
		}
		for _, f := range q {
			os.Remove(f) // reset for the next keep
		}

		// Recovery: re-simulate and persist; the record must be byte-identical
		// to the pre-crash reference.
		res2 := simulate(t, key)
		if err := s2.Put(key, res2); err != nil {
			t.Fatal(err)
		}
		entry, err := os.ReadFile(filepath.Join(dir, KeyDigest(key)+".res"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(entry, reference) {
			t.Fatalf("keep=%d: re-simulated entry differs from the pre-crash bytes", keep)
		}
		got, ok := s2.Get(key)
		if !ok || !reflect.DeepEqual(got, res) {
			t.Fatalf("keep=%d: recovered result differs", keep)
		}
	}
}

// TestFailedWriteLeavesOldEntry checks atomic replacement: when any step of
// a re-Put fails (write, fsync, rename), readers keep seeing the previous
// complete entry.
func TestFailedWriteLeavesOldEntry(t *testing.T) {
	key := testCell(t)
	res := simulate(t, key)
	for _, fault := range []faultfs.Fault{
		{Op: faultfs.OpWrite, N: 1},
		{Op: faultfs.OpSync, N: 1},
		{Op: faultfs.OpRename, N: 1},
	} {
		dir := t.TempDir()
		s := openStore(t, dir, nil)
		if err := s.Put(key, res); err != nil {
			t.Fatal(err)
		}
		faulty := faultfs.Wrap(faultfs.OS())
		s2 := openStore(t, dir, faulty)
		faulty.Arm(fault)
		if err := s2.Put(key, res); err == nil {
			t.Fatalf("fault %v: Put succeeded", fault.Op)
		}
		if st := s2.Stats(); st.WriteErrors != 1 {
			t.Fatalf("fault %v: stats = %+v, want 1 write error", fault.Op, st)
		}
		got, ok := s2.Get(key)
		if !ok || !reflect.DeepEqual(got, res) {
			t.Fatalf("fault %v: previous entry lost", fault.Op)
		}
		// No temp litter: the failed write discarded its file.
		tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
		if len(tmps) != 0 {
			t.Fatalf("fault %v: temp litter %v", fault.Op, tmps)
		}
	}
}

// TestWrongKeyEntryNotServed plants a structurally valid entry under the
// wrong cell's filename: identity verification must reject it.
func TestWrongKeyEntryNotServed(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, nil)
	key := testCell(t)
	res := simulate(t, key)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}

	other := key
	other.Params.Seed ^= 0xbeef
	valid, err := os.ReadFile(filepath.Join(dir, KeyDigest(key)+".res"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, KeyDigest(other)+".res"), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Fatal("entry with mismatched identity was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}

// TestBitFlipQuarantined flips one bit at several offsets across an entry;
// every flip must read as corrupt, never as a (subtly different) result.
func TestBitFlipQuarantined(t *testing.T) {
	key := testCell(t)
	res := simulate(t, key)
	valid, err := Encode(key, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 9, len(valid) / 2, len(valid) - 3} {
		dir := t.TempDir()
		s := openStore(t, dir, nil)
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x10
		if err := os.WriteFile(filepath.Join(dir, KeyDigest(key)+".res"), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("bit flip at %d served a result", off)
		}
		q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
		if len(q) != 1 {
			t.Fatalf("bit flip at %d: quarantine holds %v", off, q)
		}
	}
}

func TestDistinctCellsDistinctEntries(t *testing.T) {
	key := testCell(t)
	other := key
	other.Scenario.Colocated = true
	if KeyDigest(key) == KeyDigest(other) {
		t.Fatal("distinct cells share a digest")
	}
	if CanonicalKey(key) == CanonicalKey(other) {
		t.Fatal("distinct cells share a canonical key")
	}
}
