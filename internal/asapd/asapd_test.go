package asapd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/asapd/faultfs"
	"repro/internal/asapd/leakcheck"
)

// fastSpec is a small two-cell grid that simulates in milliseconds.
func fastSpec() JobSpec {
	return JobSpec{
		Cells: []CellSpec{
			{Workload: "mcf"},
			{Workload: "mcf", Colocated: true},
		},
		Params: ParamSpec{WarmupWalks: 300, MeasureWalks: 200},
	}
}

// hugeSpec is a cell that cannot finish within any test's lifetime — it only
// ever ends by cancellation (the simulator checks its context every few
// thousand references).
func hugeSpec() JobSpec {
	return JobSpec{
		Cells:  []CellSpec{{Workload: "mcf"}},
		Params: ParamSpec{WarmupWalks: 1 << 30, MeasureWalks: 1 << 30},
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shutdown(t *testing.T, s *Service, timeout time.Duration) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// TestSubmitPollComplete is the happy path over real HTTP: submit a grid
// with the client, poll to completion, check every cell carries a record.
func TestSubmitPollComplete(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 2, JobWorkers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	c := &Client{Base: srv.URL, Seed: 1}
	spec := fastSpec()
	spec.Repeats = 2
	st, err := c.SubmitJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("initial state %q", st.State)
	}
	final, err := c.WaitJob(context.Background(), st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Error != "" {
		t.Fatalf("job error: %s", final.Error)
	}
	if len(final.Cells) != 4 { // 2 cells x 2 repeats
		t.Fatalf("cells = %d, want 4", len(final.Cells))
	}
	for i, cell := range final.Cells {
		if cell.State != "done" || cell.Record == nil {
			t.Fatalf("cell %d: %+v", i, cell)
		}
		if cell.Source != SourceSimulated {
			t.Fatalf("cell %d source %q, want simulated (no store configured)", i, cell.Source)
		}
		if cell.Record.Experiment != "asapd" {
			t.Fatalf("cell %d experiment %q", i, cell.Record.Experiment)
		}
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.CellsDone != 4 || m.QueueCap != 16 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestStoreRoundTripAcrossRestart proves the persistence contract end to
// end: a second service over the same store directory serves a re-submitted
// grid entirely from disk.
func TestStoreRoundTripAcrossRestart(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()

	s1 := newService(t, Config{Workers: 2, StoreDir: dir})
	j1, err := s1.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if err := shutdown(t, s1, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, Config{Workers: 2, StoreDir: dir})
	defer func() {
		if err := shutdown(t, s2, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	j2, err := s2.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	st := j2.Status()
	if st.Error != "" {
		t.Fatalf("job error: %s", st.Error)
	}
	for i, cell := range st.Cells {
		if cell.Source != SourceStore {
			t.Fatalf("cell %d source %q, want store", i, cell.Source)
		}
		if cell.Record == nil {
			t.Fatalf("cell %d has no record", i)
		}
	}
	m := s2.MetricsSnapshot()
	if m.Store == nil || m.Store.Hits != 2 || m.StoreHitRate != 1.0 {
		t.Fatalf("store metrics = %+v", m.Store)
	}
}

// TestBackpressure429 fills the queue behind a deliberately stuck job and
// checks the full refusal path: Submit returns ErrBusy, HTTP returns 429
// with Retry-After, and the forced shutdown aborts the stuck cells.
func TestBackpressure429(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 1, JobWorkers: 1, QueueCap: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// First job occupies the single worker (it can only end by
	// cancellation). Wait until it is actually running so the queue state
	// below is deterministic.
	j1, err := s.Submit(hugeSpec())
	if err != nil {
		t.Fatal(err)
	}
	for j1.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	// Second job fills the one queue slot.
	if _, err := s.Submit(hugeSpec()); err != nil {
		t.Fatal(err)
	}
	// Third is refused with backpressure.
	if _, err := s.Submit(fastSpec()); !errors.Is(err, ErrBusy) {
		t.Fatalf("Submit on full queue = %v, want ErrBusy", err)
	}

	body, _ := json.Marshal(fastSpec())
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Force-abort the stuck work: a short deadline exercises the cancel
	// path, and the leak check above proves nothing survived it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown = %v, want DeadlineExceeded", err)
	}
	st := j1.Status()
	if st.State != StateDone {
		t.Fatalf("aborted job state %q", st.State)
	}
	if st.Cells[0].State != "error" || st.Cells[0].Error == "" {
		t.Fatalf("aborted cell = %+v, want structured error", st.Cells[0])
	}
}

// TestGracefulShutdownDrains submits work and immediately shuts down with a
// generous deadline: the job must complete (drained, not dropped), new work
// must be refused with 503, and no goroutine may leak.
func TestGracefulShutdownDrains(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 2, JobWorkers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	j, err := s.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown(t, s, 30*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := j.Status()
	if st.State != StateDone || st.Error != "" {
		t.Fatalf("drained job = state %q error %q", st.State, st.Error)
	}
	for i, cell := range st.Cells {
		if cell.State != "done" {
			t.Fatalf("cell %d not drained: %+v", i, cell)
		}
	}

	if _, err := s.Submit(fastSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after shutdown = %v, want ErrDraining", err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(fastSpec())
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

// TestJobTimeoutPartialResults proves a job deadline is surgical: the
// deadlined job's stuck cells carry structured deadline errors, while work
// that completes — including other jobs on the same runner — is untouched.
func TestJobTimeoutPartialResults(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 2, JobWorkers: 1})
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Two jobs race through one runner: a fast job (completes) and a
	// deadlined unfinishable one (times out). The deadline must produce a
	// per-cell structured error on the timed job without touching the fast
	// job's results.
	fast, err := s.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	huge := hugeSpec()
	huge.TimeoutMS = 300
	timed, err := s.Submit(huge)
	if err != nil {
		t.Fatal(err)
	}
	<-fast.Done()
	<-timed.Done()

	if st := fast.Status(); st.Error != "" {
		t.Fatalf("fast job dragged down: %s", st.Error)
	}
	st := timed.Status()
	if st.Error == "" || !strings.Contains(st.Error, "1/1 cells failed") {
		t.Fatalf("timed job error = %q", st.Error)
	}
	cell := st.Cells[0]
	if cell.State != "error" || !strings.Contains(cell.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("timed cell = %+v, want deadline error", cell)
	}
	if cell.Record != nil {
		t.Fatal("timed-out cell carries a record")
	}
}

// TestStoreWriteFailureIsNonFatal injects a store write fault: the job still
// succeeds (the result exists in memory) and the failure is visible in
// metrics rather than in the job.
func TestStoreWriteFailureIsNonFatal(t *testing.T) {
	defer leakcheck.Check(t)()
	faulty := faultfs.Wrap(faultfs.OS())
	s := newService(t, Config{Workers: 2, StoreDir: t.TempDir(), FS: faulty})
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	faulty.Arm(faultfs.Fault{Op: faultfs.OpSync, N: 1})

	j, err := s.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	st := j.Status()
	if st.Error != "" {
		t.Fatalf("store fault leaked into the job: %s", st.Error)
	}
	m := s.MetricsSnapshot()
	if m.Store == nil || m.Store.WriteErrors != 1 {
		t.Fatalf("store metrics = %+v, want 1 write error", m.Store)
	}
}

// TestSubmitValidation checks that malformed specs are rejected at submit
// time with a 400, not buried as per-cell failures.
func TestSubmitValidation(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer func() {
		if err := shutdown(t, s, 30*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	for name, body := range map[string]string{
		"empty grid":       `{"cells": []}`,
		"unknown workload": `{"cells": [{"workload": "no-such"}]}`,
		"unknown field":    `{"cellz": [{"workload": "mcf"}]}`,
		"bad asap config":  `{"cells": [{"workload": "mcf", "asap": "p9"}]}`,
		"bad scheme":       `{"cells": [{"workload": "mcf", "scheme": "no-such"}]}`,
		"missing trace":    `{"cells": [{"trace": "/no/such/file.trace"}]}`,
		"guest sans virt":  `{"cells": [{"workload": "mcf", "guest": "p1"}]}`,
		"virt plus native": `{"cells": [{"workload": "mcf", "virtualized": true, "asap": "p1"}]}`,
		"not json":         `{]`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestClientBackoff drives the client against a scripted server: two 429s
// with Retry-After, then success. The injected sleep recorder proves the
// jittered exponential schedule and the Retry-After floor; the plumbed seed
// makes the jitter reproducible.
func TestClientBackoff(t *testing.T) {
	defer leakcheck.Check(t)()
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"id": "job-1", "state": "queued", "submitted": "2020-01-01T00:00:00Z", "cells": []}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		Base:        srv.URL,
		Seed:        42,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		MaxAttempts: 5,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	st, err := c.JobStatus(context.Background(), "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" || calls != 3 {
		t.Fatalf("status %+v after %d calls", st, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs", slept)
	}
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("backoff %d = %v, below the Retry-After floor", i, d)
		}
		if d > 2*time.Second {
			t.Errorf("backoff %d = %v, above MaxDelay + floor headroom", i, d)
		}
	}

	// Exhausted attempts surface the last backpressure error.
	calls, slept = 0, nil
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer always.Close()
	c.Base = always.URL
	c.MaxAttempts = 3
	if _, err := c.JobStatus(context.Background(), "job-1"); err == nil ||
		!strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("exhausted retries = %v", err)
	}
}

// TestClientJitterDeterministic: equal seeds give equal schedules, distinct
// seeds (generally) don't — the jitter is real but reproducible.
func TestClientJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusTooManyRequests)
		}))
		defer srv.Close()
		var slept []time.Duration
		c := &Client{
			Base: srv.URL, Seed: seed, MaxAttempts: 4,
			BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second,
			Sleep: func(_ context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		}
		_, _ = c.JobStatus(context.Background(), "x")
		return slept
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	if len(a) != 3 {
		t.Fatalf("schedule %v, want 3 backoffs", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds gave identical schedules %v", a)
	}
}
