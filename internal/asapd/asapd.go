// Package asapd is the simulation service: an HTTP/JSON front end that
// accepts experiment-grid and trace-replay jobs and executes them through
// internal/runner, hardened end to end.
//
// The hardening contracts, each proven by a test in this package or its
// subpackages:
//
//   - Backpressure: the job queue is bounded (queue.Queue); a full queue is
//     HTTP 429 + Retry-After, never an unbounded in-memory backlog. The
//     Client helper retries with jittered exponential backoff.
//   - Timeouts: a job's TimeoutMS bounds the whole grid through context
//     plumbing that reaches sim's reference loops; on expiry the job reports
//     every completed cell plus structured per-cell errors for the rest.
//   - Crash safety: results persist in an atomic, digest-verified store
//     (store.Store); corrupt entries are quarantined and re-simulated, never
//     served.
//   - Graceful shutdown: Shutdown stops intake (503), drains in-flight cells
//     to a deadline, cancels what remains, flushes and exits with zero
//     leaked goroutines.
//
// This package is intentionally outside the determinism lint scope: it is
// the one place in the repository that deals in wall-clock time, I/O errors
// and OS signals. Everything it calls below (runner, sim) remains
// deterministic.
package asapd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/asapd/faultfs"
	"repro/internal/asapd/queue"
	"repro/internal/asapd/store"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// ErrBusy reports a full job queue: back off and retry (HTTP 429).
var ErrBusy = errors.New("asapd: queue full")

// ErrDraining reports a service that is shutting down (HTTP 503).
var ErrDraining = errors.New("asapd: draining")

// Clock abstracts wall-clock time so tests inject a deterministic one.
type Clock interface {
	Now() time.Time
}

type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

// Config configures a Service. The zero value is usable: GOMAXPROCS
// simulation workers, a small queue, no persistent store.
type Config struct {
	// Workers is the simulation worker-pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueCap bounds the job queue (<= 0: 16). A full queue is ErrBusy.
	QueueCap int
	// JobWorkers is the number of jobs executing concurrently (<= 0: 2).
	// Cells within a job always fan out across the simulation workers;
	// JobWorkers only bounds how many grids make progress at once.
	JobWorkers int
	// StoreDir enables the persistent result store when non-empty.
	StoreDir string
	// FS overrides the store's filesystem (fault injection); nil is the OS.
	FS faultfs.FS
	// Clock overrides wall-clock time; nil is the system clock.
	Clock Clock
	// ForeignRetries bounds re-submissions of a cell whose in-flight
	// simulation was cancelled by another job's deadline (< 0: 0; 0 picks
	// the default of 2).
	ForeignRetries int
}

// Service executes jobs from a bounded queue against a shared runner and
// persistent store. Create with New, stop with Shutdown.
type Service struct {
	cfg    Config
	clock  Clock
	q      *queue.Queue[*Job]
	runner *runner.Runner
	store  *store.Store // nil when StoreDir is empty

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup // job workers

	mu sync.Mutex
	// queued mirrors the queue's occupancy under s.mu: incremented before a
	// successful TryPush, decremented by the popping worker in the same
	// critical section that marks the job in flight. The queue's own Len()
	// would be read under a different lock at a different instant — during a
	// pop, a snapshot could count one job both queued and in flight, showing
	// depth + in-flight above capacity. The mirrored counter makes the
	// queued -> in-flight transition atomic with respect to MetricsSnapshot.
	queued    int
	jobs      map[string]*Job
	order     []string // job IDs in submission order
	nextID    uint64
	draining  bool
	inFlight  int // jobs currently executing
	cellsDone uint64
	started   time.Time
	cellRate  *obs.ProgressMeter // EWMA cells/s, fed with clock timestamps
}

// New builds the service and starts its job workers. StoreDir (when set) is
// created if needed; Open's recovery sweep runs before any job executes.
func New(cfg Config) (*Service, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.ForeignRetries == 0 {
		cfg.ForeignRetries = 2
	}
	s := &Service{
		cfg:   cfg,
		clock: cfg.Clock,
		q:     queue.New[*Job](cfg.QueueCap),
		jobs:  map[string]*Job{},
	}
	if s.clock == nil {
		s.clock = sysClock{}
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, cfg.FS)
		if err != nil {
			return nil, fmt.Errorf("asapd: open store: %w", err)
		}
		s.store = st
	}
	s.runner = runner.New(cfg.Workers)
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	s.started = s.clock.Now()
	s.cellRate = obs.NewProgressMeter(0, 0)
	s.wg.Add(cfg.JobWorkers)
	for i := 0; i < cfg.JobWorkers; i++ {
		go s.jobWorker()
	}
	return s, nil
}

// Submit validates spec, enqueues it and returns the queued job. It never
// blocks on simulation work. Errors: validation failures (HTTP 400), ErrBusy
// (429), ErrDraining (503).
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	plan, err := spec.plan()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Reserve queue capacity under s.mu. queued never undercounts the queue's
	// real occupancy (it is incremented before the push and decremented after
	// the pop), so a reservation that fits here guarantees TryPush below
	// cannot find the queue full.
	if s.queued >= s.q.Cap() {
		s.mu.Unlock()
		return nil, ErrBusy
	}
	s.queued++
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()
	j := newJob(id, spec, plan, s.clock.Now())

	// Push before registering: a refused push leaves no trace, and a worker
	// that pops instantly works on the shared *Job regardless of the map.
	if err := s.q.TryPush(j); err != nil {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		switch {
		case errors.Is(err, queue.ErrFull):
			return nil, ErrBusy
		case errors.Is(err, queue.ErrClosed):
			return nil, ErrDraining
		}
		return nil, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	return j, nil
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

func (s *Service) jobWorker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop(s.rootCtx)
		if !ok {
			return
		}
		// One critical section moves the job from queued to in flight, so a
		// metrics snapshot sees it in exactly one of the two counters.
		s.mu.Lock()
		s.queued--
		s.inFlight++
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}
}

// runJob executes one job: store-first, then prefetch every miss through the
// runner and collect in order, persisting fresh results. Per-cell failures
// (including the job deadline) are recorded per cell; the job itself always
// reaches done with whatever completed.
func (s *Service) runJob(j *Job) {
	j.start(s.clock.Now())
	ctx := s.rootCtx
	if j.spec.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Store pass + prefetch: hits complete immediately, misses fan out
	// across the runner's workers (singleflight dedupes cells shared with
	// other in-flight jobs).
	futures := make([]*runner.Future, len(j.plan))
	for i, pc := range j.plan {
		if res, ok := s.storeGet(pc.key()); ok {
			s.finishCell(j, i, pc, SourceStore, res)
			continue
		}
		futures[i] = s.runner.SubmitRepeatCtx(ctx, pc.sc, pc.base, pc.repeat)
	}
	for i, f := range futures {
		if f == nil {
			continue // store hit
		}
		pc := j.plan[i]
		res, err := s.collect(ctx, f, pc)
		if err != nil {
			j.failCell(i, err)
			continue
		}
		s.finishCell(j, i, pc, SourceSimulated, res)
		s.storePut(pc.key(), res)
	}
	j.finish(s.clock.Now())
}

// collect waits for a cell, re-submitting when the in-flight simulation it
// joined was cancelled by a different job's deadline: singleflight means the
// first submitter's context governs the work, so a foreign cancellation is
// not this job's failure. Retries are bounded; the cell was evicted from the
// memo, so a re-submission starts fresh work under our own context.
func (s *Service) collect(ctx context.Context, f *runner.Future, pc plannedCell) (*sim.Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := f.WaitCtx(ctx)
		if err == nil {
			return res, nil
		}
		foreign := (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
			ctx.Err() == nil
		if !foreign || attempt >= s.cfg.ForeignRetries {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("cell aborted: %w", ctx.Err())
			}
			return nil, err
		}
		f = s.runner.SubmitRepeatCtx(ctx, pc.sc, pc.base, pc.repeat)
	}
}

func (s *Service) finishCell(j *Job, i int, pc plannedCell, source string, res *sim.Result) {
	rec := report.FromResult("asapd", pc.sc, pc.base, pc.repeat, res)
	j.completeCell(i, source, &rec)
	now := s.clock.Now()
	s.mu.Lock()
	s.cellsDone++
	done := s.cellsDone
	s.mu.Unlock()
	s.cellRate.Observe(now.UnixNano(), int64(done))
}

func (s *Service) storeGet(key sim.CellKey) (*sim.Result, bool) {
	if s.store == nil {
		return nil, false
	}
	return s.store.Get(key)
}

// storePut persists a fresh result. Store write failures are deliberately
// non-fatal: the job already has its result in memory; the store's
// WriteErrors stat (surfaced via /metrics) is the operator's signal.
func (s *Service) storePut(key sim.CellKey, res *sim.Result) {
	if s.store == nil {
		return
	}
	_ = s.store.Put(key, res) //nolint:errcheck // recorded in store stats
}

// Draining reports whether Shutdown has begun (healthz turns 503).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops intake immediately (new submissions get ErrDraining) and
// drains: queued and in-flight jobs run to completion while ctx lasts. If
// ctx ends first, the remaining work is cancelled — in-flight cells abort at
// the simulator's next context check and are recorded as per-cell errors —
// and Shutdown returns ctx.Err(). Either way every goroutine the service
// started has exited when Shutdown returns, and a nil error means a clean
// drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// A second Shutdown just waits for the first to finish the workers.
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.q.Close() // workers drain queued jobs, then their Pop returns false

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		s.rootCancel() // abort in-flight cells; workers exit promptly
		<-workersDone
	}
	s.rootCancel()
	s.runner.Close()
	return err
}

// Metrics is the /metrics document. QueueDepth and JobsInFlight come from one
// snapshot lock, so QueueDepth + JobsInFlight never exceeds QueueCap +
// JobWorkers (a job is never counted in both).
type Metrics struct {
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	JobsInFlight int     `json:"jobs_in_flight"`
	CellsDone    uint64  `json:"cells_done"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	// CellsPerSecRecent is a decaying average of recent throughput (5 s
	// half-life), as opposed to CellsPerSec's lifetime mean.
	CellsPerSecRecent float64 `json:"cells_per_sec_recent"`
	UptimeSec         float64 `json:"uptime_sec"`
	Draining          bool    `json:"draining"`

	RunnerHits   uint64 `json:"runner_hits"`
	RunnerMisses uint64 `json:"runner_misses"`
	// Runner progress: unique cells accepted, finished and executing right
	// now on the shared simulation worker pool (runner.Progress).
	RunnerCellsSubmitted uint64 `json:"runner_cells_submitted"`
	RunnerCellsDone      uint64 `json:"runner_cells_done"`
	RunnerCellsInFlight  uint64 `json:"runner_cells_in_flight"`
	// RunnerMemoHitRate is hits/(hits+misses) of result collection — the
	// fraction of collected cells served without a fresh simulation.
	RunnerMemoHitRate float64 `json:"runner_memo_hit_rate"`

	Store        *store.Stats `json:"store,omitempty"`
	StoreHitRate float64      `json:"store_hit_rate,omitempty"`
}

// MetricsSnapshot gathers the service's counters. Queue depth and job
// in-flight are the mirrored counters read under the one s.mu section that
// the worker's queued->in-flight transition also holds, so the pair is
// consistent at any instant.
func (s *Service) MetricsSnapshot() Metrics {
	hits, misses := s.runner.Stats()
	prog := s.runner.Progress()
	s.mu.Lock()
	m := Metrics{
		QueueDepth:           s.queued,
		QueueCap:             s.q.Cap(),
		JobsInFlight:         s.inFlight,
		CellsDone:            s.cellsDone,
		Draining:             s.draining,
		RunnerHits:           hits,
		RunnerMisses:         misses,
		RunnerCellsSubmitted: prog.Submitted,
		RunnerCellsDone:      prog.Done,
		RunnerCellsInFlight:  prog.InFlight,
	}
	uptime := s.clock.Now().Sub(s.started).Seconds()
	s.mu.Unlock()
	if uptime > 0 {
		m.UptimeSec = uptime
		m.CellsPerSec = float64(m.CellsDone) / uptime
	}
	m.CellsPerSecRecent = s.cellRate.Rate()
	if collected := hits + misses; collected > 0 {
		m.RunnerMemoHitRate = float64(hits) / float64(collected)
	}
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
		if lookups := st.Hits + st.Misses; lookups > 0 {
			m.StoreHitRate = float64(st.Hits) / float64(lookups)
		}
	}
	return m
}

// WriteProm renders the metrics snapshot in Prometheus text exposition
// format (content negotiated by /metrics?format=prom). The registry is built
// per call from one MetricsSnapshot, so the exposition is as consistent as
// the JSON document.
func (s *Service) WriteProm(w io.Writer) error {
	m := s.MetricsSnapshot()
	reg := obs.NewRegistry()
	gauge := func(name, help string, v float64) { reg.Gauge(name, help).Set(v) }
	counter := func(name, help string, v uint64) { reg.Counter(name, help).Add(v) }

	gauge("asapd_queue_depth", "Jobs waiting in the bounded queue.", float64(m.QueueDepth))
	gauge("asapd_queue_capacity", "Capacity of the bounded job queue.", float64(m.QueueCap))
	gauge("asapd_jobs_in_flight", "Jobs currently executing.", float64(m.JobsInFlight))
	counter("asapd_cells_done_total", "Cells completed since start.", m.CellsDone)
	gauge("asapd_cells_per_sec", "Recent cell throughput (decaying average).", m.CellsPerSecRecent)
	gauge("asapd_uptime_seconds", "Seconds since the service started.", m.UptimeSec)
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("asapd_draining", "1 while shutdown is draining the service.", draining)

	counter("asapd_runner_hits_total", "Cell collections served from the runner memo.", m.RunnerHits)
	counter("asapd_runner_misses_total", "Cell collections that ran a fresh simulation.", m.RunnerMisses)
	counter("asapd_runner_cells_submitted_total", "Unique cells accepted by the runner.", m.RunnerCellsSubmitted)
	counter("asapd_runner_cells_done_total", "Runner cells whose simulation finished.", m.RunnerCellsDone)
	gauge("asapd_runner_cells_in_flight", "Cells executing on simulation workers.", float64(m.RunnerCellsInFlight))
	gauge("asapd_runner_memo_hit_rate", "Fraction of collected cells served from the memo.", m.RunnerMemoHitRate)

	if m.Store != nil {
		counter("asapd_store_hits_total", "Result-store lookups served.", m.Store.Hits)
		counter("asapd_store_misses_total", "Result-store lookups that missed.", m.Store.Misses)
		counter("asapd_store_corrupt_total", "Store entries quarantined as corrupt.", m.Store.Corrupt)
		counter("asapd_store_writes_total", "Results persisted to the store.", m.Store.Writes)
		counter("asapd_store_write_errors_total", "Store writes that failed.", m.Store.WriteErrors)
		counter("asapd_store_recovered_total", "Entries recovered by the startup sweep.", m.Store.Recovered)
		gauge("asapd_store_hit_rate", "Fraction of store lookups served.", m.StoreHitRate)
	}
	return reg.WriteProm(w)
}
