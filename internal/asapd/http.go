package asapd

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxJobBody bounds a job submission body (a grid spec is small; a
// multi-megabyte body is a client bug or abuse, not a bigger grid).
const maxJobBody = 1 << 20

// retryAfterSeconds is the hint sent with 429/503 responses. The Client's
// backoff honors it as a floor.
const retryAfterSeconds = "1"

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs      submit a JobSpec  -> 202 JobStatus | 400 | 429 | 503
//	GET  /v1/jobs      list all jobs     -> 200 []JobStatus
//	GET  /v1/jobs/{id} one job's status  -> 200 JobStatus | 404
//	GET  /metrics      service counters  -> 200 Metrics (JSON; ?format=prom
//	                   selects Prometheus text exposition)
//	GET  /healthz      liveness          -> 200 | 503 (draining)
//
// Every response body is JSON; errors use {"error": "..."}.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //nolint:errcheck // headers are sent; nothing left to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, "service draining")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := j.Status()
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.WriteProm(w) //nolint:errcheck // headers are sent; nothing left to do
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
