package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testScenario(t *testing.T, name string) sim.Scenario {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing workload %s", name)
	}
	return sim.Scenario{Workload: w}
}

// countingSim replaces the real simulator with a slow counter so the tests
// observe exactly how many simulations the runner executes.
func countingSim(n *atomic.Int64) func(sim.Scenario, sim.Params) (*sim.Result, error) {
	return func(sc sim.Scenario, p sim.Params) (*sim.Result, error) {
		n.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the singleflight window
		return &sim.Result{Scenario: sc}, nil
	}
}

func TestRepeatAwareMemoization(t *testing.T) {
	var sims atomic.Int64
	r := New(4)
	r.simulate = countingSim(&sims)
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	// Repeat 0 shares the base cell; each further repeat is its own cell, and
	// requesting a repeat twice memoizes like any other cell.
	if _, err := r.Run(sc, p); err != nil {
		t.Fatal(err)
	}
	for _, rep := range []int{0, 1, 2, 1, 2, 0} {
		if _, err := r.RunRepeat(sc, p, rep); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("3 distinct repeats simulated %d times", got)
	}
	hits, misses := r.Stats()
	if misses != 3 || hits != 4 {
		t.Fatalf("stats: %d misses, %d hits (want 3, 4)", misses, hits)
	}
}

func TestMemoizationSingleflight(t *testing.T) {
	var sims atomic.Int64
	r := New(4)
	r.simulate = countingSim(&sims)
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	const requests = 16
	results := make([]*sim.Result, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(sc, p)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := sims.Load(); got != 1 {
		t.Fatalf("same cell simulated %d times, want exactly 1", got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("request %d got a different result object: all requesters must share one simulation", i)
		}
	}
	hits, misses := r.Stats()
	if misses != 1 || hits != requests-1 {
		t.Fatalf("stats = %d hits, %d misses; want %d hits, 1 miss", hits, misses, requests-1)
	}
}

func TestDistinctCellsSimulateSeparately(t *testing.T) {
	var sims atomic.Int64
	r := New(2)
	r.simulate = countingSim(&sims)
	defer r.Close()

	p := sim.DefaultParams()
	mcf := testScenario(t, "mcf")
	colo := mcf
	colo.Colocated = true
	p2 := p
	p2.MeasureWalks /= 2
	// Same Native config, differing only in Guest: a regression guard for the
	// cell key, which must not collapse configurations whose rendered form
	// (ASAPConfig.String) is identical.
	nativeP1 := mcf
	nativeP1.ASAP = sim.ASAPConfig{Native: core.Config{P1: true}}
	mixed := nativeP1
	mixed.ASAP.Guest = core.Config{P1: true, P2: true}

	futures := []*Future{
		r.Submit(mcf, p),
		r.Submit(colo, p),     // different scenario
		r.Submit(mcf, p2),     // same scenario, different params
		r.Submit(mcf, p),      // duplicate of the first
		r.Submit(colo, p),     // duplicate of the second
		r.Submit(nativeP1, p), // distinct ASAP config
		r.Submit(mixed, p),    // same String() as nativeP1, different config
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 5 {
		t.Fatalf("simulated %d cells, want 5 unique", got)
	}
	hits, misses := r.Stats()
	if misses != 5 || hits != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 2 hits, 5 misses", hits, misses)
	}
}

func TestErrorSharedByAllRequesters(t *testing.T) {
	boom := errors.New("boom")
	r := New(2)
	r.simulate = func(sim.Scenario, sim.Params) (*sim.Result, error) {
		time.Sleep(2 * time.Millisecond)
		return nil, boom
	}
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	a := r.Submit(sc, p)
	b := r.Submit(sc, p)
	if _, err := a.Wait(); !errors.Is(err, boom) {
		t.Fatalf("first requester got %v, want boom", err)
	}
	if _, err := b.Wait(); !errors.Is(err, boom) {
		t.Fatalf("second requester got %v, want boom", err)
	}
}

func TestSubmitAfterCloseRunsInline(t *testing.T) {
	var sims atomic.Int64
	r := New(1)
	r.simulate = countingSim(&sims)
	r.Close()

	res, err := r.Run(testScenario(t, "mcf"), sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || sims.Load() != 1 {
		t.Fatalf("submit after close: res=%v sims=%d, want inline execution", res, sims.Load())
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	var sims atomic.Int64
	r := New(1)
	r.simulate = countingSim(&sims)

	p := sim.DefaultParams()
	var futures []*Future
	for _, name := range []string{"mcf", "canneal", "redis"} {
		futures = append(futures, r.Submit(testScenario(t, name), p))
	}
	r.Close()
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("close drained %d cells, want 3", got)
	}
}
