package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/asapd/leakcheck"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testScenario(t *testing.T, name string) sim.Scenario {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing workload %s", name)
	}
	return sim.Scenario{Workload: w}
}

// countingSim replaces the real simulator with a slow counter so the tests
// observe exactly how many simulations the runner executes.
func countingSim(n *atomic.Int64) func(context.Context, sim.Scenario, sim.Params) (*sim.Result, error) {
	return func(_ context.Context, sc sim.Scenario, p sim.Params) (*sim.Result, error) {
		n.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the singleflight window
		return &sim.Result{Scenario: sc}, nil
	}
}

func TestRepeatAwareMemoization(t *testing.T) {
	var sims atomic.Int64
	r := New(4)
	r.simulate = countingSim(&sims)
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	// Repeat 0 shares the base cell; each further repeat is its own cell, and
	// requesting a repeat twice memoizes like any other cell.
	if _, err := r.Run(sc, p); err != nil {
		t.Fatal(err)
	}
	for _, rep := range []int{0, 1, 2, 1, 2, 0} {
		if _, err := r.RunRepeat(sc, p, rep); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("3 distinct repeats simulated %d times", got)
	}
	hits, misses := r.Stats()
	if misses != 3 || hits != 4 {
		t.Fatalf("stats: %d misses, %d hits (want 3, 4)", misses, hits)
	}
}

func TestMemoizationSingleflight(t *testing.T) {
	var sims atomic.Int64
	r := New(4)
	r.simulate = countingSim(&sims)
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	const requests = 16
	results := make([]*sim.Result, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(sc, p)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := sims.Load(); got != 1 {
		t.Fatalf("same cell simulated %d times, want exactly 1", got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("request %d got a different result object: all requesters must share one simulation", i)
		}
	}
	hits, misses := r.Stats()
	if misses != 1 || hits != requests-1 {
		t.Fatalf("stats = %d hits, %d misses; want %d hits, 1 miss", hits, misses, requests-1)
	}
}

func TestDistinctCellsSimulateSeparately(t *testing.T) {
	var sims atomic.Int64
	r := New(2)
	r.simulate = countingSim(&sims)
	defer r.Close()

	p := sim.DefaultParams()
	mcf := testScenario(t, "mcf")
	colo := mcf
	colo.Colocated = true
	p2 := p
	p2.MeasureWalks /= 2
	// Same Native config, differing only in Guest: a regression guard for the
	// cell key, which must not collapse configurations whose rendered form
	// (ASAPConfig.String) is identical.
	nativeP1 := mcf
	nativeP1.ASAP = sim.ASAPConfig{Native: core.Config{P1: true}}
	mixed := nativeP1
	mixed.ASAP.Guest = core.Config{P1: true, P2: true}

	futures := []*Future{
		r.Submit(mcf, p),
		r.Submit(colo, p),     // different scenario
		r.Submit(mcf, p2),     // same scenario, different params
		r.Submit(mcf, p),      // duplicate of the first
		r.Submit(colo, p),     // duplicate of the second
		r.Submit(nativeP1, p), // distinct ASAP config
		r.Submit(mixed, p),    // same String() as nativeP1, different config
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 5 {
		t.Fatalf("simulated %d cells, want 5 unique", got)
	}
	hits, misses := r.Stats()
	if misses != 5 || hits != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 2 hits, 5 misses", hits, misses)
	}
}

func TestErrorSharedByAllRequesters(t *testing.T) {
	boom := errors.New("boom")
	r := New(2)
	r.simulate = func(context.Context, sim.Scenario, sim.Params) (*sim.Result, error) {
		time.Sleep(2 * time.Millisecond)
		return nil, boom
	}
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	a := r.Submit(sc, p)
	b := r.Submit(sc, p)
	if _, err := a.Wait(); !errors.Is(err, boom) {
		t.Fatalf("first requester got %v, want boom", err)
	}
	if _, err := b.Wait(); !errors.Is(err, boom) {
		t.Fatalf("second requester got %v, want boom", err)
	}
}

func TestSubmitAfterCloseRunsInline(t *testing.T) {
	var sims atomic.Int64
	r := New(1)
	r.simulate = countingSim(&sims)
	r.Close()

	res, err := r.Run(testScenario(t, "mcf"), sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || sims.Load() != 1 {
		t.Fatalf("submit after close: res=%v sims=%d, want inline execution", res, sims.Load())
	}
}

// TestCancelledCellIsEvicted checks the cancellation contract: a cell that
// fails with its submitter's context error is forgotten, so the next
// submission of the same key re-simulates instead of inheriting a stale
// cancellation; genuine results stay memoized.
func TestCancelledCellIsEvicted(t *testing.T) {
	defer leakcheck.Check(t)()
	var sims atomic.Int64
	r := New(2)
	r.simulate = func(ctx context.Context, sc sim.Scenario, p sim.Params) (*sim.Result, error) {
		sims.Add(1)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &sim.Result{Scenario: sc}, nil
	}
	defer r.Close()

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the first submission runs already-cancelled
	if _, err := r.RunCtx(ctx, sc, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission returned %v, want context.Canceled", err)
	}
	// A fresh submission must re-simulate and succeed.
	res, err := r.RunCtx(context.Background(), sc, p)
	if err != nil || res == nil {
		t.Fatalf("resubmission after cancellation: res=%v err=%v", res, err)
	}
	if got := sims.Load(); got != 2 {
		t.Fatalf("simulated %d times, want 2 (cancelled + retried)", got)
	}
	// The successful result is memoized again.
	if _, err := r.Run(sc, p); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 2 {
		t.Fatalf("memoized result re-simulated (%d sims)", got)
	}
}

// TestWaitCtxDoesNotCancelSimulation checks that bounding a wait leaves the
// in-flight simulation intact for other requesters.
func TestWaitCtxDoesNotCancelSimulation(t *testing.T) {
	defer leakcheck.Check(t)()
	release := make(chan struct{})
	r := New(1)
	r.simulate = func(_ context.Context, sc sim.Scenario, p sim.Params) (*sim.Result, error) {
		<-release
		return &sim.Result{Scenario: sc}, nil
	}

	sc := testScenario(t, "mcf")
	p := sim.DefaultParams()
	f := r.Submit(sc, p)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := f.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded wait returned %v, want deadline exceeded", err)
	}
	close(release)
	if res, err := f.Wait(); err != nil || res == nil {
		t.Fatalf("simulation should have survived the abandoned wait: res=%v err=%v", res, err)
	}
	r.Close()
}

// TestCloseIdempotent locks in the documented lifecycle: double Close —
// sequential and concurrent — is safe, and the pool is fully quiescent after.
func TestCloseIdempotent(t *testing.T) {
	defer leakcheck.Check(t)()
	var sims atomic.Int64
	r := New(2)
	r.simulate = countingSim(&sims)
	if _, err := r.Run(testScenario(t, "mcf"), sim.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // second sequential Close: must not hang or panic

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // concurrent Closes on an already-closed runner
			defer wg.Done()
			r.Close()
		}()
	}
	wg.Wait()
}

// TestCloseRacesSubmit hammers Close against concurrent Submits: every
// submitted Future must still complete (inline when it loses the race), with
// no panics, deadlocks or leaked workers.
func TestCloseRacesSubmit(t *testing.T) {
	defer leakcheck.Check(t)()
	var sims atomic.Int64
	r := New(2)
	r.simulate = func(_ context.Context, sc sim.Scenario, p sim.Params) (*sim.Result, error) {
		sims.Add(1)
		return &sim.Result{Scenario: sc}, nil
	}

	p := sim.DefaultParams()
	names := []string{"mcf", "canneal", "redis", "mc80"}
	var wg sync.WaitGroup
	futures := make(chan *Future, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				futures <- r.SubmitRepeat(testScenario(t, names[i%len(names)]), p, rep)
			}
		}(i)
	}
	var closers sync.WaitGroup
	for i := 0; i < 2; i++ {
		closers.Add(1)
		go func() { // Close lands mid-submission storm
			defer closers.Done()
			r.Close()
		}()
	}
	wg.Wait()
	close(futures)
	for f := range futures {
		if res, err := f.Wait(); err != nil || res == nil {
			t.Fatalf("future lost across Close: res=%v err=%v", res, err)
		}
	}
	closers.Wait()
}

func TestCompletedReportsFinishedCells(t *testing.T) {
	var sims atomic.Int64
	r := New(1)
	r.simulate = countingSim(&sims)
	defer r.Close()

	p := sim.DefaultParams()
	want := []string{}
	for _, name := range []string{"mcf", "canneal"} {
		sc := testScenario(t, name)
		if _, err := r.Run(sc, p); err != nil {
			t.Fatal(err)
		}
		want = append(want, sc.Name())
	}
	got := r.Completed()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Completed() = %v, want %v", got, want)
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	var sims atomic.Int64
	r := New(1)
	r.simulate = countingSim(&sims)

	p := sim.DefaultParams()
	var futures []*Future
	for _, name := range []string{"mcf", "canneal", "redis"} {
		futures = append(futures, r.Submit(testScenario(t, name), p))
	}
	r.Close()
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("close drained %d cells, want 3", got)
	}
}
