// Package runner executes simulation scenario cells on a bounded worker pool
// and memoizes results by canonical (Scenario, Params) key.
//
// The paper's evaluation regenerates many tables and figures from overlapping
// scenario grids (Fig 2 and Fig 3 iterate the exact same four-scenario ×
// workload grid; Table 1 and Fig 8/10/12 overlap further). A Runner makes
// that cheap twice over: independent cells fan out across GOMAXPROCS worker
// goroutines, and each unique cell is simulated exactly once per process no
// matter how many experiments request it. Requests are singleflight —
// concurrent submissions of the same key share one in-flight simulation.
//
// Experiments submit their full grid up front with Submit and then collect
// results in submission order with Future.Wait (or call Run, which is
// Submit+Wait), so rendered output is byte-identical to a sequential run.
//
// # Lifecycle
//
// New starts the worker pool; Close drains the queue, stops the workers and
// waits for them to exit. Close is idempotent and safe to call from multiple
// goroutines concurrently, and it is safe to race with in-flight Submit
// calls: a submission that loses the race against Close executes inline on
// the submitting goroutine, so its Future still completes. Futures obtained
// at any point remain valid after Close. A Runner holds no resources beyond
// its goroutines, so after Close returns the Runner is fully quiescent (the
// goroutine-leak checks in this package's tests and internal/asapd's
// shutdown tests rely on that).
//
// # Cancellation
//
// SubmitCtx attaches a context to a cell. Because cells are singleflight,
// the context that governs a simulation is the one attached by the cell's
// first submitter; later submitters of an equal cell share the in-flight
// work, whatever context it runs under. A cell that fails with the context's
// error (cancellation or deadline) is evicted from the memo at completion,
// so the next submission of the same key re-simulates instead of being
// served a stale cancellation — only successful results (and genuine
// simulation errors) are remembered. Future.WaitCtx additionally bounds the
// wait itself; abandoning a Future never cancels the underlying simulation
// for other requesters.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// cell is one unique (Scenario, Params) simulation: queued at first request,
// executed by one worker, shared by every requester.
type cell struct {
	sc      sim.Scenario
	p       sim.Params
	ctx     context.Context // the first submitter's context
	done    chan struct{}
	res     *sim.Result
	err     error
	settled bool // simulation finished (guarded by Runner.mu)
	claimed bool // a Wait already consumed this cell (guarded by Runner.mu)
}

// Future is a handle on a submitted cell.
type Future struct {
	r *Runner
	c *cell
}

// Wait blocks until the cell's simulation completes and returns its result.
// The result is shared between all requesters of the cell and must be treated
// as read-only.
//
// Stats are counted here rather than at Submit so that the common
// prefetch-then-collect pattern does not count its own prefetch as a cache
// hit: the first Wait on a cell is the miss (the simulation that actually
// ran), every further Wait is a hit (a simulation avoided by memoization).
func (f *Future) Wait() (*sim.Result, error) {
	<-f.c.done
	return f.claim()
}

// WaitCtx is Wait bounded by ctx: if ctx ends first, WaitCtx returns
// ctx.Err() without consuming the cell, and the simulation keeps running for
// its other requesters (cancel the submission's context to abort the work
// itself).
func (f *Future) WaitCtx(ctx context.Context) (*sim.Result, error) {
	select {
	case <-f.c.done:
		return f.claim()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *Future) claim() (*sim.Result, error) {
	f.r.mu.Lock()
	if f.c.claimed {
		f.r.hits++
	} else {
		f.c.claimed = true
		f.r.misses++
	}
	f.r.mu.Unlock()
	return f.c.res, f.c.err
}

// Runner is a memoizing worker-pool scenario executor. It is safe for
// concurrent use; see the package comment for the lifecycle and cancellation
// contracts.
type Runner struct {
	simulate func(context.Context, sim.Scenario, sim.Params) (*sim.Result, error)

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*cell // pending cells, FIFO
	cells     map[sim.CellKey]*cell
	completed []string // names of successfully simulated cells, completion order
	hits      uint64
	misses    uint64
	submitted uint64 // unique cells accepted (one per simulation started or queued)
	done      uint64 // cells whose simulation finished (success or error)
	inFlight  uint64 // cells currently executing on a worker
	closed    bool
	wg        sync.WaitGroup
}

// Progress is a point-in-time view of the runner's work: Submitted counts
// unique cells accepted (shared submissions of one key count once), Done the
// cells whose simulation finished — successfully or not — and InFlight the
// cells executing right now. Submitted - Done - InFlight cells sit in the
// queue.
type Progress struct {
	Submitted uint64
	Done      uint64
	InFlight  uint64
}

// Progress returns a consistent snapshot of the runner's progress counters
// (all three are read under one lock, so Done+InFlight never exceeds
// Submitted).
func (r *Runner) Progress() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Progress{Submitted: r.submitted, Done: r.done, InFlight: r.inFlight}
}

// New returns a Runner executing cells on workers goroutines; workers <= 0
// selects GOMAXPROCS. Call Close when done to release the workers.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		simulate: sim.RunCtx,
		cells:    map[sim.CellKey]*cell{},
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		c := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		r.exec(c)
	}
}

func (r *Runner) exec(c *cell) {
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()
	c.res, c.err = r.simulate(c.ctx, c.sc, c.p)
	r.mu.Lock()
	r.inFlight--
	r.done++
	c.settled = true
	if c.err == nil {
		r.completed = append(r.completed, c.sc.Name())
	} else if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
		// A cancelled cell reflects its submitter's deadline, not the cell's
		// own fate: forget it so the next submission re-simulates instead of
		// being served someone else's cancellation. The entry may already
		// have been replaced by a fresh resubmission — only evict our own.
		if r.cells[sim.Key(c.sc, c.p)] == c {
			delete(r.cells, sim.Key(c.sc, c.p))
		}
	}
	r.mu.Unlock()
	close(c.done)
}

// Submit queues the cell for execution (unless an equal cell was already
// submitted, in which case the existing one is shared) and returns a Future
// for its result. Submit never blocks on simulation work and does not count
// toward Stats — experiments prefetch their whole grid through Submit and
// collect through Wait, and only collection says whether memoization saved a
// simulation.
func (r *Runner) Submit(sc sim.Scenario, p sim.Params) *Future {
	return r.SubmitCtx(context.Background(), sc, p)
}

// SubmitCtx is Submit with a context governing the cell's simulation (see
// the package comment: the first submitter's context wins; cancelled cells
// are evicted from the memo on completion).
func (r *Runner) SubmitCtx(ctx context.Context, sc sim.Scenario, p sim.Params) *Future {
	k := sim.Key(sc, p)
	r.mu.Lock()
	if c, ok := r.cells[k]; ok {
		// Share the in-flight (or finished) cell — unless it is doomed: an
		// unsettled cell whose governing context is already dead will
		// complete with a cancellation and be evicted, so a submitter with a
		// live context starts a fresh cell instead of inheriting the corpse.
		// (Settled cells still in the memo completed without a context
		// error; eviction removed the others before their done closed.)
		if c.settled || c.ctx.Err() == nil || ctx.Err() != nil {
			r.mu.Unlock()
			return &Future{r, c}
		}
	}
	c := &cell{sc: sc, p: p, ctx: ctx, done: make(chan struct{})}
	r.cells[k] = c
	r.submitted++
	if r.closed {
		// The pool is gone; run the cell inline so late submissions still
		// complete instead of waiting forever.
		r.mu.Unlock()
		r.exec(c)
		return &Future{r, c}
	}
	r.queue = append(r.queue, c)
	r.cond.Signal()
	r.mu.Unlock()
	return &Future{r, c}
}

// Run simulates one cell, sharing any prior (or in-flight) simulation of the
// same key. It blocks until the result is available.
func (r *Runner) Run(sc sim.Scenario, p sim.Params) (*sim.Result, error) {
	return r.Submit(sc, p).Wait()
}

// RunCtx is Run under a context: the context governs the simulation when
// this call is the cell's first submitter, and always bounds the wait.
func (r *Runner) RunCtx(ctx context.Context, sc sim.Scenario, p sim.Params) (*sim.Result, error) {
	return r.SubmitCtx(ctx, sc, p).WaitCtx(ctx)
}

// SubmitRepeat queues the rep-th independent repeat of a cell. The memo key
// is repeat-aware through seed derivation: Params.ForRepeat folds the repeat
// index into the seed, so distinct repeats are distinct cells (each simulated
// once no matter how many experiments request them) while repeat 0 shares the
// base cell with plain Submit.
func (r *Runner) SubmitRepeat(sc sim.Scenario, p sim.Params, rep int) *Future {
	return r.Submit(sc, p.ForRepeat(rep))
}

// SubmitRepeatCtx is SubmitRepeat with a context (see SubmitCtx).
func (r *Runner) SubmitRepeatCtx(ctx context.Context, sc sim.Scenario, p sim.Params, rep int) *Future {
	return r.SubmitCtx(ctx, sc, p.ForRepeat(rep))
}

// RunRepeat is SubmitRepeat followed by Wait.
func (r *Runner) RunRepeat(sc sim.Scenario, p sim.Params, rep int) (*sim.Result, error) {
	return r.SubmitRepeat(sc, p, rep).Wait()
}

// RunRepeatCtx is SubmitRepeatCtx followed by WaitCtx.
func (r *Runner) RunRepeatCtx(ctx context.Context, sc sim.Scenario, p sim.Params, rep int) (*sim.Result, error) {
	return r.SubmitRepeatCtx(ctx, sc, p, rep).WaitCtx(ctx)
}

// Stats reports collection outcomes: misses are cells whose result was
// computed for the caller (one per unique collected cell), hits are results
// served from the memo — simulations that memoization avoided.
func (r *Runner) Stats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Completed returns the scenario names of every cell that simulated to
// success, in completion order. A timed-out grid uses this to report which
// cells finished before the deadline (repeats of one scenario appear once
// per completed repeat).
func (r *Runner) Completed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.completed...)
}

// Close lets the workers drain the queue and exit, then waits for them.
// Close is idempotent and safe to call concurrently with itself and with
// Submit: Futures obtained before Close remain valid, and Submit after (or
// racing) Close executes inline on the caller.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}
