// Package runner executes simulation scenario cells on a bounded worker pool
// and memoizes results by canonical (Scenario, Params) key.
//
// The paper's evaluation regenerates many tables and figures from overlapping
// scenario grids (Fig 2 and Fig 3 iterate the exact same four-scenario ×
// workload grid; Table 1 and Fig 8/10/12 overlap further). A Runner makes
// that cheap twice over: independent cells fan out across GOMAXPROCS worker
// goroutines, and each unique cell is simulated exactly once per process no
// matter how many experiments request it. Requests are singleflight —
// concurrent submissions of the same key share one in-flight simulation.
//
// Experiments submit their full grid up front with Submit and then collect
// results in submission order with Future.Wait (or call Run, which is
// Submit+Wait), so rendered output is byte-identical to a sequential run.
package runner

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// cell is one unique (Scenario, Params) simulation: queued at first request,
// executed by one worker, shared by every requester.
type cell struct {
	sc      sim.Scenario
	p       sim.Params
	done    chan struct{}
	res     *sim.Result
	err     error
	claimed bool // a Wait already consumed this cell (guarded by Runner.mu)
}

// Future is a handle on a submitted cell.
type Future struct {
	r *Runner
	c *cell
}

// Wait blocks until the cell's simulation completes and returns its result.
// The result is shared between all requesters of the cell and must be treated
// as read-only.
//
// Stats are counted here rather than at Submit so that the common
// prefetch-then-collect pattern does not count its own prefetch as a cache
// hit: the first Wait on a cell is the miss (the simulation that actually
// ran), every further Wait is a hit (a simulation avoided by memoization).
func (f *Future) Wait() (*sim.Result, error) {
	<-f.c.done
	f.r.mu.Lock()
	if f.c.claimed {
		f.r.hits++
	} else {
		f.c.claimed = true
		f.r.misses++
	}
	f.r.mu.Unlock()
	return f.c.res, f.c.err
}

// Runner is a memoizing worker-pool scenario executor. It is safe for
// concurrent use.
type Runner struct {
	simulate func(sim.Scenario, sim.Params) (*sim.Result, error)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*cell // pending cells, FIFO
	cells  map[sim.CellKey]*cell
	hits   uint64
	misses uint64
	closed bool
	wg     sync.WaitGroup
}

// New returns a Runner executing cells on workers goroutines; workers <= 0
// selects GOMAXPROCS. Call Close when done to release the workers.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		simulate: sim.Run,
		cells:    map[sim.CellKey]*cell{},
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		c := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		r.exec(c)
	}
}

func (r *Runner) exec(c *cell) {
	c.res, c.err = r.simulate(c.sc, c.p)
	close(c.done)
}

// Submit queues the cell for execution (unless an equal cell was already
// submitted, in which case the existing one is shared) and returns a Future
// for its result. Submit never blocks on simulation work and does not count
// toward Stats — experiments prefetch their whole grid through Submit and
// collect through Wait, and only collection says whether memoization saved a
// simulation.
func (r *Runner) Submit(sc sim.Scenario, p sim.Params) *Future {
	k := sim.Key(sc, p)
	r.mu.Lock()
	if c, ok := r.cells[k]; ok {
		r.mu.Unlock()
		return &Future{r, c}
	}
	c := &cell{sc: sc, p: p, done: make(chan struct{})}
	r.cells[k] = c
	if r.closed {
		// The pool is gone; run the cell inline so late submissions still
		// complete instead of waiting forever.
		r.mu.Unlock()
		r.exec(c)
		return &Future{r, c}
	}
	r.queue = append(r.queue, c)
	r.cond.Signal()
	r.mu.Unlock()
	return &Future{r, c}
}

// Run simulates one cell, sharing any prior (or in-flight) simulation of the
// same key. It blocks until the result is available.
func (r *Runner) Run(sc sim.Scenario, p sim.Params) (*sim.Result, error) {
	return r.Submit(sc, p).Wait()
}

// SubmitRepeat queues the rep-th independent repeat of a cell. The memo key
// is repeat-aware through seed derivation: Params.ForRepeat folds the repeat
// index into the seed, so distinct repeats are distinct cells (each simulated
// once no matter how many experiments request them) while repeat 0 shares the
// base cell with plain Submit.
func (r *Runner) SubmitRepeat(sc sim.Scenario, p sim.Params, rep int) *Future {
	return r.Submit(sc, p.ForRepeat(rep))
}

// RunRepeat is SubmitRepeat followed by Wait.
func (r *Runner) RunRepeat(sc sim.Scenario, p sim.Params, rep int) (*sim.Result, error) {
	return r.SubmitRepeat(sc, p, rep).Wait()
}

// Stats reports collection outcomes: misses are cells whose result was
// computed for the caller (one per unique collected cell), hits are results
// served from the memo — simulations that memoization avoided.
func (r *Runner) Stats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Close lets the workers drain the queue and exit, then waits for them.
// Futures obtained before Close remain valid; Submit after Close executes
// inline on the caller.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}
