package runner_test

import (
	"bytes"
	"testing"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/workload"
)

// TestParallelMatchesSequential proves the tentpole's correctness guarantee:
// regenerating experiments through the parallel memoizing runner renders
// byte-identical tables to the plain sequential path, on the exp.Fast
// protocol. Fig 2 and Fig 3 share their whole scenario grid, so this also
// exercises cross-experiment memoization; fig8 adds ASAP configurations.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full exp.Fast protocol is slow in -short mode")
	}
	restrict := func(o exp.Options) exp.Options {
		var ws []workload.Spec
		for _, n := range []string{"mcf", "canneal"} {
			s, ok := workload.ByName(n)
			if !ok {
				t.Fatalf("missing workload %s", n)
			}
			ws = append(ws, s)
		}
		o.Workloads = ws
		return o
	}
	experiments := []string{"fig2", "fig3", "fig8"}

	var seq bytes.Buffer
	seqOpts := restrict(exp.Fast(&seq))
	for _, name := range experiments {
		if err := exp.Run(name, seqOpts); err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
	}

	var par bytes.Buffer
	parOpts := restrict(exp.Fast(&par))
	r := runner.New(0)
	defer r.Close()
	parOpts.Runner = r
	for _, name := range experiments {
		if err := exp.Run(name, parOpts); err != nil {
			t.Fatalf("parallel %s: %v", name, err)
		}
	}

	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.String(), par.String())
	}

	hits, misses := r.Stats()
	if hits == 0 {
		t.Fatalf("expected cross-experiment cache hits (fig2 and fig3 share their grid); stats = %d hits, %d misses", hits, misses)
	}
}

// TestMultiprocParallelMatchesSequential drives the mix scheduler through
// the runner: the multi-process ablation's cells — N co-scheduled processes,
// flush and ASID switch policies, ASAP on and off — must render byte-identical
// output whether cells simulate sequentially or fan out across workers.
// Submission order fixes collection order, and each cell's quantum schedule
// is a pure function of its seed, so worker interleaving (exercised under
// -race in CI) must not leak into results.
func TestMultiprocParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process grid is slow in -short mode")
	}
	options := func(buf *bytes.Buffer) exp.Options {
		o := exp.Fast(buf)
		o.Params.WarmupWalks = 1500
		o.Params.MeasureWalks = 1500
		s, ok := workload.ByName("mcf")
		if !ok {
			t.Fatal("missing workload mcf")
		}
		o.Workloads = []workload.Spec{s}
		return o
	}

	var seq bytes.Buffer
	if err := exp.Run("ablation-multiproc", options(&seq)); err != nil {
		t.Fatalf("sequential: %v", err)
	}

	for trial := 0; trial < 2; trial++ {
		var par bytes.Buffer
		parOpts := options(&par)
		r := runner.New(0)
		parOpts.Runner = r
		err := exp.Run("ablation-multiproc", parOpts)
		r.Close()
		if err != nil {
			t.Fatalf("parallel trial %d: %v", trial, err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("trial %d: parallel multi-process output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				trial, seq.String(), par.String())
		}
	}
}
