package runner_test

import (
	"bytes"
	"testing"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/workload"
)

// TestParallelMatchesSequential proves the tentpole's correctness guarantee:
// regenerating experiments through the parallel memoizing runner renders
// byte-identical tables to the plain sequential path, on the exp.Fast
// protocol. Fig 2 and Fig 3 share their whole scenario grid, so this also
// exercises cross-experiment memoization; fig8 adds ASAP configurations.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full exp.Fast protocol is slow in -short mode")
	}
	restrict := func(o exp.Options) exp.Options {
		var ws []workload.Spec
		for _, n := range []string{"mcf", "canneal"} {
			s, ok := workload.ByName(n)
			if !ok {
				t.Fatalf("missing workload %s", n)
			}
			ws = append(ws, s)
		}
		o.Workloads = ws
		return o
	}
	experiments := []string{"fig2", "fig3", "fig8"}

	var seq bytes.Buffer
	seqOpts := restrict(exp.Fast(&seq))
	for _, name := range experiments {
		if err := exp.Run(name, seqOpts); err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
	}

	var par bytes.Buffer
	parOpts := restrict(exp.Fast(&par))
	r := runner.New(0)
	defer r.Close()
	parOpts.Runner = r
	for _, name := range experiments {
		if err := exp.Run(name, parOpts); err != nil {
			t.Fatalf("parallel %s: %v", name, err)
		}
	}

	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.String(), par.String())
	}

	hits, misses := r.Stats()
	if hits == 0 {
		t.Fatalf("expected cross-experiment cache hits (fig2 and fig3 share their grid); stats = %d hits, %d misses", hits, misses)
	}
}
