package runner

import (
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestProgressCounters drives a small grid through the pool and checks the
// counters at the points where their values are determined: all cells
// accounted submitted after the Submit loop, everything drained after the
// waits, and the Submitted = Done + InFlight + queued identity preserved at
// every snapshot in between.
func TestProgressCounters(t *testing.T) {
	var sims atomic.Int64
	r := New(2)
	r.simulate = countingSim(&sims)
	defer r.Close()

	if p := r.Progress(); p != (Progress{}) {
		t.Fatalf("fresh runner progress = %+v", p)
	}

	p := sim.DefaultParams()
	var futures []*Future
	for _, name := range []string{"mcf", "canneal", "bfs"} {
		sc := testScenario(t, name)
		futures = append(futures, r.Submit(sc, p))
		// Duplicate submissions share the cell and must not inflate Submitted.
		futures = append(futures, r.Submit(sc, p))
	}
	if pr := r.Progress(); pr.Submitted != 3 {
		t.Fatalf("submitted = %d after 3 unique cells (6 submissions)", pr.Submitted)
	}

	// While work is in flight every snapshot must be internally consistent:
	// Progress holds one lock across all three reads, so Done+InFlight can
	// never exceed Submitted even mid-drain.
	stop := make(chan struct{})
	checked := make(chan struct{})
	go func() {
		defer close(checked)
		for {
			select {
			case <-stop:
				return
			default:
			}
			pr := r.Progress()
			if pr.Done+pr.InFlight > pr.Submitted {
				t.Errorf("inconsistent snapshot %+v", pr)
				return
			}
		}
	}()
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-checked

	pr := r.Progress()
	if pr.Submitted != 3 || pr.Done != 3 || pr.InFlight != 0 {
		t.Fatalf("drained progress = %+v, want 3/3/0", pr)
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("3 unique cells simulated %d times", got)
	}
}
