#!/usr/bin/env bash
# lint_mutations.sh — mutation smoke test for the lint suite.
#
# Each patch under scripts/mutations/ reintroduces a historical bug shape the
# dataflow analyzers exist to catch: the store's fsync-before-rename dropped
# (crashsafe), the simulator's per-iteration ctx poll dropped (ctxflow), and
# the runner's unlock on the doomed-cell early return dropped (lockcheck).
# For each one the script copies the module into a scratch dir, applies the
# patch, confirms the mutated tree still compiles, and asserts asaplint exits
# 1 — a mutation the linter misses fails CI, so the analyzers cannot rot into
# green no-ops.
set -euo pipefail

cd "$(dirname "$0")/.."
repo=$PWD

check() {
  local name=$1 analyzer=$2 pkg=$3
  local scratch
  scratch=$(mktemp -d)
  # Copy the module (minus VCS and scratch artifacts) into the sandbox.
  tar -c --exclude .git --exclude .claude . | tar -x -C "$scratch"
  if ! git -C "$scratch" apply "$repo/scripts/mutations/$name.patch"; then
    echo "mutation $name: patch no longer applies — update scripts/mutations/$name.patch" >&2
    rm -rf "$scratch"
    return 1
  fi
  if ! (cd "$scratch" && go build ./... >/dev/null); then
    echo "mutation $name: mutated tree does not compile — the smoke test is vacuous" >&2
    rm -rf "$scratch"
    return 1
  fi
  local status=0
  (cd "$scratch" && go run ./cmd/asaplint -only "$analyzer" "$pkg" >/dev/null 2>&1) || status=$?
  rm -rf "$scratch"
  if [[ "$status" -ne 1 ]]; then
    echo "mutation $name: expected $analyzer to fail asaplint (exit 1), got exit $status" >&2
    return 1
  fi
  echo "mutation $name: caught by $analyzer"
}

fail=0
check drop_store_fsync crashsafe ./internal/asapd/store || fail=1
check drop_sim_ctxpoll ctxflow ./internal/sim || fail=1
check drop_runner_unlock lockcheck ./internal/runner || fail=1

exit "$fail"
