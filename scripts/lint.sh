#!/usr/bin/env bash
# lint.sh — run the repository's invariant linter (asaplint) plus a gofmt
# diff check, exactly as CI's blocking lint job does.
#
# Usage:
#   scripts/lint.sh                 # lint the whole module
#   scripts/lint.sh ./internal/sim  # lint specific packages
#
# asaplint is the repo-specific go/analysis suite (see README "Invariants &
# linting"): meterwindow, keycomplete, determinism and seededrand alongside
# curated stock passes. Any finding fails the script; suppress one — with a
# written justification — via //lint:ignore or //lint:ordered.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# gofmt: report any file whose formatting differs.
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt: the following files need reformatting:" >&2
  echo "$unformatted" >&2
  fail=1
fi

# asaplint: go run reuses the go build cache, so repeated runs only pay for
# the analyzer build once.
if ! go run ./cmd/asaplint "${@:-./...}"; then
  fail=1
fi

exit "$fail"
