#!/usr/bin/env bash
# lint.sh — run the repository's invariant linter (asaplint) plus a gofmt
# diff check, exactly as CI's blocking lint job does.
#
# Usage:
#   scripts/lint.sh                         # lint the whole module
#   scripts/lint.sh ./internal/sim          # lint specific packages
#   scripts/lint.sh -json ./...             # machine-readable findings
#   scripts/lint.sh -timing ./...           # per-analyzer wall-clock cost
#
# Arguments pass straight through to asaplint, flags included. asaplint is
# the repo-specific go/analysis suite (see README "Invariants & linting"):
# meterwindow, keycomplete, determinism and seededrand, the CFG-powered
# ctxflow, crashsafe, lockcheck and mixedaccess, alongside curated stock
# passes. Any finding fails the script; suppress one — with a written
# justification — via //lint:ignore or //lint:ordered. The companion
# scripts/lint_mutations.sh asserts the dataflow analyzers still catch the
# historical bug shapes they were built for.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# gofmt: report any file whose formatting differs.
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt: the following files need reformatting:" >&2
  echo "$unformatted" >&2
  fail=1
fi

# asaplint: go run reuses the go build cache, so repeated runs only pay for
# the analyzer build once.
if ! go run ./cmd/asaplint "${@:-./...}"; then
  fail=1
fi

exit "$fail"
