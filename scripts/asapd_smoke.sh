#!/usr/bin/env bash
# asapd_smoke.sh — end-to-end smoke of the simulation service over real HTTP:
#
#   1. boot asapd with a persistent store and wait for /healthz
#   2. POST a fast experiment grid, poll it to completion
#   3. assert the first run simulated (store misses > 0)
#   4. resubmit the identical grid and assert every cell is a store hit
#   5. SIGTERM the daemon and assert a clean drain (exit 0)
#
# Zero dependencies beyond curl and a go toolchain; used by CI and runnable
# locally: scripts/asapd_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
ASAPD_PID=""
cleanup() {
  [ -n "$ASAPD_PID" ] && kill "$ASAPD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/asapd" ./cmd/asapd

echo "== boot"
"$WORK/asapd" -addr "$ADDR" -store "$WORK/store" -drain 30s &
ASAPD_PID=$!

for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$ASAPD_PID" 2>/dev/null; then
    echo "asapd died during boot" >&2; exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

SPEC='{"cells":[{"workload":"mcf"},{"workload":"mcf","colocated":true}],"params":{"fast":true},"repeats":2}'

# poll_done JOB_ID -> prints the final job JSON once state == done
poll_done() {
  local id="$1" json state
  for i in $(seq 1 600); do
    json=$(curl -fsS "$BASE/v1/jobs/$id")
    state=$(echo "$json" | grep -o '"state": *"[a-z]*"' | head -1 | sed 's/.*"\([a-z]*\)"$/\1/')
    if [ "$state" = "done" ]; then echo "$json"; return 0; fi
    sleep 0.2
  done
  echo "job $id never finished" >&2
  return 1
}

echo "== submit (cold: must simulate)"
JOB1=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$SPEC" | grep -o '"id": *"[^"]*"' | head -1 | cut -d'"' -f4)
FINAL1=$(poll_done "$JOB1")
if echo "$FINAL1" | grep -q '"error"'; then
  echo "first job reported errors: $FINAL1" >&2; exit 1
fi
HITS1=$(echo "$FINAL1" | grep -c '"source": "store"' || true)
SIM1=$(echo "$FINAL1" | grep -c '"source": "simulated"' || true)
echo "   job $JOB1: $SIM1 simulated, $HITS1 from store"
[ "$SIM1" -eq 4 ] || { echo "expected 4 simulated cells, got $SIM1" >&2; exit 1; }

MISSES=$(curl -fsS "$BASE/metrics" | grep -o '"misses": *[0-9]*' | head -1 | grep -o '[0-9]*')
[ "$MISSES" -gt 0 ] || { echo "store reported no misses after a cold run" >&2; exit 1; }

echo "== resubmit (warm: must be 100% store hits)"
JOB2=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$SPEC" | grep -o '"id": *"[^"]*"' | head -1 | cut -d'"' -f4)
FINAL2=$(poll_done "$JOB2")
HITS2=$(echo "$FINAL2" | grep -c '"source": "store"' || true)
echo "   job $JOB2: $HITS2 from store"
[ "$HITS2" -eq 4 ] || { echo "expected 4 store-hit cells, got $HITS2" >&2; exit 1; }

echo "== SIGTERM: clean drain expected"
kill -TERM "$ASAPD_PID"
DEADLINE=$((SECONDS + 45))
while kill -0 "$ASAPD_PID" 2>/dev/null; do
  if [ "$SECONDS" -ge "$DEADLINE" ]; then
    echo "asapd did not exit within the drain window" >&2
    kill -KILL "$ASAPD_PID"; exit 1
  fi
  sleep 0.2
done
RC=0; wait "$ASAPD_PID" || RC=$?
[ "$RC" -eq 0 ] || { echo "asapd exited $RC, want 0 (clean drain)" >&2; exit 1; }

echo "asapd smoke: OK"
