#!/usr/bin/env bash
# bench.sh — run the repository benchmark suite and emit a machine-readable
# BENCH_<n>.json summary via cmd/benchjson (a dependency-free stand-in for
# `benchstat -format csv`).
#
# Usage:
#   scripts/bench.sh -n 3                          # full suite -> BENCH_3.json
#   scripts/bench.sh -n 3 -p '^(BenchmarkFig3|BenchmarkTable1)' -c 6
#   scripts/bench.sh -n 3 -o baseline.txt          # compare against a saved run
#
# Flags:
#   -n NUM      PR number; output file is BENCH_<NUM>.json (required)
#   -p PATTERN  -bench regexp (default: . — every benchmark)
#   -c COUNT    -count repetitions per benchmark (default: 6)
#   -t TIME     -benchtime per repetition (default: 3x)
#   -o OLD      baseline `go test -bench` output to diff against (optional);
#               produces per-benchmark speedups and a geomean in the JSON.
#
# The raw `go test -bench` output is kept next to the JSON as
# BENCH_<NUM>.txt so a later PR can use it as its -o baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

num="" pattern="." count=6 benchtime=3x old=""
while getopts "n:p:c:t:o:" opt; do
  case "$opt" in
    n) num=$OPTARG ;;
    p) pattern=$OPTARG ;;
    c) count=$OPTARG ;;
    t) benchtime=$OPTARG ;;
    o) old=$OPTARG ;;
    *) exit 2 ;;
  esac
done
if [ -z "$num" ]; then
  echo "bench.sh: -n NUM is required (names BENCH_<NUM>.json)" >&2
  exit 2
fi

raw="BENCH_${num}.txt"
out="BENCH_${num}.json"

echo "bench.sh: go test -run '^\$' -bench '$pattern' -benchtime $benchtime -count $count -benchmem ." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" -benchmem . | tee "$raw"

if [ -n "$old" ]; then
  go run ./cmd/benchjson -old "$old" "$raw" > "$out"
else
  go run ./cmd/benchjson "$raw" > "$out"
fi
echo "bench.sh: wrote $out" >&2
