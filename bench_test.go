// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment under a reduced
// measurement protocol (the full-fidelity numbers come from cmd/paperrepro)
// and reports the key headline metric alongside time/allocation counts.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOptions is the reduced protocol shared by all experiment benchmarks:
// big enough to exercise every code path, small enough that the full suite
// completes in minutes on one core.
func benchOptions() exp.Options {
	o := exp.Fast(io.Discard)
	o.Params.WarmupWalks = 4_000
	o.Params.MeasureWalks = 3_000
	return o
}

// smallWorkloads keeps grid-shaped experiments to the quickest-to-build
// processes; single-workload experiments pick their own.
func smallWorkloads() []workload.Spec {
	var out []workload.Spec
	for _, name := range []string{"mcf", "canneal", "redis"} {
		s, ok := workload.ByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		out = append(out, s)
	}
	return out
}

func benchExperiment(b *testing.B, name string, restrict bool) {
	b.Helper()
	o := benchOptions()
	if restrict {
		o.Workloads = smallWorkloads()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(name, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1MemcachedPressure(b *testing.B)  { benchExperiment(b, "table1", false) }
func BenchmarkTable2VMAStatistics(b *testing.B)      { benchExperiment(b, "table2", true) }
func BenchmarkTable3Workloads(b *testing.B)          { benchExperiment(b, "table3", false) }
func BenchmarkTable5Parameters(b *testing.B)         { benchExperiment(b, "table5", false) }
func BenchmarkFig2WalkTimeFraction(b *testing.B)     { benchExperiment(b, "fig2", true) }
func BenchmarkFig3WalkLatencyScenarios(b *testing.B) { benchExperiment(b, "fig3", true) }
func BenchmarkFig8NativeASAP(b *testing.B)           { benchExperiment(b, "fig8", true) }
func BenchmarkFig9ServedByBreakdown(b *testing.B)    { benchExperiment(b, "fig9", false) }
func BenchmarkFig10VirtualizedASAP(b *testing.B)     { benchExperiment(b, "fig10", true) }
func BenchmarkFig11ClusteredTLBAndASAP(b *testing.B) { benchExperiment(b, "fig11", true) }
func BenchmarkTable6PerfProjection(b *testing.B)     { benchExperiment(b, "table6", true) }
func BenchmarkTable7ClusteredTLBMPKI(b *testing.B)   { benchExperiment(b, "table7", true) }
func BenchmarkFig12HostHugePages(b *testing.B)       { benchExperiment(b, "fig12", true) }
func BenchmarkAblationPWCScaling(b *testing.B)       { benchExperiment(b, "ablation-pwc", true) }
func BenchmarkAblationRegionHoles(b *testing.B)      { benchExperiment(b, "ablation-holes", false) }
func BenchmarkAblationRangeRegisters(b *testing.B)   { benchExperiment(b, "ablation-regs", false) }
func BenchmarkAblationFiveLevel(b *testing.B)        { benchExperiment(b, "ablation-5level", true) }

// benchExperiments regenerates a sequence of experiments per iteration,
// optionally through a fresh memoizing parallel runner. The Sequential/Runner
// pairs below quantify the tentpole win: Fig 2 and Fig 3 iterate the exact
// same four-scenario × workload grid, so the runner simulates each unique
// cell once (and fans the unique cells across GOMAXPROCS workers), while the
// sequential path re-simulates the full grid for each figure.
func benchExperiments(b *testing.B, parallel bool, names ...string) {
	b.Helper()
	o := benchOptions()
	o.Workloads = smallWorkloads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := o
		var r *runner.Runner
		if parallel {
			r = runner.New(0)
			run.Runner = r
		}
		var err error
		for _, name := range names {
			if err = exp.Run(name, run); err != nil {
				break
			}
		}
		if r != nil {
			r.Close() // close before Fatal so failed iterations don't leak workers
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Fig3Sequential(b *testing.B) { benchExperiments(b, false, "fig2", "fig3") }
func BenchmarkFig2Fig3Runner(b *testing.B)     { benchExperiments(b, true, "fig2", "fig3") }

func BenchmarkAllExperimentsSequential(b *testing.B) { benchExperiments(b, false, "all") }
func BenchmarkAllExperimentsRunner(b *testing.B)     { benchExperiments(b, true, "all") }

// BenchmarkWalkBaseline and BenchmarkWalkASAP measure the simulator's core
// inner loop directly (one full scenario per iteration) and report the
// modelled average walk latency, so regressions in either simulation speed
// or modelled behaviour show up here.
func benchScenario(b *testing.B, sc sim.Scenario) {
	b.Helper()
	o := benchOptions()
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sc, o.Params)
		if err != nil {
			b.Fatal(err)
		}
		last = res.AvgWalkLat
	}
	b.ReportMetric(last, "walk-cycles/avg")
}

func BenchmarkWalkBaselineNative(b *testing.B) {
	w, _ := workload.ByName("mcf")
	benchScenario(b, sim.Scenario{Workload: w})
}

func BenchmarkWalkASAPNative(b *testing.B) {
	w, _ := workload.ByName("mcf")
	benchScenario(b, sim.Scenario{Workload: w, ASAP: sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}})
}

func BenchmarkWalkBaselineVirtualized(b *testing.B) {
	w, _ := workload.ByName("mcf")
	benchScenario(b, sim.Scenario{Workload: w, Virtualized: true})
}

func BenchmarkWalkASAPVirtualized(b *testing.B) {
	w, _ := workload.ByName("mcf")
	benchScenario(b, sim.Scenario{Workload: w, Virtualized: true,
		ASAP: sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}})
}
