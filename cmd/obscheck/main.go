// Command obscheck validates observability artifacts — the CI teeth behind
// internal/obs's format guarantees:
//
//	obscheck trace events.json    # Chrome trace_event JSON: parse + span nesting
//	obscheck prom  metrics.prom   # Prometheus text exposition lint
//
// trace checks that the file parses as trace_event JSON, that every event's
// phase and fields are well-formed, and that spans nest strictly within each
// (pid, tid) track — the invariant Perfetto's flame view relies on. prom
// checks HELP/TYPE metadata, name and label grammar, and histogram
// consistency (monotonic cumulative buckets, a +Inf bucket equal to _count).
// Exit status is 0 when the artifact is clean, 1 with one diagnostic per
// problem otherwise.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: obscheck trace|prom FILE")
		os.Exit(2)
	}
	mode, path := os.Args[1], os.Args[2]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	switch mode {
	case "trace":
		n, err := obs.ValidateTraceJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d events, spans nest\n", path, n)
	case "prom":
		if errs := obs.LintProm(data); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, e)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: exposition is clean\n", path)
	default:
		fmt.Fprintf(os.Stderr, "obscheck: unknown mode %q (want trace or prom)\n", mode)
		os.Exit(2)
	}
}
