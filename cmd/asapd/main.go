// Command asapd serves the simulator over HTTP: clients POST experiment-grid
// or trace-replay jobs as JSON and poll for per-cell results. The service is
// hardened for unattended operation — bounded queue with 429 backpressure, a
// crash-safe persistent result store, per-job deadlines, and a graceful
// SIGTERM drain.
//
// Usage:
//
//	asapd -addr :8080 -store /var/lib/asapd
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"cells":[{"workload":"mcf"}],"params":{"fast":true}}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/metrics
//
// On SIGTERM (or SIGINT) the service stops accepting jobs (503), finishes
// queued and in-flight work within -drain, persists everything to the store,
// and exits 0 on a clean drain (1 if the deadline forced an abort).
//
// -debug-addr starts a second listener (off by default) with net/http/pprof
// under /debug/pprof/ and the Prometheus exposition under /debug/metrics.
// Keep it on localhost or behind a firewall: pprof exposes heap and goroutine
// internals, which is why it never shares the public API listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/asapd"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		storeDir   = flag.String("store", "", "persistent result store directory (empty = in-memory only)")
		queueCap   = flag.Int("queue", 16, "job queue capacity (full queue returns 429)")
		workers    = flag.Int("j", 0, "concurrent scenario simulations (0 = GOMAXPROCS)")
		jobWorkers = flag.Int("jobworkers", 2, "jobs executing concurrently")
		drain      = flag.Duration("drain", 60*time.Second, "shutdown drain deadline for in-flight work")
		debugAddr  = flag.String("debug-addr", "", "debug listener address for pprof and /debug/metrics (empty = disabled)")
	)
	flag.Parse()

	svc, err := asapd.New(asapd.Config{
		Workers:    *workers,
		QueueCap:   *queueCap,
		JobWorkers: *jobWorkers,
		StoreDir:   *storeDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapd:", err)
		return 1
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "asapd: listening on %s (store %q, queue %d)\n", ln.Addr(), *storeDir, *queueCap)

	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asapd: debug listener:", err)
			return 1
		}
		dbgSrv = &http.Server{Handler: debugMux(svc)}
		// Debug serve errors are non-fatal: the service's job is the API
		// listener, and losing pprof should not take down in-flight work.
		go func() {
			if err := dbgSrv.Serve(dbgLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "asapd: debug serve:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "asapd: debug listener on %s (pprof, /debug/metrics)\n", dbgLn.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "asapd: serve:", err)
		return 1
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	fmt.Fprintf(os.Stderr, "asapd: draining (deadline %s)\n", *drain)

	deadline, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the service first: new submissions already get 503, but polls
	// keep answering so clients can watch their jobs finish. The HTTP server
	// itself shuts down last.
	code := 0
	if err := svc.Shutdown(deadline); err != nil {
		fmt.Fprintln(os.Stderr, "asapd: drain deadline exceeded, in-flight work aborted")
		code = 1
	}
	if err := srv.Shutdown(deadline); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "asapd: http shutdown:", err)
		code = 1
	}
	if dbgSrv != nil {
		_ = dbgSrv.Shutdown(deadline) //nolint:errcheck // best effort; debug only
	}
	if code == 0 {
		fmt.Fprintln(os.Stderr, "asapd: clean drain, bye")
	}
	return code
}

// debugMux builds the debug listener's handler: net/http/pprof on its
// standard paths plus the service's Prometheus exposition. Registered
// explicitly (not via the pprof init side effect on DefaultServeMux) so the
// public API listener never inherits the profile endpoints.
func debugMux(svc *asapd.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = svc.WriteProm(w) //nolint:errcheck // headers are sent; nothing left to do
	})
	return mux
}
