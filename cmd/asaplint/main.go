// asaplint is the repository's invariant linter: a multichecker running the
// repo-specific analyzers (meterwindow, keycomplete, determinism, seededrand,
// ctxflow, crashsafe, lockcheck, mixedaccess) alongside curated stock passes
// (nilness, unusedresult, copylocks, shadow).
//
// Usage:
//
//	go run ./cmd/asaplint ./...          # lint the whole module (CI does this)
//	go run ./cmd/asaplint -only determinism,seededrand ./internal/sim
//	go run ./cmd/asaplint -json ./...    # machine-readable findings
//	go run ./cmd/asaplint -timing ./...  # per-analyzer wall-clock cost
//	go run ./cmd/asaplint -list          # describe every analyzer
//
// Diagnostics print as file:line:col: [analyzer] message; any diagnostic
// makes the process exit 1. Suppress a finding — with a written reason — via
// //lint:ignore <analyzer> <why> (or //lint:ordered <why> for map-iteration
// findings) on the offending line or the line above. -json emits every
// diagnostic including the suppressed ones (marked "suppressed": true); only
// surviving findings affect the exit status. See README "Invariants &
// linting".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/suite"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array (including suppressed ones)")
	timing := flag.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "asaplint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}
	res, err := analysis.RunAll(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}

	if *asJSON {
		out := []jsonDiagnostic{} // encode [] rather than null when clean
		for _, d := range append(append([]analysis.Diagnostic{}, res.Diagnostics...), res.Suppressed...) {
			out = append(out, jsonDiagnostic{
				File:       d.Position.Filename,
				Line:       d.Position.Line,
				Col:        d.Position.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "asaplint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
		}
	}

	if *timing {
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "asaplint: timing %-14s %s\n", t.Analyzer, t.Elapsed.Round(time.Microsecond))
		}
	}

	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "asaplint: %d finding(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}
