// asaplint is the repository's invariant linter: a multichecker running the
// repo-specific analyzers (meterwindow, keycomplete, determinism, seededrand)
// alongside curated stock passes (nilness, unusedresult, copylocks, shadow).
//
// Usage:
//
//	go run ./cmd/asaplint ./...          # lint the whole module (CI does this)
//	go run ./cmd/asaplint -only determinism,seededrand ./internal/sim
//	go run ./cmd/asaplint -list          # describe every analyzer
//
// Diagnostics print as file:line:col: [analyzer] message; any diagnostic
// makes the process exit 1. Suppress a finding — with a written reason — via
// //lint:ignore <analyzer> <why> (or //lint:ordered <why> for map-iteration
// findings) on the offending line or the line above. See README "Invariants
// & linting".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/suite"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "asaplint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asaplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
