// Command benchjson turns `go test -bench` output into a machine-readable
// JSON summary — a dependency-free stand-in for `benchstat -format csv`, so
// the repository's perf evidence can be regenerated in a hermetic
// environment.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 6 . > new.txt
//	go run ./cmd/benchjson new.txt > BENCH.json
//	go run ./cmd/benchjson -old old.txt new.txt > BENCH_3.json
//
// With -old, every benchmark present in both files gains per-metric
// old/new ratios and a ns/op speedup (old mean / new mean), and the summary
// carries the geometric-mean speedup across the compared benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
// "BenchmarkFig3WalkLatencyScenarios-8   3   694069741 ns/op   523 allocs/op".
// The -N GOMAXPROCS suffix is stripped so runs from different machines merge.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// samples collects the observed values of one (benchmark, unit) pair.
type samples map[string]map[string][]float64

// parseFile accumulates every benchmark line of path into s.
func parseFile(path string, s samples) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			unit := rest[i+1]
			if s[name] == nil {
				s[name] = map[string][]float64{}
			}
			s[name][unit] = append(s[name][unit], v)
		}
	}
	return sc.Err()
}

// Stats summarises one metric's samples.
type Stats struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func summarize(vals []float64) Stats {
	st := Stats{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		st.Mean += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean /= float64(st.N)
	if st.N > 1 {
		var ss float64
		for _, v := range vals {
			ss += (v - st.Mean) * (v - st.Mean)
		}
		st.Stddev = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

// Metric is one unit's summary, optionally with an old-run comparison.
type Metric struct {
	New   Stats   `json:"new"`
	Old   *Stats  `json:"old,omitempty"`
	Ratio float64 `json:"ratio_new_over_old,omitempty"`
}

// Benchmark is one benchmark's report.
type Benchmark struct {
	Name    string            `json:"name"`
	Metrics map[string]Metric `json:"metrics"`
	// Speedup is old mean ns/op over new mean ns/op; 0 when no old run.
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	OldFile    string      `json:"old_file,omitempty"`
	NewFile    string      `json:"new_file"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// GeomeanSpeedup is the geometric mean of per-benchmark ns/op speedups
	// across benchmarks present in both runs; 0 when no old run.
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
}

func main() {
	oldPath := flag.String("old", "", "baseline `file` of go test -bench output to compare against")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-old old.txt] new.txt")
		os.Exit(2)
	}
	newPath := flag.Arg(0)

	newS, oldS := samples{}, samples{}
	if err := parseFile(newPath, newS); err != nil {
		fatal(err)
	}
	if *oldPath != "" {
		if err := parseFile(*oldPath, oldS); err != nil {
			fatal(err)
		}
	}

	rep := Report{OldFile: *oldPath, NewFile: newPath}
	names := make([]string, 0, len(newS))
	for name := range newS {
		names = append(names, name)
	}
	sort.Strings(names)

	logSum, logN := 0.0, 0
	for _, name := range names {
		b := Benchmark{Name: name, Metrics: map[string]Metric{}}
		for unit, vals := range newS[name] {
			m := Metric{New: summarize(vals)}
			if old, ok := oldS[name][unit]; ok {
				ost := summarize(old)
				m.Old = &ost
				if ost.Mean != 0 {
					m.Ratio = m.New.Mean / ost.Mean
				}
				if unit == "ns/op" && m.New.Mean != 0 {
					b.Speedup = ost.Mean / m.New.Mean
				}
			}
			b.Metrics[unit] = m
		}
		if b.Speedup > 0 {
			logSum += math.Log(b.Speedup)
			logN++
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if logN > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(logN))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
