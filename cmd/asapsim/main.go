// Command asapsim runs a single address-translation scenario and prints its
// metrics. It is the low-level entry point; cmd/paperrepro regenerates the
// paper's tables and figures wholesale.
//
// Example:
//
//	asapsim -workload mc80 -asap p1+p2 -colocate
//	asapsim -workload redis -virt -guest p1+p2 -host p1+p2
//	asapsim -workload mcf -procs 4 -mix mcf,canneal -flushswitch
//	asapsim -workload mc80 -scheme victima
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "mc80", "workload name ("+strings.Join(workload.Names(), ", ")+")")
		scheme    = flag.String("scheme", "asap", "translation scheme ("+strings.Join(mmu.Names(), ", ")+")")
		asapFlag  = flag.String("asap", "off", "native ASAP config: off, p1, p1+p2, p1+p2+p3 (-scheme asap only)")
		guestFlag = flag.String("guest", "off", "guest ASAP config (with -virt)")
		hostFlag  = flag.String("host", "off", "host ASAP config (with -virt)")
		virtual   = flag.Bool("virt", false, "run under virtualization (2D nested walks)")
		colocate  = flag.Bool("colocate", false, "add the synthetic SMT co-runner")
		hugeHost  = flag.Bool("hugehost", false, "hypervisor backs guest RAM with 2MB pages")
		clustered = flag.Bool("ctlb", false, "replace the STLB with a Clustered TLB")
		fiveLevel = flag.Bool("5level", false, "use 5-level page tables (native)")
		holes     = flag.Float64("holes", 0, "probability of a hole per ASAP-region PT node")
		measure   = flag.Int("measure", 0, "measured page walks (0 = default)")
		warmup    = flag.Int("warmup", 0, "warmup page walks (0 = default)")
		seed      = flag.Uint64("seed", 0, "random seed (0 = default)")
		breakdown = flag.Bool("breakdown", false, "print the Fig 9 per-level breakdown")
		procs     = flag.Int("procs", 1, "co-scheduled processes time-sharing the core (native only)")
		mix       = flag.String("mix", "", "comma-separated co-scheduled workloads (with -procs; empty = replicate -workload)")
		quantum   = flag.Int("quantum", 0, "mean scheduler quantum in references (0 = default)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = none)")
		flushSw   = flag.Bool("flushswitch", false, "flush TLBs/PWCs on context switch instead of ASID-tagged retention")
		progress  = flag.Bool("progress", false, "report live cell progress on stderr")
	)
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; have %s\n", *name, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	if err := mmu.Validate(*scheme); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The native ASAP config parses in scheme context: prefetch levels are the
	// asap scheme's mechanism, so -scheme victima -asap p1+p2 is rejected, not
	// silently ignored. Guest/host configs are virtualization-only and the
	// rival schemes are native-only, so plain parses plus the -virt checks
	// below cover them.
	native, err := mmu.ParseASAP(*scheme, *asapFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	guest, host := parseASAP(*guestFlag), parseASAP(*hostFlag)
	// Reject contradictory flag combinations up front: silently ignoring a
	// dimension the user asked for produces misleading results.
	if *procs <= 1 && (*mix != "" || *flushSw || *quantum > 0) {
		fmt.Fprintln(os.Stderr, "-mix, -flushswitch and -quantum require -procs > 1")
		os.Exit(2)
	}
	if !*virtual && (guest.Enabled() || host.Enabled() || *hugeHost) {
		fmt.Fprintln(os.Stderr, "-guest, -host and -hugehost require -virt")
		os.Exit(2)
	}
	if *virtual && *procs > 1 {
		fmt.Fprintln(os.Stderr, "-virt does not combine with -procs > 1 (multi-process scheduling is native-only)")
		os.Exit(2)
	}
	if *virtual && native.Enabled() {
		fmt.Fprintln(os.Stderr, "-asap selects the native engine; under -virt use -guest/-host")
		os.Exit(2)
	}
	if *virtual && mmu.Canonical(*scheme) != "asap" {
		fmt.Fprintf(os.Stderr, "-scheme %s is native-only; -virt runs the asap pipeline\n", mmu.Canonical(*scheme))
		os.Exit(2)
	}
	p := sim.DefaultParams()
	p.FiveLevel = *fiveLevel
	p.HoleProb = *holes
	if *measure > 0 {
		p.MeasureWalks = *measure
	}
	if *warmup > 0 {
		p.WarmupWalks = *warmup
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Processes = *procs
	p.FlushOnSwitch = *flushSw
	if *quantum > 0 {
		p.QuantumRefs = *quantum
	}
	sc := sim.Scenario{
		Workload:      spec,
		Virtualized:   *virtual,
		Colocated:     *colocate,
		HostHugePages: *hugeHost,
		ClusteredTLB:  *clustered,
		Mix:           *mix,
		ASAP: sim.ASAPConfig{
			Native: native,
			Guest:  guest,
			Host:   host,
		},
	}
	if mmu.Canonical(*scheme) != "asap" {
		// The default asap selection keeps the zero Scenario value, so names
		// and memo keys match the pre-scheme harness exactly.
		sc.Scheme = mmu.Canonical(*scheme)
	}
	// A single cell gains nothing from parallelism, but routing through the
	// runner keeps asapsim on the same executor as cmd/paperrepro and the
	// benchmarks.
	r := runner.New(1)
	defer r.Close()
	if *progress {
		defer startProgress(r)()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := r.RunCtx(ctx, sc, p)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "sim: timed out after %s (scenario %s)\n", *timeout, sc.Name())
		} else {
			fmt.Fprintln(os.Stderr, "sim:", err)
		}
		os.Exit(1)
	}

	fmt.Printf("scenario            %s\n", sc.Name())
	fmt.Printf("references          %d measured\n", res.Accesses)
	fmt.Printf("page walks          %d (TLB miss ratio %.1f%%)\n", res.Walks, 100*res.TLBMissRatio)
	fmt.Printf("avg walk latency    %.1f cycles\n", res.AvgWalkLat)
	fmt.Printf("walk cycle share    %.1f%% of execution (model)\n", 100*res.WalkFraction)
	fmt.Printf("TLB MPKI            %.2f\n", res.MPKI)
	if p.Processes > 1 {
		policy := "ASID-tagged retention"
		if p.FlushOnSwitch {
			policy = "flush on switch"
		}
		fmt.Printf("context switches    %d (%s, %d TLB flushes)\n", res.Switches, policy, res.ShootdownFlushes)
	}
	if sc.ASAP.Enabled() {
		fmt.Printf("prefetches          %d issued, %d accesses covered\n", res.PrefetchIssued, res.PrefetchCovered)
		fmt.Printf("range-register hits %.1f%%\n", 100*res.RangeHitRate)
		if sc.Virtualized && sc.ASAP.Host.Enabled() {
			fmt.Printf("host range hits     %.1f%%\n", 100*res.HostRangeHitRate)
		}
		if res.RangeOverflowed > 0 {
			fmt.Printf("descriptors dropped %d (range-register file full)\n", res.RangeOverflowed)
		}
	}
	if sc.Scheme != "" {
		fmt.Printf("accel hit rate      %.1f%% (%s mechanism)\n", 100*res.RangeHitRate, sc.SchemeName())
	}
	if *breakdown {
		fmt.Println()
		fmt.Print(breakdownTable(res))
	}
}

// startProgress polls the runner's progress counters (cmd/paperrepro has the
// same poller over its multi-cell grids; here it mostly reports the single
// cell's in-flight state while a long simulation runs). The returned func
// stops the poller.
func startProgress(r *runner.Runner) func() {
	meter := obs.NewProgressMeter(0, 0)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		var last runner.Progress
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			p := r.Progress()
			if p == last {
				continue
			}
			last = p
			meter.SetTotal(int64(p.Submitted))
			meter.Observe(time.Now().UnixNano(), int64(p.Done))
			fmt.Fprintf(os.Stderr, "progress: %s · %d in flight\n",
				obs.FormatProgress("cells", meter.Snapshot()), p.InFlight)
		}
	}()
	return func() { close(stop); <-done }
}

func parseASAP(s string) core.Config {
	c, err := core.ParseConfig(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return c
}

func breakdownTable(res *sim.Result) string {
	tb := stats.NewTable("PT level", "PWC", "L1", "L2", "LLC", "Mem")
	for level := 4; level >= 1; level-- {
		row := []string{fmt.Sprintf("PL%d", level)}
		for _, s := range []cache.ServedBy{cache.ServedPWC, cache.ServedL1, cache.ServedL2, cache.ServedL3, cache.ServedMem} {
			row = append(row, stats.Pct(res.Breakdown.Fraction(level, s)))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
