// Command paperrepro regenerates the tables and figures of "Prefetched
// Address Translation" (Margaritov et al., MICRO-52 2019) from the simulator
// in this repository.
//
// Usage:
//
//	paperrepro -exp all                       # everything (several minutes)
//	paperrepro -exp fig8                      # one experiment
//	paperrepro -exp fig10 -fast               # reduced measurement protocol
//	paperrepro -exp all -j 8                  # fan scenario cells over 8 workers
//	paperrepro -exp all -repeats 3 -out DIR   # 3 repeats/cell + artifact files
//	paperrepro -list                          # list experiment names
//
// Scenario cells always run through a memoizing runner, so cells shared
// between experiments (Fig 2 and Fig 3 iterate the same grid; Table 1 and
// Fig 8/10/12 overlap further) are simulated exactly once. -j controls how
// many cells simulate concurrently; table output is identical for every -j
// because results are collected in submission order. A cache-utilization
// summary goes to stderr, keeping stdout byte-for-byte comparable.
//
// -repeats N simulates every cell N times under per-repeat derived seeds and
// renders walk-latency cells as "mean ± σ"; -repeats 1 (the default) keeps
// stdout byte-identical to the single-run harness. -out DIR writes
// machine-readable per-cell records — one file per experiment under
// DIR/<format>/ plus a grouped mean/std/CI95 summary under DIR/analysis/ —
// in the format selected by -format (csv or json).
//
// -progress prints live cell progress to stderr (done/submitted, a decaying
// cells-per-second rate and an ETA) — useful for the multi-minute full grids.
//
// -timeout D bounds the whole run: on expiry in-flight simulations abort at
// the simulator's next context check, the exit code is 1, and stderr lists
// every cell that completed before the deadline (memoized results that -out
// artifacts already captured).
//
// -cpuprofile FILE and -memprofile FILE write pprof profiles of the whole run
// (CPU samples while experiments execute; the live heap at exit), so perf
// changes can be justified with `go tool pprof` evidence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/mmu"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	// All work happens in run so that deferred shutdown (runner workers) and
	// the stderr reporting below execute on every path; os.Exit here would
	// skip them.
	os.Exit(run())
}

func run() (exit int) {
	var (
		name    = flag.String("exp", "all", "experiment to run (see -list)")
		fast    = flag.Bool("fast", false, "reduced measurement protocol (quicker, noisier)")
		list    = flag.Bool("list", false, "list experiment names and exit")
		only    = flag.String("workload", "", "restrict to one workload (where applicable)")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent scenario simulations (1 = sequential)")
		repeats = flag.Int("repeats", 1, "independent repeats per scenario cell (seeds derived per repeat)")
		out     = flag.String("out", "", "directory for machine-readable per-cell artifacts (empty = none)")
		format  = flag.String("format", "csv", "artifact format: csv or json")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = none); completed cells are listed on timeout")
		tracef  = flag.String("trace", "", "reference-trace file for the trace-asap and compare-schemes experiments (record with asaptrace)")
		scheme  = flag.String("scheme", "", "translation scheme for every cell ("+strings.Join(mmu.Names(), ", ")+"; empty = per-experiment default)")
		progrss = flag.Bool("progress", false, "report live cell progress (count, rate, ETA) on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Println(e.Name)
		}
		return 0
	}
	if *repeats < 1 {
		fmt.Fprintln(os.Stderr, "paperrepro: -repeats must be >= 1")
		return 2
	}
	if *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown -format %q (want csv or json)\n", *format)
		return 2
	}
	o := exp.Default(os.Stdout)
	if *fast {
		o = exp.Fast(os.Stdout)
	}
	if *only != "" {
		spec, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *only)
			return 2
		}
		o.Workloads = []workload.Spec{spec}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The deferred write adjusts the named return, so a run that produced
		// no heap profile does not exit 0.
		defer func() {
			err := func() error {
				f, err := os.Create(*memProf)
				if err != nil {
					return err
				}
				defer f.Close()
				runtime.GC() // flush dead objects so the profile shows live heap
				return pprof.WriteHeapProfile(f)
			}()
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				if exit == 0 {
					exit = 1
				}
			}
		}()
	}
	if *scheme != "" {
		if err := mmu.Validate(*scheme); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 2
		}
		o.Scheme = mmu.Canonical(*scheme)
	}
	o.Repeats = *repeats
	o.Trace = *tracef
	var col *report.Collector
	if *out != "" {
		col = report.NewCollector()
		o.Sink = col
	}
	r := runner.New(*jobs)
	defer r.Close()
	o.Runner = r
	if *progrss {
		defer startProgress(r)()
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		o.Ctx = ctx
	}

	code := 0
	if err := exp.Run(*name, o); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			// A timed-out run is still worth something: say exactly which
			// cells finished (their results are memoized and, with -out, in
			// the artifact records collected so far).
			done := r.Completed()
			fmt.Fprintf(os.Stderr, "paperrepro: timed out after %s with %d cells completed:\n", *timeout, len(done))
			for _, name := range done {
				fmt.Fprintf(os.Stderr, "  %s\n", name)
			}
		}
		code = 1
	}
	// Reporting happens on every path: the cache summary always, and the
	// artifact tree for whatever completed before a failure.
	if hits, misses := r.Stats(); hits+misses > 0 {
		total := hits + misses
		fmt.Fprintf(os.Stderr, "runner: %d unique cells simulated, %d cache hits (%.1f%% of %d requests)\n",
			misses, hits, 100*float64(hits)/float64(total), total)
	}
	if col != nil {
		records := col.Records()
		if err := report.WriteArtifacts(*out, *format, records); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "report: wrote %d records (%s) to %s\n", len(records), *format, *out)
	}
	return code
}

// startProgress polls the runner's progress counters and prints a stderr line
// whenever they move (rate and ETA from a decaying average over unique cells,
// with the submitted count as the moving total — experiments submit their
// grids as they start, so the total grows until the last grid is in). The
// returned func stops the poller; call it before the runner closes.
func startProgress(r *runner.Runner) func() {
	meter := obs.NewProgressMeter(0, 0)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		var last runner.Progress
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			p := r.Progress()
			if p == last {
				continue
			}
			last = p
			meter.SetTotal(int64(p.Submitted))
			meter.Observe(time.Now().UnixNano(), int64(p.Done))
			fmt.Fprintf(os.Stderr, "progress: %s · %d in flight\n",
				obs.FormatProgress("cells", meter.Snapshot()), p.InFlight)
		}
	}()
	return func() { close(stop); <-done }
}
