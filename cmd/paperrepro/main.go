// Command paperrepro regenerates the tables and figures of "Prefetched
// Address Translation" (Margaritov et al., MICRO-52 2019) from the simulator
// in this repository.
//
// Usage:
//
//	paperrepro -exp all            # everything (several minutes)
//	paperrepro -exp fig8           # one experiment
//	paperrepro -exp fig10 -fast    # reduced measurement protocol
//	paperrepro -list               # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	var (
		name = flag.String("exp", "all", "experiment to run (see -list)")
		fast = flag.Bool("fast", false, "reduced measurement protocol (quicker, noisier)")
		list = flag.Bool("list", false, "list experiment names and exit")
		only = flag.String("workload", "", "restrict to one workload (where applicable)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Println(e.Name)
		}
		return
	}
	o := exp.Default(os.Stdout)
	if *fast {
		o = exp.Fast(os.Stdout)
	}
	if *only != "" {
		spec, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *only)
			os.Exit(2)
		}
		o.Workloads = []workload.Spec{spec}
	}
	if err := exp.Run(*name, o); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}
