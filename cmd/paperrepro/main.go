// Command paperrepro regenerates the tables and figures of "Prefetched
// Address Translation" (Margaritov et al., MICRO-52 2019) from the simulator
// in this repository.
//
// Usage:
//
//	paperrepro -exp all            # everything (several minutes)
//	paperrepro -exp fig8           # one experiment
//	paperrepro -exp fig10 -fast    # reduced measurement protocol
//	paperrepro -exp all -j 8       # fan scenario cells over 8 workers
//	paperrepro -list               # list experiment names
//
// Scenario cells always run through a memoizing runner, so cells shared
// between experiments (Fig 2 and Fig 3 iterate the same grid; Table 1 and
// Fig 8/10/12 overlap further) are simulated exactly once. -j controls how
// many cells simulate concurrently; table output is identical for every -j
// because results are collected in submission order. A cache-utilization
// summary goes to stderr, keeping stdout byte-for-byte comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	var (
		name = flag.String("exp", "all", "experiment to run (see -list)")
		fast = flag.Bool("fast", false, "reduced measurement protocol (quicker, noisier)")
		list = flag.Bool("list", false, "list experiment names and exit")
		only = flag.String("workload", "", "restrict to one workload (where applicable)")
		jobs = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent scenario simulations (1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Println(e.Name)
		}
		return
	}
	o := exp.Default(os.Stdout)
	if *fast {
		o = exp.Fast(os.Stdout)
	}
	if *only != "" {
		spec, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *only)
			os.Exit(2)
		}
		o.Workloads = []workload.Spec{spec}
	}
	r := runner.New(*jobs)
	defer r.Close()
	o.Runner = r
	if err := exp.Run(*name, o); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	hits, misses := r.Stats()
	if total := hits + misses; total > 0 {
		fmt.Fprintf(os.Stderr, "runner: %d unique cells simulated, %d cache hits (%.1f%% of %d requests)\n",
			misses, hits, 100*float64(hits)/float64(total), total)
	}
}
