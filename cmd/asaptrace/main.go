// Command asaptrace records, inspects and replays binary reference traces
// (see internal/trace for the format). It is the workload on-ramp: any
// reference stream — captured from a synthetic scenario here, hand-built, or
// converted from an external tool — becomes a runnable scenario.
//
//	asaptrace record -workload mc80 -o mc80.trc.gz
//	asaptrace record -workload mcf -procs 4 -mix mcf,canneal -o mix.trc
//	asaptrace info mc80.trc.gz
//	asaptrace replay -asap p1+p2 mc80.trc.gz
//	asaptrace replay -asap p1+p2 -events events.json mc80.trc.gz
//
// record simulates the scenario with a reference tap attached and writes one
// trace per process (multi-process captures write <base>.p<N><ext>). The
// reference stream depends only on the workload, seed and schedule — not on
// ASAP configuration — so one capture serves a whole ablation grid. info
// prints the header, footprint and a reuse-distance summary. replay drives a
// native scenario from the trace and prints the usual metrics; -events
// additionally records a cycle-domain event trace in Chrome trace_event JSON
// (load it at ui.perfetto.dev), and -prom writes the run's metric registry in
// Prometheus text format.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "asaptrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  asaptrace record -workload NAME [-procs N -mix LIST] [-warmup N -measure N] [-seed N] [-fast] [-gzip] -o FILE
  asaptrace info FILE
  asaptrace replay [-asap CFG] [-colocate] [-ctlb] [-holes P] [-warmup N -measure N] [-fast]
                   [-events FILE [-sample N] [-prom FILE]] FILE
`)
}

// fastParams shrinks the measurement protocol for smoke runs, mirroring the
// examples' -fast convention. Record keeps extra measured headroom so a -fast
// capture still covers a -fast replay's full window.
func fastParams(p *sim.Params, record bool) {
	p.WarmupWalks = 1000
	p.MeasureWalks = 1000
	if record {
		p.MeasureWalks = 1800
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("asaptrace record", flag.ExitOnError)
	var (
		name    = fs.String("workload", "mc80", "workload name ("+strings.Join(workload.Names(), ", ")+")")
		out     = fs.String("o", "", "output trace file (required; .gz implies -gzip)")
		gz      = fs.Bool("gzip", false, "gzip-compress the trace body")
		warmup  = fs.Int("warmup", 0, "warmup page walks (0 = default)")
		measure = fs.Int("measure", 0, "measured page walks (0 = default)")
		seed    = fs.Uint64("seed", 0, "random seed (0 = default)")
		procs   = fs.Int("procs", 1, "co-scheduled processes (one trace per process)")
		mix     = fs.String("mix", "", "comma-separated co-scheduled workloads (with -procs)")
		quantum = fs.Int("quantum", 0, "mean scheduler quantum in references (0 = default)")
		fast    = fs.Bool("fast", false, "reduced measurement protocol")
	)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record needs -o FILE")
	}
	if *procs <= 1 && (*mix != "" || *quantum > 0) {
		return fmt.Errorf("-mix and -quantum require -procs > 1")
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q; have %s", *name, strings.Join(workload.Names(), ", "))
	}
	p := sim.DefaultParams()
	if *fast {
		fastParams(&p, true)
	}
	if *warmup > 0 {
		p.WarmupWalks = *warmup
	}
	if *measure > 0 {
		p.MeasureWalks = *measure
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Processes = *procs
	if *quantum > 0 {
		p.QuantumRefs = *quantum
	}
	compress := *gz || strings.HasSuffix(*out, ".gz")
	sc := sim.Scenario{Workload: spec, Mix: *mix}

	paths := map[int]string{}
	rec := trace.NewRecorder(func(pid int) (io.WriteCloser, error) {
		path := *out
		if *procs > 1 {
			ext := filepath.Ext(path)
			base := strings.TrimSuffix(path, ext)
			if ext == ".gz" { // keep compound extensions like .trc.gz together
				inner := filepath.Ext(base)
				base, ext = strings.TrimSuffix(base, inner), inner+ext
			}
			path = fmt.Sprintf("%s.p%d%s", base, pid, ext)
		}
		paths[pid] = path
		return os.Create(path)
	}, compress)
	res, err := sim.RunTapped(sc, p, rec)
	if err != nil {
		rec.Close()
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	fmt.Printf("scenario        %s\n", sc.Name())
	fmt.Printf("run             %d walks measured, avg latency %.1f cycles\n", res.Walks, res.AvgWalkLat)
	for _, c := range rec.Captures() {
		fmt.Printf("trace p%-2d       %s: %s, %d refs, digest %s\n", c.PID, paths[c.PID], c.Spec.Name, c.Count, c.Digest)
	}
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("asaptrace info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs exactly one trace file")
	}
	path := fs.Arg(0)
	tr, err := trace.LoadFile(path)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Printf("file            %s (%d bytes on disk)\n", path, st.Size())
	fmt.Printf("digest          %s\n", tr.Digest)
	fmt.Printf("workload        %s (%s)\n", h.Spec.Name, h.Spec.Description)
	fmt.Printf("capture seed    %d\n", h.Seed)
	big, small := 0, 0
	var spanPages uint64
	for _, a := range h.Areas {
		if a.Big {
			big++
		} else {
			small++
		}
		spanPages += a.Pages
	}
	fmt.Printf("vma layout      %d areas (%d dataset, %d small), %d pages spanned\n",
		len(h.Areas), big, small, spanPages)
	in := tr.Info()
	fmt.Printf("references      %d\n", in.Count)
	fmt.Printf("footprint       %d unique pages (%.1f MiB)\n",
		in.UniquePages, float64(in.UniquePages*mem.PageSize)/float64(mem.MiB))
	fmt.Printf("cold refs       %d (first touches)\n", in.ColdRefs)
	fmt.Printf("reuse distance  p50 %d, p90 %d pages\n", in.ReuseP50, in.ReuseP90)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("asaptrace replay", flag.ExitOnError)
	var (
		asapFlag  = fs.String("asap", "off", "native ASAP config: off, p1, p1+p2, p1+p2+p3")
		colocate  = fs.Bool("colocate", false, "add the synthetic SMT co-runner")
		clustered = fs.Bool("ctlb", false, "replace the STLB with a Clustered TLB")
		holes     = fs.Float64("holes", 0, "probability of a hole per ASAP-region PT node")
		warmup    = fs.Int("warmup", 0, "warmup page walks (0 = default)")
		measure   = fs.Int("measure", 0, "measured page walks (0 = default)")
		fast      = fs.Bool("fast", false, "reduced measurement protocol")
		events    = fs.String("events", "", "write a Chrome trace_event JSON of the run (load at ui.perfetto.dev)")
		sample    = fs.Int("sample", 1, "with -events, trace every Nth walk (and TLB hit)")
		promOut   = fs.String("prom", "", "with -events, write the run's metrics in Prometheus text format")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	if *events == "" && *promOut != "" {
		return fmt.Errorf("-prom requires -events")
	}
	cfg, err := core.ParseConfig(*asapFlag)
	if err != nil {
		return err
	}
	tr, err := trace.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	p := sim.DefaultParams()
	if *fast {
		fastParams(&p, false)
	}
	if *warmup > 0 {
		p.WarmupWalks = *warmup
	}
	if *measure > 0 {
		p.MeasureWalks = *measure
	}
	p.HoleProb = *holes
	sc := sim.UseTrace(tr)
	sc.ASAP = sim.ASAPConfig{Native: cfg}
	sc.Colocated = *colocate
	sc.ClusteredTLB = *clustered
	var tracer *obs.Tracer
	var reg *obs.Registry
	if *events != "" {
		if *promOut != "" {
			reg = obs.NewRegistry()
		}
		tracer = obs.NewTracer(obs.TraceConfig{Sample: *sample, Metrics: reg})
	}
	res, err := sim.RunObserved(context.Background(), sc, p, nil, tracer)
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := writeEvents(*events, tracer); err != nil {
			return err
		}
		fmt.Printf("event trace         %s: %d events (sample 1/%d)\n", *events, len(tracer.Events()), *sample)
		if reg != nil {
			if err := writeProm(*promOut, reg); err != nil {
				return err
			}
			fmt.Printf("metrics             %s\n", *promOut)
		}
	}
	fmt.Printf("scenario            %s\n", sc.Name())
	fmt.Printf("trace               %s: %d refs, digest %s\n", fs.Arg(0), tr.Count, tr.Digest)
	fmt.Printf("references          %d measured\n", res.Accesses)
	fmt.Printf("page walks          %d (TLB miss ratio %.1f%%)\n", res.Walks, 100*res.TLBMissRatio)
	fmt.Printf("avg walk latency    %.1f cycles\n", res.AvgWalkLat)
	fmt.Printf("walk cycle share    %.1f%% of execution (model)\n", 100*res.WalkFraction)
	fmt.Printf("TLB MPKI            %.2f\n", res.MPKI)
	if sc.ASAP.Enabled() {
		fmt.Printf("prefetches          %d issued, %d accesses covered\n", res.PrefetchIssued, res.PrefetchCovered)
		fmt.Printf("range-register hits %.1f%%\n", 100*res.RangeHitRate)
	}
	if res.Walks == 0 {
		fmt.Println("note: the trace ran dry before the measurement window; shrink -warmup/-measure (or pass -fast)")
	}
	return nil
}

// writeEvents writes the tracer's event buffer as Chrome trace_event JSON.
func writeEvents(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := tracer.WriteJSON(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeProm writes the run's metric registry in Prometheus text format.
func writeProm(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
