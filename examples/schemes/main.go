// Schemes: run one workload's TLB-miss stream under every registered
// translation backend — the paper's ASAP pipeline, Victima-style TLB
// transplants into the L2 data cache, and Revelator-style hash-based
// speculative translation — on identical reference streams and hardware.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("mc80")
	if !ok {
		log.Fatal("workload mc80 not defined")
	}
	params := sim.DefaultParams()
	if *fast {
		params.WarmupWalks, params.MeasureWalks = 3000, 2000
	}

	cells := []struct {
		label string
		sc    sim.Scenario
	}{
		{"walk only", sim.Scenario{Workload: spec, Scheme: "asap"}},
		{"asap P1+P2", sim.Scenario{Workload: spec, Scheme: "asap", ASAP: sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}}},
		{"victima", sim.Scenario{Workload: spec, Scheme: "victima"}},
		{"revelator", sim.Scenario{Workload: spec, Scheme: "revelator"}},
	}

	fmt.Printf("workload: %s — %s\n\n", spec.Name, spec.Description)
	fmt.Printf("%-12s %16s %13s %11s\n", "scheme", "avg walk (cyc)", "vs walk", "accel hits")

	var baseline float64
	for i, c := range cells {
		res, err := sim.Run(c.sc, params)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res.AvgWalkLat
		}
		fmt.Printf("%-12s %16.1f %12.1f%% %10.1f%%\n",
			c.label, res.AvgWalkLat, 100*(1-res.AvgWalkLat/baseline), 100*res.RangeHitRate)
	}
	fmt.Println("\nEach scheme resolves L2-TLB misses its own way: ASAP prefetches deep")
	fmt.Println("page-table entries via range registers, Victima probes transplanted")
	fmt.Println("translations in the L2 data cache, Revelator fetches OS hash-table")
	fmt.Println("buckets and verifies speculative translations off the critical path.")
}
