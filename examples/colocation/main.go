// Colocation: the paper's SMT co-runner study (§4, Fig 8b). A synthetic
// memory-intensive thread shares the cache hierarchy with the application,
// evicting cached page-table entries; walks lengthen, and ASAP's opportunity
// to overlap long accesses grows.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	params := sim.DefaultParams()
	if *fast {
		params.WarmupWalks, params.MeasureWalks = 3000, 2000
	}
	asap := sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}

	fmt.Printf("%-10s %12s %12s %12s %12s %14s\n",
		"workload", "iso base", "iso ASAP", "colo base", "colo ASAP", "colo ASAP red.")
	for _, name := range []string{"mcf", "mc80", "redis"} {
		spec, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("workload %s not defined", name)
		}
		cells := []sim.Scenario{
			{Workload: spec},
			{Workload: spec, ASAP: asap},
			{Workload: spec, Colocated: true},
			{Workload: spec, Colocated: true, ASAP: asap},
		}
		var lat [4]float64
		for i, sc := range cells {
			res, err := sim.Run(sc, params)
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = res.AvgWalkLat
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %12.1f %13.0f%%\n",
			name, lat[0], lat[1], lat[2], lat[3], 100*(1-lat[3]/lat[2]))
	}
	fmt.Println("\nColocation pressures the caches that hold page-table entries, so the")
	fmt.Println("serial walk exposes more long accesses — exactly what ASAP overlaps.")
}
