// Virtualization: the paper's Fig 7/Fig 10 setting. A guest process's TLB
// miss triggers a 2D nested walk (up to 24 memory accesses); ASAP can
// prefetch in the guest dimension, the host dimension, or both, with the
// guest page-table regions pinned machine-contiguously by the hypervisor.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("pagerank")
	if !ok {
		log.Fatal("workload pagerank not defined")
	}
	params := sim.DefaultParams()
	if *fast {
		params.WarmupWalks, params.MeasureWalks = 3000, 2000
	}

	native, err := sim.Run(sim.Scenario{Workload: spec}, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native baseline walk latency: %.1f cycles\n\n", native.AvgWalkLat)

	configs := []struct {
		name string
		asap sim.ASAPConfig
	}{
		{"virtualized baseline", sim.ASAPConfig{}},
		{"guest P1", sim.ASAPConfig{Guest: core.Config{P1: true}}},
		{"guest P1+P2", sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}}},
		{"guest P1 + host P1", sim.ASAPConfig{Guest: core.Config{P1: true}, Host: core.Config{P1: true}}},
		{"both dims P1+P2", sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P1: true, P2: true}}},
	}
	var base float64
	for _, c := range configs {
		res, err := sim.Run(sim.Scenario{Workload: spec, Virtualized: true, ASAP: c.asap}, params)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.AvgWalkLat
		}
		fmt.Printf("%-22s %7.1f cycles  (%.0f%% below virt baseline, %.1f× native)\n",
			c.name, res.AvgWalkLat, 100*(1-res.AvgWalkLat/base), res.AvgWalkLat/native.AvgWalkLat)
	}
}
