// Multi-process scheduling: the §3.3 setting the paper argues about but
// never simulates. Several processes time-share one core; every context
// switch restores the incoming process's ASAP descriptor file (the per-VMA
// register state the OS saves and restores) and either flushes the
// translation hardware (untagged TLBs/PWCs) or retains it under per-process
// ASID tags. Flush-on-switch forces the TLB to rewarm every quantum, so the
// program suffers more page walks per unit of work; tagged retention keeps
// the survivors alive across switches. The comparison metric is the walk
// stall rate — page-walk cycles per kilo-instruction — because the refill
// walks the flush policy adds are recently-walked, cache-warm pages: cheap
// individually, expensive in aggregate.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("mcf")
	if !ok {
		log.Fatal("workload mcf not defined")
	}
	base := sim.DefaultParams()
	if *fast {
		base.WarmupWalks, base.MeasureWalks = 3000, 2000
	}
	asap := sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}

	fmt.Printf("%-6s %-8s %-8s %18s %18s %10s %10s\n",
		"procs", "policy", "ASAP", "walk stall cyc/kI", "avg walk lat", "switches", "flushes")
	for _, n := range []int{1, 2, 4, 8} {
		policies := []bool{false}
		if n > 1 {
			policies = []bool{true, false}
		}
		for _, flush := range policies {
			for _, cfg := range []sim.ASAPConfig{{}, asap} {
				p := base
				p.Processes = n
				p.FlushOnSwitch = flush
				sc := sim.Scenario{Workload: spec, ASAP: cfg}
				if n > 1 {
					sc.Mix = "mcf,canneal"
				}
				res, err := sim.Run(sc, p)
				if err != nil {
					log.Fatal(err)
				}
				policy := "—"
				if n > 1 {
					if flush {
						policy = "flush"
					} else {
						policy = "ASID"
					}
				}
				fmt.Printf("%-6d %-8s %-8s %18.1f %18.1f %10d %10d\n",
					n, policy, cfg, res.MPKI*res.AvgWalkLat, res.AvgWalkLat,
					res.Switches, res.ShootdownFlushes)
			}
		}
	}
	fmt.Println("\nASID tags pack into the high TLB-tag bits ((asid << vpnBits) | vpn), so")
	fmt.Println("one structure holds every process's translations; a flush-on-switch OS")
	fmt.Println("pays the rewarm walks instead. ASAP's descriptor swap rides the regular")
	fmt.Println("context-switch state save (§3.3) and its capacity drops recur per switch.")
}
