// Quickstart: build a synthetic big-memory process, run its TLB-miss stream
// through the simulated translation hardware, and compare the baseline page
// walker against ASAP prefetching (the paper's P1 and P1+P2 configurations).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("mc80")
	if !ok {
		log.Fatal("workload mc80 not defined")
	}
	params := sim.DefaultParams()
	if *fast {
		params.WarmupWalks, params.MeasureWalks = 3000, 2000
	}

	fmt.Printf("workload: %s — %s\n\n", spec.Name, spec.Description)
	fmt.Printf("%-10s %16s %14s\n", "config", "avg walk (cyc)", "vs baseline")

	var baseline float64
	for _, cfg := range []core.Config{{}, {P1: true}, {P1: true, P2: true}} {
		res, err := sim.Run(sim.Scenario{Workload: spec, ASAP: sim.ASAPConfig{Native: cfg}}, params)
		if err != nil {
			log.Fatal(err)
		}
		if !cfg.Enabled() {
			baseline = res.AvgWalkLat
		}
		fmt.Printf("%-10s %16.1f %13.1f%%\n", cfg, res.AvgWalkLat, 100*(1-res.AvgWalkLat/baseline))
	}
	fmt.Println("\nASAP prefetches the PL1/PL2 page-table entries on every TLB miss,")
	fmt.Println("overlapping the deep radix-tree accesses with the walk's upper levels.")
}
