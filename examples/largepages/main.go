// Large pages: the paper's Fig 12 setting. The hypervisor backs guest RAM
// with 2 MB pages, shortening every 1D host walk by one level; ASAP
// (P1+P2 in the guest, P2-only in the host, since the host table has no PL1)
// still delivers a sizeable reduction on top.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("mc80")
	if !ok {
		log.Fatal("workload mc80 not defined")
	}
	params := sim.DefaultParams()
	if *fast {
		params.WarmupWalks, params.MeasureWalks = 3000, 2000
	}
	asap := sim.ASAPConfig{Guest: core.Config{P1: true, P2: true}, Host: core.Config{P2: true}}

	cells := []struct {
		name string
		sc   sim.Scenario
	}{
		{"virt, 4KB host pages, baseline", sim.Scenario{Workload: spec, Virtualized: true}},
		{"virt, 2MB host pages, baseline", sim.Scenario{Workload: spec, Virtualized: true, HostHugePages: true}},
		{"virt, 2MB host pages, ASAP", sim.Scenario{Workload: spec, Virtualized: true, HostHugePages: true, ASAP: asap}},
		{"…same under SMT colocation", sim.Scenario{Workload: spec, Virtualized: true, HostHugePages: true, Colocated: true, ASAP: asap}},
		{"…colocated baseline", sim.Scenario{Workload: spec, Virtualized: true, HostHugePages: true, Colocated: true}},
	}
	for _, c := range cells {
		res, err := sim.Run(c.sc, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8.1f cycles\n", c.name, res.AvgWalkLat)
	}
	fmt.Println("\n2MB host pages remove one access from each nested 1D walk (accesses")
	fmt.Println("4, 9, 14, 19, 24 of the paper's Fig 7); ASAP overlaps most of the rest.")
}
