// Five-level paging: the §2.6/§3.5 forward-looking scenario. Terabyte-scale
// memories force a fifth radix level, deepening every walk; ASAP extends
// naturally with one more prefetch target (P3), recovering the loss without
// touching the page-table structure.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "reduced measurement protocol (CI smoke)")
	flag.Parse()
	spec, ok := workload.ByName("mc400")
	if !ok {
		log.Fatal("workload mc400 not defined")
	}

	four := sim.DefaultParams()
	if *fast {
		four.WarmupWalks, four.MeasureWalks = 3000, 2000
	}
	five := four
	five.FiveLevel = true

	rows := []struct {
		name string
		p    sim.Params
		asap sim.ASAPConfig
	}{
		{"4-level baseline", four, sim.ASAPConfig{}},
		{"4-level ASAP P1+P2", four, sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}},
		{"5-level baseline", five, sim.ASAPConfig{}},
		{"5-level ASAP P1+P2", five, sim.ASAPConfig{Native: core.Config{P1: true, P2: true}}},
		{"5-level ASAP P1+P2+P3", five, sim.ASAPConfig{Native: core.Config{P1: true, P2: true, P3: true}}},
	}
	for _, r := range rows {
		res, err := sim.Run(sim.Scenario{Workload: spec, ASAP: r.asap}, r.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8.1f cycles\n", r.name, res.AvgWalkLat)
	}
	fmt.Println("\nWith five levels the OS reserves one more sorted region per VMA and the")
	fmt.Println("range registers gain a PL3 base — no other change to the ASAP design.")
}
